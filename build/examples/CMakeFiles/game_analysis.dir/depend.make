# Empty dependencies file for game_analysis.
# This may be replaced when dependencies are built.
