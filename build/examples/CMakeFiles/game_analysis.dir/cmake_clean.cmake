file(REMOVE_RECURSE
  "CMakeFiles/game_analysis.dir/game_analysis.cpp.o"
  "CMakeFiles/game_analysis.dir/game_analysis.cpp.o.d"
  "game_analysis"
  "game_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
