file(REMOVE_RECURSE
  "CMakeFiles/anonymous_web_session.dir/anonymous_web_session.cpp.o"
  "CMakeFiles/anonymous_web_session.dir/anonymous_web_session.cpp.o.d"
  "anonymous_web_session"
  "anonymous_web_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_web_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
