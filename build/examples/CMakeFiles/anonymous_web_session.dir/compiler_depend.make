# Empty compiler generated dependencies file for anonymous_web_session.
# This may be replaced when dependencies are built.
