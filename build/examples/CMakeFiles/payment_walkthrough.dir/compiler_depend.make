# Empty compiler generated dependencies file for payment_walkthrough.
# This may be replaced when dependencies are built.
