file(REMOVE_RECURSE
  "CMakeFiles/payment_walkthrough.dir/payment_walkthrough.cpp.o"
  "CMakeFiles/payment_walkthrough.dir/payment_walkthrough.cpp.o.d"
  "payment_walkthrough"
  "payment_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payment_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
