file(REMOVE_RECURSE
  "CMakeFiles/defense_tuning.dir/defense_tuning.cpp.o"
  "CMakeFiles/defense_tuning.dir/defense_tuning.cpp.o.d"
  "defense_tuning"
  "defense_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
