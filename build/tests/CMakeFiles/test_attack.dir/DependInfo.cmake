
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/attack/test_intersection.cpp" "tests/CMakeFiles/test_attack.dir/attack/test_intersection.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/test_intersection.cpp.o.d"
  "/root/repo/tests/attack/test_traffic_analysis.cpp" "tests/CMakeFiles/test_attack.dir/attack/test_traffic_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_attack.dir/attack/test_traffic_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/p2panon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2panon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/p2panon_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/payment/CMakeFiles/p2panon_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/p2panon_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
