file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_async_path.cpp.o"
  "CMakeFiles/test_core.dir/core/test_async_path.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_cid_rotation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_cid_rotation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_contract.cpp.o"
  "CMakeFiles/test_core.dir/core/test_contract.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_crowds.cpp.o"
  "CMakeFiles/test_core.dir/core/test_crowds.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_edge_quality.cpp.o"
  "CMakeFiles/test_core.dir/core/test_edge_quality.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_game.cpp.o"
  "CMakeFiles/test_core.dir/core/test_game.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_history.cpp.o"
  "CMakeFiles/test_core.dir/core/test_history.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_incentive.cpp.o"
  "CMakeFiles/test_core.dir/core/test_incentive.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_path.cpp.o"
  "CMakeFiles/test_core.dir/core/test_path.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_quality_properties.cpp.o"
  "CMakeFiles/test_core.dir/core/test_quality_properties.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_reputation.cpp.o"
  "CMakeFiles/test_core.dir/core/test_reputation.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_spne_routing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_spne_routing.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_utility_routing.cpp.o"
  "CMakeFiles/test_core.dir/core/test_utility_routing.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
