
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_async_path.cpp" "tests/CMakeFiles/test_core.dir/core/test_async_path.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_async_path.cpp.o.d"
  "/root/repo/tests/core/test_cid_rotation.cpp" "tests/CMakeFiles/test_core.dir/core/test_cid_rotation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cid_rotation.cpp.o.d"
  "/root/repo/tests/core/test_contract.cpp" "tests/CMakeFiles/test_core.dir/core/test_contract.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_contract.cpp.o.d"
  "/root/repo/tests/core/test_crowds.cpp" "tests/CMakeFiles/test_core.dir/core/test_crowds.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_crowds.cpp.o.d"
  "/root/repo/tests/core/test_edge_quality.cpp" "tests/CMakeFiles/test_core.dir/core/test_edge_quality.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_edge_quality.cpp.o.d"
  "/root/repo/tests/core/test_game.cpp" "tests/CMakeFiles/test_core.dir/core/test_game.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_game.cpp.o.d"
  "/root/repo/tests/core/test_history.cpp" "tests/CMakeFiles/test_core.dir/core/test_history.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_history.cpp.o.d"
  "/root/repo/tests/core/test_incentive.cpp" "tests/CMakeFiles/test_core.dir/core/test_incentive.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_incentive.cpp.o.d"
  "/root/repo/tests/core/test_path.cpp" "tests/CMakeFiles/test_core.dir/core/test_path.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_path.cpp.o.d"
  "/root/repo/tests/core/test_quality_properties.cpp" "tests/CMakeFiles/test_core.dir/core/test_quality_properties.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_quality_properties.cpp.o.d"
  "/root/repo/tests/core/test_reputation.cpp" "tests/CMakeFiles/test_core.dir/core/test_reputation.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_reputation.cpp.o.d"
  "/root/repo/tests/core/test_spne_routing.cpp" "tests/CMakeFiles/test_core.dir/core/test_spne_routing.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_spne_routing.cpp.o.d"
  "/root/repo/tests/core/test_utility_routing.cpp" "tests/CMakeFiles/test_core.dir/core/test_utility_routing.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_utility_routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/p2panon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2panon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/p2panon_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/payment/CMakeFiles/p2panon_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/p2panon_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
