file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/test_churn.cpp.o"
  "CMakeFiles/test_net.dir/net/test_churn.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_link_model.cpp.o"
  "CMakeFiles/test_net.dir/net/test_link_model.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_overlay.cpp.o"
  "CMakeFiles/test_net.dir/net/test_overlay.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_overlay_properties.cpp.o"
  "CMakeFiles/test_net.dir/net/test_overlay_properties.cpp.o.d"
  "CMakeFiles/test_net.dir/net/test_probing.cpp.o"
  "CMakeFiles/test_net.dir/net/test_probing.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
