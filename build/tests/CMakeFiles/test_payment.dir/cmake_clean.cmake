file(REMOVE_RECURSE
  "CMakeFiles/test_payment.dir/payment/test_audit.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_audit.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_bank.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_bank.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_crypto.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_crypto.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_crypto_properties.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_crypto_properties.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_route_verification.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_route_verification.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_settlement.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_settlement.cpp.o.d"
  "CMakeFiles/test_payment.dir/payment/test_settlement_fuzz.cpp.o"
  "CMakeFiles/test_payment.dir/payment/test_settlement_fuzz.cpp.o.d"
  "test_payment"
  "test_payment.pdb"
  "test_payment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
