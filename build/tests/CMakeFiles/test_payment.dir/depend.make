# Empty dependencies file for test_payment.
# This may be replaced when dependencies are built.
