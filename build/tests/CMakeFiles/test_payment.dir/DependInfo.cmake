
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/payment/test_audit.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_audit.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_audit.cpp.o.d"
  "/root/repo/tests/payment/test_bank.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_bank.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_bank.cpp.o.d"
  "/root/repo/tests/payment/test_crypto.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_crypto.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_crypto.cpp.o.d"
  "/root/repo/tests/payment/test_crypto_properties.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_crypto_properties.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_crypto_properties.cpp.o.d"
  "/root/repo/tests/payment/test_route_verification.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_route_verification.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_route_verification.cpp.o.d"
  "/root/repo/tests/payment/test_settlement.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_settlement.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_settlement.cpp.o.d"
  "/root/repo/tests/payment/test_settlement_fuzz.cpp" "tests/CMakeFiles/test_payment.dir/payment/test_settlement_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_payment.dir/payment/test_settlement_fuzz.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/p2panon_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/p2panon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/p2panon_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/payment/CMakeFiles/p2panon_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/p2panon_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
