file(REMOVE_RECURSE
  "../bench/fig7_payoff_cdf_f05"
  "../bench/fig7_payoff_cdf_f05.pdb"
  "CMakeFiles/fig7_payoff_cdf_f05.dir/fig7_payoff_cdf_f05.cpp.o"
  "CMakeFiles/fig7_payoff_cdf_f05.dir/fig7_payoff_cdf_f05.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_payoff_cdf_f05.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
