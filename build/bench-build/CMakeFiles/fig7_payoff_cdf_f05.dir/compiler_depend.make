# Empty compiler generated dependencies file for fig7_payoff_cdf_f05.
# This may be replaced when dependencies are built.
