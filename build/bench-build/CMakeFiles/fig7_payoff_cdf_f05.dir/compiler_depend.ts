# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_payoff_cdf_f05.
