file(REMOVE_RECURSE
  "../bench/abl_weights"
  "../bench/abl_weights.pdb"
  "CMakeFiles/abl_weights.dir/abl_weights.cpp.o"
  "CMakeFiles/abl_weights.dir/abl_weights.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
