# Empty dependencies file for attack_availability.
# This may be replaced when dependencies are built.
