file(REMOVE_RECURSE
  "../bench/attack_availability"
  "../bench/attack_availability.pdb"
  "CMakeFiles/attack_availability.dir/attack_availability.cpp.o"
  "CMakeFiles/attack_availability.dir/attack_availability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
