# Empty dependencies file for abl_history_capacity.
# This may be replaced when dependencies are built.
