file(REMOVE_RECURSE
  "../bench/abl_history_capacity"
  "../bench/abl_history_capacity.pdb"
  "CMakeFiles/abl_history_capacity.dir/abl_history_capacity.cpp.o"
  "CMakeFiles/abl_history_capacity.dir/abl_history_capacity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_history_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
