file(REMOVE_RECURSE
  "../bench/attack_intersection"
  "../bench/attack_intersection.pdb"
  "CMakeFiles/attack_intersection.dir/attack_intersection.cpp.o"
  "CMakeFiles/attack_intersection.dir/attack_intersection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
