# Empty dependencies file for attack_intersection.
# This may be replaced when dependencies are built.
