file(REMOVE_RECURSE
  "../bench/fig4_payoff_model2"
  "../bench/fig4_payoff_model2.pdb"
  "CMakeFiles/fig4_payoff_model2.dir/fig4_payoff_model2.cpp.o"
  "CMakeFiles/fig4_payoff_model2.dir/fig4_payoff_model2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_payoff_model2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
