# Empty compiler generated dependencies file for fig4_payoff_model2.
# This may be replaced when dependencies are built.
