# Empty dependencies file for table2_routing_efficiency.
# This may be replaced when dependencies are built.
