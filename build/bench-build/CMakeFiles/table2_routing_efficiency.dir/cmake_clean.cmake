file(REMOVE_RECURSE
  "../bench/table2_routing_efficiency"
  "../bench/table2_routing_efficiency.pdb"
  "CMakeFiles/table2_routing_efficiency.dir/table2_routing_efficiency.cpp.o"
  "CMakeFiles/table2_routing_efficiency.dir/table2_routing_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_routing_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
