file(REMOVE_RECURSE
  "../bench/abl_cid_rotation"
  "../bench/abl_cid_rotation.pdb"
  "CMakeFiles/abl_cid_rotation.dir/abl_cid_rotation.cpp.o"
  "CMakeFiles/abl_cid_rotation.dir/abl_cid_rotation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cid_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
