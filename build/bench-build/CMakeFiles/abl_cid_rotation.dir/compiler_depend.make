# Empty compiler generated dependencies file for abl_cid_rotation.
# This may be replaced when dependencies are built.
