file(REMOVE_RECURSE
  "../bench/abl_anonymity_functional"
  "../bench/abl_anonymity_functional.pdb"
  "CMakeFiles/abl_anonymity_functional.dir/abl_anonymity_functional.cpp.o"
  "CMakeFiles/abl_anonymity_functional.dir/abl_anonymity_functional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_anonymity_functional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
