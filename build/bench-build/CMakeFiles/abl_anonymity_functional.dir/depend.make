# Empty dependencies file for abl_anonymity_functional.
# This may be replaced when dependencies are built.
