file(REMOVE_RECURSE
  "../bench/abl_prop1_reformation"
  "../bench/abl_prop1_reformation.pdb"
  "CMakeFiles/abl_prop1_reformation.dir/abl_prop1_reformation.cpp.o"
  "CMakeFiles/abl_prop1_reformation.dir/abl_prop1_reformation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_prop1_reformation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
