# Empty dependencies file for abl_prop1_reformation.
# This may be replaced when dependencies are built.
