# Empty dependencies file for fig6_payoff_cdf_f01.
# This may be replaced when dependencies are built.
