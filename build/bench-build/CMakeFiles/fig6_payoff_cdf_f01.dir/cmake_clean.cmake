file(REMOVE_RECURSE
  "../bench/fig6_payoff_cdf_f01"
  "../bench/fig6_payoff_cdf_f01.pdb"
  "CMakeFiles/fig6_payoff_cdf_f01.dir/fig6_payoff_cdf_f01.cpp.o"
  "CMakeFiles/fig6_payoff_cdf_f01.dir/fig6_payoff_cdf_f01.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_payoff_cdf_f01.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
