# Empty compiler generated dependencies file for abl_popularity.
# This may be replaced when dependencies are built.
