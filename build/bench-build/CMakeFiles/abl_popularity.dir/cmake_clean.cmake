file(REMOVE_RECURSE
  "../bench/abl_popularity"
  "../bench/abl_popularity.pdb"
  "CMakeFiles/abl_popularity.dir/abl_popularity.cpp.o"
  "CMakeFiles/abl_popularity.dir/abl_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
