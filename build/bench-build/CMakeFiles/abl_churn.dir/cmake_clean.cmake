file(REMOVE_RECURSE
  "../bench/abl_churn"
  "../bench/abl_churn.pdb"
  "CMakeFiles/abl_churn.dir/abl_churn.cpp.o"
  "CMakeFiles/abl_churn.dir/abl_churn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
