# Empty dependencies file for abl_max_connections.
# This may be replaced when dependencies are built.
