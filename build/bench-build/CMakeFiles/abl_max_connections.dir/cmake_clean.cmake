file(REMOVE_RECURSE
  "../bench/abl_max_connections"
  "../bench/abl_max_connections.pdb"
  "CMakeFiles/abl_max_connections.dir/abl_max_connections.cpp.o"
  "CMakeFiles/abl_max_connections.dir/abl_max_connections.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_max_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
