file(REMOVE_RECURSE
  "../bench/abl_reputation"
  "../bench/abl_reputation.pdb"
  "CMakeFiles/abl_reputation.dir/abl_reputation.cpp.o"
  "CMakeFiles/abl_reputation.dir/abl_reputation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reputation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
