# Empty dependencies file for abl_reputation.
# This may be replaced when dependencies are built.
