file(REMOVE_RECURSE
  "../bench/fig5_forwarder_set"
  "../bench/fig5_forwarder_set.pdb"
  "CMakeFiles/fig5_forwarder_set.dir/fig5_forwarder_set.cpp.o"
  "CMakeFiles/fig5_forwarder_set.dir/fig5_forwarder_set.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_forwarder_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
