# Empty compiler generated dependencies file for fig5_forwarder_set.
# This may be replaced when dependencies are built.
