# Empty compiler generated dependencies file for abl_async_formation.
# This may be replaced when dependencies are built.
