file(REMOVE_RECURSE
  "../bench/abl_async_formation"
  "../bench/abl_async_formation.pdb"
  "CMakeFiles/abl_async_formation.dir/abl_async_formation.cpp.o"
  "CMakeFiles/abl_async_formation.dir/abl_async_formation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_async_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
