file(REMOVE_RECURSE
  "../bench/abl_path_length"
  "../bench/abl_path_length.pdb"
  "CMakeFiles/abl_path_length.dir/abl_path_length.cpp.o"
  "CMakeFiles/abl_path_length.dir/abl_path_length.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_path_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
