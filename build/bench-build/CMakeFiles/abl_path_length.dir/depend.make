# Empty dependencies file for abl_path_length.
# This may be replaced when dependencies are built.
