file(REMOVE_RECURSE
  "../bench/attack_traffic_analysis"
  "../bench/attack_traffic_analysis.pdb"
  "CMakeFiles/attack_traffic_analysis.dir/attack_traffic_analysis.cpp.o"
  "CMakeFiles/attack_traffic_analysis.dir/attack_traffic_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_traffic_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
