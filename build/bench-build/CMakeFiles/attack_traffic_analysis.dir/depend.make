# Empty dependencies file for attack_traffic_analysis.
# This may be replaced when dependencies are built.
