file(REMOVE_RECURSE
  "../bench/fig3_payoff_model1"
  "../bench/fig3_payoff_model1.pdb"
  "CMakeFiles/fig3_payoff_model1.dir/fig3_payoff_model1.cpp.o"
  "CMakeFiles/fig3_payoff_model1.dir/fig3_payoff_model1.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_payoff_model1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
