# Empty compiler generated dependencies file for fig3_payoff_model1.
# This may be replaced when dependencies are built.
