# Empty dependencies file for abl_termination.
# This may be replaced when dependencies are built.
