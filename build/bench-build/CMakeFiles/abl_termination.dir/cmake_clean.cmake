file(REMOVE_RECURSE
  "../bench/abl_termination"
  "../bench/abl_termination.pdb"
  "CMakeFiles/abl_termination.dir/abl_termination.cpp.o"
  "CMakeFiles/abl_termination.dir/abl_termination.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
