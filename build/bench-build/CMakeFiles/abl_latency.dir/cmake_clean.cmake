file(REMOVE_RECURSE
  "../bench/abl_latency"
  "../bench/abl_latency.pdb"
  "CMakeFiles/abl_latency.dir/abl_latency.cpp.o"
  "CMakeFiles/abl_latency.dir/abl_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
