file(REMOVE_RECURSE
  "../bench/abl_crowds_static"
  "../bench/abl_crowds_static.pdb"
  "CMakeFiles/abl_crowds_static.dir/abl_crowds_static.cpp.o"
  "CMakeFiles/abl_crowds_static.dir/abl_crowds_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_crowds_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
