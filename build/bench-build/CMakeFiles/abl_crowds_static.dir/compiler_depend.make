# Empty compiler generated dependencies file for abl_crowds_static.
# This may be replaced when dependencies are built.
