file(REMOVE_RECURSE
  "../bench/attack_anonymity_over_time"
  "../bench/attack_anonymity_over_time.pdb"
  "CMakeFiles/attack_anonymity_over_time.dir/attack_anonymity_over_time.cpp.o"
  "CMakeFiles/attack_anonymity_over_time.dir/attack_anonymity_over_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_anonymity_over_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
