# Empty dependencies file for attack_anonymity_over_time.
# This may be replaced when dependencies are built.
