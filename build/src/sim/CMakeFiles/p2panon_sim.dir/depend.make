# Empty dependencies file for p2panon_sim.
# This may be replaced when dependencies are built.
