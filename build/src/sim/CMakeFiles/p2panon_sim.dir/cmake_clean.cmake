file(REMOVE_RECURSE
  "CMakeFiles/p2panon_sim.dir/event_queue.cpp.o"
  "CMakeFiles/p2panon_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/p2panon_sim.dir/rng.cpp.o"
  "CMakeFiles/p2panon_sim.dir/rng.cpp.o.d"
  "CMakeFiles/p2panon_sim.dir/simulator.cpp.o"
  "CMakeFiles/p2panon_sim.dir/simulator.cpp.o.d"
  "libp2panon_sim.a"
  "libp2panon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
