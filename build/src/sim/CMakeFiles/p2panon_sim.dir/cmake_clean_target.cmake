file(REMOVE_RECURSE
  "libp2panon_sim.a"
)
