
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/async_path.cpp" "src/core/CMakeFiles/p2panon_core.dir/async_path.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/async_path.cpp.o.d"
  "/root/repo/src/core/crowds.cpp" "src/core/CMakeFiles/p2panon_core.dir/crowds.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/crowds.cpp.o.d"
  "/root/repo/src/core/edge_quality.cpp" "src/core/CMakeFiles/p2panon_core.dir/edge_quality.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/edge_quality.cpp.o.d"
  "/root/repo/src/core/game.cpp" "src/core/CMakeFiles/p2panon_core.dir/game.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/game.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/p2panon_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/history.cpp.o.d"
  "/root/repo/src/core/incentive.cpp" "src/core/CMakeFiles/p2panon_core.dir/incentive.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/incentive.cpp.o.d"
  "/root/repo/src/core/path.cpp" "src/core/CMakeFiles/p2panon_core.dir/path.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/path.cpp.o.d"
  "/root/repo/src/core/reputation.cpp" "src/core/CMakeFiles/p2panon_core.dir/reputation.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/reputation.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/p2panon_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/spne_routing.cpp" "src/core/CMakeFiles/p2panon_core.dir/spne_routing.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/spne_routing.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/core/CMakeFiles/p2panon_core.dir/utility.cpp.o" "gcc" "src/core/CMakeFiles/p2panon_core.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/payment/CMakeFiles/p2panon_payment.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/p2panon_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
