file(REMOVE_RECURSE
  "libp2panon_core.a"
)
