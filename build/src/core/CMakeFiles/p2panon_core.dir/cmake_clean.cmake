file(REMOVE_RECURSE
  "CMakeFiles/p2panon_core.dir/async_path.cpp.o"
  "CMakeFiles/p2panon_core.dir/async_path.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/crowds.cpp.o"
  "CMakeFiles/p2panon_core.dir/crowds.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/edge_quality.cpp.o"
  "CMakeFiles/p2panon_core.dir/edge_quality.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/game.cpp.o"
  "CMakeFiles/p2panon_core.dir/game.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/history.cpp.o"
  "CMakeFiles/p2panon_core.dir/history.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/incentive.cpp.o"
  "CMakeFiles/p2panon_core.dir/incentive.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/path.cpp.o"
  "CMakeFiles/p2panon_core.dir/path.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/reputation.cpp.o"
  "CMakeFiles/p2panon_core.dir/reputation.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/routing.cpp.o"
  "CMakeFiles/p2panon_core.dir/routing.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/spne_routing.cpp.o"
  "CMakeFiles/p2panon_core.dir/spne_routing.cpp.o.d"
  "CMakeFiles/p2panon_core.dir/utility.cpp.o"
  "CMakeFiles/p2panon_core.dir/utility.cpp.o.d"
  "libp2panon_core.a"
  "libp2panon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
