# Empty compiler generated dependencies file for p2panon_core.
# This may be replaced when dependencies are built.
