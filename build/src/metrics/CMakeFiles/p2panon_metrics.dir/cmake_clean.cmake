file(REMOVE_RECURSE
  "CMakeFiles/p2panon_metrics.dir/anonymity.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/anonymity.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/stats.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/stats.cpp.o.d"
  "CMakeFiles/p2panon_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/p2panon_metrics.dir/timeseries.cpp.o.d"
  "libp2panon_metrics.a"
  "libp2panon_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
