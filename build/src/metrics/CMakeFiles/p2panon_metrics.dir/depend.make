# Empty dependencies file for p2panon_metrics.
# This may be replaced when dependencies are built.
