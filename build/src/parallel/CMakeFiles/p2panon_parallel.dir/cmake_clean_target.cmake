file(REMOVE_RECURSE
  "libp2panon_parallel.a"
)
