file(REMOVE_RECURSE
  "CMakeFiles/p2panon_parallel.dir/thread_pool.cpp.o"
  "CMakeFiles/p2panon_parallel.dir/thread_pool.cpp.o.d"
  "libp2panon_parallel.a"
  "libp2panon_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
