# Empty compiler generated dependencies file for p2panon_parallel.
# This may be replaced when dependencies are built.
