file(REMOVE_RECURSE
  "libp2panon_payment.a"
)
