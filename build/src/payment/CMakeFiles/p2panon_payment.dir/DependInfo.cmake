
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/payment/audit.cpp" "src/payment/CMakeFiles/p2panon_payment.dir/audit.cpp.o" "gcc" "src/payment/CMakeFiles/p2panon_payment.dir/audit.cpp.o.d"
  "/root/repo/src/payment/bank.cpp" "src/payment/CMakeFiles/p2panon_payment.dir/bank.cpp.o" "gcc" "src/payment/CMakeFiles/p2panon_payment.dir/bank.cpp.o.d"
  "/root/repo/src/payment/crypto.cpp" "src/payment/CMakeFiles/p2panon_payment.dir/crypto.cpp.o" "gcc" "src/payment/CMakeFiles/p2panon_payment.dir/crypto.cpp.o.d"
  "/root/repo/src/payment/route_verification.cpp" "src/payment/CMakeFiles/p2panon_payment.dir/route_verification.cpp.o" "gcc" "src/payment/CMakeFiles/p2panon_payment.dir/route_verification.cpp.o.d"
  "/root/repo/src/payment/settlement.cpp" "src/payment/CMakeFiles/p2panon_payment.dir/settlement.cpp.o" "gcc" "src/payment/CMakeFiles/p2panon_payment.dir/settlement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/p2panon_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
