file(REMOVE_RECURSE
  "CMakeFiles/p2panon_payment.dir/audit.cpp.o"
  "CMakeFiles/p2panon_payment.dir/audit.cpp.o.d"
  "CMakeFiles/p2panon_payment.dir/bank.cpp.o"
  "CMakeFiles/p2panon_payment.dir/bank.cpp.o.d"
  "CMakeFiles/p2panon_payment.dir/crypto.cpp.o"
  "CMakeFiles/p2panon_payment.dir/crypto.cpp.o.d"
  "CMakeFiles/p2panon_payment.dir/route_verification.cpp.o"
  "CMakeFiles/p2panon_payment.dir/route_verification.cpp.o.d"
  "CMakeFiles/p2panon_payment.dir/settlement.cpp.o"
  "CMakeFiles/p2panon_payment.dir/settlement.cpp.o.d"
  "libp2panon_payment.a"
  "libp2panon_payment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_payment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
