# Empty dependencies file for p2panon_payment.
# This may be replaced when dependencies are built.
