file(REMOVE_RECURSE
  "libp2panon_attack.a"
)
