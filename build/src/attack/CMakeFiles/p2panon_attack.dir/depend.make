# Empty dependencies file for p2panon_attack.
# This may be replaced when dependencies are built.
