file(REMOVE_RECURSE
  "CMakeFiles/p2panon_attack.dir/intersection.cpp.o"
  "CMakeFiles/p2panon_attack.dir/intersection.cpp.o.d"
  "CMakeFiles/p2panon_attack.dir/traffic_analysis.cpp.o"
  "CMakeFiles/p2panon_attack.dir/traffic_analysis.cpp.o.d"
  "libp2panon_attack.a"
  "libp2panon_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
