file(REMOVE_RECURSE
  "CMakeFiles/p2panon_net.dir/churn.cpp.o"
  "CMakeFiles/p2panon_net.dir/churn.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/link_model.cpp.o"
  "CMakeFiles/p2panon_net.dir/link_model.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/overlay.cpp.o"
  "CMakeFiles/p2panon_net.dir/overlay.cpp.o.d"
  "CMakeFiles/p2panon_net.dir/probing.cpp.o"
  "CMakeFiles/p2panon_net.dir/probing.cpp.o.d"
  "libp2panon_net.a"
  "libp2panon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
