file(REMOVE_RECURSE
  "libp2panon_net.a"
)
