
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/churn.cpp" "src/net/CMakeFiles/p2panon_net.dir/churn.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/churn.cpp.o.d"
  "/root/repo/src/net/link_model.cpp" "src/net/CMakeFiles/p2panon_net.dir/link_model.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/link_model.cpp.o.d"
  "/root/repo/src/net/overlay.cpp" "src/net/CMakeFiles/p2panon_net.dir/overlay.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/overlay.cpp.o.d"
  "/root/repo/src/net/probing.cpp" "src/net/CMakeFiles/p2panon_net.dir/probing.cpp.o" "gcc" "src/net/CMakeFiles/p2panon_net.dir/probing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/p2panon_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
