# Empty compiler generated dependencies file for p2panon_harness.
# This may be replaced when dependencies are built.
