file(REMOVE_RECURSE
  "CMakeFiles/p2panon_harness.dir/replicate.cpp.o"
  "CMakeFiles/p2panon_harness.dir/replicate.cpp.o.d"
  "CMakeFiles/p2panon_harness.dir/scenario.cpp.o"
  "CMakeFiles/p2panon_harness.dir/scenario.cpp.o.d"
  "CMakeFiles/p2panon_harness.dir/table.cpp.o"
  "CMakeFiles/p2panon_harness.dir/table.cpp.o.d"
  "libp2panon_harness.a"
  "libp2panon_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2panon_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
