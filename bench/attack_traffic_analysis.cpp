// Attack bench: end-to-end traffic analysis (paper §5 threat (2)) and the
// connection-id linkage threat (§5 threat (3)).
//
// End-to-end compromise requires adversaries at both the first and last hop
// of a path. Under uniform selection the rate is ~(f)^2; utility routing
// changes it by skewing selection toward high-quality (mostly stable,
// mostly honest-behaving) forwarders. The linkage statistic counts how many
// of a pair's connections a malicious coalition can tie together via the
// cid in its history.
#include "common.hpp"

#include "attack/traffic_analysis.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Outcome {
  double e2e_rate = 0.0;
  double baseline = 0.0;
  double largest_profile = 0.0;
};

Outcome run_attack(core::StrategyKind kind, double f, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = f;
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  const auto strategy = core::make_strategy(kind);
  core::StrategyAssignment assign(overlay, *strategy);

  std::vector<bool> compromised(overlay.size(), false);
  for (net::NodeId id : overlay.malicious_nodes()) compromised[id] = true;
  attack::TrafficAnalysis analysis(compromised);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  for (net::PairId pid = 0; pid < 30; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::ConnectionSetSession session(pid, initiator, responder, core::Contract{});
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 0; k < 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(1.0));
      overlay.force_online(initiator);
      overlay.force_online(responder);
      const core::BuiltPath& p =
          session.run_connection(builder, history, assign, ledger, overlay, stream);
      analysis.observe_path(pid, p.nodes);
    }
  }
  return Outcome{analysis.end_to_end_rate(), analysis.uniform_baseline(),
                 static_cast<double>(analysis.largest_linked_profile())};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.02);
  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Attack: traffic analysis",
                        "End-to-end correlation rate (both path ends compromised) and the "
                        "largest cid-linked per-pair profile; 30 pairs x 20 connections (" +
                            std::to_string(replicates) + " replicate cap)");

  using Kind = harness::MetricSpec::Kind;
  harness::AdaptiveRunner runner(adaptive, {
                                               {"e2e_rate", Kind::kMean, 0.0, false, 0.0},
                                               {"largest_profile", Kind::kMean, 1.0, false, 0.0},
                                               {"baseline", Kind::kMean, 0.0, false, 0.0},
                                           });

  harness::TextTable table({"f", "strategy", "e2e rate", "uniform (f^2)",
                            "largest linked profile (of 20)", "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (double f : {0.1, 0.2, 0.3}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      std::uint64_t fp = harness::fnv1a_bytes(harness::fnv1a_init(), "attack_traffic_analysis");
      fp = harness::fnv1a_mix(fp, base_seed());
      fp = harness::fnv1a_mix(fp, static_cast<std::uint64_t>(kind));
      fp = harness::fnv1a_double(fp, f);
      std::ostringstream key;
      key << "f" << harness::fmt(f, 1) << "-" << core::strategy_name(kind);
      const harness::AdaptiveCellResult cell = runner.run_cell(
          key.str(), fp, replicates, [&](std::size_t r) {
            const Outcome out = run_attack(kind, f, base_seed() + r);
            return std::vector<double>{out.e2e_rate, out.largest_profile, out.baseline};
          });
      table.add_row({harness::fmt(f, 1), std::string(core::strategy_name(kind)),
                     harness::fmt(cell.metrics[0].mean(), 3),
                     harness::fmt(cell.metrics[2].mean(), 3),
                     harness::fmt(cell.metrics[1].mean(), 1),
                     std::to_string(cell.outcome.replicates_used) + "/" +
                         std::to_string(cell.outcome.replicates_planned)});
      cells_json << (first_cell ? "" : ",") << "\n    {\"cell\": \"" << key.str()
                 << "\", \"e2e_rate\": " << cell.metrics[0].mean() << ", "
                 << adaptive_json_fields(cell.outcome) << "}";
      first_cell = false;
    }
  }
  emit(table, "attack_traffic_analysis");
  std::ostringstream json;
  json << "{\n  \"adaptive\": " << (adaptive.adaptive ? "true" : "false")
       << ",\n  \"eps\": " << adaptive.eps << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_attack_traffic_analysis.json", json.str());
  std::cout << "\nReading: both strategies exceed the f^2 baseline because "
               "single-forwarder paths (probability 1-p_forward) make one node both "
               "ends at once (rate ~ (1-p)f + p*f^2). Utility routing is *worse* here: "
               "selection concentrates on a few favourites, and a malicious favourite "
               "keeps entire connection sets end-to-end correlated and cid-linkable "
               "(largest profile -> 20/20). This is the honest cost of stability that "
               "the paper's §5 concedes and defers to implementation-level defenses "
               "(cover traffic, cid rotation) in its technical report; the incentive "
               "mechanism's win is against *intersection* attacks, not end-to-end "
               "correlation by entrenched insiders.\n";
  return 0;
}
