// Figure 6: CDF of payoffs for good nodes when f = 0.1, by routing strategy.
#include "payoff_cdf.hpp"

int main() { return p2panon::bench::run_payoff_cdf("Figure 6", "fig6_payoff_cdf_f01", 0.1); }
