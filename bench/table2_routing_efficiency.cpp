// Table 2: routing efficiency (avg payoff / avg forwarder-set size) for
// Utility Model I, rows f in {0.1, 0.5, 0.9} plus the column mean, columns
// tau in {0.5, 1, 2, 4}.
//
// Paper shape: efficiency falls sharply with f; a high tau tends to raise
// routing efficiency (mean row rises at tau = 4).
#include "common.hpp"

#include <vector>

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Table 2",
                        "Routing efficiency for Utility Model I "
                        "(avg good-node payoff / avg ||pi||), " +
                            std::to_string(replicate_count()) + " replicates per cell");

  const std::vector<double> taus{0.5, 1.0, 2.0, 4.0};
  const std::vector<double> fs{0.1, 0.5, 0.9};

  harness::TextTable table({"", "tau=0.5", "tau=1", "tau=2", "tau=4"});
  std::vector<double> column_sums(taus.size(), 0.0);
  for (double f : fs) {
    std::vector<std::string> row{"f=" + harness::fmt(f, 1)};
    for (std::size_t t = 0; t < taus.size(); ++t) {
      const auto r = run(paper_config(f, core::StrategyKind::kUtilityModelI, taus[t]));
      const double eff = r.routing_efficiency.mean();
      column_sums[t] += eff;
      row.push_back(harness::fmt(eff));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> mean_row{"Mean"};
  for (double sum : column_sums) {
    mean_row.push_back(harness::fmt(sum / static_cast<double>(fs.size())));
  }
  table.add_row(std::move(mean_row));
  emit(table, "table2_routing_efficiency");
  std::cout << "\nExpected shape (paper): efficiency drops steeply with f; the mean "
               "row is highest at tau = 4 (high tau aligns routing with the system "
               "objective).\n";
  return 0;
}
