// BENCH_sim_engine: how the discrete-event engine scales with overlay size.
//
// Two measurement families, both written to BENCH_sim_engine.json (in
// $P2PANON_CSV_DIR when set, else the cwd):
//
//  1. Scale sweep — full scenarios at N in {40, 200, 1000, 5000} with degree
//     and pair count scaled alongside, in both the synchronous paper shape
//     and fault mode (ack timers, keepalives, crashes — the cancel-heavy
//     workload). Each point reports wall-clock time plus the engine counters
//     surfaced through ScenarioResult: events scheduled / cancelled / fired
//     and the number of callbacks that outgrew EventCallback's inline buffer
//     (expected 0 — the allocation-free claim, checked here at scale).
//
//  2. Cancel-heavy before/after — the fault-mode timer pattern (arm an ack
//     timer per leg, cancel it when the ack arrives, let the stragglers
//     fire) replayed against the current slot-map queue and against the
//     pre-rebuild implementation preserved in legacy_event_queue.hpp, with a
//     pending set proportional to N. Legacy cancel() is O(pending), so the
//     speedup grows with N; the acceptance bar is >= 5x at N = 1000.
//
//  3. Sharded scale sweep — the windowed sharded workload
//     (harness/sharded_scenario) at N up to 10^5 by default (10^6 via the
//     env knob), swept over shard count K x window size W, written to
//     BENCH_scale_overlay.json: per-point events/sec, peak RSS, cancel
//     ratio, cross-shard traffic and barrier counts, and the per-shard
//     model counters. Every point re-checks the model invariants (claim
//     conservation, zero heap fallbacks) so the sweep doubles as a gate.
//
// Knobs: --smoke runs only the N = 1000 point of parts 1-2 with one
// replicate and a shortened timing pass (the `scale-smoke` ctest entry);
// --sharded-smoke runs only the N = 10^5, K = 4 sharded point twice and
// asserts completion, determinism (digest-for-digest), claim conservation
// and zero heap fallbacks — no timing gates, so it cannot flake under a
// loaded CI box (the `scale-smoke-sharded` ctest entry); --adaptive raises
// the part-1 replicate cap 4x and stops each point once its connection-
// latency interval is within ±eps (relative); --checkpoint makes the
// expensive part-3 grid crash-recoverable point by point (finished points
// are replayed from the checkpoint instead of re-run). Environment:
//   P2PANON_SCALE_MAX_N        largest part-1/2 sweep point (default 5000)
//   P2PANON_SCALE_REPLICATES   replicates per part-1 point (default 2)
//   P2PANON_SHARDED_MAX_N      largest sharded sweep point (default 100000)
//   P2PANON_SHARDED_DURATION_MIN  simulated minutes per point (default 20)
// plus the usual P2PANON_SEED / P2PANON_THREADS / P2PANON_CSV_DIR and the
// adaptive knobs P2PANON_ADAPTIVE / P2PANON_EPS / P2PANON_CHECKPOINT.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "harness/checkpoint.hpp"
#include "harness/sharded_scenario.hpp"
#include "legacy_event_queue.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace p2panon;
using bench::env_size;

template <typename T>
void do_not_optimize(T& value) {
  asm volatile("" : "+m"(value) : : "memory");
}

// --- Part 1: scenario scale sweep -----------------------------------------

struct SweepPoint {
  std::size_t n;
  std::size_t degree;
  std::size_t pairs;
};

// Paper shape is N = 40, d = 5, 100 pairs x 20 connections. The sweep scales
// pairs with N and trades connection count per pair for overlay size so the
// largest point stays minutes, not hours.
constexpr SweepPoint kSweep[] = {
    {40, 5, 20},
    {200, 6, 100},
    {1000, 8, 500},
    {5000, 10, 2500},
};

harness::ScenarioConfig scaled_config(const SweepPoint& p, bool fault_mode) {
  harness::ScenarioConfig cfg = harness::paper_default_config(bench::base_seed());
  cfg.overlay.node_count = static_cast<std::uint32_t>(p.n);
  cfg.overlay.degree = static_cast<std::uint32_t>(p.degree);
  cfg.pair_count = static_cast<std::uint32_t>(p.pairs);
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(45.0);
  if (fault_mode) {
    cfg.fault.link_loss = 0.05;
    cfg.fault.delay_jitter = 0.3;
    cfg.fault.crash_rate_per_hour = 2.0;
    cfg.fault.crash_recovery_mean = sim::minutes(10.0);
    cfg.fault.probe_false_negative = 0.1;
    cfg.async_setup.attempt_deadline = sim::minutes(3.0);
    cfg.data_phase.duration = 90.0;
    cfg.data_phase.keepalive_interval = 10.0;
  }
  return cfg;
}

struct SweepRow {
  std::size_t n = 0;
  const char* mode = "";
  std::size_t replicates = 0;
  double wall_ms = 0.0;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t completed = 0;
};

SweepRow run_sweep_point(const SweepPoint& p, bool fault_mode, std::size_t replicates,
                         const harness::AdaptiveConfig& adaptive) {
  const harness::ScenarioConfig cfg = scaled_config(p, fault_mode);
  // Adaptive mode: connection latency (relative ±eps) decides when a point
  // has enough replicates; the cap is 4x the configured count. Checkpointing
  // stays off for part 1 (points are cheap relative to part 3).
  const std::vector<harness::TrackedScenarioMetric> tracked = {
      {"connection_latency", &harness::ReplicatedResult::connection_latency, 0.0, true},
  };
  harness::AdaptiveConfig point_cfg = adaptive;
  point_cfg.checkpoint.clear();
  const std::size_t planned = adaptive.adaptive ? replicates * 4 : replicates;
  const auto start = std::chrono::steady_clock::now();
  const harness::AdaptiveReplicatedResult res = harness::run_replicated_adaptive(
      cfg, planned, point_cfg, tracked, &bench::shared_pool());
  const harness::ReplicatedResult& r = res.result;
  const auto elapsed = std::chrono::steady_clock::now() - start;
  SweepRow row;
  row.n = p.n;
  row.mode = fault_mode ? "fault" : "sync";
  row.replicates = res.outcome.replicates_used;
  row.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  row.scheduled = r.total_engine_events_scheduled;
  row.cancelled = r.total_engine_events_cancelled;
  row.fired = r.total_engine_events_fired;
  row.heap_allocs = r.total_engine_callback_heap_allocs;
  row.completed = r.total_connections_completed;
  return row;
}

// --- Part 2: cancel-heavy before/after vs the legacy queue ----------------

/// Fault-mode timer pattern over a generic queue: a circular window of
/// `pending` armed ack timers; each step either cancels the oldest (the ack
/// arrived — 7 of 8 steps) or pops the earliest due event (a straggler timer
/// fires), then arms a replacement. Live size stays ~`pending`, which is
/// exactly the variable legacy cancel() is linear in.
template <typename Queue>
class CancelHeavyWorkload {
 public:
  explicit CancelHeavyWorkload(std::size_t pending) : window_(pending) {
    for (std::size_t i = 0; i < pending; ++i) {
      window_[i] = q_.schedule(5.0 + 0.05 * static_cast<double>(i % 97),
                               [this] { ++fired_; });
    }
  }

  void step() {
    const std::size_t idx = step_count_ % window_.size();
    if (step_count_ % 8 != 0) {
      q_.cancel(window_[idx]);  // false when the timer already fired
    } else {
      auto ev = q_.pop();
      now_ = ev.time;
      ev.fn();
    }
    window_[idx] = q_.schedule(now_ + 5.0 + 0.25 * static_cast<double>(step_count_ % 17),
                               [this] { ++fired_; });
    ++step_count_;
  }

  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  Queue q_;
  std::vector<sim::EventId> window_;
  sim::Time now_ = 0.0;
  std::uint64_t fired_ = 0;
  std::size_t step_count_ = 0;
};

/// ns/op as the minimum average over independent repetitions (the estimator
/// least contaminated by preemption and frequency transitions, which only
/// ever add time).
template <typename Fn>
double timed_rep_ns(Fn&& fn, std::chrono::milliseconds budget) {
  const auto start = std::chrono::steady_clock::now();
  std::int64_t iters = 0;
  for (;;) {
    for (int i = 0; i < 64; ++i) fn();
    iters += 64;
    if (std::chrono::steady_clock::now() - start > budget) break;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         static_cast<double>(iters);
}

/// Paired measurement with repetitions interleaved (before, after, before,
/// after, ...) so a noisy-neighbour phase biases both sides of the ratio
/// alike rather than whichever side happened to run during it.
template <typename FnBefore, typename FnAfter>
std::pair<double, double> measure_pair_ns(FnBefore&& before, FnAfter&& after,
                                          int reps, std::chrono::milliseconds budget) {
  for (int i = 0; i < 256; ++i) before();  // warmup: caches, page faults,
  for (int i = 0; i < 256; ++i) after();   // steady-state pending sets
  double best_before = 1.0e300;
  double best_after = 1.0e300;
  for (int rep = 0; rep < reps; ++rep) {
    best_before = std::min(best_before, timed_rep_ns(before, budget));
    best_after = std::min(best_after, timed_rep_ns(after, budget));
  }
  return {best_before, best_after};
}

struct BeforeAfter {
  std::size_t n = 0;
  std::size_t pending = 0;
  double before_ns = 0.0;
  double after_ns = 0.0;
  [[nodiscard]] double speedup() const { return before_ns / after_ns; }
};

BeforeAfter run_cancel_heavy(std::size_t n, bool smoke) {
  const std::size_t pending = 2 * n;  // ~2 armed timers per node in fault mode
  CancelHeavyWorkload<p2panon::bench::LegacyEventQueue> legacy(pending);
  CancelHeavyWorkload<sim::EventQueue> current(pending);
  const int reps = smoke ? 3 : 7;
  const auto budget = std::chrono::milliseconds(smoke ? 20 : 60);
  std::uint64_t sink = 0;
  const auto [before_ns, after_ns] = measure_pair_ns(
      [&] {
        legacy.step();
        sink += legacy.fired();
        do_not_optimize(sink);
      },
      [&] {
        current.step();
        sink += current.fired();
        do_not_optimize(sink);
      },
      reps, budget);
  return BeforeAfter{n, pending, before_ns, after_ns};
}

// --- Part 3: sharded scale sweep -------------------------------------------

/// Peak resident set size of this process in MiB (ru_maxrss is KiB on Linux).
double peak_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

harness::ShardedScenarioConfig sharded_config(std::size_t n, std::uint32_t shards,
                                              double window) {
  harness::ShardedScenarioConfig cfg;
  cfg.seed = bench::base_seed();
  cfg.node_count = n;
  cfg.degree = 8;
  cfg.shard_count = shards;
  cfg.window = window;
  cfg.duration = sim::minutes(
      static_cast<double>(env_size("P2PANON_SHARDED_DURATION_MIN", 20)));
  return cfg;
}

struct ShardedRow {
  std::size_t n = 0;
  std::uint32_t shards = 0;
  double window = 0.0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double cancel_ratio = 0.0;   ///< cancelled / scheduled — the workload shape
  double peak_rss_mib = 0.0;   ///< process high-water mark after the run
  std::uint64_t fired = 0;
  std::uint64_t heap_allocs = 0;
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t window_barriers = 0;
  std::uint64_t digest = 0;
  bool claims_conserved = false;
  std::vector<harness::ShardCounters> per_shard;
};

ShardedRow run_sharded_point(const harness::ShardedScenarioConfig& cfg) {
  const auto start = std::chrono::steady_clock::now();
  const harness::ShardedScenarioResult r =
      harness::run_sharded_scenario(cfg, &bench::shared_pool());
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ShardedRow row;
  row.n = cfg.node_count;
  row.shards = cfg.shard_count;
  row.window = cfg.window;
  row.wall_ms = std::chrono::duration<double, std::milli>(elapsed).count();
  row.fired = r.engine.fired;
  row.events_per_sec =
      row.wall_ms > 0.0 ? static_cast<double>(r.engine.fired) / (row.wall_ms / 1000.0) : 0.0;
  row.cancel_ratio = r.engine.scheduled > 0
                         ? static_cast<double>(r.engine.cancelled) /
                               static_cast<double>(r.engine.scheduled)
                         : 0.0;
  row.peak_rss_mib = peak_rss_mib();
  row.heap_allocs = r.engine.callback_heap_allocs;
  row.cross_shard_messages = r.cross_shard_messages;
  row.window_barriers = r.window_barriers;
  row.digest = r.digest;
  row.claims_conserved = r.claims_settled == r.hops_forwarded;
  row.per_shard = r.per_shard;
  return row;
}

void print_sharded_row(const ShardedRow& row) {
  std::cout << "sharded n=" << row.n << " K=" << row.shards << " W=" << row.window
            << ": " << row.wall_ms << " ms, " << row.events_per_sec
            << " events/s, cancel_ratio=" << row.cancel_ratio
            << " cross_shard=" << row.cross_shard_messages
            << " barriers=" << row.window_barriers << " rss=" << row.peak_rss_mib
            << " MiB\n";
}

}  // namespace

// --- Output ----------------------------------------------------------------

namespace {

void write_json(const std::vector<SweepRow>& sweep,
                const std::vector<BeforeAfter>& pairs) {
  std::ostringstream out;
  out << "{\n  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    out << "    {\"n\": " << r.n << ", \"mode\": \"" << r.mode
        << "\", \"replicates\": " << r.replicates << ", \"wall_ms\": " << r.wall_ms
        << ", \"events_scheduled\": " << r.scheduled
        << ", \"events_cancelled\": " << r.cancelled
        << ", \"events_fired\": " << r.fired
        << ", \"callback_heap_allocs\": " << r.heap_allocs
        << ", \"connections_completed\": " << r.completed << "}"
        << (i + 1 < sweep.size() ? ",\n" : "\n");
  }
  out << "  ],\n  \"cancel_heavy\": [\n";
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const BeforeAfter& p = pairs[i];
    out << "    {\"n\": " << p.n << ", \"pending\": " << p.pending
        << ", \"before_ns\": " << p.before_ns << ", \"after_ns\": " << p.after_ns
        << ", \"speedup\": " << p.speedup() << "}"
        << (i + 1 < pairs.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  bench::write_bench_json("BENCH_sim_engine.json", out.str());
}

void write_sharded_json(const std::vector<ShardedRow>& rows) {
  std::ostringstream out;
  out << "{\n  \"threads\": " << std::thread::hardware_concurrency()
      << ",\n  \"sharded_sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ShardedRow& r = rows[i];
    out << "    {\"n\": " << r.n << ", \"shards\": " << r.shards
        << ", \"window_s\": " << r.window << ", \"wall_ms\": " << r.wall_ms
        << ", \"events_fired\": " << r.fired
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"cancel_ratio\": " << r.cancel_ratio
        << ", \"peak_rss_mib\": " << r.peak_rss_mib
        << ", \"callback_heap_allocs\": " << r.heap_allocs
        << ", \"cross_shard_messages\": " << r.cross_shard_messages
        << ", \"window_barriers\": " << r.window_barriers
        << ", \"digest\": \"" << std::hex << r.digest << std::dec << "\""
        << ", \"claims_conserved\": " << (r.claims_conserved ? "true" : "false")
        << ", \"per_shard\": [";
    for (std::size_t s = 0; s < r.per_shard.size(); ++s) {
      const harness::ShardCounters& c = r.per_shard[s];
      out << (s == 0 ? "" : ", ") << "{\"launched\": " << c.connections_launched
          << ", \"acked\": " << c.connections_acked
          << ", \"timeouts\": " << c.ack_timeouts
          << ", \"hops\": " << c.hops_forwarded
          << ", \"churn\": " << c.churn_events
          << ", \"claims_settled\": " << c.claims_settled << "}";
    }
    out << "]}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  bench::write_bench_json("BENCH_scale_overlay.json", out.str());
}

// --- Part-3 checkpointing: one Checkpoint record set per sharded point ----
// Wall-clock fields are checkpointed too (bit-exact, via encode_double):
// a resumed sweep reports the timing the point actually ran with, not a
// re-measure of a skipped run.

std::string sharded_point_prefix(std::size_t n, std::uint32_t shards, double window) {
  std::ostringstream key;
  key << "sh." << n << "-" << shards << "-" << window << ".";
  return key.str();
}

std::uint64_t sharded_point_fp(const harness::ShardedScenarioConfig& cfg) {
  std::uint64_t h = harness::fnv1a_bytes(harness::fnv1a_init(), "scale_overlay.sharded");
  h = harness::fnv1a_mix(h, cfg.seed);
  h = harness::fnv1a_mix(h, cfg.node_count);
  h = harness::fnv1a_mix(h, cfg.degree);
  h = harness::fnv1a_mix(h, cfg.shard_count);
  h = harness::fnv1a_double(h, cfg.window);
  h = harness::fnv1a_double(h, cfg.duration);
  return h;
}

void store_sharded_row(harness::Checkpoint& ckpt, const std::string& prefix,
                       std::uint64_t fp, const ShardedRow& row) {
  using harness::encode_double;
  using harness::encode_u64;
  ckpt.set(prefix + "fp", encode_u64(fp));
  ckpt.set(prefix + "wall_ms", encode_double(row.wall_ms));
  ckpt.set(prefix + "events_per_sec", encode_double(row.events_per_sec));
  ckpt.set(prefix + "cancel_ratio", encode_double(row.cancel_ratio));
  ckpt.set(prefix + "peak_rss_mib", encode_double(row.peak_rss_mib));
  ckpt.set(prefix + "fired", encode_u64(row.fired));
  ckpt.set(prefix + "heap_allocs", encode_u64(row.heap_allocs));
  ckpt.set(prefix + "cross_shard", encode_u64(row.cross_shard_messages));
  ckpt.set(prefix + "barriers", encode_u64(row.window_barriers));
  ckpt.set(prefix + "digest", encode_u64(row.digest));
  ckpt.set(prefix + "claims_conserved", row.claims_conserved ? "1" : "0");
  ckpt.set(prefix + "shards.count", encode_u64(row.per_shard.size()));
  for (std::size_t s = 0; s < row.per_shard.size(); ++s) {
    const harness::ShardCounters& c = row.per_shard[s];
    std::ostringstream val;
    val << encode_u64(c.connections_launched) << " " << encode_u64(c.connections_acked) << " "
        << encode_u64(c.ack_timeouts) << " " << encode_u64(c.hops_forwarded) << " "
        << encode_u64(c.churn_events) << " " << encode_u64(c.claims_settled);
    ckpt.set(prefix + "shard." + std::to_string(s), val.str());
  }
}

bool load_sharded_row(const harness::Checkpoint& ckpt, const std::string& prefix,
                      std::uint64_t fp, const harness::ShardedScenarioConfig& cfg,
                      ShardedRow& row) {
  using harness::decode_double;
  using harness::decode_u64;
  const auto get = [&](const char* key) { return ckpt.find(prefix + key); };
  const std::string* stored_fp = get("fp");
  if (stored_fp == nullptr || decode_u64(*stored_fp) != fp) return false;
  const auto get_d = [&](const char* key, double& out) {
    const std::string* v = get(key);
    const auto x = v != nullptr ? decode_double(*v) : std::nullopt;
    if (!x) return false;
    out = *x;
    return true;
  };
  const auto get_u = [&](const char* key, std::uint64_t& out) {
    const std::string* v = get(key);
    const auto x = v != nullptr ? decode_u64(*v) : std::nullopt;
    if (!x) return false;
    out = *x;
    return true;
  };
  row.n = cfg.node_count;
  row.shards = cfg.shard_count;
  row.window = cfg.window;
  if (!get_d("wall_ms", row.wall_ms) || !get_d("events_per_sec", row.events_per_sec) ||
      !get_d("cancel_ratio", row.cancel_ratio) || !get_d("peak_rss_mib", row.peak_rss_mib) ||
      !get_u("fired", row.fired) || !get_u("heap_allocs", row.heap_allocs) ||
      !get_u("cross_shard", row.cross_shard_messages) ||
      !get_u("barriers", row.window_barriers) || !get_u("digest", row.digest)) {
    return false;
  }
  const std::string* conserved = get("claims_conserved");
  if (conserved == nullptr || (*conserved != "0" && *conserved != "1")) return false;
  row.claims_conserved = (*conserved == "1");
  std::uint64_t shard_count = 0;
  if (!get_u("shards.count", shard_count)) return false;
  row.per_shard.assign(static_cast<std::size_t>(shard_count), {});
  for (std::size_t s = 0; s < row.per_shard.size(); ++s) {
    const std::string* v = ckpt.find(prefix + "shard." + std::to_string(s));
    if (v == nullptr) return false;
    std::istringstream in(*v);
    std::string launched, acked, timeouts, hops, churn, claims;
    if (!(in >> launched >> acked >> timeouts >> hops >> churn >> claims)) return false;
    const auto l = decode_u64(launched);
    const auto a = decode_u64(acked);
    const auto t = decode_u64(timeouts);
    const auto hp = decode_u64(hops);
    const auto ch = decode_u64(churn);
    const auto cl = decode_u64(claims);
    if (!l || !a || !t || !hp || !ch || !cl) return false;
    harness::ShardCounters& c = row.per_shard[s];
    c.connections_launched = *l;
    c.connections_acked = *a;
    c.ack_timeouts = *t;
    c.hops_forwarded = *hp;
    c.churn_events = *ch;
    c.claims_settled = *cl;
  }
  return true;
}

/// Model-invariant gates on one sharded point (never timing — they must hold
/// on an arbitrarily loaded box).
int check_sharded_row(const ShardedRow& row) {
  int rc = 0;
  if (!row.claims_conserved) {
    std::cerr << "FAIL: claim ledger not conserved at n=" << row.n
              << " K=" << row.shards << "\n";
    rc = 1;
  }
  if (row.heap_allocs != 0) {
    std::cerr << "FAIL: " << row.heap_allocs
              << " callback heap fallbacks at n=" << row.n << " K=" << row.shards
              << "\n";
    rc = 1;
  }
  if (row.shards > 1 && row.cross_shard_messages == 0) {
    std::cerr << "FAIL: K=" << row.shards << " routed nothing cross-shard at n="
              << row.n << "\n";
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::AdaptiveConfig adaptive = bench::parse_sweep_options(argc, argv, 0.05);
  bool smoke = false;
  bool sharded_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--sharded-smoke") == 0) sharded_smoke = true;
  }

  if (sharded_smoke) {
    // Tier-1 gate: the N = 10^5, K = 4 point must complete, conserve the
    // claim ledger, stay allocation-free, actually route cross-shard, and —
    // run twice — reproduce its digest bit for bit. No timing assertions.
    const harness::ShardedScenarioConfig cfg = sharded_config(100'000, 4, 30.0);
    const ShardedRow first = run_sharded_point(cfg);
    print_sharded_row(first);
    const ShardedRow second = run_sharded_point(cfg);
    print_sharded_row(second);
    write_sharded_json({first, second});
    int rc = check_sharded_row(first) | check_sharded_row(second);
    if (first.digest != second.digest) {
      std::cerr << "FAIL: sharded smoke digests diverged across identical runs\n";
      rc = 1;
    }
    return rc;
  }

  const std::size_t max_n = env_size("P2PANON_SCALE_MAX_N", 5000);
  const std::size_t replicates =
      smoke ? 1 : env_size("P2PANON_SCALE_REPLICATES", 2);

  std::vector<SweepRow> sweep;
  for (const SweepPoint& p : kSweep) {
    if (smoke ? p.n != 1000 : p.n > max_n) continue;
    for (const bool fault_mode : {false, true}) {
      const SweepRow row = run_sweep_point(p, fault_mode, replicates, adaptive);
      std::cout << "sweep n=" << row.n << " mode=" << row.mode << ": " << row.wall_ms
                << " ms, scheduled=" << row.scheduled << " cancelled=" << row.cancelled
                << " fired=" << row.fired << " heap_allocs=" << row.heap_allocs
                << " completed=" << row.completed << "\n";
      sweep.push_back(row);
    }
  }

  std::vector<BeforeAfter> pairs;
  for (const SweepPoint& p : kSweep) {
    if (smoke ? p.n != 1000 : p.n > max_n) continue;
    const BeforeAfter r = run_cancel_heavy(p.n, smoke);
    std::cout << "cancel-heavy n=" << r.n << " (pending " << r.pending
              << "): legacy " << r.before_ns << " ns/op -> slot map " << r.after_ns
              << " ns/op (x" << r.speedup() << ")\n";
    pairs.push_back(r);
  }

  write_json(sweep, pairs);

  // Part 3: shard-count x window-size sweep at population scale. Each N gets
  // the serial oracle as the single-threaded baseline, the K sweep at the
  // default window, and the window sweep at K = 4.
  int rc = 0;
  if (!smoke) {
    const std::size_t sharded_max_n = env_size("P2PANON_SHARDED_MAX_N", 100'000);
    std::vector<ShardedRow> sharded_rows;

    // Crash recovery for the expensive grid: finished points are replayed
    // from the checkpoint; only missing points run.
    const bool use_ckpt = !adaptive.checkpoint.empty();
    harness::Checkpoint ckpt;
    if (use_ckpt) {
      if (auto loaded = harness::Checkpoint::load(adaptive.checkpoint)) {
        ckpt = std::move(*loaded);
      }
    }
    auto sharded_point = [&](const harness::ShardedScenarioConfig& cfg) {
      const std::string prefix =
          sharded_point_prefix(cfg.node_count, cfg.shard_count, cfg.window);
      const std::uint64_t fp = sharded_point_fp(cfg);
      ShardedRow row;
      if (use_ckpt && load_sharded_row(ckpt, prefix, fp, cfg, row)) {
        std::cout << "sharded n=" << row.n << " K=" << row.shards << " W=" << row.window
                  << ": replayed from checkpoint\n";
        return row;
      }
      row = run_sharded_point(cfg);
      if (use_ckpt) {
        store_sharded_row(ckpt, prefix, fp, row);
        (void)ckpt.save(adaptive.checkpoint);
      }
      return row;
    };

    for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000},
                                std::size_t{1'000'000}}) {
      if (n > sharded_max_n) continue;

      const harness::ShardedScenarioConfig base = sharded_config(n, 1, 30.0);
      const auto oracle_start = std::chrono::steady_clock::now();
      const harness::ShardedScenarioResult oracle = harness::run_serial_oracle(base);
      const double oracle_ms = std::chrono::duration<double, std::milli>(
                                   std::chrono::steady_clock::now() - oracle_start)
                                   .count();
      const double oracle_eps =
          oracle_ms > 0.0 ? static_cast<double>(oracle.engine.fired) / (oracle_ms / 1000.0)
                          : 0.0;
      std::cout << "sharded n=" << n << " serial-oracle: " << oracle_ms << " ms, "
                << oracle_eps << " events/s\n";

      double k8_eps = 0.0;
      for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
        const ShardedRow row = sharded_point(sharded_config(n, shards, 30.0));
        print_sharded_row(row);
        rc |= check_sharded_row(row);
        if (shards == 8) k8_eps = row.events_per_sec;
        sharded_rows.push_back(row);
      }
      for (const double window : {10.0, 120.0}) {
        const ShardedRow row = sharded_point(sharded_config(n, 4, window));
        print_sharded_row(row);
        rc |= check_sharded_row(row);
        sharded_rows.push_back(row);
      }

      // Throughput gate — only where the hardware can possibly deliver it
      // (K = 8 windows need 8 cores to overlap; a 1-2 core CI box would
      // fail on contention, not on a regression).
      if (std::thread::hardware_concurrency() >= 8 && n >= 10'000 &&
          k8_eps < 3.0 * oracle_eps) {
        std::cerr << "FAIL: K=8 throughput at n=" << n << " is " << k8_eps
                  << " events/s < 3x serial oracle (" << oracle_eps << ")\n";
        rc = 1;
      }
    }
    write_sharded_json(sharded_rows);
  }

  // Acceptance gates, enforced here so scale-smoke fails loudly in CI:
  // the slot map must beat the legacy queue >= 5x on the cancel-heavy
  // workload at N = 1000, and no scenario callback may fall back to the heap.
  for (const BeforeAfter& p : pairs) {
    if (p.n == 1000 && p.speedup() < 5.0) {
      std::cerr << "FAIL: cancel-heavy speedup at N=1000 is x" << p.speedup()
                << " (< 5x)\n";
      rc = 1;
    }
  }
  for (const SweepRow& r : sweep) {
    if (r.heap_allocs != 0) {
      std::cerr << "FAIL: " << r.heap_allocs << " callback heap fallbacks at n="
                << r.n << " mode=" << r.mode << "\n";
      rc = 1;
    }
  }
  return rc;
}
