// Microbenchmarks (google-benchmark) for the building blocks on the
// simulation hot path: RNG streams, the event queue, routing decisions
// (including the paper's O(log d) next-hop claim — ours is O(d) argmax,
// measured here to show it is nanoseconds at d = 5), probing updates,
// payment settlement, and parallel replication scaling.
//
// The decision-stack before/after pairs (legacy std::map selectivity index
// vs the packed-key flat map, uncached vs cached q(s, v), uncached vs
// memoised depth-3 Utility-Model-II hop decision) are additionally measured
// by a manual timing pass in main(), which writes the machine-readable
// BENCH_decision_stack.json (to $P2PANON_CSV_DIR when set, else the cwd)
// before the google-benchmark suite runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "core/decision_scratch.hpp"
#include "harness/checkpoint.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "core/routing.hpp"
#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "net/probing.hpp"
#include "payment/settlement.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

void BM_RngNextU64(benchmark::State& state) {
  sim::rng::Stream s(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngChildDerivation(benchmark::State& state) {
  sim::rng::Stream s(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.child("bench", ++i));
  }
}
BENCHMARK(BM_RngChildDerivation);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::rng::Stream s(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(s.next_double() * 1000.0, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

/// Shared environment for routing-decision microbenches. `ctx` evaluates
/// everything from scratch; `cached_ctx` carries the per-replicate
/// DecisionResources (edge-quality cache + memo arena) — the before/after
/// pair of the decision-stack refactor.
struct RoutingEnv {
  RoutingEnv()
      : root(7),
        overlay(make_cfg(), simulator, root.child("overlay")),
        probing(overlay, net::ProbingConfig{}, root.child("probing")),
        history(overlay.size()),
        quality(probing, history, core::QualityWeights{}),
        ctx{overlay, quality, core::Contract{}, 0, 5, 39},
        cached_ctx{overlay, quality, core::Contract{}, 0, 5, 39, &resources} {
    overlay.start();
    simulator.run_until(sim::hours(1.0));
    candidates = overlay.online_neighbors(0);
    if (candidates.empty()) candidates.push_back(1);
    // Stored history makes selectivity (and hence the before/after
    // comparison) non-trivial. Steady state after an hour of simulated
    // operation has hundreds of recorded connections spread over many
    // pairs, so populate accordingly: a few paths for the benched pair
    // rooted at the deciding node, plus bulk history for other pairs
    // criss-crossing the overlay (these size every node's count index the
    // way a live replicate does).
    for (std::uint32_t k = 1; k <= 4; ++k) {
      const net::NodeId a = overlay.neighbors(0)[k % overlay.neighbors(0).size()];
      const net::NodeId b = overlay.neighbors(a)[k % overlay.neighbors(a).size()];
      history.record_path(0, k, {0, a, b, 39});
    }
    // 100 pairs x 10 connections mirrors the paper-default workload
    // (~50 stored entries per node).
    for (net::PairId p = 0; p < 100; ++p) {
      for (std::uint32_t k = 1; k <= 10; ++k) {
        const net::NodeId s = (p * 7 + k) % overlay.size();
        const net::NodeId a = overlay.neighbors(s)[(p + k) % overlay.neighbors(s).size()];
        const net::NodeId b = overlay.neighbors(a)[(p + 3 * k) % overlay.neighbors(a).size()];
        const net::NodeId r = (s + overlay.size() / 2) % overlay.size();
        if (a == s || b == s || b == a || r == s || r == a || r == b) continue;
        history.record_path(p, k, {s, a, b, r});
      }
    }
  }

  static net::OverlayConfig make_cfg() {
    net::OverlayConfig cfg;
    cfg.node_count = 40;
    cfg.degree = 5;
    // Sessions far longer than the warmup keep every node online: the
    // depth-3 decision then explores the full O(d^depth) tree the paper
    // describes, making the measured kernel deterministic instead of
    // depending on which neighbours a churn draw left alive.
    cfg.churn.session_median = sim::hours(1.0e4);
    cfg.churn.session_min = sim::hours(1.0e3);
    cfg.churn.session_max = sim::hours(1.0e6);
    return cfg;
  }

  sim::rng::Stream root;
  sim::Simulator simulator;
  net::Overlay overlay;
  net::ProbingEstimator probing;
  core::HistoryStore history;
  core::EdgeQualityEvaluator quality;
  core::DecisionResources resources;
  core::RoutingContext ctx;
  core::RoutingContext cached_ctx;
  std::vector<net::NodeId> candidates;
};

RoutingEnv& routing_env() {
  static RoutingEnv env;
  return env;
}

void BM_RoutingDecisionModel1(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  core::UtilityModelIRouting routing;
  auto stream = env.root.child("m1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing.choose(env.ctx, 0, net::kInvalidNode, env.candidates, stream));
  }
}
BENCHMARK(BM_RoutingDecisionModel1);

void BM_RoutingDecisionModel2(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  core::UtilityModelIIRouting routing(static_cast<std::uint32_t>(state.range(0)));
  auto stream = env.root.child("m2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing.choose(env.ctx, 0, net::kInvalidNode, env.candidates, stream));
  }
}
BENCHMARK(BM_RoutingDecisionModel2)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_EdgeQuality(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  const net::NodeId v = env.candidates.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.quality.edge_quality(0, v, 39, 0, net::kInvalidNode, 5));
  }
}
BENCHMARK(BM_EdgeQuality);

void BM_RoutingDecisionModel2Cached(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  core::UtilityModelIIRouting routing(static_cast<std::uint32_t>(state.range(0)));
  auto stream = env.root.child("m2c");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing.choose(env.cached_ctx, 0, net::kInvalidNode, env.candidates, stream));
  }
}
BENCHMARK(BM_RoutingDecisionModel2Cached)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_EdgeQualityCached(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  const net::NodeId v = env.candidates.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        env.resources.edge_cache.get_or_compute(env.quality, 0, v, 39, 0, net::kInvalidNode, 5));
  }
}
BENCHMARK(BM_EdgeQualityCached);

/// The pre-refactor count index: one ordered map keyed by the full
/// (pair, predecessor, successor) tuple — what HistoryProfile used before
/// the packed-key flat table. Rebuilt here so the "before" side of the
/// selectivity comparison stays measurable.
struct LegacySelectivityIndex {
  std::map<std::tuple<net::PairId, net::NodeId, net::NodeId>, std::uint32_t> counts;

  void record(net::PairId pair, net::NodeId pred, net::NodeId succ) {
    ++counts[{pair, pred, succ}];
  }
  [[nodiscard]] double selectivity(net::PairId pair, net::NodeId pred, net::NodeId succ,
                                   std::uint32_t k) const {
    if (k <= 1) return 0.0;
    const auto it = counts.find({pair, pred, succ});
    const auto c = it == counts.end() ? 0u : it->second;
    return static_cast<double>(c) / static_cast<double>(k - 1);
  }
};

/// Mixed hit/miss probe set mirroring what per-hop decisions ask of one
/// node's profile: same pair, varying predecessor/successor ids.
constexpr std::uint32_t kSelectivityProbes = 64;

LegacySelectivityIndex& legacy_index() {
  static LegacySelectivityIndex index = [] {
    LegacySelectivityIndex idx;
    for (std::uint32_t i = 0; i < 200; ++i) idx.record(i % 7, i % 11, (i * 3) % 13);
    return idx;
  }();
  return index;
}

core::HistoryProfile& flat_profile() {
  static core::HistoryProfile profile = [] {
    core::HistoryProfile p;
    for (std::uint32_t i = 0; i < 200; ++i) {
      p.record({i % 7, i + 1, i % 11, (i * 3) % 13});
    }
    return p;
  }();
  return profile;
}

void BM_SelectivityLegacyMap(benchmark::State& state) {
  const LegacySelectivityIndex& idx = legacy_index();
  for (auto _ : state) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < kSelectivityProbes; ++i) {
      sum += idx.selectivity(i % 7, i % 11, i % 13, 5);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kSelectivityProbes);
}
BENCHMARK(BM_SelectivityLegacyMap);

void BM_SelectivityFlatMap(benchmark::State& state) {
  const core::HistoryProfile& profile = flat_profile();
  for (auto _ : state) {
    double sum = 0.0;
    for (std::uint32_t i = 0; i < kSelectivityProbes; ++i) {
      sum += profile.selectivity(i % 7, i % 11, i % 13, 5);
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kSelectivityProbes);
}
BENCHMARK(BM_SelectivityFlatMap);

/// The whole pre-refactor per-hop decision stack, reconstructed bench-local:
/// per-node std::map count index (what HistoryProfile used), direct
/// availability reads, plain exhaustive lookahead — no flat tables, no
/// edge-quality cache, no memoisation. This is the honest "before" of the
/// decision-stack refactor; the post-refactor "after" runs the real code
/// with DecisionResources attached.
struct LegacyDecisionStack {
  const RoutingEnv& env;
  std::vector<std::map<std::tuple<net::PairId, net::NodeId, net::NodeId>, std::uint32_t>> counts;
  std::vector<std::unordered_map<net::NodeId, double>> session_times;

  explicit LegacyDecisionStack(const RoutingEnv& e)
      : env(e), counts(e.overlay.size()), session_times(e.overlay.size()) {
    for (net::NodeId s = 0; s < e.overlay.size(); ++s) {
      for (const core::HistoryEntry& entry : e.history.at(s).entries()) {
        ++counts[s][{entry.pair, entry.predecessor, entry.successor}];
      }
      for (net::NodeId v : e.overlay.neighbors(s)) {
        const double t = e.probing.observed_session_time(s, v);
        if (t > 0.0) session_times[s][v] = t;
      }
    }
  }

  // Pre-rebuild ProbingEstimator::availability: an O(d) walk re-summing the
  // per-neighbour session times — held in a per-node unordered_map, as the
  // old estimator stored them — on every call. The current estimator keeps a
  // running total over a packed flat table, so the real accessor is O(1);
  // using it here would let the "before" side inherit that optimisation and
  // understate the gap.
  [[nodiscard]] double availability(net::NodeId s, net::NodeId u) const {
    const std::unordered_map<net::NodeId, double>& times = session_times[s];
    double total = 0.0;
    for (net::NodeId v : env.overlay.neighbors(s)) {
      const auto it = times.find(v);
      if (it != times.end()) total += it->second;
    }
    if (total <= 0.0) {
      const auto d = env.overlay.neighbors(s).size();
      return d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
    }
    const auto it = times.find(u);
    return it == times.end() ? 0.0 : it->second / total;
  }

  [[nodiscard]] double edge_quality(net::NodeId s, net::NodeId v, net::NodeId responder,
                                    net::PairId pair, net::NodeId pred,
                                    std::uint32_t k) const {
    if (v == responder) return 1.0;
    double sigma = 0.0;
    if (k > 1) {
      const auto it = counts[s].find({pair, pred, v});
      const auto c = it == counts[s].end() ? 0u : it->second;
      sigma = static_cast<double>(c) / static_cast<double>(k - 1);
    }
    const core::QualityWeights& w = env.quality.weights();
    return w.w_selectivity * sigma + w.w_availability * availability(s, v);
  }

  [[nodiscard]] double best_onward(net::NodeId from, net::NodeId pred,
                                   std::uint32_t depth) const {
    const core::RoutingContext& ctx = env.ctx;
    if (depth == 0 || from == ctx.responder) return 0.0;
    double best = 0.0;
    bool any = false;
    for (net::NodeId c : env.overlay.neighbors(from)) {
      if (!env.overlay.is_online(c) || c == from) continue;
      const double q = edge_quality(from, c, ctx.responder, ctx.pair, pred, ctx.conn_index);
      const double total = c == ctx.responder ? q : q + best_onward(c, from, depth - 1);
      if (!any || total > best) {
        best = total;
        any = true;
      }
    }
    if (!any || 1.0 > best) best = 1.0;
    return best;
  }

  [[nodiscard]] net::NodeId choose_depth3(net::NodeId self, net::NodeId pred) const {
    const core::RoutingContext& ctx = env.ctx;
    net::NodeId best_j = net::kInvalidNode;
    double best_u = 0.0;
    double best_q = 0.0;
    bool have = false;
    for (net::NodeId j : env.candidates) {
      const double q_ij = edge_quality(self, j, ctx.responder, ctx.pair, pred, ctx.conn_index);
      const double onward = j == ctx.responder ? 0.0 : best_onward(j, self, 2);
      const double u = ctx.contract.forwarding_benefit +
                       (q_ij + onward) * ctx.contract.routing_benefit() -
                       (env.overlay.node(self).participation_cost +
                        env.overlay.links().transmission_cost(self, j));
      // argmax_choice recomputes the tie-break quality; mirror that cost.
      const double q = edge_quality(self, j, ctx.responder, ctx.pair, pred, ctx.conn_index);
      if (!have || u > best_u || (u == best_u && (q > best_q || (q == best_q && j < best_j)))) {
        best_j = j;
        best_u = u;
        best_q = q;
        have = true;
      }
    }
    return best_j;
  }
};

LegacyDecisionStack& legacy_stack() {
  static LegacyDecisionStack stack(routing_env());
  return stack;
}

void BM_RoutingDecisionModel2Legacy(benchmark::State& state) {
  const LegacyDecisionStack& legacy = legacy_stack();
  for (auto _ : state) {
    benchmark::DoNotOptimize(legacy.choose_depth3(0, net::kInvalidNode));
  }
}
BENCHMARK(BM_RoutingDecisionModel2Legacy);

void BM_SettlementRoundTrip(benchmark::State& state) {
  sim::rng::Stream root(9);
  for (auto _ : state) {
    payment::Bank bank(root.child("bank"));
    payment::SettlementEngine engine(bank);
    std::vector<payment::AccountId> accounts;
    for (net::NodeId id = 0; id < 6; ++id) {
      accounts.push_back(bank.open_account(id, payment::from_credits(1000.0), id + 1));
    }
    payment::Wallet wallet(bank, accounts[0], root.child("wallet"));
    const payment::Amount p_f = payment::from_credits(10.0);
    const payment::Amount p_r = payment::from_credits(20.0);
    auto coins = wallet.withdraw(3 * p_f + p_r);
    auto escrow = bank.open_escrow(*coins);
    std::vector<payment::PathRecord> records{{1, 0, 5, {1, 2, 3}}};
    const auto sid = engine.open(1, *escrow, {p_f, p_r}, records,
                                 bank.open_pseudonymous_account());
    for (net::NodeId f = 1; f <= 3; ++f) {
      const auto receipt = payment::make_receipt(bank.account_mac_key(accounts[f]), 1, 1, f,
                                                 f - 1, f + 1 <= 3 ? f + 1 : 5);
      engine.submit_claim(sid, accounts[f], receipt);
    }
    benchmark::DoNotOptimize(engine.close(sid).paid_out);
  }
}
BENCHMARK(BM_SettlementRoundTrip);

void BM_BlindWithdraw(benchmark::State& state) {
  sim::rng::Stream root(10);
  payment::Bank bank(root.child("bank"));
  const auto acct = bank.open_account(0, payment::from_credits(1.0e9), 1);
  payment::Wallet wallet(bank, acct, root.child("wallet"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wallet.withdraw(payment::from_credits(75.0)));
  }
}
BENCHMARK(BM_BlindWithdraw);

void BM_FullScenarioSmall(benchmark::State& state) {
  harness::ScenarioConfig cfg = harness::paper_default_config(1);
  cfg.overlay.node_count = 20;
  cfg.pair_count = 10;
  cfg.connections_per_pair = 5;
  cfg.warmup = sim::minutes(30.0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(harness::ScenarioRunner(cfg).run().connections_completed);
  }
}
BENCHMARK(BM_FullScenarioSmall)->Unit(benchmark::kMillisecond);

void BM_ParallelReplicationScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg = harness::paper_default_config(1);
  cfg.overlay.node_count = 20;
  cfg.pair_count = 8;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_replicated(cfg, 8, &pool).replicates);
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ParallelReplicationScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// ns/op of `fn`: the minimum average over several independent repetitions
/// (the canonical microbenchmark estimator — the minimum is the least
/// contaminated by scheduler preemption and frequency transitions, which
/// only ever add time). The JSON numbers feed a before/after speedup ratio,
/// where constant harness overhead cancels.
template <typename Fn>
double timed_rep_ns(Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  std::int64_t iters = 0;
  for (;;) {
    for (int i = 0; i < 200; ++i) fn();
    iters += 200;
    if (std::chrono::steady_clock::now() - start > std::chrono::milliseconds(60)) break;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::nano>(elapsed).count() /
         static_cast<double>(iters);
}

template <typename Fn>
double measure_ns(Fn&& fn) {
  for (int i = 0; i < 500; ++i) fn();  // warmup: fills caches, faults pages
  double best = 1.0e300;
  for (int rep = 0; rep < 7; ++rep) best = std::min(best, timed_rep_ns(fn));
  return best;
}

/// Paired before/after measurement with the repetitions interleaved
/// (before, after, before, after, ...) so a frequency transition or noisy
///-neighbour phase biases both sides of the ratio alike rather than
/// whichever side happened to run during it.
template <typename FnBefore, typename FnAfter>
std::pair<double, double> measure_pair_ns(FnBefore&& before, FnAfter&& after) {
  for (int i = 0; i < 500; ++i) before();
  for (int i = 0; i < 500; ++i) after();
  double best_before = 1.0e300;
  double best_after = 1.0e300;
  for (int rep = 0; rep < 7; ++rep) {
    best_before = std::min(best_before, timed_rep_ns(before));
    best_after = std::min(best_after, timed_rep_ns(after));
  }
  return {best_before, best_after};
}

struct BeforeAfter {
  const char* name;
  double before_ns;
  double after_ns;
  [[nodiscard]] double speedup() const { return before_ns / after_ns; }
};

/// Manually time the decision-stack before/after pairs and write
/// BENCH_decision_stack.json.
void emit_decision_stack_json() {
  RoutingEnv& env = routing_env();

  const auto [sel_before, sel_after] = measure_pair_ns(
      [&] {
        double sum = 0.0;
        for (std::uint32_t i = 0; i < kSelectivityProbes; ++i) {
          sum += legacy_index().selectivity(i % 7, i % 11, i % 13, 5);
        }
        benchmark::DoNotOptimize(sum);
      },
      [&] {
        double sum = 0.0;
        for (std::uint32_t i = 0; i < kSelectivityProbes; ++i) {
          sum += flat_profile().selectivity(i % 7, i % 11, i % 13, 5);
        }
        benchmark::DoNotOptimize(sum);
      });
  const BeforeAfter selectivity{"selectivity_64_probes", sel_before, sel_after};

  const net::NodeId v = env.candidates.front();
  const LegacyDecisionStack& legacy = legacy_stack();
  const auto [edge_before, edge_after] = measure_pair_ns(
      [&] {
        benchmark::DoNotOptimize(legacy.edge_quality(0, v, 39, 0, net::kInvalidNode, 5));
      },
      [&] {
        benchmark::DoNotOptimize(env.resources.edge_cache.get_or_compute(
            env.quality, 0, v, 39, 0, net::kInvalidNode, 5));
      });
  const BeforeAfter edge{"edge_quality", edge_before, edge_after};

  core::UtilityModelIIRouting routing(3);
  auto stream = env.root.child("json-m2");
  const auto [dec_before, dec_after] = measure_pair_ns(
      [&] {
        benchmark::DoNotOptimize(legacy.choose_depth3(0, net::kInvalidNode));
      },
      [&] {
        benchmark::DoNotOptimize(
            routing.choose(env.cached_ctx, 0, net::kInvalidNode, env.candidates, stream));
      });
  const BeforeAfter decision{"model2_depth3_hop_decision", dec_before, dec_after};

  std::filesystem::path dir = std::filesystem::current_path();
  if (const char* csv_dir = std::getenv("P2PANON_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(csv_dir, ec);
    if (!ec) dir = csv_dir;
  }
  const std::filesystem::path out_path = dir / "BENCH_decision_stack.json";
  std::ostringstream out;
  out << "{\n  \"benchmarks\": [\n";
  const BeforeAfter rows[] = {selectivity, edge, decision};
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const BeforeAfter& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"before_ns\": " << r.before_ns
        << ", \"after_ns\": " << r.after_ns << ", \"speedup\": " << r.speedup() << "}"
        << (i + 1 < std::size(rows) ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  if (!harness::atomic_write_file(out_path, out.str())) {
    std::cerr << "BENCH_decision_stack.json: cannot write " << out_path << "\n";
    return;
  }
  std::cout << "decision-stack before/after (also in " << out_path.string() << "):\n";
  for (const BeforeAfter& r : rows) {
    std::cout << "  " << r.name << ": " << r.before_ns << " ns -> " << r.after_ns
              << " ns (x" << r.speedup() << ")\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  emit_decision_stack_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
