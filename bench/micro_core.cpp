// Microbenchmarks (google-benchmark) for the building blocks on the
// simulation hot path: RNG streams, the event queue, routing decisions
// (including the paper's O(log d) next-hop claim — ours is O(d) argmax,
// measured here to show it is nanoseconds at d = 5), probing updates,
// payment settlement, and parallel replication scaling.
#include <benchmark/benchmark.h>

#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "core/routing.hpp"
#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "net/probing.hpp"
#include "payment/settlement.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

void BM_RngNextU64(benchmark::State& state) {
  sim::rng::Stream s(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.next_u64());
  }
}
BENCHMARK(BM_RngNextU64);

void BM_RngChildDerivation(benchmark::State& state) {
  sim::rng::Stream s(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.child("bench", ++i));
  }
}
BENCHMARK(BM_RngChildDerivation);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::rng::Stream s(2);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(s.next_double() * 1000.0, [] {});
    }
    while (!q.empty()) benchmark::DoNotOptimize(q.pop().time);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(64)->Arg(1024)->Arg(16384);

/// Shared environment for routing-decision microbenches.
struct RoutingEnv {
  RoutingEnv()
      : root(7),
        overlay(make_cfg(), simulator, root.child("overlay")),
        probing(overlay, net::ProbingConfig{}, root.child("probing")),
        history(overlay.size()),
        quality(probing, history, core::QualityWeights{}),
        ctx{overlay, quality, core::Contract{}, 0, 5, 39} {
    overlay.start();
    simulator.run_until(sim::hours(1.0));
    candidates = overlay.online_neighbors(0);
    if (candidates.empty()) candidates.push_back(1);
  }

  static net::OverlayConfig make_cfg() {
    net::OverlayConfig cfg;
    cfg.node_count = 40;
    cfg.degree = 5;
    return cfg;
  }

  sim::rng::Stream root;
  sim::Simulator simulator;
  net::Overlay overlay;
  net::ProbingEstimator probing;
  core::HistoryStore history;
  core::EdgeQualityEvaluator quality;
  core::RoutingContext ctx;
  std::vector<net::NodeId> candidates;
};

RoutingEnv& routing_env() {
  static RoutingEnv env;
  return env;
}

void BM_RoutingDecisionModel1(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  core::UtilityModelIRouting routing;
  auto stream = env.root.child("m1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing.choose(env.ctx, 0, net::kInvalidNode, env.candidates, stream));
  }
}
BENCHMARK(BM_RoutingDecisionModel1);

void BM_RoutingDecisionModel2(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  core::UtilityModelIIRouting routing(static_cast<std::uint32_t>(state.range(0)));
  auto stream = env.root.child("m2");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing.choose(env.ctx, 0, net::kInvalidNode, env.candidates, stream));
  }
}
BENCHMARK(BM_RoutingDecisionModel2)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_EdgeQuality(benchmark::State& state) {
  RoutingEnv& env = routing_env();
  const net::NodeId v = env.candidates.front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.quality.edge_quality(0, v, 39, 0, net::kInvalidNode, 5));
  }
}
BENCHMARK(BM_EdgeQuality);

void BM_SettlementRoundTrip(benchmark::State& state) {
  sim::rng::Stream root(9);
  for (auto _ : state) {
    payment::Bank bank(root.child("bank"));
    payment::SettlementEngine engine(bank);
    std::vector<payment::AccountId> accounts;
    for (net::NodeId id = 0; id < 6; ++id) {
      accounts.push_back(bank.open_account(id, payment::from_credits(1000.0), id + 1));
    }
    payment::Wallet wallet(bank, accounts[0], root.child("wallet"));
    const payment::Amount p_f = payment::from_credits(10.0);
    const payment::Amount p_r = payment::from_credits(20.0);
    auto coins = wallet.withdraw(3 * p_f + p_r);
    auto escrow = bank.open_escrow(*coins);
    std::vector<payment::PathRecord> records{{1, 0, 5, {1, 2, 3}}};
    const auto sid = engine.open(1, *escrow, {p_f, p_r}, records,
                                 bank.open_pseudonymous_account());
    for (net::NodeId f = 1; f <= 3; ++f) {
      const auto receipt = payment::make_receipt(bank.account_mac_key(accounts[f]), 1, 1, f,
                                                 f - 1, f + 1 <= 3 ? f + 1 : 5);
      engine.submit_claim(sid, accounts[f], receipt);
    }
    benchmark::DoNotOptimize(engine.close(sid).paid_out);
  }
}
BENCHMARK(BM_SettlementRoundTrip);

void BM_BlindWithdraw(benchmark::State& state) {
  sim::rng::Stream root(10);
  payment::Bank bank(root.child("bank"));
  const auto acct = bank.open_account(0, payment::from_credits(1.0e9), 1);
  payment::Wallet wallet(bank, acct, root.child("wallet"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wallet.withdraw(payment::from_credits(75.0)));
  }
}
BENCHMARK(BM_BlindWithdraw);

void BM_FullScenarioSmall(benchmark::State& state) {
  harness::ScenarioConfig cfg = harness::paper_default_config(1);
  cfg.overlay.node_count = 20;
  cfg.pair_count = 10;
  cfg.connections_per_pair = 5;
  cfg.warmup = sim::minutes(30.0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(harness::ScenarioRunner(cfg).run().connections_completed);
  }
}
BENCHMARK(BM_FullScenarioSmall)->Unit(benchmark::kMillisecond);

void BM_ParallelReplicationScaling(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  harness::ScenarioConfig cfg = harness::paper_default_config(1);
  cfg.overlay.node_count = 20;
  cfg.pair_count = 8;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  parallel::ThreadPool pool(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::run_replicated(cfg, 8, &pool).replicates);
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_ParallelReplicationScaling)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
