// BENCH_full_scenario: how the *full paper scenario* scales with engine
// shards — the sharded paper runner (harness/paper_sharded) swept over a
// K x N grid in the paper-default shape and in fault mode (link loss plus
// the bank-fault settlement lifecycle), written to BENCH_full_scenario.json.
//
// Each cell reports wall-clock time, events/sec (engine events fired over
// wall time), the settlement-plane outcome counters, and the adaptive-
// replication outcome (replicates used vs planned). Every replicate
// re-checks the model invariants — exact conservation in every bank
// partition and globally, full reconciliation, digest determinism — so the
// sweep doubles as a gate.
//
// Throughput gate: events/sec at K = 4 must be >= 2x the K = 1 cell at the
// largest paper-default point (N >= 10^4). The gate needs real cores to
// mean anything, so it self-disables (recorded in the JSON, exit 0) when
// the box has fewer than 8 hardware threads; wall-clock numbers are still
// recorded honestly either way.
//
// Knobs: --smoke runs one small K = 4 cell twice and asserts completion,
// digest determinism and reconciliation — no timing gates (the
// `scale-smoke-full` ctest entry); --adaptive enables sequential stopping
// per cell on the events/sec CI (±eps relative) with the invariant columns
// as pass-rate targets; --checkpoint makes the grid crash-recoverable cell
// by cell. Environment: P2PANON_FULL_MAX_N (default 10000) caps the sweep,
// plus the usual P2PANON_SEED / P2PANON_THREADS / P2PANON_CSV_DIR and the
// adaptive knobs P2PANON_ADAPTIVE / P2PANON_EPS / P2PANON_CHECKPOINT.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "harness/checkpoint.hpp"
#include "harness/paper_sharded.hpp"

namespace {

using namespace p2panon;

constexpr double kGateSpeedup = 2.0;
constexpr unsigned kGateMinThreads = 8;
constexpr std::size_t kGateMinN = 10000;

struct GridPoint {
  std::size_t n;
  std::size_t degree;
  std::size_t pairs;
};

// Paper shape is N = 40, d = 5, 100 pairs; the sweep scales pairs with N
// and holds connections-per-pair at 4 so the largest point stays seconds.
constexpr GridPoint kGrid[] = {
    {40, 5, 100},
    {400, 6, 200},
    {2000, 8, 1000},
    {10000, 10, 2500},
};
constexpr std::uint32_t kShardCounts[] = {1, 2, 4};

harness::ScenarioConfig cell_config(const GridPoint& p, std::uint32_t shards, bool fault_mode,
                                    std::uint64_t seed) {
  harness::ScenarioConfig cfg = harness::paper_default_config(seed);
  cfg.overlay.node_count = static_cast<std::uint32_t>(p.n);
  cfg.overlay.degree = static_cast<std::uint32_t>(p.degree);
  cfg.pair_count = p.pairs;
  cfg.connections_per_pair = 4;
  cfg.warmup = sim::minutes(30.0);
  cfg.pair_start_window = sim::minutes(45.0);
  cfg.engine_shards = shards;
  cfg.engine_window = 60.0;
  cfg.view_refresh = 300.0;
  if (fault_mode) {
    cfg.fault.link_loss = 0.05;
    cfg.fault.bank.lifecycle = true;
    cfg.fault.bank.claim_loss = 0.1;
    cfg.fault.bank.initiator_crash = 0.2;
    cfg.fault.bank.forwarder_crash = 0.05;
  }
  return cfg;
}

struct CellRow {
  std::size_t n = 0;
  std::uint32_t shards = 0;
  const char* mode = "";
  double events_per_sec = 0.0;  ///< across-replicate mean
  double wall_ms = 0.0;         ///< across-replicate mean
  double events_fired = 0.0;    ///< exact sum over replicates
  double completed = 0.0;
  double closed = 0.0;
  double cross_shard = 0.0;
  bool conserved = false;
  bool reconciled = false;
  harness::AdaptiveOutcome outcome;
};

std::uint64_t cell_fingerprint(const GridPoint& p, std::uint32_t shards, bool fault_mode) {
  std::uint64_t h = harness::fnv1a_init();
  h = harness::fnv1a_bytes(h, "full_scenario_v1");
  h = harness::fnv1a_mix(h, p.n);
  h = harness::fnv1a_mix(h, p.degree);
  h = harness::fnv1a_mix(h, p.pairs);
  h = harness::fnv1a_mix(h, shards);
  h = harness::fnv1a_mix(h, fault_mode ? 1 : 0);
  h = harness::fnv1a_mix(h, bench::base_seed());
  return h;
}

CellRow run_cell(harness::AdaptiveRunner& runner, const GridPoint& p, std::uint32_t shards,
                 bool fault_mode, std::size_t planned) {
  // Replicates run sequentially (run_cell pool = nullptr): each replicate
  // drives the windowed sharded engine from the *shared* pool, and a
  // windowed ShardedSimulator must never run from inside a task on the pool
  // it borrows (wait_idle would deadlock).
  const std::string key = std::string(fault_mode ? "fault" : "paper") + "/n" +
                          std::to_string(p.n) + "/k" + std::to_string(shards);
  const auto replicate = [&](std::size_t i) {
    harness::ScenarioConfig cfg = cell_config(p, shards, fault_mode, bench::base_seed() + i);
    const auto t0 = std::chrono::steady_clock::now();
    const harness::ScenarioResult r =
        harness::run_paper_scenario_sharded(cfg, &bench::shared_pool());
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    const double eps =
        static_cast<double>(r.engine_events_fired) / std::max(1.0e-6, wall_ms / 1000.0);
    return std::vector<double>{eps,
                               wall_ms,
                               r.payment_conserved ? 1.0 : 0.0,
                               r.settlement_reconciled ? 1.0 : 0.0,
                               static_cast<double>(r.engine_events_fired),
                               static_cast<double>(r.connections_completed),
                               static_cast<double>(r.settlements_closed),
                               static_cast<double>(r.engine_cross_shard_messages)};
  };
  const harness::AdaptiveCellResult cell =
      runner.run_cell(key, cell_fingerprint(p, shards, fault_mode), planned, replicate, nullptr);

  CellRow row;
  row.n = p.n;
  row.shards = shards;
  row.mode = fault_mode ? "fault" : "paper";
  row.events_per_sec = cell.metrics[0].mean();
  row.wall_ms = cell.metrics[1].mean();
  row.conserved = cell.metrics[2].count() > 0 && cell.metrics[2].mean() == 1.0;
  row.reconciled = cell.metrics[3].count() > 0 && cell.metrics[3].mean() == 1.0;
  row.events_fired = cell.sums[4];
  row.completed = cell.sums[5];
  row.closed = cell.sums[6];
  row.cross_shard = cell.sums[7];
  row.outcome = cell.outcome;
  std::cout << key << ": " << static_cast<std::uint64_t>(row.events_per_sec)
            << " events/sec, wall " << row.wall_ms << " ms, replicates "
            << row.outcome.replicates_used << "/" << row.outcome.replicates_planned
            << (row.conserved ? "" : "  CONSERVATION VIOLATED")
            << (row.reconciled ? "" : "  RECONCILIATION FAILED") << "\n";
  return row;
}

void emit_json(const std::vector<CellRow>& rows, bool gate_enabled, double gate_speedup,
               bool gate_pass, unsigned hw_threads) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"full_scenario\",\n";
  out << "  \"threads\": " << bench::env_size("P2PANON_THREADS", hw_threads) << ",\n";
  out << "  \"hardware_threads\": " << hw_threads << ",\n";
  out << "  \"cells\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const CellRow& r = rows[i];
    out << "    {\"mode\": \"" << r.mode << "\", \"n\": " << r.n << ", \"shards\": " << r.shards
        << ", \"events_per_sec\": " << r.events_per_sec << ", \"wall_ms\": " << r.wall_ms
        << ", \"events_fired\": " << static_cast<std::uint64_t>(r.events_fired)
        << ", \"connections_completed\": " << static_cast<std::uint64_t>(r.completed)
        << ", \"settlements_closed\": " << static_cast<std::uint64_t>(r.closed)
        << ", \"cross_shard_messages\": " << static_cast<std::uint64_t>(r.cross_shard)
        << ", \"conserved\": " << (r.conserved ? "true" : "false")
        << ", \"reconciled\": " << (r.reconciled ? "true" : "false") << ", "
        << bench::adaptive_json_fields(r.outcome) << "}" << (i + 1 < rows.size() ? "," : "")
        << "\n";
  }
  out << "  ],\n";
  out << "  \"throughput_gate\": {\"required_speedup\": " << kGateSpeedup
      << ", \"min_hardware_threads\": " << kGateMinThreads
      << ", \"enabled\": " << (gate_enabled ? "true" : "false")
      << ", \"speedup_k4_vs_k1\": " << gate_speedup
      << ", \"pass\": " << (gate_pass ? "true" : "false") << "}\n";
  out << "}\n";
  bench::write_bench_json("BENCH_full_scenario.json", out.str());
}

/// --smoke: one small K = 4 cell run twice — completion, digest
/// determinism, conservation, reconciliation. No timing gates, so it cannot
/// flake under a loaded CI box; the ctest TIMEOUT is the only clock.
int run_smoke() {
  const GridPoint p{400, 6, 200};
  harness::ScenarioConfig cfg = cell_config(p, 4, /*fault_mode=*/false, bench::base_seed());
  const harness::ScenarioResult a =
      harness::run_paper_scenario_sharded(cfg, &bench::shared_pool());
  const harness::ScenarioResult b =
      harness::run_paper_scenario_sharded(cfg, &bench::shared_pool());
  bool ok = true;
  if (a.sharded_digest == 0 || a.sharded_digest != b.sharded_digest) {
    std::cerr << "smoke: digest mismatch (" << a.sharded_digest << " vs " << b.sharded_digest
              << ")\n";
    ok = false;
  }
  if (!a.payment_conserved || !a.settlement_reconciled) {
    std::cerr << "smoke: conservation/reconciliation failed\n";
    ok = false;
  }
  if (a.connections_completed == 0 || a.settlements_closed == 0) {
    std::cerr << "smoke: scenario produced no settled traffic\n";
    ok = false;
  }
  std::cout << "smoke: K=4 N=" << p.n << " digest " << a.sharded_digest << ", "
            << a.connections_completed << " connections, " << a.settlements_closed
            << " settlements closed, conserved="
            << (a.payment_conserved ? "true" : "false") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const harness::AdaptiveConfig adaptive = bench::parse_sweep_options(argc, argv, 0.05);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }

  const std::size_t max_n = bench::env_size("P2PANON_FULL_MAX_N", 10000);
  const std::size_t planned = bench::env_size("P2PANON_REPLICATES", 2);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  const std::vector<harness::MetricSpec> specs = {
      {"events_per_sec", harness::MetricSpec::Kind::kMean, 0.05, /*relative=*/true},
      {"wall_ms", harness::MetricSpec::Kind::kMean, 0.0, /*relative=*/true},
      {"conserved", harness::MetricSpec::Kind::kPassRate},
      {"reconciled", harness::MetricSpec::Kind::kPassRate},
      {"events_fired", harness::MetricSpec::Kind::kSum},
      {"connections_completed", harness::MetricSpec::Kind::kSum},
      {"settlements_closed", harness::MetricSpec::Kind::kSum},
      {"cross_shard_messages", harness::MetricSpec::Kind::kSum},
  };
  harness::AdaptiveRunner runner(adaptive, specs);

  std::vector<CellRow> rows;
  bool invariants_ok = true;
  for (const bool fault_mode : {false, true}) {
    for (const GridPoint& p : kGrid) {
      if (p.n > max_n) continue;
      for (const std::uint32_t k : kShardCounts) {
        const CellRow row = run_cell(runner, p, k, fault_mode, planned);
        invariants_ok = invariants_ok && row.conserved && row.reconciled;
        rows.push_back(row);
      }
    }
  }

  // Throughput gate: K = 4 vs K = 1 at the largest paper-default point.
  double gate_speedup = 0.0;
  std::size_t gate_n = 0;
  for (const CellRow& r : rows) {
    if (std::strcmp(r.mode, "paper") != 0 || r.n < kGateMinN || r.n < gate_n) continue;
    const CellRow* k1 = nullptr;
    for (const CellRow& s : rows) {
      if (s.n == r.n && std::strcmp(s.mode, "paper") == 0 && s.shards == 1) k1 = &s;
    }
    if (r.shards == 4 && k1 != nullptr && k1->events_per_sec > 0.0) {
      gate_n = r.n;
      gate_speedup = r.events_per_sec / k1->events_per_sec;
    }
  }
  const bool gate_enabled = hw_threads >= kGateMinThreads && gate_n >= kGateMinN;
  const bool gate_pass = !gate_enabled || gate_speedup >= kGateSpeedup;
  if (!gate_enabled) {
    std::cout << "throughput gate disabled (" << hw_threads << " hardware threads, largest "
              << "paper-default N = " << gate_n << "); wall-clock recorded, not gated\n";
  } else {
    std::cout << "throughput gate: K=4 vs K=1 speedup " << gate_speedup << " (need >= "
              << kGateSpeedup << ") at N = " << gate_n << (gate_pass ? " PASS" : " FAIL")
              << "\n";
  }

  emit_json(rows, gate_enabled, gate_speedup, gate_pass, hw_threads);
  if (!invariants_ok) {
    std::cerr << "invariant violation in at least one cell\n";
    return 1;
  }
  return gate_pass ? 0 : 1;
}
