// Ablation: number of recurring connections per (I, R) pair
// (the simulator's max-connections parameter, paper §3).
//
// More connections give history more to work with: the forwarder set
// saturates while L stays constant, so path quality Q(pi) = L/||pi||
// *improves* with k under utility routing but *decays* under random
// routing (Q -> L/N as the set approaches everyone).
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: max-connections",
                        "Connections per pair (k) sweep, f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table(
      {"k", "strategy", "avg ||pi||", "Q(pi)", "avg member payoff"});
  for (std::uint32_t k : {5u, 10u, 20u, 40u}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      harness::ScenarioConfig cfg = paper_config(0.2, kind);
      cfg.connections_per_pair = k;
      // Keep total transmissions comparable to the paper's 2000.
      cfg.pair_count = 2000 / k;
      const auto r = run(cfg);
      table.add_row({std::to_string(k), std::string(core::strategy_name(kind)),
                     harness::fmt(r.forwarder_set_size.mean()),
                     harness::fmt(r.path_quality.mean(), 3),
                     harness::fmt(r.member_payoff.mean())});
    }
  }
  emit(table, "abl_max_connections");
  std::cout << "\nReading: under utility routing ||pi|| saturates with k (stable set), "
               "so Q(pi) holds or improves as connections accumulate; under random "
               "routing the set keeps growing toward N and quality decays — the "
               "recurring-connection regime is exactly where the incentive wins.\n";
  return 0;
}
