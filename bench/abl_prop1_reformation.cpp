// Ablation: empirical Proposition 1.
//
// Prop. 1 claims E[X] (the probability that an edge of connection pi^k is
// *new*, i.e. absent from pi^1..pi^{k-1}) stays near 1 under random routing
// but tends to 0 under incentive-based non-random routing as history
// accumulates. This bench prints the new-edge fraction by connection index.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: Proposition 1",
                        "New-edge fraction E[X] by connection index, f = 0 (" +
                            std::to_string(replicate_count()) + " replicates)");

  const auto random_r = run(paper_config(0.0, core::StrategyKind::kRandom));
  const auto util1_r = run(paper_config(0.0, core::StrategyKind::kUtilityModelI));
  const auto util2_r = run(paper_config(0.0, core::StrategyKind::kUtilityModelII));

  harness::TextTable table({"connection k", "random", "utility model I", "utility model II"});
  for (std::size_t k = 0; k < random_r.new_edge_fraction_by_conn.size(); ++k) {
    table.add_row({std::to_string(k + 1),
                   harness::fmt(random_r.new_edge_fraction_by_conn[k].mean(), 3),
                   harness::fmt(util1_r.new_edge_fraction_by_conn[k].mean(), 3),
                   harness::fmt(util2_r.new_edge_fraction_by_conn[k].mean(), 3)});
  }
  emit(table, "abl_prop1_reformation");
  std::cout << "\nExpected shape (Prop. 1): random routing keeps E[X] high for all k "
               "(k << N so fresh edges remain likely); utility routing drives E[X] "
               "toward 0 as history accumulates.\n";
  return 0;
}
