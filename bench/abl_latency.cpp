// Ablation: end-to-end latency.
//
// The cost model already prices transmission by bandwidth (C_t = b/bw, paper
// §2.4.1), so utility-maximising forwarders have a mild preference for fast
// links. This bench measures the resulting end-to-end connection latency
// (per-hop propagation + payload/bandwidth) by strategy and payload size.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: latency",
                        "End-to-end connection latency by routing strategy and payload "
                        "size, f = 0.2 (" + std::to_string(replicate_count()) +
                            " replicates)");

  harness::TextTable table({"payload", "strategy", "avg latency (s)", "measured L",
                            "avg ||pi||"});
  for (double payload : {1.0, 4.0, 16.0}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      harness::ScenarioConfig cfg = paper_config(0.2, kind);
      cfg.overlay.link.payload_size = payload;
      const auto r = run(cfg);
      table.add_row({harness::fmt(payload, 0), std::string(core::strategy_name(kind)),
                     harness::fmt(r.connection_latency.mean(), 3),
                     harness::fmt(r.avg_path_length.mean()),
                     harness::fmt(r.forwarder_set_size.mean())});
    }
  }
  emit(table, "abl_latency");
  std::cout << "\nReading: latency grows linearly in payload and path length; utility "
               "routing shaves a little off per hop (the C_t term steers toward "
               "higher-bandwidth links), an incidental quality-of-service benefit of "
               "the incentive design.\n";
  return 0;
}
