// Ablation: churn intensity.
//
// The paper's headline claim is that the incentive mechanism maintains
// anonymity quality *under churn*. This sweep varies the median session time
// (60 min is the paper's setting, after Saroiu et al.) and reports how the
// forwarder set, path quality and payoffs respond under Utility Model I.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: churn",
                        "Median session time sweep, Utility Model I vs random, f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"median session (min)", "strategy", "avg ||pi||",
                            "path quality Q(pi)", "avg member payoff", "churn events"});
  for (double median_min : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      harness::ScenarioConfig cfg = paper_config(0.2, kind);
      cfg.overlay.churn.session_median = sim::minutes(median_min);
      cfg.overlay.churn.session_min = sim::minutes(std::min(5.0, median_min / 3.0));
      // The bounded-Pareto median cannot exceed sqrt(min*max): keep the
      // upper bound comfortably above that for long-session sweeps.
      cfg.overlay.churn.session_max =
          std::max(sim::hours(24.0), 8.0 * cfg.overlay.churn.session_median *
                                         cfg.overlay.churn.session_median /
                                         cfg.overlay.churn.session_min);
      const auto r = run(cfg);
      table.add_row({harness::fmt(median_min, 0), std::string(core::strategy_name(kind)),
                     harness::fmt(r.forwarder_set_size.mean()),
                     harness::fmt(r.path_quality.mean(), 3),
                     harness::fmt(r.member_payoff.mean()),
                     std::to_string(r.total_churn_events / replicate_count())});
    }
  }
  emit(table, "abl_churn");
  std::cout << "\nReading: heavier churn (shorter sessions) inflates ||pi|| for both "
               "strategies, but utility routing retains a clear advantage — the "
               "paper's claim that anonymity quality is maintained under churn.\n";
  return 0;
}
