// Ablation: churn intensity.
//
// The paper's headline claim is that the incentive mechanism maintains
// anonymity quality *under churn*. This sweep varies the median session time
// (60 min is the paper's setting, after Saroiu et al.) and reports how the
// forwarder set, path quality and payoffs respond under Utility Model I.
//
// Supports the shared sweep options (--adaptive / --eps / --checkpoint,
// DESIGN.md §3.12): fixed mode runs P2PANON_REPLICATES per cell exactly as
// before; adaptive mode raises the cap 4x and stops each cell once the
// anytime intervals on ||pi|| and path quality are within ±eps. Per-cell
// used/planned counts land in BENCH_abl_churn.json (atomic write).
#include <sstream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.05);
  const std::size_t planned =
      adaptive.adaptive ? replicate_count() * 4 : replicate_count();

  harness::print_banner(std::cout, "Ablation: churn",
                        "Median session time sweep, Utility Model I vs random, f = 0.2 (" +
                            std::to_string(planned) + " replicate cap)");

  const std::vector<harness::TrackedScenarioMetric> tracked = {
      {"forwarder_set_size", &harness::ReplicatedResult::forwarder_set_size, 0.0, true},
      {"path_quality", &harness::ReplicatedResult::path_quality, 0.0, true},
  };

  harness::TextTable table({"median session (min)", "strategy", "avg ||pi||",
                            "path quality Q(pi)", "avg member payoff", "churn events",
                            "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (double median_min : {15.0, 30.0, 60.0, 120.0, 240.0}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      harness::ScenarioConfig cfg = paper_config(0.2, kind);
      cfg.overlay.churn.session_median = sim::minutes(median_min);
      cfg.overlay.churn.session_min = sim::minutes(std::min(5.0, median_min / 3.0));
      // The bounded-Pareto median cannot exceed sqrt(min*max): keep the
      // upper bound comfortably above that for long-session sweeps.
      cfg.overlay.churn.session_max =
          std::max(sim::hours(24.0), 8.0 * cfg.overlay.churn.session_median *
                                         cfg.overlay.churn.session_median /
                                         cfg.overlay.churn.session_min);
      std::ostringstream key;
      key << "m" << harness::fmt(median_min, 0) << "-" << core::strategy_name(kind);
      const harness::AdaptiveReplicatedResult res = harness::run_replicated_adaptive(
          cfg, planned, adaptive, tracked, &shared_pool(), key.str());
      const harness::ReplicatedResult& r = res.result;
      const std::size_t used = std::max<std::size_t>(res.outcome.replicates_used, 1);
      table.add_row({harness::fmt(median_min, 0), std::string(core::strategy_name(kind)),
                     harness::fmt(r.forwarder_set_size.mean()),
                     harness::fmt(r.path_quality.mean(), 3),
                     harness::fmt(r.member_payoff.mean()),
                     std::to_string(r.total_churn_events / used),
                     std::to_string(res.outcome.replicates_used) + "/" +
                         std::to_string(res.outcome.replicates_planned)});
      cells_json << (first_cell ? "" : ",") << "\n    {\"cell\": \"" << key.str()
                 << "\", \"forwarder_set\": " << r.forwarder_set_size.mean()
                 << ", \"path_quality\": " << r.path_quality.mean() << ", "
                 << adaptive_json_fields(res.outcome) << "}";
      first_cell = false;
    }
  }
  emit(table, "abl_churn");
  std::ostringstream json;
  json << "{\n  \"adaptive\": " << (adaptive.adaptive ? "true" : "false")
       << ",\n  \"eps\": " << adaptive.eps << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_abl_churn.json", json.str());
  std::cout << "\nReading: heavier churn (shorter sessions) inflates ||pi|| for both "
               "strategies, but utility routing retains a clear advantage — the "
               "paper's claim that anonymity quality is maintained under churn.\n";
  return 0;
}
