// Ablation: edge-quality weights w_s (selectivity) vs w_a (availability).
//
// The paper calls w_s/w_a system parameters set by anonymity requirements
// (§2.3): high w_a favours stable forwarders for future connections, high
// w_s favours past history. This sweep shows their effect on forwarder-set
// size, path quality and payoff under Utility Model I at f = 0.3.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: quality weights",
                        "w_s : w_a sweep, Utility Model I, f = 0.3 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table(
      {"w_s", "w_a", "avg ||pi||", "path quality Q(pi)", "avg member payoff", "new-edge frac (late)"});
  for (double w_s : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    harness::ScenarioConfig cfg = paper_config(0.3, core::StrategyKind::kUtilityModelI);
    cfg.weights.w_selectivity = w_s;
    cfg.weights.w_availability = 1.0 - w_s;
    const auto r = run(cfg);
    // Late reuse: mean new-edge fraction over the last five connections.
    double late = 0.0;
    std::size_t n = 0;
    for (std::size_t j = r.new_edge_fraction_by_conn.size() - 5;
         j < r.new_edge_fraction_by_conn.size(); ++j) {
      late += r.new_edge_fraction_by_conn[j].mean();
      ++n;
    }
    table.add_row({harness::fmt(w_s, 2), harness::fmt(1.0 - w_s, 2),
                   harness::fmt(r.forwarder_set_size.mean()),
                   harness::fmt(r.path_quality.mean(), 3), harness::fmt(r.member_payoff.mean()),
                   harness::fmt(late / static_cast<double>(n), 3)});
  }
  emit(table, "abl_weights");
  std::cout << "\nReading: any non-random weighting shrinks ||pi|| vs random routing; "
               "history weight (w_s) drives edge reuse once history accumulates, "
               "availability weight (w_a) stabilises the choice before that.\n";
  return 0;
}
