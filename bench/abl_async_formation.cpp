// Ablation: asynchronous (event-driven) connection establishment.
//
// Contract propagation and reverse confirmation take real time over links;
// a forwarder that churns out mid-flight kills the attempt and the path
// re-forms. This bench measures formation attempts and setup latency under
// churn for random vs utility routing: availability-aware selection should
// pick forwarders that survive the setup window, needing fewer attempts —
// the *mechanistic* version of the paper's reformation argument.
#include "common.hpp"

#include "core/async_path.hpp"
#include "core/edge_quality.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Outcome {
  double attempts = 0.0;   ///< mean formation attempts per connection
  double setup = 0.0;      ///< mean setup time (s), established only
  double failed = 0.0;     ///< connections that exhausted their attempts
};

Outcome run_async(core::StrategyKind kind, double session_median_min, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.churn.session_min = sim::minutes(1.0);
  cfg.churn.session_median = sim::minutes(session_median_min);
  // Median must stay below sqrt(min*max): scale the upper bound with it.
  cfg.churn.session_max =
      std::max(sim::hours(4.0), 8.0 * cfg.churn.session_median * cfg.churn.session_median /
                                    cfg.churn.session_min);
  cfg.churn.offline_gap_mean = sim::minutes(5.0);
  cfg.churn.departure_probability = 0.0;
  cfg.link.propagation_delay = 15.0;  // slow setup: spans churn events
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{sim::minutes(2.0)},
                                root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::AsyncConnectionRunner runner(simulator, overlay, builder);
  const auto strategy = core::make_strategy(kind);
  core::StrategyAssignment assign(overlay, *strategy);

  overlay.start();
  simulator.run_until(sim::minutes(45.0));

  Outcome out;
  metrics::Accumulator attempts, setup;
  std::size_t failed = 0;
  const std::uint32_t connections = 40;
  for (std::uint32_t c = 1; c <= connections; ++c) {
    overlay.force_online(0);
    overlay.force_online(39);
    bool done = false;
    core::AsyncResult result;
    runner.establish(1, c, 0, 39, core::Contract{}, assign, root.child("est", c),
                     [&](const core::AsyncResult& r) {
                       result = r;
                       done = true;
                     });
    simulator.run_until(simulator.now() + sim::minutes(45.0));
    if (!done) {
      ++failed;  // ran out of simulated patience
      continue;
    }
    attempts.add(static_cast<double>(result.attempts));
    if (result.established) {
      setup.add(result.setup_time);
      history.record_path(1, c, result.path.nodes);  // feed selectivity
    } else {
      ++failed;
    }
  }
  out.attempts = attempts.mean();
  out.setup = setup.count() > 0 ? setup.mean() : 0.0;
  out.failed = static_cast<double>(failed);
  return out;
}

}  // namespace

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Ablation: asynchronous formation",
                        "Event-driven setup (15 s/hop) under churn: formation attempts and "
                        "setup latency, 40 connections of one pair (" +
                            std::to_string(replicates) + " replicates)");

  harness::TextTable table({"median session (min)", "strategy", "avg attempts",
                            "avg setup (s)", "failed (of 40)"});
  for (double median : {5.0, 15.0, 60.0}) {
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      metrics::Accumulator attempts, setup, failed;
      for (std::size_t r = 0; r < replicates; ++r) {
        const Outcome out = run_async(kind, median, base_seed() + r);
        attempts.add(out.attempts);
        setup.add(out.setup);
        failed.add(out.failed);
      }
      table.add_row({harness::fmt(median, 0), std::string(core::strategy_name(kind)),
                     harness::fmt(attempts.mean()), harness::fmt(setup.mean(), 1),
                     harness::fmt(failed.mean(), 1)});
    }
  }
  emit(table, "abl_async_formation");
  std::cout << "\nReading: the shorter the sessions, the more attempts a setup needs; "
               "availability-aware utility routing selects forwarders likely to "
               "survive the setup window, cutting attempts and setup latency vs "
               "random selection — the event-level mechanism behind the paper's "
               "reformation-frequency claims.\n";
  return 0;
}
