// Attack bench: passive-logging intersection attack (the paper's motivating
// threat, §1/§2.1, after Wright et al.).
//
// Model: an observer watches one recurring (I, R) connection set. Whenever a
// path reformation routes through a *fresh* forwarder (the forwarder set Q
// grows — a new observation position for a passive logger, per Wright et
// al.), the observer snapshots the set of online nodes and intersects: the
// initiator must be online at every observation. Utility routing keeps
// reusing the same forwarders, so Q stops growing and the attacker starves;
// random routing recruits fresh forwarders almost every connection.
//
// Reported: observations usable by the attacker, remaining candidate-set
// size (anonymity bits) after all 20 connections, and how often the
// initiator is fully identified.
#include "common.hpp"

#include "attack/intersection.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct AttackOutcome {
  double observations = 0.0;
  double remaining_candidates = 0.0;
  double entropy_bits = 0.0;
  bool identified = false;
};

AttackOutcome run_attack(core::StrategyKind kind, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;

  net::OverlayConfig ocfg;
  ocfg.node_count = 40;
  ocfg.degree = 5;
  ocfg.malicious_fraction = 0.2;
  // Moderate churn so that online-set snapshots are informative.
  ocfg.churn.session_median = sim::minutes(60.0);
  net::Overlay overlay(ocfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());

  const auto strategy = core::make_strategy(kind);
  core::StrategyAssignment strategies(overlay, *strategy);

  const net::NodeId initiator = 0;
  const net::NodeId responder = 39;
  core::Contract contract;
  core::ConnectionSetSession session(0, initiator, responder, contract);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));  // warmup

  attack::OnlineSetIntersection observer(overlay.size());
  auto run_stream = root.child("run");
  auto gap_stream = root.child("gaps");

  std::size_t known_forwarders = 0;
  for (std::uint32_t k = 0; k < 20; ++k) {
    simulator.run_until(simulator.now() + gap_stream.exponential(1.0 / sim::minutes(5.0)));
    overlay.force_online(initiator);
    overlay.force_online(responder);
    session.run_connection(builder, history, strategies, ledger, overlay, run_stream);
    if (session.forwarder_set().size() > known_forwarders) {
      // A fresh forwarder position appeared: the passive logger gets one
      // observation of who is online right now.
      known_forwarders = session.forwarder_set().size();
      observer.observe(overlay.online_nodes());
    }
  }

  AttackOutcome out;
  out.observations = static_cast<double>(observer.observations());
  out.remaining_candidates = static_cast<double>(observer.candidate_count());
  out.entropy_bits = observer.entropy_bits();
  out.identified = observer.identified(initiator);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  // ±0.25 bits on the anonymity mean is the default adaptive target; the
  // observation/candidate columns ride along at the same eps.
  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.25);
  const std::size_t replicates = std::max<std::size_t>(replicate_count() * 4, 16);
  harness::print_banner(std::cout, "Attack: intersection",
                        "Passive-logging intersection attack on one recurring connection "
                        "(observations only at visible path reformations; " +
                            std::to_string(replicates) + " replicate cap)");

  using Kind = harness::MetricSpec::Kind;
  harness::AdaptiveRunner runner(adaptive, {
                                               {"observations", Kind::kMean, 0.0, true, 0.0},
                                               {"candidates", Kind::kMean, 0.0, true, 0.0},
                                               {"entropy_bits", Kind::kMean, 0.0, false, 0.0},
                                               {"identified", Kind::kSum, 0.0, false, 0.0},
                                           });

  harness::TextTable table({"strategy", "avg observations", "avg candidates left",
                            "avg anonymity (bits)", "identified (%)", "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI,
                    core::StrategyKind::kUtilityModelII}) {
    std::uint64_t fp = harness::fnv1a_bytes(harness::fnv1a_init(), "attack_intersection");
    fp = harness::fnv1a_mix(fp, base_seed());
    fp = harness::fnv1a_mix(fp, static_cast<std::uint64_t>(kind));
    const harness::AdaptiveCellResult cell = runner.run_cell(
        std::string(core::strategy_name(kind)), fp, replicates,
        [&](std::size_t r) {
          const AttackOutcome out = run_attack(kind, base_seed() + r);
          return std::vector<double>{out.observations, out.remaining_candidates,
                                     out.entropy_bits, out.identified ? 1.0 : 0.0};
        });
    const double used = static_cast<double>(cell.outcome.replicates_used);
    table.add_row({std::string(core::strategy_name(kind)),
                   harness::fmt(cell.metrics[0].mean()), harness::fmt(cell.metrics[1].mean()),
                   harness::fmt(cell.metrics[2].mean()),
                   harness::fmt(used > 0.0 ? 100.0 * cell.sums[3] / used : 0.0, 1),
                   std::to_string(cell.outcome.replicates_used) + "/" +
                       std::to_string(cell.outcome.replicates_planned)});
    cells_json << (first_cell ? "" : ",") << "\n    {\"strategy\": \""
               << core::strategy_name(kind)
               << "\", \"entropy_bits\": " << cell.metrics[2].mean() << ", "
               << adaptive_json_fields(cell.outcome) << "}";
    first_cell = false;
  }
  emit(table, "attack_intersection");
  std::ostringstream json;
  json << "{\n  \"adaptive\": " << (adaptive.adaptive ? "true" : "false")
       << ",\n  \"eps\": " << adaptive.eps << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_attack_intersection.json", json.str());
  std::cout << "\nReading: utility routing re-forms paths far less often, so the "
               "intersection attacker gets fewer snapshots and the initiator retains "
               "more anonymity bits — the paper's motivation for minimising ||pi|| "
               "and reformations.\n";
  return 0;
}
