// Attack bench: anonymity over time.
//
// Tracks, over one recurring connection set's lifetime, the attacker-facing
// anonymity (candidate-set entropy of the intersection attacker) and the
// forwarder-set size as time series — the temporal view behind the paper's
// intersection-attack motivation: each reformation is a step DOWN in
// anonymity, and utility routing simply takes far fewer steps.
#include "common.hpp"

#include "attack/intersection.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "metrics/timeseries.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Series {
  metrics::TimeSeries anonymity_bits;
  metrics::TimeSeries forwarder_set;
  sim::Time end = 0.0;
};

Series run_series(core::StrategyKind kind, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = 0.2;
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  const auto strategy = core::make_strategy(kind);
  core::StrategyAssignment assign(overlay, *strategy);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  core::ConnectionSetSession session(0, 0, 39, core::Contract{});
  attack::OnlineSetIntersection observer(overlay.size());
  Series series;
  auto run_stream = root.child("run");
  std::size_t known = 0;
  for (std::uint32_t k = 1; k <= 40; ++k) {
    simulator.run_until(simulator.now() + sim::minutes(5.0));
    overlay.force_online(0);
    overlay.force_online(39);
    session.run_connection(builder, history, assign, ledger, overlay, run_stream);
    if (session.forwarder_set().size() > known) {
      known = session.forwarder_set().size();
      observer.observe(overlay.online_nodes());
    }
    series.anonymity_bits.record(simulator.now(), observer.entropy_bits());
    series.forwarder_set.record(simulator.now(),
                                static_cast<double>(session.forwarder_set().size()));
  }
  series.end = simulator.now();
  return series;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.25);
  harness::print_banner(std::cout, "Attack: anonymity over time",
                        "Intersection-attacker anonymity (bits) and ||pi|| over the life "
                        "of one 40-connection recurring set, f = 0.2 (single replicate "
                        "series; seed " + std::to_string(base_seed()) + ")");

  harness::TextTable table({"t (min)", "strategy", "anonymity (bits)", "||pi||"});
  for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
    const Series s = run_series(kind, base_seed());
    const auto bits = s.anonymity_bits.resample(sim::minutes(60.0), s.end, 9);
    const auto sets = s.forwarder_set.resample(sim::minutes(60.0), s.end, 9);
    for (std::size_t i = 0; i < bits.size(); ++i) {
      table.add_row({harness::fmt(sim::to_minutes(bits[i].t), 0),
                     std::string(core::strategy_name(kind)),
                     harness::fmt(bits[i].value, 2), harness::fmt(sets[i].value, 1)});
    }
  }
  emit(table, "attack_anonymity_over_time");

  // Time-weighted summary: average anonymity enjoyed across the whole set.
  using Kind = harness::MetricSpec::Kind;
  harness::AdaptiveRunner runner(adaptive, {
                                               {"tw_anonymity_bits", Kind::kMean, 0.0, false, 0.0},
                                               {"final_pi", Kind::kMean, 0.5, false, 0.0},
                                           });
  harness::TextTable summary({"strategy", "time-weighted anonymity (bits)",
                              "final ||pi||", "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
    std::uint64_t fp =
        harness::fnv1a_bytes(harness::fnv1a_init(), "attack_anonymity_over_time");
    fp = harness::fnv1a_mix(fp, base_seed());
    fp = harness::fnv1a_mix(fp, static_cast<std::uint64_t>(kind));
    const harness::AdaptiveCellResult cell = runner.run_cell(
        std::string(core::strategy_name(kind)), fp, replicate_count(), [&](std::size_t r) {
          const Series s = run_series(kind, base_seed() + r);
          return std::vector<double>{
              s.anonymity_bits.time_weighted_mean(sim::minutes(60.0), s.end),
              s.forwarder_set.points().back().value};
        });
    summary.add_row({std::string(core::strategy_name(kind)),
                     harness::fmt(cell.metrics[0].mean(), 2),
                     harness::fmt(cell.metrics[1].mean(), 1),
                     std::to_string(cell.outcome.replicates_used) + "/" +
                         std::to_string(cell.outcome.replicates_planned)});
    cells_json << (first_cell ? "" : ",") << "\n    {\"strategy\": \""
               << core::strategy_name(kind)
               << "\", \"tw_anonymity_bits\": " << cell.metrics[0].mean() << ", "
               << adaptive_json_fields(cell.outcome) << "}";
    first_cell = false;
  }
  std::cout << '\n';
  emit(summary, "attack_anonymity_over_time_summary");
  std::ostringstream json;
  json << "{\n  \"adaptive\": " << (adaptive.adaptive ? "true" : "false")
       << ",\n  \"eps\": " << adaptive.eps << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_attack_anonymity_over_time.json", json.str());
  std::cout << "\nReading: anonymity decays stepwise with each fresh-forwarder "
               "recruitment; utility routing stops recruiting early, so its curve "
               "plateaus while random routing keeps stepping down — the time-domain "
               "picture of the paper's intersection-attack argument.\n";
  return 0;
}
