// Figure 7: CDF of payoffs for good nodes when f = 0.5, by routing strategy.
#include "payoff_cdf.hpp"

int main() { return p2panon::bench::run_payoff_cdf("Figure 7", "fig7_payoff_cdf_f05", 0.5); }
