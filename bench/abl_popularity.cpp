// Ablation: popularity-skewed workloads.
//
// The paper's recurring-connection applications (HTTP, FTP, NNTP) are
// exactly the workloads where a few responders receive most connections.
// This bench draws responders Zipf(s) and measures what the skew does to
// forwarder-set sizes and to payoff inequality among good nodes (Gini):
// peers adjacent to popular responders become chokepoints and earn
// disproportionately.
#include "common.hpp"

#include "metrics/stats.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: responder popularity (Zipf)",
                        "Responder selection skew sweep, Utility Model I, f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"zipf s", "avg ||pi||", "Q(pi)", "avg member payoff",
                            "payoff Gini (per node)"});
  for (double s : {0.0, 0.5, 1.0, 2.0}) {
    harness::ScenarioConfig cfg = paper_config(0.2, core::StrategyKind::kUtilityModelI);
    cfg.responder_zipf = s;
    const auto r = run(cfg);
    table.add_row({harness::fmt(s, 1), harness::fmt(r.forwarder_set_size.mean()),
                   harness::fmt(r.path_quality.mean(), 3),
                   harness::fmt(r.member_payoff.mean()),
                   harness::fmt(metrics::gini(r.pooled_good_payoffs), 3)});
  }
  emit(table, "abl_popularity");
  std::cout << "\nReading: a robustness result — per-pair forwarder sets, member "
               "payoffs and the payoff Gini barely move across an order of magnitude "
               "of responder skew. History keys on the (pair, predecessor) context, "
               "so even when many pairs share one popular responder, each recurring "
               "set converges onto its own stable forwarders; the incentive mechanism "
               "needs no workload assumptions. Q(pi) dips mildly at high skew "
               "(popular responders' neighbourhoods congest).\n";
  return 0;
}
