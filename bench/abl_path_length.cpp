// Ablation: path length via the Crowds forwarding probability.
//
// Paper footnote 2: the system objective is a minimum forwarder set *for
// path lengths appropriate to anonymity* — in Crowds, tweaking p_forward
// tunes the length. This sweep shows the trade-off: longer expected paths
// (higher p_forward) raise L, grow ||pi||, and raise the initiator's spend,
// for more per-hop mixing.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: path length (Crowds p_forward)",
                        "Expected path length sweep, Utility Model I, f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"p_forward", "E[L] (analytic)", "measured L", "avg ||pi||",
                            "Q(pi)", "initiator spend"});
  for (double p : {0.5, 0.66, 0.75, 0.8, 0.9}) {
    harness::ScenarioConfig cfg = paper_config(0.2, core::StrategyKind::kUtilityModelI);
    cfg.p_forward = p;
    const auto r = run(cfg);
    table.add_row({harness::fmt(p, 2), harness::fmt(1.0 / (1.0 - p), 1),
                   harness::fmt(r.avg_path_length.mean()),
                   harness::fmt(r.forwarder_set_size.mean()),
                   harness::fmt(r.path_quality.mean(), 3),
                   harness::fmt(r.initiator_spend.mean())});
  }
  emit(table, "abl_path_length");
  std::cout << "\nReading: L tracks the geometric mean 1/(1-p) (candidate exhaustion "
               "trims the tail); ||pi|| grows sublinearly in L under utility routing "
               "because longer paths still reuse the same favoured forwarders.\n";
  return 0;
}
