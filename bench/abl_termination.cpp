// Ablation: termination policy — Crowds-style probabilistic forwarding vs
// hop-distance (fixed-length) forwarding at matched expected path length.
//
// The paper notes both schemes fit its model (§2.2, footnote 2); the
// fixed-length scheme is also the setting of Figueiredo et al. [13], the
// closest prior incentive work. Fixed-length paths have zero length
// variance (no plausible-deniability from random termination) but make the
// initiator's spend predictable; Crowds trades spend variance for
// uncertainty about who originated a message.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: termination policy",
                        "Crowds (p_forward) vs fixed hop count at matched E[L], Utility "
                        "Model I, f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"policy", "E[L] target", "measured L", "avg ||pi||", "Q(pi)",
                            "initiator spend"});
  for (double target_len : {2.0, 4.0, 8.0}) {
    {
      harness::ScenarioConfig cfg = paper_config(0.2, core::StrategyKind::kUtilityModelI);
      cfg.termination = core::TerminationPolicy::kCrowds;
      cfg.p_forward = 1.0 - 1.0 / target_len;  // E[L] = 1/(1-p)
      const auto r = run(cfg);
      table.add_row({"crowds p=" + harness::fmt(cfg.p_forward, 2), harness::fmt(target_len, 0),
                     harness::fmt(r.avg_path_length.mean()),
                     harness::fmt(r.forwarder_set_size.mean()),
                     harness::fmt(r.path_quality.mean(), 3),
                     harness::fmt(r.initiator_spend.mean())});
    }
    {
      harness::ScenarioConfig cfg = paper_config(0.2, core::StrategyKind::kUtilityModelI);
      cfg.termination = core::TerminationPolicy::kHopCount;
      cfg.ttl_hops = static_cast<std::uint32_t>(target_len);
      const auto r = run(cfg);
      table.add_row({"fixed ttl=" + std::to_string(cfg.ttl_hops), harness::fmt(target_len, 0),
                     harness::fmt(r.avg_path_length.mean()),
                     harness::fmt(r.forwarder_set_size.mean()),
                     harness::fmt(r.path_quality.mean(), 3),
                     harness::fmt(r.initiator_spend.mean())});
    }
  }
  emit(table, "abl_termination");
  std::cout << "\nReading: at matched E[L], fixed-length paths give a slightly smaller "
               "||pi|| (no geometric tail recruiting extra forwarders) and a tighter "
               "spend, while Crowds termination keeps path length unpredictable — the "
               "anonymity/cost dial footnote 2 alludes to.\n";
  return 0;
}
