// Ablation: static-path Crowds sessions vs per-connection routing.
//
// The paper's target system class forms a path once and re-forms it on
// churn (Crowds). This bench measures, under the paper's churn model, how
// the three designs compare on the anonymity-relevant statistics:
//   A. static Crowds, random path formation      (classic baseline)
//   B. static Crowds, utility-model-I formation  (incentive at reformation)
//   C. per-connection utility-model-I routing    (the paper's mechanism)
#include "common.hpp"

#include "core/crowds.hpp"
#include "core/edge_quality.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Row {
  double set_size = 0.0;
  double reformations = 0.0;
  double quality = 0.0;
};

Row run_static(core::StrategyKind formation, double session_median_min, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.churn.session_median = sim::minutes(session_median_min);
  // The bounded-Pareto median cannot exceed sqrt(min*max).
  cfg.churn.session_max = std::max(
      sim::hours(24.0),
      8.0 * cfg.churn.session_median * cfg.churn.session_median / cfg.churn.session_min);
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  const auto strategy = core::make_strategy(formation);
  core::StrategyAssignment assign(overlay, *strategy);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  Row row;
  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  const std::size_t pairs = 20;
  for (net::PairId pid = 0; pid < pairs; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::CrowdsSession session(pid, initiator, responder, core::Contract{});
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 0; k < 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(1.0));
      overlay.force_online(initiator);
      overlay.force_online(responder);
      session.run_connection(builder, history, assign, ledger, overlay, stream);
    }
    row.set_size += static_cast<double>(session.forwarder_set().size()) / pairs;
    row.reformations += static_cast<double>(session.reformations()) / pairs;
    row.quality += session.path_quality() / pairs;
  }
  return row;
}

}  // namespace

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Ablation: static Crowds sessions",
                        "Static-path sessions (re-form only on churn) vs per-connection "
                        "routing; 20 pairs x 20 connections, f = 0 (" +
                            std::to_string(replicates) + " replicates)");

  harness::TextTable table({"median session (min)", "design", "avg ||pi||",
                            "avg reformations", "avg Q(pi)"});
  for (double median : {20.0, 60.0, 180.0}) {
    for (auto formation : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      metrics::Accumulator set, ref, q;
      for (std::size_t r = 0; r < replicates; ++r) {
        const Row row = run_static(formation, median, base_seed() + r);
        set.add(row.set_size);
        ref.add(row.reformations);
        q.add(row.quality);
      }
      const std::string design = std::string("static + ") +
                                 std::string(core::strategy_name(formation)) + " formation";
      table.add_row({harness::fmt(median, 0), design, harness::fmt(set.mean()),
                     harness::fmt(ref.mean()), harness::fmt(q.mean(), 3)});
    }
    // Per-connection utility routing at the same churn level, via the full
    // scenario harness (20 pairs x 20 connections for comparability).
    harness::ScenarioConfig cfg = paper_config(0.0, core::StrategyKind::kUtilityModelI);
    cfg.pair_count = 20;
    cfg.overlay.churn.session_median = sim::minutes(median);
    cfg.overlay.churn.session_max =
        std::max(sim::hours(24.0), 8.0 * cfg.overlay.churn.session_median *
                                       cfg.overlay.churn.session_median /
                                       cfg.overlay.churn.session_min);
    const auto r = run(cfg);
    table.add_row({harness::fmt(median, 0), "per-connection utility-model-1",
                   harness::fmt(r.forwarder_set_size.mean()), "n/a",
                   harness::fmt(r.path_quality.mean(), 3)});
  }
  emit(table, "abl_crowds_static");
  std::cout << "\nReading: static sessions minimise ||pi|| while the path survives, but "
               "churn forces reformations that grow Q; incentive-aligned formation "
               "re-forms onto the SAME forwarders (history + availability), keeping "
               "Q near the static optimum — the paper's §2.1 conditions (1) and (2) "
               "in one table.\n";
  return 0;
}
