// Shared setup for the experiment-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper (or an
// ablation DESIGN.md calls out), using the paper's §3 parameters: N = 40,
// d = 5, 100 (I, R) pairs, 20 connections per pair, P_f ~ U[50, 100],
// w_s = w_a = 0.5, Pareto session times with median 60 min.
//
// Environment knobs:
//   P2PANON_REPLICATES  number of Monte-Carlo replicates (default 8)
//   P2PANON_SEED        base seed (default 1)
//   P2PANON_THREADS     thread-pool size (default: hardware concurrency)
//   P2PANON_CSV_DIR     if set, every printed table is also written there
//                       as <name>.csv for external plotting; BENCH_*.json
//                       artifacts and checkpoints resolve there too
//   P2PANON_ADAPTIVE    "1" = sequential stopping on (same as --adaptive)
//   P2PANON_EPS         ±eps stopping target (same as --eps)
//   P2PANON_CHECKPOINT  checkpoint path (same as --checkpoint)
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "harness/adaptive.hpp"
#include "harness/checkpoint.hpp"
#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "parallel/thread_pool.hpp"

namespace p2panon::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::size_t replicate_count() { return env_size("P2PANON_REPLICATES", 8); }
inline std::uint64_t base_seed() { return env_size("P2PANON_SEED", 1); }

inline parallel::ThreadPool& shared_pool() {
  static parallel::ThreadPool pool(env_size("P2PANON_THREADS", 0));
  return pool;
}

/// Paper-§3 configuration with the given malicious fraction, strategy, tau.
inline harness::ScenarioConfig paper_config(double f, core::StrategyKind strategy,
                                            double tau = 2.0) {
  harness::ScenarioConfig cfg = harness::paper_default_config(base_seed());
  cfg.overlay.malicious_fraction = f;
  cfg.good_strategy = strategy;
  cfg.tau = tau;
  return cfg;
}

inline harness::ReplicatedResult run(const harness::ScenarioConfig& cfg) {
  return harness::run_replicated(cfg, replicate_count(), &shared_pool());
}

/// Print the table to stdout and, when P2PANON_CSV_DIR is set, also write
/// it to <dir>/<name>.csv (atomically — a crash mid-emit never leaves a
/// truncated CSV behind).
inline void emit(const harness::TextTable& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("P2PANON_CSV_DIR")) {
    std::ostringstream csv;
    table.print_csv(csv);
    (void)harness::atomic_write_file(std::filesystem::path(dir) / (name + ".csv"), csv.str());
  }
}

/// Directory results artifacts (BENCH_*.json, checkpoints) land in:
/// P2PANON_CSV_DIR when set, else the current directory.
inline std::filesystem::path artifact_dir() {
  if (const char* dir = std::getenv("P2PANON_CSV_DIR")) return dir;
  return ".";
}

/// Resolve a checkpoint path: absolute stays as-is, relative lands in
/// artifact_dir() next to the sweep's other artifacts.
inline std::filesystem::path resolve_checkpoint(const std::string& path) {
  const std::filesystem::path p(path);
  return p.is_absolute() ? p : artifact_dir() / p;
}

/// The single sanctioned way to write a BENCH_*.json artifact: atomic
/// write-temp-then-rename via harness::atomic_write_file, into
/// artifact_dir(). Returns the final path (empty on failure).
inline std::filesystem::path write_bench_json(const std::string& name,
                                              const std::string& payload) {
  const std::filesystem::path path = artifact_dir() / name;
  if (!harness::atomic_write_file(path, payload)) {
    std::cerr << "warning: failed to write " << path << "\n";
    return {};
  }
  std::cout << "wrote " << path.string() << "\n";
  return path;
}

/// Parse the shared adaptive-replication flags (--adaptive, --eps,
/// --checkpoint, --kill-after-batch + env fallbacks) and resolve a relative
/// checkpoint path against artifact_dir().
inline harness::AdaptiveConfig parse_sweep_options(int& argc, char** argv,
                                                   double default_eps = 0.05) {
  harness::AdaptiveConfig cfg = harness::parse_adaptive_flags(argc, argv, default_eps);
  if (!cfg.checkpoint.empty()) cfg.checkpoint = resolve_checkpoint(cfg.checkpoint).string();
  return cfg;
}

/// JSON fragment reporting what the stopping layer did for one sweep (or
/// one cell): replicates-used vs replicates-planned plus the stop/resume
/// flags. Embed inside an enclosing object.
inline std::string adaptive_json_fields(const harness::AdaptiveOutcome& o) {
  std::ostringstream out;
  out << "\"replicates_planned\": " << o.replicates_planned
      << ", \"replicates_used\": " << o.replicates_used << ", \"batches\": " << o.batches
      << ", \"stopped_early\": " << (o.stopped_early ? "true" : "false")
      << ", \"resumed\": " << (o.resumed ? "true" : "false");
  return out.str();
}

}  // namespace p2panon::bench
