// Shared setup for the experiment-reproduction benches.
//
// Every bench binary reproduces one table or figure of the paper (or an
// ablation DESIGN.md calls out), using the paper's §3 parameters: N = 40,
// d = 5, 100 (I, R) pairs, 20 connections per pair, P_f ~ U[50, 100],
// w_s = w_a = 0.5, Pareto session times with median 60 min.
//
// Environment knobs:
//   P2PANON_REPLICATES  number of Monte-Carlo replicates (default 8)
//   P2PANON_SEED        base seed (default 1)
//   P2PANON_THREADS     thread-pool size (default: hardware concurrency)
//   P2PANON_CSV_DIR     if set, every printed table is also written there
//                       as <name>.csv for external plotting
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "harness/replicate.hpp"
#include "harness/scenario.hpp"
#include "harness/table.hpp"
#include "parallel/thread_pool.hpp"

namespace p2panon::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

inline std::size_t replicate_count() { return env_size("P2PANON_REPLICATES", 8); }
inline std::uint64_t base_seed() { return env_size("P2PANON_SEED", 1); }

inline parallel::ThreadPool& shared_pool() {
  static parallel::ThreadPool pool(env_size("P2PANON_THREADS", 0));
  return pool;
}

/// Paper-§3 configuration with the given malicious fraction, strategy, tau.
inline harness::ScenarioConfig paper_config(double f, core::StrategyKind strategy,
                                            double tau = 2.0) {
  harness::ScenarioConfig cfg = harness::paper_default_config(base_seed());
  cfg.overlay.malicious_fraction = f;
  cfg.good_strategy = strategy;
  cfg.tau = tau;
  return cfg;
}

inline harness::ReplicatedResult run(const harness::ScenarioConfig& cfg) {
  return harness::run_replicated(cfg, replicate_count(), &shared_pool());
}

/// Print the table to stdout and, when P2PANON_CSV_DIR is set, also write
/// it to <dir>/<name>.csv.
inline void emit(const harness::TextTable& table, const std::string& name) {
  table.print(std::cout);
  if (const char* dir = std::getenv("P2PANON_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(std::filesystem::path(dir) / (name + ".csv"));
    if (out) table.print_csv(out);
  }
}

}  // namespace p2panon::bench
