// Ablation: reputation-based routing vs the incentive mechanism under a
// collusion attack (the paper's §4 argument, measured).
//
// A malicious coalition (f = 0.2 of the overlay) files fake mutual success
// reports each round. Under global-scope reputation routing the coalition's
// scores saturate and honest nodes route into it; the incentive mechanism's
// edge quality uses only *local* observations (own history + own probes),
// so the same coalition gains nothing beyond its natural share.
#include "common.hpp"

#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "core/reputation.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

/// Fraction of forwarding instances captured by the malicious coalition.
double capture_share(bool use_reputation, bool collude, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = 0.2;
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());

  core::ReputationSystem reputation(overlay.size(), core::ReputationConfig{});
  core::ReputationRouting reputation_routing(reputation);
  core::UtilityModelIRouting utility_routing;
  const core::RoutingStrategy& good =
      use_reputation ? static_cast<const core::RoutingStrategy&>(reputation_routing)
                     : static_cast<const core::RoutingStrategy&>(utility_routing);
  core::StrategyAssignment assign(overlay, good);

  const auto coalition = overlay.malicious_nodes();

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  std::uint64_t captured = 0, total = 0;
  for (net::PairId pid = 0; pid < 30; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::ConnectionSetSession session(pid, initiator, responder, core::Contract{});
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 0; k < 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(1.0));
      if (collude) reputation.apply_collusion(coalition, 1);
      overlay.force_online(initiator);
      overlay.force_online(responder);
      const core::BuiltPath& p =
          session.run_connection(builder, history, assign, ledger, overlay, stream);
      reputation.observe_path(p.nodes);  // honest feedback accumulates too
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
        ++total;
        if (overlay.node(p.nodes[i]).is_malicious()) ++captured;
      }
    }
  }
  return total > 0 ? static_cast<double>(captured) / static_cast<double>(total) : 0.0;
}

}  // namespace

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Ablation: reputation vs incentive",
                        "Forwarding share captured by a colluding coalition (f = 0.2) under "
                        "global reputation routing vs the incentive mechanism (" +
                            std::to_string(replicates) + " replicates)");

  harness::TextTable table({"routing", "collusion", "coalition capture share"});
  struct Case {
    const char* routing;
    bool use_reputation;
    bool collude;
  };
  const Case cases[] = {
      {"reputation (global)", true, false},
      {"reputation (global)", true, true},
      {"incentive (utility model I)", false, false},
      {"incentive (utility model I)", false, true},
  };
  for (const Case& c : cases) {
    metrics::Accumulator share;
    for (std::size_t r = 0; r < replicates; ++r) {
      share.add(capture_share(c.use_reputation, c.collude, base_seed() + r));
    }
    table.add_row({c.routing, c.collude ? "yes" : "no", harness::fmt(share.mean(), 3)});
  }
  emit(table, "abl_reputation");
  std::cout << "\nReading: collusion lets the coalition dominate path selection under "
               "reputation routing, while the incentive mechanism is unaffected — "
               "collusion cannot forge local probes or the initiator-validated "
               "history behind edge quality (paper §4).\n";
  return 0;
}
