// Bench-local copy of the pre-slot-map EventQueue, preserved as the "before"
// side of the BENCH_sim_engine before/after pairs (see scale_overlay.cpp).
//
// This is the engine the repo shipped before the rebuild: a binary heap of
// full Entry records (each carrying a std::function callback), lazy
// cancellation through an unordered_set, and — the part the slot map
// removes — a linear std::any_of scan over the whole heap on every cancel()
// to distinguish live ids from already-fired ones. Cancel is therefore
// O(pending) and each schedule() pays the std::function allocation for any
// capture beyond its small-buffer size.
//
// Semantics match the current queue exactly (same (time, seq) tie-break,
// same cancel-after-fire / double-cancel answers), so the measured workload
// can be templated over either implementation.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace p2panon::bench {

class LegacyEventQueue {
 public:
  using EventFn = std::function<void()>;

  LegacyEventQueue() = default;
  LegacyEventQueue(const LegacyEventQueue&) = delete;
  LegacyEventQueue& operator=(const LegacyEventQueue&) = delete;

  sim::EventId schedule(sim::Time at, EventFn fn) {
    assert(fn && "scheduling an empty event");
    const sim::EventId id = next_id_++;
    heap_.emplace_back(Entry{at, next_seq_++, id, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++live_count_;
    return id;
  }

  bool cancel(sim::EventId id) {
    if (id == sim::kInvalidEventId || id >= next_id_) return false;
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (!inserted) return false;  // already cancelled
    // Liveness check: the O(pending) scan the slot map exists to remove.
    const bool present = std::any_of(heap_.begin(), heap_.end(),
                                     [id](const Entry& e) { return e.id == id; });
    if (!present) {
      cancelled_.erase(id);
      return false;  // already fired
    }
    --live_count_;
    return true;
  }

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  [[nodiscard]] sim::Time next_time() const noexcept {
    skip_cancelled();
    return heap_.empty() ? sim::kTimeInfinity : heap_.front().time;
  }

  struct Popped {
    sim::Time time;
    sim::EventId id;
    EventFn fn;
  };

  Popped pop() {
    skip_cancelled();
    assert(!heap_.empty() && "pop() on empty LegacyEventQueue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    --live_count_;
    return Popped{e.time, e.id, std::move(e.fn)};
  }

  void clear() {
    heap_.clear();
    cancelled_.clear();
    live_count_ = 0;
  }

 private:
  struct Entry {
    sim::Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    sim::EventId id;
    EventFn fn;
  };

  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const {
    while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
      cancelled_.erase(heap_.front().id);
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
  }

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<sim::EventId> cancelled_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  sim::EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace p2panon::bench
