// Shared implementation for Figures 6 and 7: the CDF of good-node payoffs
// under each routing strategy at a fixed adversary fraction f.
#pragma once

#include "common.hpp"
#include "metrics/stats.hpp"

namespace p2panon::bench {

inline int run_payoff_cdf(const char* figure, const char* slug, double f) {
  harness::print_banner(std::cout, figure,
                        "CDF of good-node payoffs at f = " + harness::fmt(f, 1) + " (" +
                            std::to_string(replicate_count()) +
                            " replicates pooled; series of 15 points per strategy)");

  struct Series {
    const char* name;
    core::StrategyKind kind;
    metrics::EmpiricalDistribution dist;
  };
  Series series[] = {
      {"random", core::StrategyKind::kRandom, {}},
      {"utility model I", core::StrategyKind::kUtilityModelI, {}},
      {"utility model II", core::StrategyKind::kUtilityModelII, {}},
  };

  for (Series& s : series) {
    const auto r = run(paper_config(f, s.kind));
    s.dist = metrics::EmpiricalDistribution(r.pooled_member_payoffs);
  }

  harness::TextTable table({"strategy", "payoff x", "P(payoff <= x)"});
  for (Series& s : series) {
    for (const auto& pt : s.dist.cdf_series(15)) {
      table.add_row({s.name, harness::fmt(pt.x), harness::fmt(pt.p, 3)});
    }
  }
  emit(table, slug);

  harness::TextTable summary({"strategy", "mean", "variance", "max payoff"});
  for (Series& s : series) {
    summary.add_row({s.name, harness::fmt(s.dist.mean()), harness::fmt(s.dist.variance(), 0),
                     harness::fmt(s.dist.max())});
  }
  std::cout << '\n';
  emit(summary, std::string(slug) + "_summary");
  std::cout << "\nExpected shape (paper): utility model I has the highest maximum "
               "payoff and the largest variance (availability-favoured peers are "
               "re-selected, skewing payoffs); random routing has the smallest "
               "variance; models I and II have similar averages.\n";
  return 0;
}

}  // namespace p2panon::bench
