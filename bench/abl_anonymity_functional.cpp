// Ablation: sensitivity to the form of the anonymity functional A(.).
//
// The paper only requires A(||pi||) to decrease in the forwarder-set size
// (Eq. 2); the concrete form lives in the unavailable technical report. We
// therefore check that the *conclusion* — utility routing yields a higher
// initiator utility than random routing — holds for every functional form
// we ship (DESIGN.md substitution table).
#include "common.hpp"

#include "metrics/anonymity.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: anonymity functional",
                        "Initiator utility U_I = A(||pi||) - spend under three A(.) forms, "
                        "f = 0.2 (" +
                            std::to_string(replicate_count()) + " replicates)");

  struct Form {
    const char* name;
    metrics::AnonymityFunctional form;
  };
  const Form forms[] = {
      {"exponential decay", metrics::AnonymityFunctional::kExponentialDecay},
      {"inverse", metrics::AnonymityFunctional::kInverse},
      {"linear clamped", metrics::AnonymityFunctional::kLinearClamped},
  };

  harness::TextTable table({"A(.) form", "strategy", "avg U_I", "avg ||pi||"});
  for (const Form& form : forms) {
    double random_ui = 0.0, utility_ui = 0.0;
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI}) {
      harness::ScenarioConfig cfg = paper_config(0.2, kind);
      cfg.anonymity.form = form.form;
      cfg.anonymity.scale = 20000.0;
      cfg.anonymity.lambda = 25.0;
      const auto r = run(cfg);
      (kind == core::StrategyKind::kRandom ? random_ui : utility_ui) =
          r.initiator_utility.mean();
      table.add_row({form.name, std::string(core::strategy_name(kind)),
                     harness::fmt(r.initiator_utility.mean()),
                     harness::fmt(r.forwarder_set_size.mean())});
    }
    std::cout << (utility_ui > random_ui ? "" : "WARNING: conclusion flipped for ")
              << (utility_ui > random_ui ? "" : form.name) << "";
  }
  emit(table, "abl_anonymity_functional");
  std::cout << "\nReading: the utility-routing advantage in U_I is insensitive to the "
               "functional form of A(.) — any strictly decreasing valuation rewards "
               "the smaller forwarder set.\n";
  return 0;
}
