// Figure 5: average forwarder-set size ||pi|| of a recurring connection set
// vs adversary fraction f, comparing routing strategies.
//
// Paper shape: both utility models produce far smaller forwarder sets than
// random routing at every f; Utility Model I is the smallest.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Figure 5",
                        "Average forwarder-set size ||pi|| vs adversary fraction f, by "
                        "routing strategy (" +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"f", "random", "utility model I", "utility model II",
                            "I < random significant?"});
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    std::vector<std::string> row{harness::fmt(f, 1)};
    metrics::Accumulator random_sets, model1_sets;
    for (auto kind : {core::StrategyKind::kRandom, core::StrategyKind::kUtilityModelI,
                      core::StrategyKind::kUtilityModelII}) {
      const auto r = run(paper_config(f, kind));
      row.push_back(harness::fmt(r.forwarder_set_size.mean()));
      if (kind == core::StrategyKind::kRandom) random_sets = r.forwarder_set_size;
      if (kind == core::StrategyKind::kUtilityModelI) model1_sets = r.forwarder_set_size;
    }
    // Welch t-test across replicate means: is the model-I reduction real?
    const auto welch = metrics::welch_t_test(model1_sets, random_sets);
    row.push_back(welch.significant_95 ? "yes (p<0.05)" : "no");
    table.add_row(std::move(row));
  }
  emit(table, "fig5_forwarder_set");
  std::cout << "\nExpected shape (paper): random >> model II >= model I at every f; "
               "the gap narrows as f -> 1 (adversaries route randomly regardless of "
               "the good nodes' strategy).\n";
  return 0;
}
