// Ablation: bounded history storage.
//
// Paper §2.3: "The amount of history information stored at a node also
// influences the quality of the edge." This sweep bounds each node's
// history profile (FIFO eviction) and measures the effect on forwarder-set
// size and edge reuse under Utility Model I.
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Ablation: history capacity",
                        "Per-node history bound (entries, FIFO eviction), Utility Model I, "
                        "f = 0.2 (" + std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"capacity", "avg ||pi||", "path quality Q(pi)",
                            "new-edge frac (late)", "avg member payoff"});
  for (std::size_t capacity : {std::size_t{0}, std::size_t{200}, std::size_t{50},
                               std::size_t{10}, std::size_t{2}}) {
    harness::ScenarioConfig cfg = paper_config(0.2, core::StrategyKind::kUtilityModelI);
    cfg.history_capacity = capacity;
    const auto r = run(cfg);
    double late = 0.0;
    std::size_t n = 0;
    for (std::size_t j = r.new_edge_fraction_by_conn.size() - 5;
         j < r.new_edge_fraction_by_conn.size(); ++j) {
      late += r.new_edge_fraction_by_conn[j].mean();
      ++n;
    }
    table.add_row({capacity == 0 ? "unbounded" : std::to_string(capacity),
                   harness::fmt(r.forwarder_set_size.mean()),
                   harness::fmt(r.path_quality.mean(), 3),
                   harness::fmt(late / static_cast<double>(n), 3),
                   harness::fmt(r.member_payoff.mean())});
  }
  emit(table, "abl_history_capacity");
  std::cout << "\nReading: selectivity needs enough retained entries per (pair, "
               "predecessor) to stabilise choices; tiny bounds erase the history "
               "signal and only the availability term remains.\n";
  return 0;
}
