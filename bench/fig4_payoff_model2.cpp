// Figure 4: average payoff for a non-malicious node vs adversary fraction f,
// under Utility Model II (path-quality lookahead), with 95% CIs.
//
// Paper shape: same decreasing trend as Figure 3 — "both utility models
// exhibit similar nature".
#include "common.hpp"

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  harness::print_banner(std::cout, "Figure 4",
                        "Average payoff for a non-malicious node vs adversary fraction f "
                        "(Utility Model II, 95% CI over " +
                            std::to_string(replicate_count()) + " replicates)");

  harness::TextTable table({"f", "avg payoff (good node)", "95% CI half-width", "avg ||pi||"});
  for (double f : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const auto r = run(paper_config(f, core::StrategyKind::kUtilityModelII));
    const auto ci = r.member_payoff_ci();
    table.add_row({harness::fmt(f, 1), harness::fmt(ci.mean), harness::fmt(ci.half_width),
                   harness::fmt(r.forwarder_set_size.mean())});
  }
  emit(table, "fig4_payoff_model2");
  std::cout << "\nExpected shape (paper): same decreasing trend as Figure 3.\n";
  return 0;
}
