// Attack bench: availability attack (paper §5 threat (1)).
//
// Malicious nodes keep their sessions alive permanently so that availability-
// driven routing re-forms paths through them. We sweep the availability
// weight w_a and report the fraction of forwarding instances captured by
// malicious nodes — the attack surface — under Utility Model I.
#include "common.hpp"

#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

double malicious_capture_fraction(double w_a, bool always_online, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;

  net::OverlayConfig ocfg;
  ocfg.node_count = 40;
  ocfg.degree = 5;
  ocfg.malicious_fraction = 0.2;
  ocfg.malicious_always_online = always_online;
  net::Overlay overlay(ocfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::QualityWeights weights{1.0 - w_a, w_a};
  core::EdgeQualityEvaluator quality(probing, history, weights);
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());

  core::UtilityModelIRouting good_strategy;
  core::StrategyAssignment strategies(overlay, good_strategy);

  overlay.start();
  simulator.run_until(sim::hours(2.0));  // long warmup lets attackers stand out

  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  std::uint64_t malicious_instances = 0, total_instances = 0;
  for (net::PairId pid = 0; pid < 30; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::ConnectionSetSession session(pid, initiator, responder, core::Contract{});
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 0; k < 20; ++k) {
      simulator.run_until(simulator.now() + 30.0);
      overlay.force_online(initiator);
      overlay.force_online(responder);
      const core::BuiltPath& path =
          session.run_connection(builder, history, strategies, ledger, overlay, stream);
      for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
        ++total_instances;
        if (overlay.node(path.nodes[i]).is_malicious()) ++malicious_instances;
      }
    }
  }
  return total_instances > 0
             ? static_cast<double>(malicious_instances) / static_cast<double>(total_instances)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace p2panon;
  using namespace p2panon::bench;

  const harness::AdaptiveConfig adaptive = parse_sweep_options(argc, argv, 0.02);
  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Attack: availability",
                        "Fraction of forwarding instances captured by malicious nodes "
                        "(f = 0.2) vs availability weight w_a, with and without the "
                        "always-online availability attack (" +
                            std::to_string(replicates) + " replicate cap)");

  using Kind = harness::MetricSpec::Kind;
  harness::AdaptiveRunner runner(adaptive, {
                                               {"capture_honest", Kind::kMean, 0.0, false, 0.0},
                                               {"capture_attacked", Kind::kMean, 0.0, false, 0.0},
                                           });

  harness::TextTable table({"w_a", "capture, honest uptime", "capture, availability attack",
                            "attack gain", "reps"});
  std::ostringstream cells_json;
  bool first_cell = true;
  for (double w_a : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::uint64_t fp = harness::fnv1a_bytes(harness::fnv1a_init(), "attack_availability");
    fp = harness::fnv1a_mix(fp, base_seed());
    fp = harness::fnv1a_double(fp, w_a);
    const std::string key = "wa" + harness::fmt(w_a, 2);
    const harness::AdaptiveCellResult cell =
        runner.run_cell(key, fp, replicates, [&](std::size_t r) {
          return std::vector<double>{malicious_capture_fraction(w_a, false, base_seed() + r),
                                     malicious_capture_fraction(w_a, true, base_seed() + r)};
        });
    table.add_row({harness::fmt(w_a, 2), harness::fmt(cell.metrics[0].mean(), 3),
                   harness::fmt(cell.metrics[1].mean(), 3),
                   harness::fmt(cell.metrics[1].mean() - cell.metrics[0].mean(), 3),
                   std::to_string(cell.outcome.replicates_used) + "/" +
                       std::to_string(cell.outcome.replicates_planned)});
    cells_json << (first_cell ? "" : ",") << "\n    {\"cell\": \"" << key
               << "\", \"attack_gain\": "
               << cell.metrics[1].mean() - cell.metrics[0].mean() << ", "
               << adaptive_json_fields(cell.outcome) << "}";
    first_cell = false;
  }
  emit(table, "attack_availability");
  std::ostringstream json;
  json << "{\n  \"adaptive\": " << (adaptive.adaptive ? "true" : "false")
       << ",\n  \"eps\": " << adaptive.eps << ",\n  \"cells\": [" << cells_json.str()
       << "\n  ]\n}\n";
  write_bench_json("BENCH_attack_availability.json", json.str());
  std::cout << "\nReading: the capture gain from staying always-online grows with the "
               "availability weight w_a — quantifying the paper's §5 availability "
               "attack and the w_s/w_a trade-off that mitigates it.\n";
  return 0;
}
