// Ablation: connection-id rotation (defense for the paper's §5 attack (3)).
//
// A malicious forwarder links all connections of a recurring set that pass
// through it via the cid in its history. Rotating to a fresh pseudonymous
// cid every E connections caps the linkable profile at E, but also resets
// history selectivity, so the forwarder set grows — a measurable
// privacy/efficiency trade-off.
#include "common.hpp"

#include "attack/traffic_analysis.hpp"
#include "core/edge_quality.hpp"
#include "core/incentive.hpp"
#include "net/probing.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace p2panon;

struct Outcome {
  double largest_profile = 0.0;
  double set_size = 0.0;
  double quality = 0.0;
};

Outcome run_rotation(std::uint32_t rotation, std::uint64_t seed) {
  sim::rng::Stream root(seed);
  sim::Simulator simulator;
  net::OverlayConfig cfg;
  cfg.node_count = 40;
  cfg.degree = 5;
  cfg.malicious_fraction = 0.2;
  net::Overlay overlay(cfg, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, net::ProbingConfig{}, root.child("probing"));
  core::HistoryStore history(overlay.size());
  core::EdgeQualityEvaluator quality(probing, history, core::QualityWeights{});
  core::PathBuilder builder(overlay, quality);
  core::PayoffLedger ledger(overlay.size());
  core::UtilityModelIRouting strategy;
  core::StrategyAssignment assign(overlay, strategy);

  std::vector<bool> compromised(overlay.size(), false);
  for (net::NodeId id : overlay.malicious_nodes()) compromised[id] = true;
  attack::TrafficAnalysis analysis(compromised);

  overlay.start();
  simulator.run_until(sim::minutes(60.0));

  Outcome out;
  auto pair_stream = root.child("pairs");
  auto run_stream = root.child("run");
  const std::size_t pairs = 20;
  for (net::PairId pid = 0; pid < pairs; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::Contract contract;
    contract.cid_rotation = rotation;
    core::ConnectionSetSession session(pid, initiator, responder, contract);
    auto stream = run_stream.child("pair", pid);
    for (std::uint32_t k = 1; k <= 20; ++k) {
      simulator.run_until(simulator.now() + sim::minutes(1.0));
      overlay.force_online(initiator);
      overlay.force_online(responder);
      const core::BuiltPath& p =
          session.run_connection(builder, history, assign, ledger, overlay, stream);
      // The attacker links by the *wire-visible* cid.
      analysis.observe_path(session.effective_pair(k), p.nodes);
    }
    out.set_size += static_cast<double>(session.forwarder_set().size()) / pairs;
    out.quality += session.path_quality() / pairs;
  }
  out.largest_profile = static_cast<double>(analysis.largest_linked_profile());
  return out;
}

}  // namespace

int main() {
  using namespace p2panon;
  using namespace p2panon::bench;

  const std::size_t replicates = replicate_count();
  harness::print_banner(std::cout, "Ablation: cid rotation",
                        "Largest cid-linked profile vs forwarder-set size as the initiator "
                        "rotates its connection-set id every E connections (f = 0.2, "
                        "Utility Model I, 20 pairs x 20 connections, " +
                            std::to_string(replicates) + " replicates)");

  harness::TextTable table({"rotation E", "largest linked profile (of 20)", "avg ||pi||",
                            "avg Q(pi)"});
  for (std::uint32_t rotation : {0u, 10u, 5u, 2u, 1u}) {
    metrics::Accumulator profile, set, q;
    for (std::size_t r = 0; r < replicates; ++r) {
      const Outcome out = run_rotation(rotation, base_seed() + r);
      profile.add(out.largest_profile);
      set.add(out.set_size);
      q.add(out.quality);
    }
    table.add_row({rotation == 0 ? "never" : std::to_string(rotation),
                   harness::fmt(profile.mean(), 1), harness::fmt(set.mean()),
                   harness::fmt(q.mean(), 3)});
  }
  emit(table, "abl_cid_rotation");
  std::cout << "\nReading: the linkable profile collapses to the epoch length E, while "
               "||pi|| grows as selectivity resets each epoch (availability still "
               "provides continuity). E ~ 5 keeps most of the anonymity benefit at a "
               "modest linkage budget — the kind of defense the paper's §5 defers to "
               "its system implementation.\n";
  return 0;
}
