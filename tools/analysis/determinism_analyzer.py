#!/usr/bin/env python3
"""Semantic determinism analyzer for the sharded simulation core.

Four rule families the regex invariant linter (tools/lint/check_invariants.py,
rules R1-R6) structurally cannot express, because they require resolving
*types* and *enclosing contexts* rather than matching tokens:

D1 unordered-iteration order sensitivity
    Iterating a ``std::unordered_map`` / ``std::unordered_set`` is
    implementation-defined order. That order is stable for one stdlib build,
    which is exactly why no test catches it: results change when the stdlib,
    platform, or hash seed changes, breaking the bitwise reproducibility every
    figure in EXPERIMENTS.md assumes. The rule flags any iteration over an
    unordered container whose loop body is *order-sensitive*: it appends to a
    sequence, streams output, early-exits, calls a side-effecting function, or
    performs a last-writer-wins assignment. Order-insensitive folds
    (commutative ``+=`` / ``|=`` counters, ``x = std::max(x, ...)``,
    re-keyed inserts into another associative container) and the
    collect-then-sort idiom (push keys into a local vector that is
    ``std::sort``-ed afterwards) pass.

D2 banned determinism sources, resolved semantically
    ``std::random_device`` (ambient entropy), ``std::chrono::system_clock`` /
    ``steady_clock`` / ``high_resolution_clock`` outside ``src/parallel`` and
    bench timing, ``std::this_thread::get_id`` / ``pthread_self`` (thread
    identity leaks scheduling), and *keying or hashing by raw pointer value*
    (``unordered_map<T*, ...>``, ``std::map<T*, ...>`` — address order,
    ``std::hash<T*>``, ``reinterpret_cast<uintptr_t>`` of a pointer): heap
    addresses differ run to run, so any pointer-keyed structure is a hidden
    entropy source even when iteration looks deterministic.

D3 RNG discipline
    Every ``std::*_distribution`` construction and every raw engine
    instantiation (``std::mt19937`` and friends) must either live in
    ``src/sim/rng.*`` or occur inside a function taking a ``sim::rng::Stream&``
    parameter — so every draw provably traces to a seeded, splittable child
    stream and replaying a seed replays the run.

D4 shard-ownership discipline (semantic generalisation of regex rule R6)
    Direct writes to ``net::NodeStateSoA`` columns (``online[i] = ...``,
    ``tracker[i].on_join(...)``, column ``.assign``/``.clear``) are only legal
    from the owning module (``src/net/overlay.*``, ``src/net/soa.hpp``), from
    a function that *derives ownership* of the written index via
    ``shard_of(...)`` before the write, or inside a window-barrier callback
    (a lambda registered through ``add_barrier_hook``). Anything else is a
    write to peer-shard state that is bitwise-correct at K = 1 and a data
    race at K > 1 — the exact bug class no K = 1 test can see. The same
    ownership test applies to ``shard(x).schedule_*`` call sites.

Backends
    ``--backend libclang`` drives python3-clang off the CMake
    ``compile_commands.json`` and resolves container/engine types through the
    AST. ``--backend builtin`` is a dependency-free structural analyzer (a
    C++ lexer + brace-tree scanner with declared-type tracking) that runs in
    any container. ``--backend auto`` (default) prefers libclang and falls
    back to builtin — the two share the scope rules, the order-sensitivity
    classifier, the ownership-context checks, and the reporting layer, so a
    finding means the same thing under either.

Suppressions
    ``tools/analysis/suppressions.txt`` carries per-finding waivers; every
    entry must name a rule, a file (optionally ``:line``) and a justification
    after ``#``. Entries without justification and entries that no longer
    match any finding are themselves findings — the suppression file cannot
    rot silently.

Exit status: 0 clean, 1 findings, 2 configuration error.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

RULE_IDS = ("D1", "D2", "D3", "D4")

# Directories analysed (repo-relative). tests/ are deliberately out of scope:
# they may use ad-hoc RNGs and wall clocks to exercise code.
SCOPE_DIRS = ("src", "bench", "examples")

# D2: clocks are legitimate in the thread-pool plumbing and in bench timing
# loops (they time the host, not the simulation).
CLOCK_ALLOWED_PREFIXES = ("src/parallel/", "bench/")

# D3: the one module allowed to own raw engines/distributions.
RNG_HOME_PREFIX = "src/sim/rng."

# D4: modules that own NodeStateSoA mutation outright.
SOA_OWNER_FILES = ("src/net/overlay.cpp", "src/net/overlay.hpp", "src/net/soa.hpp")

UNORDERED_RE = r"unordered_(?:map|set|multimap|multiset)"

RAW_ENGINE_NAMES = (
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b", "mersenne_twister_engine",
    "linear_congruential_engine", "subtract_with_carry_engine",
    "discard_block_engine", "independent_bits_engine", "shuffle_order_engine",
)

FIXTURE_PATH_RE = re.compile(r"analyzer-fixture:\s*path=(\S+)")


@dataclasses.dataclass
class Finding:
    rule: str
    file: str           # real path, repo-relative (or fixture-relative)
    line: int
    message: str
    suppressed: bool = False

    def key(self) -> Tuple[str, str, int]:
        return (self.rule, self.file, self.line)

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Lexical groundwork (shared by both backends)
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str) -> str:
    """Blank comments and string/char literals, preserving line structure so
    offsets map to the original file. Understands //, /* */, "...", '...'."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(" " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def match_fwd(text: str, open_idx: int, open_ch: str, close_ch: str) -> int:
    """Index one past the matching close for the opener at open_idx."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def match_angle(text: str, open_idx: int) -> int:
    """One past the matching ``>`` for ``<`` at open_idx. Tolerates ``>>``
    closing two levels; only sound after a known template name."""
    depth = 0
    i = open_idx
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{}":
            break  # not a template argument list after all
        i += 1
    return len(text)


def first_template_arg(text: str, lt_idx: int) -> str:
    """Text of the first template argument of the list opening at lt_idx."""
    end = match_angle(text, lt_idx)
    depth = 0
    for i in range(lt_idx, end):
        c = text[i]
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == "," and depth == 1:
            return text[lt_idx + 1:i].strip()
    return text[lt_idx + 1:end - 1].strip()


def line_of(text: str, idx: int) -> int:
    return text.count("\n", 0, idx) + 1


# --------------------------------------------------------------------------
# Structural scan: a brace tree with function / lambda classification
# --------------------------------------------------------------------------

CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch"}
TYPE_KEYWORDS = {"struct", "class", "union", "enum"}
QUALIFIER_WORDS = {"const", "noexcept", "override", "final", "mutable", "volatile",
                   "&", "&&", "try"}


@dataclasses.dataclass
class Block:
    start: int                 # index of '{'
    end: int                   # one past matching '}'
    kind: str                  # 'function' | 'lambda' | 'type' | 'namespace' | 'control' | 'other'
    name: str = ""             # function name when kind == 'function'
    params: str = ""           # parameter list text for function/lambda
    parent_call: str = ""      # for lambdas: callee the lambda is an argument of
    header_start: int = 0


def _skip_ws_back(s: str, i: int) -> int:
    while i >= 0 and s[i] in " \t\r\n":
        i -= 1
    return i


def _word_back(s: str, i: int) -> Tuple[str, int]:
    """Word ending at index i (inclusive); returns (word, start_index)."""
    j = i
    while j >= 0 and (s[j].isalnum() or s[j] in "_~"):
        j -= 1
    return s[j + 1:i + 1], j + 1


def _match_paren_back(s: str, close_idx: int) -> int:
    """Index of the '(' matching the ')' at close_idx, or -1."""
    depth = 0
    for i in range(close_idx, -1, -1):
        if s[i] == ")":
            depth += 1
        elif s[i] == "(":
            depth -= 1
            if depth == 0:
                return i
    return -1


def _enclosing_call_name(s: str, idx: int) -> str:
    """Name of the innermost pending call enclosing position idx (the
    identifier before the nearest unclosed '(' scanning backwards)."""
    depth = 0
    i = idx - 1
    while i >= 0:
        c = s[i]
        if c == ")":
            depth += 1
        elif c == "(":
            if depth == 0:
                j = _skip_ws_back(s, i - 1)
                word, _ = _word_back(s, j)
                return word
            depth -= 1
        elif c in ";{}" and depth == 0:
            break
        i -= 1
    return ""


def classify_brace(s: str, i: int) -> Block:
    """Classify the '{' at index i by looking backwards at its header."""
    end = match_fwd(s, i, "{", "}")
    j = _skip_ws_back(s, i - 1)
    if j < 0:
        return Block(i, end, "other")

    # Walk back over trailing qualifiers / trailing-return-type to find the
    # parameter list of a function header, tolerating a ctor init list.
    k = j
    hops = 0
    while k >= 0 and hops < 40:
        hops += 1
        c = s[k]
        if c == ")":
            op = _match_paren_back(s, k)
            if op <= 0:
                break
            # Constructor init list: "...) : member_(x), other_(y) {" — the
            # ')' we found belongs to an initializer. Scan further back for
            # a ': ' preceded by ')' at depth 0 and restart from there.
            pre = _skip_ws_back(s, op - 1)
            word, wstart = _word_back(s, pre)
            if word in CONTROL_KEYWORDS:
                return Block(i, end, "control", header_start=wstart)
            if word == "":
                if pre >= 0 and s[pre] == "]":
                    # "](...)" — lambda with parameter list.
                    lam_params = s[op + 1:k]
                    return Block(i, end, "lambda", params=lam_params,
                                 parent_call=_enclosing_call_name(s, _find_lambda_open(s, pre)),
                                 header_start=pre)
                if pre >= 0 and s[pre] in ",(":
                    # init list element — keep scanning back.
                    k = _skip_ws_back(s, op - 1)
                    continue
                break
            # Possible init-list member "member_(x)": check for ':' further
            # back at this level that itself follows a ')'.
            colon = _find_init_colon(s, wstart - 1)
            if colon is not None:
                k = colon
                continue
            if word in TYPE_KEYWORDS or word == "namespace":
                return Block(i, end, "type" if word != "namespace" else "namespace",
                             header_start=wstart)
            return Block(i, end, "function", name=word, params=s[op + 1:k],
                         header_start=wstart)
        if c == "]":
            # "] {" or "] mutable {" — captureless-param lambda.
            return Block(i, end, "lambda",
                         parent_call=_enclosing_call_name(s, _find_lambda_open(s, k)),
                         header_start=k)
        word, wstart = _word_back(s, k)
        if word in QUALIFIER_WORDS or word == "":
            if word == "":
                if c in "&*>":
                    k -= 1
                    continue
                if c == ":":  # could be init-list ':' or base-class ':'
                    k = _skip_ws_back(s, k - 1)
                    continue
                break
            k = _skip_ws_back(s, wstart - 1)
            continue
        if word in CONTROL_KEYWORDS or word in {"else", "do", "try"}:
            return Block(i, end, "control", header_start=wstart)
        if word == "namespace":
            return Block(i, end, "namespace", header_start=wstart)
        if word in TYPE_KEYWORDS:
            return Block(i, end, "type", header_start=wstart)
        # identifier before '{' — class name, enum name, or init. Look one
        # more word back for struct/class/namespace.
        prev = _skip_ws_back(s, wstart - 1)
        pword, pstart = _word_back(s, prev)
        if pword == "namespace":
            return Block(i, end, "namespace", header_start=pstart)
        if pword in TYPE_KEYWORDS:
            return Block(i, end, "type", header_start=pstart)
        return Block(i, end, "other", header_start=wstart)
    return Block(i, end, "other", header_start=max(j, 0))


def _find_lambda_open(s: str, close_bracket: int) -> int:
    """Index of the '[' matching the ']' at close_bracket."""
    depth = 0
    for i in range(close_bracket, -1, -1):
        if s[i] == "]":
            depth += 1
        elif s[i] == "[":
            depth -= 1
            if depth == 0:
                return i
    return close_bracket


def _find_init_colon(s: str, idx: int) -> Optional[int]:
    """Scan back from idx for the ':' starting a ctor init list; return the
    index of the ')' that precedes it (to resume header scanning)."""
    depth = 0
    i = idx
    while i >= 0:
        c = s[i]
        if c in ")}]":
            depth += 1
        elif c in "({[":
            depth -= 1
            if depth < 0:
                return None
        elif depth == 0:
            if c == ";":
                return None
            if c == ":":
                if i > 0 and s[i - 1] == ":":  # '::' qualifier
                    i -= 2
                    continue
                j = _skip_ws_back(s, i - 1)
                if j >= 0 and s[j] == ")":
                    return j
                return None
        i -= 1
    return None


def build_blocks(s: str) -> List[Block]:
    blocks = []
    i = 0
    while True:
        i = s.find("{", i)
        if i == -1:
            break
        blocks.append(classify_brace(s, i))
        i += 1
    return blocks


def enclosing_function(blocks: List[Block], pos: int) -> Optional[Block]:
    """Innermost function or lambda block containing pos."""
    best = None
    for b in blocks:
        if b.kind in ("function", "lambda") and b.start < pos < b.end:
            if best is None or b.start > best.start:
                best = b
    return best


def enclosing_chain(blocks: List[Block], pos: int) -> List[Block]:
    """All function/lambda blocks containing pos, outermost first."""
    chain = [b for b in blocks
             if b.kind in ("function", "lambda") and b.start < pos < b.end]
    chain.sort(key=lambda b: b.start)
    return chain


# --------------------------------------------------------------------------
# Project symbol table (declared-type tracking, shared by both backends)
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Symbols:
    unordered_vars: Set[str] = dataclasses.field(default_factory=set)
    unordered_getters: Set[str] = dataclasses.field(default_factory=set)
    map_like_vars: Set[str] = dataclasses.field(default_factory=set)
    soa_vars: Set[str] = dataclasses.field(default_factory=set)
    soa_columns: Set[str] = dataclasses.field(default_factory=set)


UNORDERED_DECL_RE = re.compile(rf"(?:std\s*::\s*)?\b{UNORDERED_RE}\s*<")
MAP_DECL_RE = re.compile(r"(?:std\s*::\s*)?\b(?:map|set|multimap|multiset|flat_hash_map|FlatHash\w*)\s*<")
SOA_DECL_RE = re.compile(r"(?:net\s*::\s*)?\bNodeStateSoA\s*([&*]?)\s*(\w+)\s*[;={(,)]")
SOA_STRUCT_RE = re.compile(r"\bstruct\s+NodeStateSoA\b")
COLUMN_RE = re.compile(r"std\s*::\s*vector\s*<[^;]*?>\s+(\w+)\s*;")


def _decl_name_after(text: str, end_of_type: int) -> Optional[str]:
    """Variable name following a container type spelling ending at
    end_of_type. Handles ``Type name;``, ``Type& name``, ``Type name = ...``,
    ``Type name{...}`` and skips function return types (``Type name(...) ...``
    is accepted only when it looks like a declaration, which we approximate
    by rejecting names followed by a parameter-ish list containing types)."""
    m = re.match(r"\s*(?:const\s+)?([&*]\s*)?(\w+)\s*([;={[(,)]|$)", text[end_of_type:end_of_type + 160])
    if not m:
        return None
    return m.group(2)


def collect_symbols(stripped_by_file: Dict[str, str]) -> Symbols:
    sym = Symbols()
    for _path, s in stripped_by_file.items():
        for m in UNORDERED_DECL_RE.finditer(s):
            close = match_angle(s, m.end() - 1)
            # getter returning a (const) unordered ref: "...>& name() const"
            g = re.match(r"\s*&\s*(\w+)\s*\(\s*\)\s*const", s[close:close + 120])
            if g:
                sym.unordered_getters.add(g.group(1))
                continue
            name = _decl_name_after(s, close)
            if name and not name[0].isdigit():
                sym.unordered_vars.add(name)
                sym.map_like_vars.add(name)
        for m in MAP_DECL_RE.finditer(s):
            close = match_angle(s, m.end() - 1)
            name = _decl_name_after(s, close)
            if name and not name[0].isdigit():
                sym.map_like_vars.add(name)
        for m in SOA_DECL_RE.finditer(s):
            sym.soa_vars.add(m.group(2))
        for m in SOA_STRUCT_RE.finditer(s):
            brace = s.find("{", m.end())
            if brace == -1:
                continue
            body = s[brace:match_fwd(s, brace, "{", "}")]
            for c in COLUMN_RE.finditer(body):
                sym.soa_columns.add(c.group(1))
    # Keywords / common false positives never count as container variables.
    sym.unordered_vars.discard("if")
    sym.map_like_vars.discard("if")
    return sym


# --------------------------------------------------------------------------
# D1 order-sensitivity classifier (shared by both backends)
# --------------------------------------------------------------------------

SORT_RE_TMPL = r"\b(?:std\s*::\s*)?(?:stable_)?sort\s*\([^;]*\b{var}\b"


def split_statements(body: str) -> Iterator[str]:
    """Yield simple statements of a loop body, descending into nested control
    blocks. Control headers (``if (...)`` etc.) are dropped — their
    conditions are reads; ``break``/``return`` are caught separately."""
    i, n = 0, len(body)
    while i < n:
        c = body[i]
        if c in " \t\r\n;":
            i += 1
            continue
        if c == "{":
            end = match_fwd(body, i, "{", "}")
            yield from split_statements(body[i + 1:end - 1])
            i = end
            continue
        m = re.match(r"(if|for|while|switch|else\s+if|else|do)\b", body[i:])
        if m:
            i += m.end()
            # skip the optional (...) header
            j = i
            while j < n and body[j] in " \t\r\n":
                j += 1
            if j < n and body[j] == "(":
                i = match_fwd(body, j, "(", ")")
            continue
        # plain statement: up to ';' at depth 0 (or an opening '{' of a
        # nested lambda body, which we include wholesale)
        depth = 0
        j = i
        while j < n:
            ch = body[j]
            if ch in "([{":
                depth += 1
            elif ch in ")]}":
                depth -= 1
            elif ch == ";" and depth == 0:
                break
            j += 1
        yield body[i:j].strip()
        i = j + 1


# The separator between type and name must be real whitespace or a ref/ptr
# sigil — otherwise `last_seen_ = id` backtracks into type `last_seen`,
# name `_`, and a member assignment masquerades as a local declaration.
DECL_STMT_RE = re.compile(
    r"^(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:\s*<[^=;]*>)?)"
    r"(?:\s+[&*]?|\s*[&*])\s*"
    r"(?:\[\s*[\w,\s]+\s*\]|\w+)\s*(?:[;={(]|$)")
LOCAL_NAME_RE = re.compile(
    r"^(?:const\s+)?(?:auto|[A-Za-z_][\w:]*(?:\s*<[^=;]*>)?)"
    r"(?:\s+[&*]?|\s*[&*])\s*(\w+)")
MAX_FOLD_RE = re.compile(
    r"^([\w.\->\[\]]+)\s*=\s*(?:std\s*::\s*)?(?:max|min)\s*\(\s*\1\s*,")
VOID_CAST_RE = re.compile(r"^\(\s*void\s*\)")
INCDEC_RE = re.compile(r"^(?:\+\+|--)\s*[\w.\->\[\]]+$|^[\w.\->\[\]]+\s*(?:\+\+|--)$")
COMPOUND_RE = re.compile(r"^([\w.\->\[\]()]+?)\s*(?:\+=|-=|\*=|/=|\|=|&=|\^=)(?!=)")
APPEND_RE = re.compile(r"^(\w+)\s*\.\s*(?:push_back|emplace_back)\s*\(")
MAP_SINK_RE = re.compile(r"^(\w+)\s*(?:\[[^\]]*\]\s*=(?!=)|\.\s*(?:insert|emplace|try_emplace|erase)\s*\()")
PLAIN_ASSIGN_RE = re.compile(r"^([\w.\->\[\]]+)\s*=(?!=)")
CALL_STMT_RE = re.compile(r"^[\w.\->:\[\]]+\s*\(")


def loop_locals(decl_text: str) -> Set[str]:
    """Names bound by the range-for declaration (handles structured
    bindings)."""
    names: Set[str] = set()
    b = re.search(r"\[([\w,\s]+)\]", decl_text)
    if b:
        names.update(x.strip() for x in b.group(1).split(",") if x.strip())
        return names
    m = re.search(r"(\w+)\s*$", decl_text)
    if m:
        names.add(m.group(1))
    return names


def classify_order_sensitivity(decl_text: str, body: str, after: str,
                               sym: Symbols) -> Optional[str]:
    """Return None if the loop body is provably order-insensitive, else a
    human-readable reason why iteration order leaks into results."""
    if re.search(r"\breturn\b", body):
        return "returns from inside the iteration (first match depends on hash order)"
    if re.search(r"\bbreak\b", body):
        return "breaks out of the iteration (early exit depends on hash order)"
    if "<<" in body or ">>" in body:
        return "streams output (or shifts into a digest) in iteration order"

    locals_: Set[str] = set(loop_locals(decl_text))
    for stmt in split_statements(body):
        if not stmt or VOID_CAST_RE.match(stmt):
            continue
        if stmt.startswith("continue"):
            continue
        if INCDEC_RE.match(stmt):
            continue
        if MAX_FOLD_RE.match(stmt):
            continue
        if COMPOUND_RE.match(stmt):
            continue  # commutative-fold accumulation
        m = APPEND_RE.match(stmt)
        if m:
            var = m.group(1)
            if re.search(SORT_RE_TMPL.format(var=re.escape(var)), after):
                continue  # collect-then-sort idiom
            return (f"appends to `{var}` in iteration order and never sorts it; "
                    f"sort the collected keys (collect-then-sort) or iterate a "
                    f"deterministic container")
        m = MAP_SINK_RE.match(stmt)
        if m and (m.group(1) in sym.map_like_vars or m.group(1) in locals_):
            continue  # re-keyed insert into an associative container
        if DECL_STMT_RE.match(stmt) and not CALL_STMT_RE.match(stmt):
            lm = LOCAL_NAME_RE.match(stmt)
            if lm:
                locals_.add(lm.group(1))
            continue
        m = PLAIN_ASSIGN_RE.match(stmt)
        if m:
            base = m.group(1).split(".")[0].split("->")[0].split("[")[0]
            if base in locals_:
                continue
            return (f"plain assignment to `{m.group(1)}` is last-writer-wins "
                    f"under hash order")
        if CALL_STMT_RE.match(stmt):
            return (f"side-effect-only call `{stmt.split('(')[0].strip()}(...)` "
                    f"executes in iteration order")
        return f"statement `{stmt[:48]}` is not a recognised order-insensitive fold"
    return None


def d1_message(reason: str) -> str:
    return (f"iteration over an unordered container is implementation-defined "
            f"order and {reason}; results will differ across stdlib builds, "
            f"breaking bitwise reproducibility. Iterate sorted keys, switch "
            f"the container, or make the fold commutative")


# --------------------------------------------------------------------------
# Ownership-context checks for D4 (shared by both backends)
# --------------------------------------------------------------------------


def in_owner_context(stripped: str, blocks: List[Block], pos: int) -> bool:
    """True when the write at ``pos`` is inside a context that establishes
    shard ownership: the enclosing function derives the shard via
    ``shard_of(...)`` before the write, or the write sits in a lambda
    registered as a window-barrier hook."""
    chain = enclosing_chain(blocks, pos)
    for b in chain:
        if b.kind == "lambda" and b.parent_call == "add_barrier_hook":
            return True
    fn = chain[-1] if chain else None
    if fn is not None and "shard_of" in stripped[fn.start:pos]:
        return True
    # Ownership derived in the outer function that the lambda was defined in
    # also counts (the lambda inherits the derivation lexically).
    for b in chain[:-1]:
        if "shard_of" in stripped[b.start:pos]:
            return True
    return False


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------


@dataclasses.dataclass
class SourceFile:
    real: str            # path as reported in findings
    scope: str           # path used for scope decisions (fixture virtual path)
    raw: str
    stripped: str
    blocks: List[Block] = dataclasses.field(default_factory=list)

    def in_scope(self) -> bool:
        return any(self.scope == d or self.scope.startswith(d + "/") for d in SCOPE_DIRS)


def load_source(repo: pathlib.Path, path: pathlib.Path,
                rel_to: pathlib.Path) -> SourceFile:
    raw = path.read_text(encoding="utf-8", errors="replace")
    real = str(path.relative_to(rel_to))
    scope = real
    head = "\n".join(raw.splitlines()[:5])
    m = FIXTURE_PATH_RE.search(head)
    if m:
        scope = m.group(1)
    stripped = strip_comments_and_strings(raw)
    sf = SourceFile(real=real, scope=scope, raw=raw, stripped=stripped)
    sf.blocks = build_blocks(stripped)
    return sf


# --------------------------------------------------------------------------
# Builtin backend rule passes
# --------------------------------------------------------------------------

FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_ITER_RE = re.compile(r"=\s*(\w+)\s*\.\s*begin\s*\(\s*\)")


def find_range_for(sf: SourceFile, sym: Symbols) -> Iterator[Tuple[int, str, str, str]]:
    """Yield (pos, decl_text, range_expr, body) for every range-for whose
    range expression resolves to an unordered container, plus iterator loops
    seeded from ``x.begin()`` on one."""
    s = sf.stripped
    for m in FOR_RE.finditer(s):
        op = m.end() - 1
        close = match_fwd(s, op, "(", ")")
        header = s[op + 1:close - 1]
        # split at ':' at depth 0 → range-for
        depth = 0
        colon = -1
        for i, ch in enumerate(header):
            if ch in "<([{":
                depth += 1
            elif ch in ">)]}":
                depth -= 1
            elif ch == ":" and depth == 0:
                if i + 1 < len(header) and header[i + 1] == ":":
                    continue
                if i > 0 and header[i - 1] == ":":
                    continue
                colon = i
                break
        body_start = close
        while body_start < len(s) and s[body_start] in " \t\r\n":
            body_start += 1
        if body_start < len(s) and s[body_start] == "{":
            body = s[body_start + 1:match_fwd(s, body_start, "{", "}") - 1]
        else:
            semi = s.find(";", body_start)
            body = s[body_start:semi if semi != -1 else len(s)]
        if colon >= 0:
            decl, rng = header[:colon], header[colon + 1:].strip()
            base = None
            g = re.search(r"(\w+)\s*\(\s*\)\s*$", rng)
            if g and g.group(1) in sym.unordered_getters:
                base = g.group(1)
            else:
                im = re.search(r"([A-Za-z_]\w*)\s*$", rng)
                if im and im.group(1) in sym.unordered_vars:
                    base = im.group(1)
            if base is not None:
                yield m.start(), decl, rng, body
        else:
            im = BEGIN_ITER_RE.search(header)
            if im and im.group(1) in sym.unordered_vars:
                yield m.start(), "it", header, body


def rule_d1(sf: SourceFile, sym: Symbols) -> List[Finding]:
    findings = []
    s = sf.stripped
    for pos, decl, _rng, body in find_range_for(sf, sym):
        fn = enclosing_function(sf.blocks, pos)
        after = s[pos + len(body):fn.end] if fn else s[pos + len(body):]
        reason = classify_order_sensitivity(decl, body, after, sym)
        if reason is not None:
            findings.append(Finding("D1", sf.real, line_of(s, pos), d1_message(reason)))
    return findings


D2_SIMPLE = [
    (re.compile(r"\b(?:std\s*::\s*)?random_device\b"), None,
     "std::random_device is ambient entropy; derive a sim::rng::Stream child instead"),
    (re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::"), "clock",
     "wall/monotonic clock read; simulation time must come from Simulator::now()"),
    (re.compile(r"\bclock_gettime\s*\(|\bgettimeofday\s*\("), "clock",
     "raw OS clock read; simulation time must come from Simulator::now()"),
    (re.compile(r"\bthis_thread\s*::\s*get_id\b|\bpthread_self\s*\("), None,
     "thread identity leaks the host schedule into model-visible state"),
    (re.compile(r"\bstd\s*::\s*hash\s*<[^>]*\*\s*>"), None,
     "std::hash over a raw pointer hashes the allocation address (differs every run)"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std\s*::\s*)?u?intptr_t\s*>"), None,
     "pointer-to-integer cast exposes the allocation address as a value"),
]

KEYED_CONTAINER_RE = re.compile(
    r"\b(?:std\s*::\s*)?((?:unordered_)?(?:map|set|multimap|multiset))\s*<")


def rule_d2(sf: SourceFile, sym: Symbols) -> List[Finding]:
    del sym
    findings = []
    s = sf.stripped
    clock_ok = any(sf.scope.startswith(p) for p in CLOCK_ALLOWED_PREFIXES)
    for pat, cls, msg in D2_SIMPLE:
        if cls == "clock" and clock_ok:
            continue
        for m in pat.finditer(s):
            findings.append(Finding("D2", sf.real, line_of(s, m.start()), msg))
    for m in KEYED_CONTAINER_RE.finditer(s):
        arg = first_template_arg(s, m.end() - 1)
        if arg.endswith("*"):
            findings.append(Finding(
                "D2", sf.real, line_of(s, m.start()),
                f"{m.group(1)} keyed by raw pointer `{arg}`: address order/hash "
                f"differs across runs; key by a stable id instead"))
    return findings


D3_RE = re.compile(
    r"\b(?:std\s*::\s*)?(\w+_distribution|" + "|".join(RAW_ENGINE_NAMES) + r")\b")
STREAM_PARAM_RE = re.compile(r"(?:\brng\s*::\s*)?\bStream\s*[&*]")


def rule_d3(sf: SourceFile, sym: Symbols) -> List[Finding]:
    del sym
    if sf.scope.startswith(RNG_HOME_PREFIX):
        return []
    findings = []
    s = sf.stripped
    for m in D3_RE.finditer(s):
        fn = enclosing_function(sf.blocks, m.start())
        if fn is not None:
            chain = enclosing_chain(sf.blocks, m.start())
            if any(STREAM_PARAM_RE.search(b.params or "") for b in chain):
                continue
        findings.append(Finding(
            "D3", sf.real, line_of(s, m.start()),
            f"`{m.group(1)}` constructed outside src/sim/rng.* in a function "
            f"without a sim::rng::Stream& parameter; draws here cannot be "
            f"traced to a seeded child stream"))
    return findings


COLUMN_MUTATORS = {"on_join", "on_leave"}
COLUMN_METHOD_WRITES = {"assign", "clear", "resize", "push_back", "emplace_back",
                        "pop_back", "swap", "erase", "insert"}
ASSIGN_AFTER_RE = re.compile(r"^\s*(?:=(?!=)|\+=|-=|\*=|/=|\|=|&=|\^=|\+\+|--)")
SHARD_SCHED_RE = re.compile(r"\bshard\s*\(([^()]*)\)\s*\.\s*schedule_(?:in|at)\s*\(")
CROSS_SHARD_EXEMPT_RE = re.compile(r"lint-exempt\(cross-shard\):\s*\S")


def rule_d4(sf: SourceFile, sym: Symbols) -> List[Finding]:
    if sf.scope in SOA_OWNER_FILES:
        return []
    findings = []
    s = sf.stripped
    if sym.soa_vars and sym.soa_columns:
        var_alt = "|".join(re.escape(v) for v in sorted(sym.soa_vars))
        col_alt = "|".join(re.escape(c) for c in sorted(sym.soa_columns))
        access_re = re.compile(
            rf"\b({var_alt})\s*(?:\.|->)\s*({col_alt})\s*([\[.])")
        for m in access_re.finditer(s):
            col = m.group(2)
            write = False
            if m.group(3) == "[":
                close = match_fwd(s, m.end() - 1, "[", "]")
                tail = s[close:close + 40]
                if ASSIGN_AFTER_RE.match(tail):
                    write = True
                else:
                    mm = re.match(r"^\s*\.\s*(\w+)\s*\(", tail)
                    if mm and mm.group(1) in COLUMN_MUTATORS:
                        write = True
                pre = _skip_ws_back(s, m.start() - 1)
                if pre >= 1 and s[pre - 1:pre + 1] in ("++", "--"):
                    write = True
            else:
                mm = re.match(r"^\s*(\w+)\s*\(", s[m.end():m.end() + 40])
                if mm and mm.group(1) in COLUMN_METHOD_WRITES:
                    write = True
            if not write:
                continue
            if in_owner_context(s, sf.blocks, m.start()):
                continue
            findings.append(Finding(
                "D4", sf.real, line_of(s, m.start()),
                f"write to NodeStateSoA column `{col}` outside the owning "
                f"module, with no shard ownership derived (shard_of) in the "
                f"enclosing function and not inside a window-barrier callback; "
                f"at K > 1 this races the owning shard. Route through the "
                f"owner or a barrier hook"))
    raw_lines = sf.raw.splitlines()
    for m in SHARD_SCHED_RE.finditer(s):
        lineno = line_of(s, m.start())
        context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
        if CROSS_SHARD_EXEMPT_RE.search(context):
            continue
        fn = enclosing_function(sf.blocks, m.start())
        arg = m.group(1).strip()
        if fn is not None and arg:
            base = re.split(r"[.\->\[\s]", arg)[0]
            derived = re.search(
                rf"\b{re.escape(base)}\s*=\s*[^;]*shard_of\s*\(", s[fn.start:m.start()])
            if derived:
                continue
        findings.append(Finding(
            "D4", sf.real, line_of(s, m.start()),
            f"shard({arg or '...'}).schedule_* where `{arg or '?'}` is not "
            f"derived via shard_of(...) in the enclosing function; a "
            f"cross-shard schedule races the peer's event queue at K > 1. "
            f"Use ShardedSimulator::post or derive ownership first"))
    return findings


BUILTIN_RULES = (rule_d1, rule_d2, rule_d3, rule_d4)


def run_builtin(sources: List[SourceFile], sym: Symbols) -> List[Finding]:
    findings: List[Finding] = []
    for sf in sources:
        if not sf.in_scope():
            continue
        for rule in BUILTIN_RULES:
            findings.extend(rule(sf, sym))
    return findings


# --------------------------------------------------------------------------
# libclang backend
# --------------------------------------------------------------------------


class BackendUnavailable(RuntimeError):
    pass


class LibclangBackend:
    """AST-deepened detection via python3-clang. Runs the shared lexical
    passes first (so its findings are a strict superset of the builtin
    backend's), then adds AST-resolved extras the lexer cannot see: ranges
    reached through ``auto&`` aliases, typedef'd engines/distributions,
    pointer-keyed containers hidden behind aliases, and NodeStateSoA member
    writes resolved through the semantic parent rather than the spelt
    variable name. The order-sensitivity classifier and ownership-context
    checks are shared, applied to cursor extents."""

    def __init__(self, build_dir: Optional[pathlib.Path]):
        try:
            import clang.cindex as ci  # type: ignore
        except ImportError as e:
            raise BackendUnavailable(f"python3-clang not importable: {e}") from e
        self.ci = ci
        if ci.Config.loaded is False:
            for lib in self._candidate_libs():
                try:
                    ci.Config.set_library_file(str(lib))
                    break
                except Exception:  # pragma: no cover - defensive
                    continue
        try:
            self.index = ci.Index.create()
        except Exception as e:
            raise BackendUnavailable(f"libclang unavailable: {e}") from e
        self.cdb = None
        if build_dir is not None and (build_dir / "compile_commands.json").is_file():
            try:
                self.cdb = ci.CompilationDatabase.fromDirectory(str(build_dir))
            except Exception:
                self.cdb = None

    @staticmethod
    def _candidate_libs() -> List[pathlib.Path]:
        out = []
        import glob
        import subprocess
        try:
            libdir = subprocess.run(["llvm-config", "--libdir"], capture_output=True,
                                    text=True, timeout=30).stdout.strip()
            if libdir:
                out += [pathlib.Path(p) for p in glob.glob(f"{libdir}/libclang*.so*")]
        except Exception:
            pass
        for pat in ("/usr/lib/llvm-*/lib/libclang.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
                    "/usr/lib/libclang.so*"):
            out += [pathlib.Path(p) for p in glob.glob(pat)]
        return [p for p in out if "cpp" not in p.name]

    def _args_for(self, path: str) -> List[str]:
        if self.cdb is not None:
            cmds = self.cdb.getCompileCommands(path)
            if cmds:
                args = list(cmds[0].arguments)[1:]
                # Drop the output/input clauses; keep -I/-D/-std et al.
                cleaned, skip = [], False
                for a in args:
                    if skip:
                        skip = False
                        continue
                    if a in ("-o", "-c"):
                        skip = a == "-o"
                        continue
                    if a == path or a.endswith(path):
                        continue
                    cleaned.append(a)
                return cleaned
        return ["-std=c++20", "-xc++"]

    def analyze(self, sources: List[SourceFile], sym: Symbols,
                root: pathlib.Path) -> List[Finding]:
        by_real = {str((root / sf.real).resolve()): sf for sf in sources}
        findings: List[Finding] = list(run_builtin(sources, sym))
        seen: Set[Tuple[str, str, int]] = {f.key() for f in findings}
        tus = [p for p, sf in by_real.items()
               if sf.in_scope() and p.endswith((".cpp", ".cc"))]
        for tu_path in tus:
            try:
                tu = self.index.parse(tu_path, args=self._args_for(tu_path))
            except Exception as e:
                raise BackendUnavailable(f"parse failed for {tu_path}: {e}") from e
            for cur in tu.cursor.walk_preorder():
                loc = cur.location
                if loc.file is None:
                    continue
                sf = by_real.get(str(pathlib.Path(loc.file.name).resolve()))
                if sf is None or not sf.in_scope():
                    continue
                for f in self._visit(cur, sf, sym):
                    if f.key() not in seen:
                        seen.add(f.key())
                        findings.append(f)
        return findings

    # -- cursor dispatch ---------------------------------------------------

    def _visit(self, cur, sf: SourceFile, sym: Symbols) -> List[Finding]:
        ci = self.ci
        k = cur.kind
        out: List[Finding] = []
        if k == ci.CursorKind.CXX_FOR_RANGE_STMT:
            out += self._d1_range_for(cur, sf, sym)
        elif k in (ci.CursorKind.VAR_DECL, ci.CursorKind.FIELD_DECL):
            out += self._d2_d3_types(cur, sf)
        if k in (ci.CursorKind.BINARY_OPERATOR,
                 ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR,
                 ci.CursorKind.UNARY_OPERATOR, ci.CursorKind.CALL_EXPR):
            out += self._d4_writes(cur, sf, sym)
        return out

    def _offset(self, cur) -> int:
        return cur.extent.start.offset

    def _d1_range_for(self, cur, sf: SourceFile, sym: Symbols) -> List[Finding]:
        children = list(cur.get_children())
        if not children:
            return []
        rng_type = ""
        for ch in children:
            t = ch.type.get_canonical().spelling if ch.type else ""
            if "unordered_map" in t or "unordered_set" in t:
                rng_type = t
                break
        if not rng_type:
            return []
        pos = self._offset(cur)
        s = sf.stripped
        # Reuse the lexical extraction anchored at the cursor position.
        for lpos, decl, _rng, body in find_range_for(sf, sym):
            if abs(lpos - pos) > 4:
                continue
            fn = enclosing_function(sf.blocks, lpos)
            after = s[lpos + len(body):fn.end] if fn else ""
            reason = classify_order_sensitivity(decl, body, after, sym)
            if reason is not None:
                return [Finding("D1", sf.real, line_of(s, lpos), d1_message(reason))]
            return []
        # AST saw an unordered iteration the lexical pass could not resolve
        # (e.g. a container reached through auto&): classify its body text.
        body_cur = children[-1]
        body = sf.raw[body_cur.extent.start.offset:body_cur.extent.end.offset]
        reason = classify_order_sensitivity("it", strip_comments_and_strings(body),
                                            "", sym)
        if reason is not None:
            return [Finding("D1", sf.real, cur.location.line, d1_message(reason))]
        return []

    def _d2_d3_types(self, cur, sf: SourceFile) -> List[Finding]:
        """AST-only extras for declarations whose *canonical* type reveals a
        banned construct the spelt source hides behind an alias."""
        t = cur.type.get_canonical().spelling if cur.type else ""
        out: List[Finding] = []
        line = cur.location.line
        m = re.search(r"(unordered_)?(map|set|multimap|multiset)<([^,>]*\*)\s*[,>]", t)
        if m:
            out.append(Finding("D2", sf.real, line,
                               f"container keyed by raw pointer `{m.group(3).strip()}`: "
                               f"address order/hash differs across runs; key by a "
                               f"stable id instead"))
        if not sf.scope.startswith(RNG_HOME_PREFIX):
            if re.search(r"_distribution<", t) or any(
                    re.search(rf"\b{e}\b", t) for e in RAW_ENGINE_NAMES):
                if not self._has_stream_param(cur):
                    out.append(Finding(
                        "D3", sf.real, line,
                        f"`{t.split('<')[0].split('::')[-1]}` constructed outside "
                        f"src/sim/rng.* in a function without a sim::rng::Stream& "
                        f"parameter; draws here cannot be traced to a seeded "
                        f"child stream"))
        return out

    def _has_stream_param(self, cur) -> bool:
        ci = self.ci
        p = cur.semantic_parent
        while p is not None and p.kind != ci.CursorKind.TRANSLATION_UNIT:
            if p.kind in (ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
                          ci.CursorKind.LAMBDA_EXPR, ci.CursorKind.CONSTRUCTOR):
                for arg in p.get_arguments():
                    at = arg.type.get_canonical().spelling if arg.type else ""
                    if "rng::Stream" in at:
                        return True
            p = p.semantic_parent
        return False

    def _d4_writes(self, cur, sf: SourceFile, sym: Symbols) -> List[Finding]:
        if sf.scope in SOA_OWNER_FILES:
            return []
        ci = self.ci
        lhs = None
        if cur.kind in (ci.CursorKind.BINARY_OPERATOR,
                        ci.CursorKind.COMPOUND_ASSIGNMENT_OPERATOR):
            children = list(cur.get_children())
            if len(children) == 2:
                toks = [t.spelling for t in cur.get_tokens()]
                if cur.kind == ci.CursorKind.BINARY_OPERATOR and "=" not in toks:
                    return []
                lhs = children[0]
        elif cur.kind == ci.CursorKind.UNARY_OPERATOR:
            toks = [t.spelling for t in cur.get_tokens()]
            if "++" not in toks and "--" not in toks:
                return []
            children = list(cur.get_children())
            lhs = children[0] if children else None
        elif cur.kind == ci.CursorKind.CALL_EXPR:
            name = cur.spelling or ""
            if name not in COLUMN_MUTATORS | COLUMN_METHOD_WRITES:
                return []
            children = list(cur.get_children())
            lhs = children[0] if children else None
        if lhs is None:
            return []
        col = self._soa_field_in(lhs, sym)
        if col is None:
            return []
        pos = cur.extent.start.offset
        if in_owner_context(sf.stripped, sf.blocks, pos):
            return []
        return [Finding(
            "D4", sf.real, cur.location.line,
            f"write to NodeStateSoA column `{col}` outside the owning module, "
            f"with no shard ownership derived (shard_of) in the enclosing "
            f"function and not inside a window-barrier callback; at K > 1 "
            f"this races the owning shard. Route through the owner or a "
            f"barrier hook")]

    def _soa_field_in(self, cur, sym: Symbols) -> Optional[str]:
        ci = self.ci
        for c in [cur] + list(cur.walk_preorder()):
            if c.kind == ci.CursorKind.MEMBER_REF_EXPR and c.spelling in sym.soa_columns:
                ref = c.referenced
                parent = ref.semantic_parent if ref is not None else None
                if parent is not None and parent.spelling == "NodeStateSoA":
                    return c.spelling
        return None


# --------------------------------------------------------------------------
# Suppressions
# --------------------------------------------------------------------------


@dataclasses.dataclass
class Suppression:
    rule: str
    path: str
    line: Optional[int]
    justification: str
    source_line: int
    used: bool = False

    def matches(self, f: Finding) -> bool:
        if self.rule != f.rule or self.path != f.file:
            return False
        return self.line is None or self.line == f.line


def load_suppressions(path: pathlib.Path) -> Tuple[List[Suppression], List[Finding]]:
    sups: List[Suppression] = []
    problems: List[Finding] = []
    if not path.is_file():
        return sups, problems
    rel = path.name
    for lineno, raw in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        body, _, just = line.partition("#")
        just = just.strip()
        parts = body.split()
        if len(parts) != 2 or parts[0] not in RULE_IDS:
            problems.append(Finding(
                "SUPPRESSIONS", rel, lineno,
                f"malformed entry `{line[:60]}`; expected `<rule> <path>[:line] "
                f"# justification`"))
            continue
        if not just:
            problems.append(Finding(
                "SUPPRESSIONS", rel, lineno,
                f"suppression `{body.strip()}` has no justification; every "
                f"waiver must explain why the finding is acceptable"))
            continue
        target = parts[1]
        fline: Optional[int] = None
        if ":" in target:
            target, _, ln = target.rpartition(":")
            try:
                fline = int(ln)
            except ValueError:
                problems.append(Finding("SUPPRESSIONS", rel, lineno,
                                        f"bad line number in `{parts[1]}`"))
                continue
        sups.append(Suppression(parts[0], target, fline, just, lineno))
    return sups, problems


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def gather_files(root: pathlib.Path, fixtures: Optional[pathlib.Path]) -> List[pathlib.Path]:
    if fixtures is not None:
        return sorted(p for ext in ("*.cpp", "*.cc", "*.hpp", "*.h")
                      for p in fixtures.rglob(ext))
    out: List[pathlib.Path] = []
    for d in SCOPE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for ext in ("*.cpp", "*.cc", "*.hpp", "*.h"):
            out.extend(base.rglob(ext))
    return sorted(out)


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2])
    ap.add_argument("--build-dir", type=pathlib.Path, default=None,
                    help="build tree with compile_commands.json (libclang backend)")
    ap.add_argument("--backend", choices=("auto", "libclang", "builtin"),
                    default="auto")
    ap.add_argument("--fixtures", type=pathlib.Path, default=None,
                    help="analyze a fixture directory instead of the repo "
                         "(suppressions are not applied)")
    ap.add_argument("--suppressions", type=pathlib.Path, default=None,
                    help="suppression file (default: tools/analysis/suppressions.txt)")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="write a machine-readable report here")
    ap.add_argument("--quiet", action="store_true")
    args = ap.parse_args()

    repo = args.repo.resolve()
    fixtures = args.fixtures.resolve() if args.fixtures else None
    rel_root = fixtures if fixtures is not None else repo
    paths = gather_files(repo, fixtures)
    if not paths:
        print("determinism_analyzer: no source files found", file=sys.stderr)
        return 2

    sources = [load_source(repo, p, rel_root) for p in paths]
    sym = collect_symbols({sf.real: sf.stripped for sf in sources})
    if fixtures is not None:
        # Fixture scope paths stand in for real modules; also fold in the real
        # SoA schema when present so D4 fixtures match production columns.
        soa = repo / "src/net/soa.hpp"
        if soa.is_file():
            extra = collect_symbols({"src/net/soa.hpp":
                                     strip_comments_and_strings(soa.read_text())})
            sym.soa_columns |= extra.soa_columns
            sym.soa_vars |= extra.soa_vars

    backend_used = "builtin"
    findings: Optional[List[Finding]] = None
    build_dir = args.build_dir
    if build_dir is None and (repo / "build" / "compile_commands.json").is_file():
        build_dir = repo / "build"
    if args.backend in ("auto", "libclang"):
        try:
            lc = LibclangBackend(build_dir)
            findings = lc.analyze(sources, sym, rel_root)
            backend_used = "libclang"
        except BackendUnavailable as e:
            if args.backend == "libclang":
                print(f"determinism_analyzer: libclang backend required but "
                      f"unavailable: {e}", file=sys.stderr)
                return 2
            print(f"determinism_analyzer: libclang unavailable ({e}); "
                  f"falling back to builtin backend", file=sys.stderr)
        except Exception as e:  # pragma: no cover - defensive fallback
            if args.backend == "libclang":
                raise
            print(f"determinism_analyzer: libclang backend failed ({e}); "
                  f"falling back to builtin backend", file=sys.stderr)
    if findings is None:
        findings = run_builtin(sources, sym)
    unique: Dict[Tuple[str, str, int], Finding] = {}
    for f in findings:
        unique.setdefault(f.key(), f)
    findings = sorted(unique.values(), key=lambda f: (f.file, f.line, f.rule))

    sup_path = args.suppressions
    if sup_path is None:
        sup_path = repo / "tools" / "analysis" / "suppressions.txt"
    sups: List[Suppression] = []
    extra: List[Finding] = []
    if fixtures is None:
        sups, extra = load_suppressions(sup_path)
        for f in findings:
            for sp in sups:
                if sp.matches(f):
                    sp.used = True
                    f.suppressed = True
                    break
        for sp in sups:
            if not sp.used:
                extra.append(Finding(
                    "SUPPRESSIONS", sup_path.name, sp.source_line,
                    f"stale suppression `{sp.rule} {sp.path}"
                    f"{':' + str(sp.line) if sp.line else ''}` matches no "
                    f"finding; delete it"))

    active = [f for f in findings if not f.suppressed] + extra
    if not args.quiet:
        for f in active:
            print(f.render())

    if args.json is not None:
        report = {
            "backend": backend_used,
            "files_analyzed": len(sources),
            "rules": list(RULE_IDS),
            "findings": [dataclasses.asdict(f) for f in findings],
            "suppression_problems": [dataclasses.asdict(f) for f in extra],
            "suppressions_used": sum(1 for s in sups if s.used),
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report, indent=2) + "\n")

    if active:
        print(f"\ndeterminism_analyzer[{backend_used}]: {len(active)} finding(s) "
              f"across {len(sources)} file(s)", file=sys.stderr)
        return 1
    suppressed = sum(1 for f in findings if f.suppressed)
    print(f"determinism_analyzer[{backend_used}]: clean "
          f"({len(sources)} files, rules D1-D4, {suppressed} suppressed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
