#!/usr/bin/env python3
"""Project-specific invariant linter (stdlib only — runs anywhere Python 3.8+ does).

Rule families that clang-tidy cannot express, keyed to contracts this
codebase actually depends on:

R1 determinism
    ``src/core``, ``src/sim``, ``src/net``, ``src/harness``, ``src/fault``,
    ``src/payment`` and ``src/transport`` must be bitwise-deterministic
    in the scenario seed: every figure in EXPERIMENTS.md assumes that replaying
    a seed replays the run — including every bank-fault stream of the chaos
    sweep. Any ambient-entropy source — ``rand()``,
    ``std::random_device``, wall-clock reads — silently breaks that, usually
    without failing a test. Such calls are banned in those trees; randomness
    must come from ``sim::rng::Stream`` and time from ``Simulator::now()``.
    (TcpTransport's poll loop genuinely runs on wall time — its one clock
    read carries a ``lint-allow(determinism)`` waiver naming that fact.)

R2 epoch contract
    PR 1 made the decision stack cache edge qualities and memoised lookahead
    values, invalidated *only* by comparing monotone epochs published by
    ``core::HistoryProfile`` and ``net::ProbingEstimator``. A mutating method
    that forgets to bump the epoch produces stale-cache reads that corrupt
    results while every unit test of the mutated class still passes. The rule:
    any non-const member function of a guarded class whose body touches
    guarded state must also touch the epoch counter (or carry an explicit
    ``// lint-exempt(epoch): <reason>`` on the line above its definition).

R3 clean tree
    No ``build*`` trees, ``compile_commands.json``, or CTest bookkeeping may
    ever be tracked by git; stale tracked artifacts shadow fresh builds and
    poison review diffs.

R4 finished guard
    The async setup / data-phase runners keep per-connection state alive via
    ``shared_ptr<Pending>`` captured by scheduled closures. Any such closure
    that fires after the connection resolved (stale ack timer, backoff
    retry, keepalive echo) must first check the ``finished`` flag (plus its
    generation counters) or delegate to a method that does — otherwise a
    resolved connection gets double-completed or a dead path re-formed. The
    rule: in any file mentioning ``shared_ptr<Pending>``, every
    ``schedule_in``/``schedule_at`` lambda capturing ``p`` must mention
    ``finished`` in its body, or call a method whose out-of-class definition
    opens with a finished guard. Waive with
    ``// lint-exempt(finished): <reason>`` on or above the call line.

R5 settlement state transitions
    The settlement lifecycle (``payment::SettlementEngine``) moves escrow
    money exactly once per settlement, enforced by first-wins checks: a
    terminal settlement (Closed/Abandoned/Expired) never transitions again.
    A transition site added without that check re-terminalises on a replayed
    close/abandon or a racing deadline sweep — a double payout the tests only
    catch if a schedule happens to race. The rule: every assignment to a
    settlement ``state`` inside a ``SettlementEngine`` member body must be
    dominated by an ``is_terminal(...)`` check earlier in the same body.
    Waive with ``// lint-exempt(settlement-state): <reason>`` above the site.

R7 atomic artifacts
    Crash tolerance of the results plane (DESIGN.md §3.12) rests on every
    BENCH_*.json / CSV / checkpoint artifact reaching disk through
    ``harness::atomic_write_file`` (write temp + rename): a direct
    ``std::ofstream`` onto such a path can be torn by a crash mid-write,
    and a torn checkpoint silently restarts a sweep while a torn BENCH
    file poisons downstream plots. The rule: in ``src/``, ``bench/`` and
    ``examples/``, an ``ofstream`` whose nearby code mentions a results
    artifact (``BENCH_``, ``.ckpt``, checkpoint paths) must carry
    ``// lint-exempt(atomic-write): <reason>`` — the only legitimate
    holder is the atomic helper's own temp-file write leg.

R6 mailbox discipline
    The sharded engine's race-freedom rests on one rule: within a window a
    shard may only schedule onto *its own* Simulator; any effect on another
    shard must go through ``ShardedSimulator::post`` so it is buffered and
    delivered at the window barrier. ``shard(x).schedule_*`` from model code
    compiles fine either way and is bitwise-correct at K = 1, so a direct
    cross-shard schedule is exactly the bug no test at K = 1 can see — and at
    K > 1 it is a data race on the peer's event queue. The rule: in ``src/``
    and ``bench/``, any ``shard(...).schedule_in/at`` call site must carry
    ``// lint-exempt(cross-shard): <reason>`` on or above the line affirming
    the target shard is the caller's own. (Engine internals index
    ``shards_[...]`` directly and model code routes through owner-checked
    helpers, so a clean tree has zero such sites.)

R8 bank-partition ownership
    The sharded settlement plane (``payment::ShardedSettlementPlane``) routes
    every settlement to one bank partition by settlement key; the engine's
    replay protection and the batched MAC verification only see traffic that
    arrives through the plane's routed entry points (open_settlement /
    submit_aggregated_claim / close_settlement / expire_due). Model or bench
    code that reaches into ``partition(b).engine`` / ``partition(b).bank``
    directly bypasses both — a receipt redeemed that way is invisible to the
    owning engine's redeemed-MAC map and only the merge reconciliation can
    catch it. The rule: in ``src/``, ``bench/`` and ``examples/``, any
    ``partition(...).engine.*(...)`` or ``partition(...).bank.*(...)`` call
    must carry ``// lint-exempt(bank-partition): <reason>`` on or above the
    line (read-only access belongs on ``partition_view(...)``, which the
    rule deliberately does not match).

R9 raw-socket confinement
    The transport plane (``src/transport``) owns every socket in the tree:
    its codec is the single place frames are framed, checksummed and
    length-checked, its reject path is the single place malformed bytes are
    counted, and its Bye/heartbeat split is the single place liveness is
    decided. A raw ``::socket`` / ``::send`` / ``::recv`` call anywhere else
    is a second, unframed wire — invisible to the malformed-frame counters,
    the suspicion feed and the chaos driver's conservation audit. The rule:
    in ``src/``, ``bench/``, ``examples/`` and ``tests/``, any
    global-namespace BSD socket call (``::socket``, ``::send``, ``::recv``,
    ``::sendto``, ``::recvfrom``, ``::connect``, ``::accept``, ``::bind``,
    ``::listen``) outside ``src/transport/`` must carry
    ``// lint-exempt(transport): <reason>`` on or above the line — the only
    legitimate holders are deliberate hostile-peer tests that inject raw
    bytes past the codec on purpose.

Exit status: 0 when clean, 1 with one ``file:line: [rule] message`` per finding.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import subprocess
import sys
from typing import Iterator, List, Optional, Tuple

# --------------------------------------------------------------------------
# R1 configuration
# --------------------------------------------------------------------------

DETERMINISM_DIRS = ("src/core", "src/sim", "src/net", "src/harness", "src/fault",
                    "src/payment", "src/transport")

# Patterns are matched against comment- and string-stripped source, so prose
# like "initialised to rand(0, T)" in a doc comment never trips them.
DETERMINISM_BANNED: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bstd\s*::\s*random_device\b"), "std::random_device (ambient entropy)"),
    (re.compile(r"(?<!\w)(?<!::)random_device\b"), "random_device (ambient entropy)"),
    (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand"),
    (re.compile(r"(?<![\w:])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bsystem_clock\b"), "wall clock (system_clock)"),
    (re.compile(r"\bsteady_clock\b"), "wall clock (steady_clock)"),
    (re.compile(r"\bhigh_resolution_clock\b"), "wall clock (high_resolution_clock)"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"), "clock()"),
]

# An inline waiver must name the rule and give a reason; a bare marker is
# rejected so suppressions stay auditable.
ALLOW_RE = re.compile(r"lint-allow\(determinism\):\s*\S")

# --------------------------------------------------------------------------
# R2 configuration — the guarded classes and their cache-contract state.
# --------------------------------------------------------------------------

EPOCH_GUARDS = [
    {
        "cls": "HistoryProfile",
        "files": ("src/core/history.hpp", "src/core/history.cpp"),
        "state": ("ring_", "head_", "counts_"),
        "epoch": re.compile(r"(\+\+\s*epoch_|epoch_\s*(\[[^]]*\]\s*)?(\+\+|\+=|=))"),
    },
    {
        "cls": "ProbingEstimator",
        "files": ("src/net/probing.hpp", "src/net/probing.cpp"),
        "state": ("session_time_", "total_"),
        "epoch": re.compile(r"(\+\+\s*epoch_|epoch_\s*(\[[^]]*\]\s*)?(\+\+|\+=|=))"),
    },
    {
        "cls": "SuspicionTracker",
        "files": ("src/core/suspicion.hpp", "src/core/suspicion.cpp"),
        "state": ("counts_",),
        "epoch": re.compile(r"(\+\+\s*epoch_|epoch_\s*(\[[^]]*\]\s*)?(\+\+|\+=|=))"),
    },
    {
        # The sharded probing estimator publishes per-node epochs consumed by
        # ShardedEdgeQuality / ShardDecisionScratch — same contract, SoA form.
        "cls": "ShardedProbing",
        "files": ("src/net/sharded_probing.hpp", "src/net/sharded_probing.cpp"),
        "state": ("session_time_", "avail_total_"),
        "epoch": re.compile(
            r"(\+\+\s*probe_epoch_|probe_epoch_\s*(\[[^]]*\]\s*)?(\+\+|\+=|=))"),
    },
    {
        # The barrier-merged history view: folds publish a new epoch that
        # selectivity consumers may key caches on — same contract again.
        "cls": "ShardedHistory",
        "files": ("src/core/shard_history.hpp", "src/core/shard_history.cpp"),
        "state": ("counts_", "entries_"),
        "epoch": re.compile(r"(\+\+\s*epoch_|epoch_\s*(\[[^]]*\]\s*)?(\+\+|\+=|=))"),
    },
]

EXEMPT_RE = re.compile(r"lint-exempt\(epoch\):\s*\S")

# --------------------------------------------------------------------------
# Source mangling helpers
# --------------------------------------------------------------------------


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Replace comments and (unless ``keep_strings``) string/char literals
    with spaces, preserving line structure so reported line numbers stay
    valid. R7 keeps literals: artifact names live inside them."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j] if keep_strings else " " * (j - i))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def iter_source_files(repo: pathlib.Path, subdirs) -> Iterator[pathlib.Path]:
    for sub in subdirs:
        base = repo / sub
        if not base.is_dir():
            continue
        for ext in ("*.hpp", "*.h", "*.cpp", "*.cc"):
            yield from sorted(base.rglob(ext))


def match_brace_block(text: str, open_idx: int) -> int:
    """Index one past the matching ``}`` for the ``{`` at ``open_idx``."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


# --------------------------------------------------------------------------
# R1 — determinism
# --------------------------------------------------------------------------


def check_determinism(repo: pathlib.Path) -> List[str]:
    findings = []
    for path in iter_source_files(repo, DETERMINISM_DIRS):
        raw = path.read_text(encoding="utf-8", errors="replace")
        raw_lines = raw.splitlines()
        stripped = strip_comments_and_strings(raw)
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            for pat, what in DETERMINISM_BANNED:
                if not pat.search(line):
                    continue
                original = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                if ALLOW_RE.search(original):
                    continue
                rel = path.relative_to(repo)
                findings.append(
                    f"{rel}:{lineno}: [determinism] {what} is banned in "
                    f"{'/'.join(rel.parts[:2])}; draw from sim::rng::Stream / "
                    f"Simulator::now() instead"
                )
    return findings


# --------------------------------------------------------------------------
# R2 — epoch contract
# --------------------------------------------------------------------------

# Qualified out-of-class definition: ``ret Class::name(...) [const] ... {``.
def iter_method_definitions(stripped: str, cls: str) -> Iterator[Tuple[str, int, int, bool]]:
    """Yield (method_name, body_start, body_end, is_const) for every
    out-of-class member definition of ``cls`` in ``stripped`` text."""
    for m in re.finditer(rf"\b{cls}\s*::\s*(~?\w+)\s*\(", stripped):
        name = m.group(1)
        # Find the parameter list's closing paren.
        close = match_paren(stripped, m.end() - 1)
        if close is None:
            continue
        # Scan the trailer up to '{' or ';' (declaration / deleted).
        brace = None
        trailer_end = None
        for i in range(close, len(stripped)):
            if stripped[i] == "{":
                brace = i
                trailer_end = i
                break
            if stripped[i] == ";":
                break
        if brace is None:
            continue
        trailer = stripped[close:trailer_end]
        is_const = re.search(r"\bconst\b", trailer) is not None
        end = match_brace_block(stripped, brace)
        # Include the constructor init list (between ) and {) in the body
        # span: state initialisation there is pre-publication and exempt,
        # but we skip constructors entirely anyway.
        yield name, brace, end, is_const


def match_paren(text: str, open_idx: int) -> Optional[int]:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return None


def check_epoch_contract(repo: pathlib.Path) -> List[str]:
    findings = []
    for guard in EPOCH_GUARDS:
        cls = guard["cls"]
        state_res = [re.compile(rf"\b{re.escape(f)}\b") for f in guard["state"]]
        for rel in guard["files"]:
            path = repo / rel
            if not path.is_file():
                findings.append(f"{rel}:1: [epoch] guarded file missing — update tools/lint "
                                f"if {cls} moved")
                continue
            raw = path.read_text(encoding="utf-8", errors="replace")
            stripped = strip_comments_and_strings(raw)
            for name, start, end, is_const in iter_method_definitions(stripped, cls):
                if is_const or name == cls or name == f"~{cls}":
                    continue
                body = stripped[start:end]
                touches_state = any(r.search(body) for r in state_res)
                if not touches_state:
                    continue
                if guard["epoch"].search(body):
                    continue
                def_line = stripped.count("\n", 0, start) + 1
                # Exemption comment on the line(s) just above the definition
                # header (search a few lines back in the ORIGINAL text).
                raw_lines = raw.splitlines()
                header_line = stripped.count("\n", 0, raw.find(f"{cls}::{name}"))
                context = "\n".join(raw_lines[max(0, header_line - 2):header_line + 1])
                if EXEMPT_RE.search(context):
                    continue
                findings.append(
                    f"{rel}:{def_line}: [epoch] {cls}::{name} mutates guarded state "
                    f"({', '.join(guard['state'])}) without bumping the monotone epoch; "
                    f"stale-epoch caches (core/edge_quality, core/decision_scratch) would "
                    f"serve corrupt values. Bump the epoch or annotate the definition "
                    f"with // lint-exempt(epoch): <reason>"
                )
    return findings


# --------------------------------------------------------------------------
# R4 — finished guard on scheduled Pending closures
# --------------------------------------------------------------------------

PENDING_FILE_RE = re.compile(r"shared_ptr\s*<\s*Pending\s*>")
SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:in|at)\s*\(")
FINISHED_EXEMPT_RE = re.compile(r"lint-exempt\(finished\):\s*\S")
CAPTURES_P_RE = re.compile(r"(?<![\w.])p\b")


def guarded_callees(stripped: str) -> set:
    """Method names whose out-of-class definition opens with a finished guard
    (``if (...finished...)`` as the body's first statement)."""
    names = set()
    for m in re.finditer(r"\b\w+\s*::\s*(\w+)\s*\(", stripped):
        close = match_paren(stripped, m.end() - 1)
        if close is None:
            continue
        brace = None
        for i in range(close, len(stripped)):
            if stripped[i] == "{":
                brace = i
                break
            if stripped[i] == ";":
                break
        if brace is None:
            continue
        body_head = stripped[brace + 1:match_brace_block(stripped, brace)].lstrip()
        if re.match(r"if\s*\([^)]*\bfinished\b", body_head):
            names.add(m.group(1))
    return names


def check_finished_guards(repo: pathlib.Path) -> List[str]:
    findings = []
    for path in iter_source_files(repo, ("src",)):
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        if not PENDING_FILE_RE.search(stripped):
            continue
        callees = guarded_callees(stripped)
        raw_lines = raw.splitlines()
        for m in SCHEDULE_CALL_RE.finditer(stripped):
            open_paren = m.end() - 1
            close = match_paren(stripped, open_paren)
            if close is None:
                continue
            call = stripped[open_paren:close]
            lb = call.find("[")
            if lb == -1:
                continue  # no lambda argument
            rb = call.find("]", lb)
            if rb == -1 or not CAPTURES_P_RE.search(call[lb + 1:rb]):
                continue  # lambda does not capture the Pending pointer
            body_open = call.find("{", rb)
            if body_open == -1:
                continue
            body = call[body_open:match_brace_block(call, body_open)]
            if re.search(r"\bfinished\b", body):
                continue
            if any(cm.group(1) in callees
                   for cm in re.finditer(r"\b(\w+)\s*\(", body)):
                continue
            lineno = stripped.count("\n", 0, m.start()) + 1
            context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
            if FINISHED_EXEMPT_RE.search(context):
                continue
            rel = path.relative_to(repo)
            findings.append(
                f"{rel}:{lineno}: [finished-guard] scheduled lambda captures the "
                f"shared Pending state but neither checks `finished` nor calls a "
                f"method that opens with a finished guard; a stale firing would "
                f"act on a resolved connection. Guard the body or annotate the "
                f"call with // lint-exempt(finished): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R5 — settlement state transitions are first-wins guarded
# --------------------------------------------------------------------------

SETTLEMENT_FILE = "src/payment/settlement.cpp"
SETTLEMENT_CLASS = "SettlementEngine"
# An assignment to a settlement `state` field (s.state = ..., state = ...),
# excluding comparisons. Matched against stripped text inside member bodies.
STATE_ASSIGN_RE = re.compile(r"\bstate\s*=(?!=)")
SETTLEMENT_EXEMPT_RE = re.compile(r"lint-exempt\(settlement-state\):\s*\S")


def check_settlement_transitions(repo: pathlib.Path) -> List[str]:
    """Every SettlementState transition site inside a SettlementEngine member
    body must be dominated by a first-wins ``is_terminal(...)`` check earlier
    in the same body — the guard that makes close/abandon/expiry idempotent
    and keeps finalize() the single money-moving site."""
    findings = []
    path = repo / SETTLEMENT_FILE
    if not path.is_file():
        return [f"{SETTLEMENT_FILE}:1: [settlement-state] guarded file missing — "
                f"update tools/lint if {SETTLEMENT_CLASS} moved"]
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    for name, start, end, _is_const in iter_method_definitions(stripped, SETTLEMENT_CLASS):
        body = stripped[start:end]
        for m in STATE_ASSIGN_RE.finditer(body):
            if "is_terminal" in body[:m.start()]:
                continue
            lineno = stripped.count("\n", 0, start + m.start()) + 1
            context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
            if SETTLEMENT_EXEMPT_RE.search(context):
                continue
            findings.append(
                f"{SETTLEMENT_FILE}:{lineno}: [settlement-state] "
                f"{SETTLEMENT_CLASS}::{name} assigns a settlement state without a "
                f"preceding is_terminal() first-wins check in the same body; an "
                f"unguarded transition can re-terminalise a settlement and move its "
                f"escrow money twice. Check is_terminal first or annotate the site "
                f"with // lint-exempt(settlement-state): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R6 — cross-shard scheduling must go through the window mailbox
# --------------------------------------------------------------------------

SHARD_SCHEDULE_DIRS = ("src", "bench")
SHARD_SCHEDULE_RE = re.compile(r"\bshard\s*\([^()]*\)\s*\.\s*schedule_(?:in|at)\s*\(")
CROSS_SHARD_EXEMPT_RE = re.compile(r"lint-exempt\(cross-shard\):\s*\S")


def check_shard_mailbox_discipline(repo: pathlib.Path) -> List[str]:
    """Flag every ``shard(...).schedule_in/at`` call in src/ and bench/: the
    compiler cannot tell a shard-local schedule from a cross-shard one, and
    only the former is legal inside a window (the latter is a data race at
    K > 1 that K = 1 tests cannot catch). Route cross-shard effects through
    ``ShardedSimulator::post``; affirm genuinely shard-local sites with
    ``// lint-exempt(cross-shard): <reason>``."""
    findings = []
    for path in iter_source_files(repo, SHARD_SCHEDULE_DIRS):
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for m in SHARD_SCHEDULE_RE.finditer(stripped):
            lineno = stripped.count("\n", 0, m.start()) + 1
            context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
            if CROSS_SHARD_EXEMPT_RE.search(context):
                continue
            rel = path.relative_to(repo)
            findings.append(
                f"{rel}:{lineno}: [cross-shard] direct shard(...).schedule_* "
                f"bypasses the window mailbox; a cross-shard target races the "
                f"peer's event queue at K > 1 (and no K = 1 test can see it). "
                f"Use ShardedSimulator::post(src, dst, at, fn), or annotate a "
                f"provably shard-local site with "
                f"// lint-exempt(cross-shard): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R7 — results artifacts go through the atomic write helper
# --------------------------------------------------------------------------

ATOMIC_WRITE_DIRS = ("src", "bench", "examples")
OFSTREAM_RE = re.compile(r"\bofstream\b")
# Artifact-ish context near the stream: a BENCH json name, a checkpoint
# path/variable, or a .ckpt file. Matched on comment-stripped text with
# string literals PRESERVED (the artifact name usually lives in a literal).
ARTIFACT_CONTEXT_RE = re.compile(r"BENCH_|\.ckpt\b|[Cc]heckpoint|ckpt_path")
ATOMIC_EXEMPT_RE = re.compile(r"lint-exempt\(atomic-write\):\s*\S")
ATOMIC_CONTEXT_LINES = 12


def check_atomic_artifact_writes(repo: pathlib.Path) -> List[str]:
    """Flag ``ofstream`` uses whose surrounding ±12 lines mention a results
    artifact (BENCH_*.json, checkpoints): those bytes must go through
    ``harness::atomic_write_file`` so a crash can never leave a torn file.
    The helper's own temp-file write leg carries the exemption marker."""
    findings = []
    for path in iter_source_files(repo, ATOMIC_WRITE_DIRS):
        raw = path.read_text(encoding="utf-8", errors="replace")
        code = strip_comments_and_strings(raw, keep_strings=True)
        code_lines = code.splitlines()
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(code_lines, start=1):
            if not OFSTREAM_RE.search(line):
                continue
            lo = max(0, lineno - 1 - ATOMIC_CONTEXT_LINES)
            hi = min(len(code_lines), lineno + ATOMIC_CONTEXT_LINES)
            window = "\n".join(code_lines[lo:hi])
            if not ARTIFACT_CONTEXT_RE.search(window):
                continue
            context = "\n".join(raw_lines[max(0, lineno - 3):lineno])
            if ATOMIC_EXEMPT_RE.search(context):
                continue
            rel = path.relative_to(repo)
            findings.append(
                f"{rel}:{lineno}: [atomic-write] direct ofstream near a results "
                f"artifact (BENCH_*.json / checkpoint); a crash mid-write leaves a "
                f"torn file that poisons resume or downstream plots. Route the bytes "
                f"through harness::atomic_write_file (bench::write_bench_json / "
                f"Checkpoint::save), or annotate the write leg with "
                f"// lint-exempt(atomic-write): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R8 — bank-partition mutations go through the plane's routed entry points
# --------------------------------------------------------------------------

BANK_PARTITION_DIRS = ("src", "bench", "examples")
# partition(b).engine.method( / partition(b).bank.method( — deliberately does
# NOT match the read-only partition_view(b) accessor.
BANK_PARTITION_RE = re.compile(
    r"\bpartition\s*\([^()]*\)\s*\.\s*(?:engine|bank)\s*\.\s*\w+\s*\(")
BANK_PARTITION_EXEMPT_RE = re.compile(r"lint-exempt\(bank-partition\):\s*\S")


def check_bank_partition_ownership(repo: pathlib.Path) -> List[str]:
    """Flag every direct ``partition(...).engine/bank`` access in src/,
    bench/ and examples/: mutations through the escape hatch bypass the
    plane's settlement-key routing, its aggregate-MAC verification and the
    owning engine's replay map, so only the merge reconciliation could catch
    the damage. Route mutations through the plane's entry points; reads
    belong on ``partition_view(...)``; affirm deliberate sites (negative
    tests, reconciliation tooling) with
    ``// lint-exempt(bank-partition): <reason>``."""
    findings = []
    for path in iter_source_files(repo, BANK_PARTITION_DIRS):
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for m in BANK_PARTITION_RE.finditer(stripped):
            lineno = stripped.count("\n", 0, m.start()) + 1
            context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
            if BANK_PARTITION_EXEMPT_RE.search(context):
                continue
            rel = path.relative_to(repo)
            findings.append(
                f"{rel}:{lineno}: [bank-partition] direct partition(...).engine/"
                f"bank access bypasses the settlement plane's routed entry points "
                f"(key routing, aggregate-MAC verification, the owning engine's "
                f"replay map); a receipt redeemed this way is invisible until the "
                f"merge reconciliation. Use open_settlement / "
                f"submit_aggregated_claim / close_settlement / expire_due (reads: "
                f"partition_view), or annotate the site with "
                f"// lint-exempt(bank-partition): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R9 — raw BSD socket calls stay inside the transport plane
# --------------------------------------------------------------------------

RAW_SOCKET_DIRS = ("src", "bench", "examples", "tests")
RAW_SOCKET_SKIP_PREFIX = "src/transport/"
# Global-namespace-qualified calls only: `::send(` matches, `std::bind(` and
# `transport::connect(` do not (the lookbehind rejects a preceding word char
# or a further `:`), so qualified C++ names never trip the rule.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w:])::\s*(socket|send|recv|sendto|recvfrom|connect|accept|bind|listen)\s*\(")
# [ \t] (not \s) so a bare marker cannot borrow the next line as its reason.
TRANSPORT_EXEMPT_RE = re.compile(r"lint-exempt\(transport\):[ \t]*\S")


def check_raw_socket_confinement(repo: pathlib.Path) -> List[str]:
    """Flag every global-namespace BSD socket call outside ``src/transport/``:
    bytes moved past the wire codec skip its CRC/length/version checks, its
    malformed-frame counters and the Bye/heartbeat liveness contract, so a
    second wire silently undermines everything the transport tests pin.
    Deliberate hostile-peer fixtures affirm themselves with
    ``// lint-exempt(transport): <reason>`` on or above the call line."""
    findings = []
    for path in iter_source_files(repo, RAW_SOCKET_DIRS):
        rel = path.relative_to(repo)
        if rel.as_posix().startswith(RAW_SOCKET_SKIP_PREFIX):
            continue  # the transport plane is the socket owner
        raw = path.read_text(encoding="utf-8", errors="replace")
        stripped = strip_comments_and_strings(raw)
        raw_lines = raw.splitlines()
        for m in RAW_SOCKET_RE.finditer(stripped):
            lineno = stripped.count("\n", 0, m.start()) + 1
            context = "\n".join(raw_lines[max(0, lineno - 2):lineno])
            if TRANSPORT_EXEMPT_RE.search(context):
                continue
            findings.append(
                f"{rel}:{lineno}: [raw-socket] direct ::{m.group(1)}() outside "
                f"src/transport/; bytes moved past the wire codec bypass its "
                f"CRC/length/version checks, the malformed-frame counters and "
                f"the Bye/heartbeat liveness contract. Route traffic through "
                f"transport::TcpTransport, or annotate a deliberate "
                f"hostile-peer fixture with // lint-exempt(transport): <reason>"
            )
    return findings


# --------------------------------------------------------------------------
# R3 — no tracked build artifacts
# --------------------------------------------------------------------------

TRACKED_BANNED = re.compile(
    r"^(build[^/]*/|.*/(CMakeCache\.txt|CTestTestfile\.cmake|compile_commands\.json)$"
    r"|Testing/|.*\.(o|obj|gcda|gcno|profraw)$)"
)


def check_tracked_artifacts(repo: pathlib.Path) -> List[str]:
    try:
        out = subprocess.run(
            ["git", "-C", str(repo), "ls-files"],
            capture_output=True, text=True, check=True, timeout=60,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        # Not a git checkout (e.g. a release tarball): nothing to verify.
        return []
    findings = []
    for f in out.splitlines():
        if TRACKED_BANNED.match(f):
            findings.append(
                f"{f}:1: [tracked-artifact] build artifact is tracked by git; "
                f"`git rm --cached` it and rely on .gitignore's build*/ patterns"
            )
    return findings


# --------------------------------------------------------------------------


# Rule registry: the stable R-ids the docstring documents, in run order.
# tests/analysis/test_invariant_linter.py drives each rule against synthetic
# trees through --rules, so ids are part of the tool's interface.
RULES = {
    "R1": ("determinism", check_determinism),
    "R2": ("epoch contract", check_epoch_contract),
    "R3": ("tracked artifacts", check_tracked_artifacts),
    "R4": ("finished guards", check_finished_guards),
    "R5": ("settlement transitions", check_settlement_transitions),
    "R6": ("shard mailbox discipline", check_shard_mailbox_discipline),
    "R7": ("atomic artifact writes", check_atomic_artifact_writes),
    "R8": ("bank-partition ownership", check_bank_partition_ownership),
    "R9": ("raw-socket confinement", check_raw_socket_confinement),
}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--rules", default="all",
                    help="comma-separated rule ids to run (e.g. R1,R6); "
                         "default: all of " + ",".join(RULES))
    args = ap.parse_args()
    repo = args.repo.resolve()

    if args.rules == "all":
        selected = list(RULES)
    else:
        selected = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in selected if r not in RULES]
        if unknown:
            print(f"check_invariants: unknown rule id(s) {','.join(unknown)}; "
                  f"known: {','.join(RULES)}", file=sys.stderr)
            return 2

    findings = []
    for rid in RULES:
        if rid in selected:
            findings += RULES[rid][1](repo)

    for f in findings:
        print(f)
    if findings:
        print(f"\ncheck_invariants: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("check_invariants: clean ("
          + ", ".join(RULES[r][0] for r in RULES if r in selected) + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
