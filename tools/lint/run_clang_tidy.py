#!/usr/bin/env python3
"""Run the project's curated .clang-tidy check set over src/ (stdlib only).

Thin parallel driver around ``clang-tidy -p <build-dir>``: it reads
``compile_commands.json``, keeps the first-party ``src/`` translation units
(third-party and generated TUs are not ours to fix), fans out one clang-tidy
process per CPU, and fails if any diagnostic is emitted — the project
.clang-tidy sets ``WarningsAsErrors: '*'`` so the tidy gate is binary.

Wired up as the ``lint.clang-tidy`` ctest test whenever a clang-tidy binary is
found at configure time; containers without clang-tidy simply don't register
the test (the invariant linter still runs). In CI the missing-binary case must
fail loudly instead: ``--require-binary`` (defaulted on whenever ``$CI`` is
set) exits 2 when the binary is absent, so an image that silently dropped
clang-tidy can never produce a green-by-vacancy lint job. This script is also
usable directly:

    tools/lint/run_clang_tidy.py --build-dir build [--clang-tidy clang-tidy-18]
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

# clang-tidy's own chatter ("N warnings generated", suppression notes) is not
# a diagnostic; a real finding always carries "warning:" or "error:".
DIAG_RE = re.compile(r"(warning|error):")
NOISE_RE = re.compile(
    r"^\d+ warnings? generated|^Suppressed \d+ warnings|"
    r"^Use -header-filter|^\s*$"
)


def tidy_one(clang_tidy: str, build_dir: pathlib.Path, tu: str) -> tuple[str, int, str]:
    proc = subprocess.run(
        [clang_tidy, "-p", str(build_dir), "--quiet", tu],
        capture_output=True, text=True, timeout=600,
    )
    lines = [
        ln for ln in (proc.stdout + proc.stderr).splitlines()
        if DIAG_RE.search(ln) or not NOISE_RE.match(ln)
    ]
    has_diag = any(DIAG_RE.search(ln) for ln in lines)
    return tu, (1 if has_diag or proc.returncode != 0 else 0), "\n".join(lines)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("--build-dir", type=pathlib.Path, required=True,
                    help="build tree containing compile_commands.json")
    ap.add_argument("--repo", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2])
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    ap.add_argument("--require-binary", action="store_true",
                    default=os.environ.get("CI", "") != "",
                    help="fail (exit 2) when the clang-tidy binary is absent "
                         "instead of the per-TU FileNotFoundError spray; "
                         "default ON when $CI is set, so a CI image that "
                         "silently dropped clang-tidy turns the lint job red "
                         "rather than green-by-vacancy")
    ap.add_argument("--no-require-binary", dest="require_binary",
                    action="store_false",
                    help="opposite of --require-binary")
    args = ap.parse_args()

    if shutil.which(args.clang_tidy) is None:
        msg = (f"run_clang_tidy: clang-tidy binary {args.clang_tidy!r} not on "
               f"PATH")
        if args.require_binary:
            print(msg + " and --require-binary is in effect (default under "
                        "CI); install clang-tidy or pass an explicit "
                        "--clang-tidy name", file=sys.stderr)
            return 2
        print(msg + "; skipping (pass --require-binary to make this fatal)",
              file=sys.stderr)
        return 0

    ccdb = args.build_dir / "compile_commands.json"
    if not ccdb.is_file():
        print(f"run_clang_tidy: {ccdb} not found — configure with "
              f"CMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    src_root = (args.repo / "src").resolve()
    tus = sorted({
        str(pathlib.Path(entry["file"]).resolve())
        for entry in json.loads(ccdb.read_text())
        if pathlib.Path(entry["file"]).resolve().is_relative_to(src_root)
    })
    if not tus:
        print("run_clang_tidy: no src/ translation units in compile database",
              file=sys.stderr)
        return 2

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for tu, rc, output in pool.map(
                lambda f: tidy_one(args.clang_tidy, args.build_dir, f), tus):
            if rc:
                failed += 1
                rel = os.path.relpath(tu, args.repo)
                print(f"--- {rel}\n{output}")

    if failed:
        print(f"run_clang_tidy: diagnostics in {failed}/{len(tus)} TU(s)",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean ({len(tus)} src/ TUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
