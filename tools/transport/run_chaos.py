#!/usr/bin/env python3
"""Multi-process kill-chaos driver for the transport plane.

Spawns one bank process and N node processes from examples/transport_chaos,
lets them run the paper's session/settlement protocol over loopback TCP,
then injects the only faults a simulator cannot: SIGKILL. Forwarder
processes are killed mid-protocol and respawned on the same port (serve-only,
re-Hello to the same account); the bank is killed mid-settlement and
respawned with --resume, replaying its write-ahead frame journal. At the end
a sweep terminalises every open settlement and the bank writes a JSON
reconciliation report; this driver asserts the C1-C5 milli-credit
conservation invariants from it.

Acceptance floor (ISSUE 10): >= 50 sessions, >= 5 forwarder SIGKILLs,
>= 1 bank SIGKILL mid-settlement, C1-C5 all true.

Exit code 0 on success; non-zero with the journal/report paths printed (CI
uploads them as artifacts).
"""

from __future__ import annotations

import argparse
import json
import os
import select
import signal
import subprocess
import sys
import time
from pathlib import Path


ALL_PROCS: list["Proc"] = []


def fail(msg: str, workdir: Path) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    print(f"artifacts: {workdir}/bank.journal {workdir}/report.json", file=sys.stderr)
    for proc in ALL_PROCS:
        if proc.popen.poll() is None:
            proc.popen.kill()
    sys.exit(1)


class Proc:
    """One chaos child: keeps the pipe ends and the accumulated stdout lines."""

    def __init__(self, args: list[str], log: Path):
        self.args = args
        ALL_PROCS.append(self)
        self.log = log.open("ab")
        self.popen = subprocess.Popen(
            args,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self.log,
        )
        self.buffer = b""
        self.lines: list[str] = []

    def read_lines(self) -> list[str]:
        """Drain whatever stdout has, without blocking; return new lines."""
        new: list[str] = []
        while True:
            r, _, _ = select.select([self.popen.stdout], [], [], 0)
            if not r:
                break
            chunk = os.read(self.popen.stdout.fileno(), 65536)
            if not chunk:
                break
            self.buffer += chunk
            while b"\n" in self.buffer:
                line, self.buffer = self.buffer.split(b"\n", 1)
                decoded = line.decode(errors="replace")
                new.append(decoded)
                self.lines.append(decoded)
                self.log.write(line + b"\n")
                self.log.flush()
        return new

    def wait_line(self, prefix: str, timeout: float) -> str | None:
        deadline = time.monotonic() + timeout
        for line in self.lines:
            if line.startswith(prefix):
                return line
        while time.monotonic() < deadline:
            for line in self.read_lines():
                if line.startswith(prefix):
                    return line
            if self.popen.poll() is not None:
                return None
            time.sleep(0.02)
        return None

    def sigkill(self) -> None:
        self.popen.kill()
        self.popen.wait()

    def close(self) -> None:
        if self.popen.poll() is None:
            try:
                self.popen.stdin.close()
            except OSError:
                pass
            try:
                self.popen.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.popen.kill()
                self.popen.wait()
        self.log.close()


def spawn_bank(binary: str, workdir: Path, seed: int, port: int, resume: bool) -> Proc:
    args = [
        binary, "--role", "bank",
        "--journal", str(workdir / "bank.journal"),
        "--report", str(workdir / "report.json"),
        "--seed", str(seed),
    ]
    if port:
        args += ["--port", str(port)]
    if resume:
        args += ["--resume"]
    return Proc(args, workdir / "bank.log")


def spawn_node(binary: str, workdir: Path, seed: int, node_id: int, bank_port: int,
               sessions: int, port: int = 0, session_base: int = 0) -> Proc:
    args = [
        binary, "--role", "node",
        "--id", str(node_id),
        "--bank", str(bank_port),
        "--seed", str(seed),
        "--sessions", str(sessions),
        "--session-base", str(session_base),
    ]
    if port:
        args += ["--port", str(port)]
    return Proc(args, workdir / f"node{node_id}.log")


def port_of(proc: Proc, what: str, workdir: Path) -> int:
    line = proc.wait_line("PORT ", timeout=10)
    if line is None:
        fail(f"{what} never printed its port", workdir)
    return int(line.split()[1])


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--binary", required=True, help="path to transport_chaos")
    ap.add_argument("--workdir", required=True)
    ap.add_argument("--nodes", type=int, default=6)
    ap.add_argument("--sessions-per-node", type=int, default=10)
    ap.add_argument("--forwarder-kills", type=int, default=5)
    ap.add_argument("--bank-kills", type=int, default=1)
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument("--min-sessions", type=int, default=50)
    ap.add_argument("--timeout", type=float, default=240.0,
                    help="overall wall-clock budget in seconds")
    opt = ap.parse_args()

    workdir = Path(opt.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    for stale in ("bank.journal", "report.json"):
        (workdir / stale).unlink(missing_ok=True)

    # Probe: the sandbox may refuse socket(2); the payload exits 77 then.
    probe = subprocess.run([opt.binary, "--role", "probe"], capture_output=True)
    if probe.returncode == 77:
        print("SKIP: sockets unavailable in this environment")
        sys.exit(0)

    deadline = time.monotonic() + opt.timeout
    bank = spawn_bank(opt.binary, workdir, opt.seed, port=0, resume=False)
    bank_port = port_of(bank, "bank", workdir)

    nodes: dict[int, Proc] = {}
    node_ports: dict[int, int] = {}
    session_counts: dict[int, int] = {}
    for nid in range(opt.nodes):
        nodes[nid] = spawn_node(opt.binary, workdir, opt.seed, nid, bank_port,
                                opt.sessions_per_node)
        node_ports[nid] = port_of(nodes[nid], f"node {nid}", workdir)
        session_counts[nid] = 0

    peers_line = ("PEERS " + " ".join(f"{i}:{p}" for i, p in node_ports.items()) + "\n").encode()
    for proc in nodes.values():
        proc.popen.stdin.write(peers_line)
        proc.popen.stdin.flush()

    forwarder_kills = 0
    bank_kills = 0
    reforms = 0
    ok_sessions = 0
    failed_sessions = 0
    done_nodes: set[int] = set()
    remaining = {nid: opt.sessions_per_node for nid in nodes}  # sessions still owed
    generation = {nid: 0 for nid in nodes}  # respawn count -> fresh pair-id base
    # Kill forwarders/bank spread across the run: trigger every time the
    # fleet's session total crosses the next threshold.
    kill_every = max(1, (opt.nodes * opt.sessions_per_node)
                     // (opt.forwarder_kills + opt.bank_kills + 1))
    next_kill_at = kill_every
    kill_victim = 0  # round-robin over nodes

    while time.monotonic() < deadline:
        for nid, proc in list(nodes.items()):
            for line in proc.read_lines():
                if line.startswith("SESSION "):
                    remaining[nid] -= 1
                    session_counts[nid] += 1
                    if line.endswith(" ok"):
                        ok_sessions += 1
                    else:
                        failed_sessions += 1
                elif line.startswith("REFORM "):
                    reforms += 1
                elif line.startswith("DONE ") and remaining[nid] <= 0:
                    done_nodes.add(nid)
            if proc.popen.poll() is not None and nid not in done_nodes:
                # SIGKILLed (by us) or crashed: respawn on the same port with
                # its unfinished sessions, under a fresh pair-id range. It
                # re-Hellos into the same bank account.
                proc.log.close()
                generation[nid] += 1
                nodes[nid] = spawn_node(
                    opt.binary, workdir, opt.seed, nid, bank_port,
                    sessions=max(0, remaining[nid]), port=node_ports[nid],
                    session_base=1000 * generation[nid])
                if port_of(nodes[nid], f"respawned node {nid}", workdir) != node_ports[nid]:
                    fail(f"respawned node {nid} lost its port", workdir)
                nodes[nid].popen.stdin.write(peers_line)
                nodes[nid].popen.stdin.flush()

        bank.read_lines()
        if bank.popen.poll() is not None:
            # We killed it (or it crashed): resume from the frame journal on
            # the same port. In-flight requests ride their retry loops.
            bank.log.close()
            bank = spawn_bank(opt.binary, workdir, opt.seed, port=bank_port, resume=True)
            if port_of(bank, "respawned bank", workdir) != bank_port:
                fail("respawned bank lost its port", workdir)

        total = sum(session_counts.values())
        while total >= next_kill_at and \
                forwarder_kills + bank_kills < opt.forwarder_kills + opt.bank_kills:
            next_kill_at += kill_every
            if forwarder_kills < opt.forwarder_kills:
                for _ in range(opt.nodes):
                    victim = kill_victim % opt.nodes
                    kill_victim += 1
                    if nodes[victim].popen.poll() is None and victim not in done_nodes:
                        print(f"KILL forwarder node {victim} at {total} sessions",
                              flush=True)
                        nodes[victim].sigkill()
                        forwarder_kills += 1
                        break
                else:
                    break  # nobody live mid-run to kill this round
            elif bank_kills < opt.bank_kills:
                print(f"KILL bank at {total} sessions (mid-settlement)", flush=True)
                bank.sigkill()
                bank_kills += 1

        if len(done_nodes) == opt.nodes and forwarder_kills >= opt.forwarder_kills \
                and bank_kills >= opt.bank_kills:
            break
        time.sleep(0.05)

    total_sessions = sum(session_counts.values())
    if len(done_nodes) < opt.nodes:
        fail(f"only {len(done_nodes)}/{opt.nodes} nodes finished their sessions "
             f"({total_sessions} sessions, {ok_sessions} ok) within {opt.timeout}s",
             workdir)

    # The loop can break in the same iteration that killed the bank (the
    # respawn branch runs at the TOP of the next iteration): resurrect it.
    if bank.popen.poll() is not None:
        bank.log.close()
        bank = spawn_bank(opt.binary, workdir, opt.seed, port=bank_port, resume=True)
        if port_of(bank, "respawned bank", workdir) != bank_port:
            fail("respawned bank lost its port", workdir)

    # Any kills still owed (tiny runs): take them now, while settlements from
    # the no-close sessions are still open, so the bank kill is mid-settlement.
    while bank_kills < opt.bank_kills:
        print("KILL bank (final, mid-settlement: unclosed settlements pending)")
        bank.sigkill()
        bank_kills += 1
        bank = spawn_bank(opt.binary, workdir, opt.seed, port=bank_port, resume=True)
        if port_of(bank, "respawned bank", workdir) != bank_port:
            fail("respawned bank lost its port", workdir)

    # Sweep: terminalise every open settlement, write the report.
    sweep = subprocess.run(
        [opt.binary, "--role", "sweep", "--bank", str(bank_port), "--seed", str(opt.seed)],
        capture_output=True, timeout=60)
    if sweep.returncode != 0:
        fail(f"sweep failed: {sweep.stderr.decode(errors='replace')}", workdir)
    bank.read_lines()

    report_path = workdir / "report.json"
    for _ in range(100):
        if report_path.exists() and report_path.stat().st_size > 0:
            break
        time.sleep(0.05)
    if not report_path.exists():
        fail("bank never wrote the reconciliation report", workdir)
    report = json.loads(report_path.read_text())

    for proc in list(nodes.values()) + [bank]:
        proc.close()

    print(json.dumps(report, indent=2))
    print(f"sessions={total_sessions} ok={ok_sessions} failed={failed_sessions} "
          f"forwarder_kills={forwarder_kills} bank_kills={bank_kills} reforms={reforms}")

    if ok_sessions < opt.min_sessions:
        fail(f"only {ok_sessions} completed sessions (< {opt.min_sessions})", workdir)
    if forwarder_kills < opt.forwarder_kills:
        fail(f"only {forwarder_kills} forwarder kills (< {opt.forwarder_kills})", workdir)
    if bank_kills < opt.bank_kills:
        fail(f"only {bank_kills} bank kills (< {opt.bank_kills})", workdir)
    for inv in ("c1_money_conserved", "c2_all_terminal", "c3_escrow_drained",
                "c4_journal_reconciles", "c5_terminal_refused_and_expired_refunded"):
        if not report.get(inv, False):
            fail(f"invariant {inv} violated after reconciliation", workdir)
    if report.get("settlements", 0) == 0:
        fail("no settlements were opened at all", workdir)
    if report.get("claims_accepted", 0) == 0:
        fail("no claims were accepted at all", workdir)
    print("PASS")


if __name__ == "__main__":
    main()
