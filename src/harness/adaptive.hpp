// Adaptive sequential stopping with checkpoint/resume for sweep harnesses.
//
// Every ablation/attack/chaos sweep used to run a fixed replicate count
// regardless of variance, and a crash at schedule 187/200 threw everything
// away. AdaptiveRunner replaces both weaknesses:
//
//  * Sequential stopping — batches are planned with Hoeffding + a union
//    bound over the tracked metrics, anytime (alpha-spending) confidence
//    bounds keep peeking after every batch statistically valid, boolean
//    invariants stop on a Hoeffding pass-rate lower bound, and a cell stops
//    the moment every target interval is within ±eps — under a hard
//    replicate cap (the planned fixed count, so adaptivity only ever saves
//    work). Default-off and bitwise-inert: with `adaptive = false` and no
//    checkpoint the runner degrades to exactly the fixed-count behaviour.
//
//  * Checkpoint/resume — after each batch the full cell state (metric
//    accumulators, exact sums, completed-replicate bitmap, sample digest,
//    config fingerprint) is serialised bit-exactly through
//    harness::Checkpoint (write-temp + atomic rename). Because replicate i
//    is a pure deterministic function of i (seed = base + i), a run killed
//    at any instant and resumed from its checkpoint produces numerically
//    identical final aggregates to an uninterrupted run — asserted by the
//    kill-and-resume gates (tests/harness/adaptive_smoke.py).
//
// The math is documented in DESIGN.md §3.12.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace p2panon::harness {

/// Knobs of the sequential-stopping layer. Default-constructed: adaptivity
/// off, no checkpointing — the proven-inert configuration.
struct AdaptiveConfig {
  bool adaptive = false;     ///< sequential stopping on/off
  double eps = 0.05;         ///< default ±eps target (MetricSpec::eps overrides)
  double alpha = 0.05;       ///< anytime error budget across all peeks & metrics
  std::size_t min_batch = 8; ///< first batch size / smallest planning quantum
  std::string checkpoint;    ///< checkpoint file path; empty = no checkpointing
  /// Crash-testing hook: once the checkpoint for the N-th batch of a cell is
  /// on disk, terminate the process abruptly (std::_Exit, no unwinding — a
  /// faithful SIGKILL stand-in). 0 = off. Driven by the kill-and-resume
  /// gates; also settable via --kill-after-batch / P2PANON_KILL_AFTER_BATCH.
  std::size_t kill_after_batches = 0;
};

/// Consume --adaptive, --eps X, --checkpoint PATH and --kill-after-batch N
/// from argv (compacting it in place, so existing positional parsing is
/// untouched), with P2PANON_ADAPTIVE / P2PANON_EPS / P2PANON_CHECKPOINT /
/// P2PANON_KILL_AFTER_BATCH as environment fallbacks.
[[nodiscard]] AdaptiveConfig parse_adaptive_flags(int& argc, char** argv,
                                                  double default_eps = 0.05);

/// One tracked column of a sweep cell.
struct MetricSpec {
  enum class Kind : std::uint8_t {
    kMean,      ///< stopping target: anytime CI half-width <= eps
    kPassRate,  ///< boolean invariant: stop once the Hoeffding LCB >= threshold
    kSum,       ///< exact counter column; aggregated but never gates stopping
  };
  std::string name;
  Kind kind = Kind::kMean;
  double eps = 0.0;         ///< kMean: ±eps target; <= 0 uses AdaptiveConfig::eps
  bool relative = false;    ///< kMean: eps is a fraction of |mean| (throughput-style)
  double threshold = 0.995; ///< kPassRate: required lower confidence bound
};

/// What the stopping layer decided for one cell.
struct AdaptiveOutcome {
  std::size_t replicates_used = 0;
  std::size_t replicates_planned = 0;
  std::size_t batches = 0;     ///< peeks taken (a resumed run keeps counting)
  bool stopped_early = false;  ///< every target closed before the cap
  bool resumed = false;        ///< state restored from a checkpoint
  bool complete = false;
};

struct AdaptiveCellResult {
  /// Per-spec across-replicate accumulators (kSum specs accumulate too, for
  /// min/max/count; their exact totals live in `sums`).
  std::vector<metrics::Accumulator> metrics;
  /// Exact totals for kSum specs (integer-valued sums stay exact below 2^53);
  /// zero for other kinds.
  std::vector<double> sums;
  AdaptiveOutcome outcome;
};

// --- Shared sequential-stopping arithmetic (pure, deterministic) -----------
// Used by AdaptiveRunner and by the scenario-level run_replicated_adaptive.

/// View over one mean-CI stopping target.
struct StopTarget {
  const metrics::Accumulator* acc = nullptr;
  double eps = 0.0;
  bool relative = false;
  /// Resolved absolute half-width target at the current state.
  [[nodiscard]] double eps_abs() const noexcept;
};

/// View over one pass-rate stopping target.
struct PassTarget {
  std::size_t passes = 0;
  std::size_t trials = 0;
  double threshold = 0.995;
};

/// True when, at the k-th peek with `targets.size() + passes.size()`
/// simultaneous targets, every anytime interval is within its ±eps and
/// every pass-rate lower bound clears its threshold.
[[nodiscard]] bool anytime_stop(const std::vector<StopTarget>& targets,
                                const std::vector<PassTarget>& passes, double alpha,
                                std::size_t peek);

/// Hoeffding + union-bound batch plan: how many more replicates to run
/// before the `peek`-th look, given `done` so far and the hard cap
/// `planned`. Grows at most geometrically (so the alpha-spending schedule
/// gets its peeks) and never exceeds the remaining budget.
[[nodiscard]] std::size_t plan_next_batch(const std::vector<StopTarget>& targets,
                                          const std::vector<PassTarget>& passes,
                                          double alpha, std::size_t peek, std::size_t done,
                                          std::size_t planned, std::size_t min_batch);

/// Sequential-stopping runner for sweeps whose replicate `i` is a pure
/// deterministic function of `i` (seeded `base + i` by convention).
class AdaptiveRunner {
 public:
  AdaptiveRunner(AdaptiveConfig cfg, std::vector<MetricSpec> specs);

  /// Run one sweep cell. `replicate(i)` returns one sample per spec (booleans
  /// as 0/1 for kPassRate). `planned` is both the fixed count when adaptivity
  /// is off and the hard cap when it is on. `fingerprint` guards checkpoint
  /// resume: a stored cell with a different fingerprint (the sweep's config
  /// changed) is discarded, not resumed. With a `pool`, batches run their
  /// replicates in parallel; aggregation order is replicate-index ascending
  /// either way, so results are identical across pool sizes.
  [[nodiscard]] AdaptiveCellResult run_cell(
      const std::string& cell_key, std::uint64_t fingerprint, std::size_t planned,
      const std::function<std::vector<double>(std::size_t)>& replicate,
      parallel::ThreadPool* pool = nullptr);

  [[nodiscard]] const AdaptiveConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const std::vector<MetricSpec>& specs() const noexcept { return specs_; }

 private:
  AdaptiveConfig cfg_;
  std::vector<MetricSpec> specs_;
  /// Checkpoint saves performed by this process across all cells — the
  /// kill_after_batches hook counts these, so an injected crash can land in
  /// the middle of a multi-cell sweep.
  std::size_t saves_this_run_ = 0;
};

}  // namespace p2panon::harness
