#include "harness/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace p2panon::harness {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << value;
  return ss.str();
}

std::string fmt_ci(double mean, double half_width, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << mean << " +/- " << half_width;
  return ss.str();
}

void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& description) {
  os << '\n'
     << "==== " << experiment << " ====\n"
     << description << '\n'
     << '\n';
}

}  // namespace p2panon::harness
