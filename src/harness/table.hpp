// ASCII table / series printers used by the bench binaries to emit rows in
// the same shape as the paper's tables and figures, plus CSV emission for
// external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace p2panon::harness {

/// A rectangular table with a header row; cells are preformatted strings.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a rule under the header.
  void print(std::ostream& os) const;

  /// Comma-separated form (no alignment padding).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision.
[[nodiscard]] std::string fmt(double value, int precision = 2);

/// Format "mean +/- hw" (confidence-interval cell).
[[nodiscard]] std::string fmt_ci(double mean, double half_width, int precision = 2);

/// Banner for a bench section: experiment id + description.
void print_banner(std::ostream& os, const std::string& experiment,
                  const std::string& description);

}  // namespace p2panon::harness
