#include "harness/replicate.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "harness/checkpoint.hpp"
#include "parallel/parallel_for.hpp"

namespace p2panon::harness {

namespace {

/// Fold one replicate into the aggregate. Shared verbatim by the fixed and
/// adaptive paths — identical operation order is what makes adaptivity (and
/// kill/resume) bitwise-inert relative to run_replicated.
void accumulate_result(ReplicatedResult& agg, const ScenarioResult& r) {
  agg.good_payoff.add(r.good_payoff.mean());
  agg.member_payoff.add(r.member_payoff.mean());
  agg.pooled_member_payoffs.insert(agg.pooled_member_payoffs.end(),
                                   r.member_payoff_samples.begin(),
                                   r.member_payoff_samples.end());
  agg.forwarder_set_size.add(r.forwarder_set_size.mean());
  agg.avg_path_length.add(r.avg_path_length.mean());
  agg.path_quality.add(r.path_quality.mean());
  agg.initiator_utility.add(r.initiator_utility.mean());
  agg.initiator_spend.add(r.initiator_spend.mean());
  agg.connection_latency.add(r.connection_latency.mean());
  agg.routing_efficiency.add(r.routing_efficiency);
  agg.pooled_good_payoffs.insert(agg.pooled_good_payoffs.end(),
                                 r.good_payoff_samples.begin(), r.good_payoff_samples.end());
  for (std::size_t j = 0;
       j < r.new_edge_fraction_by_conn.size() && j < agg.new_edge_fraction_by_conn.size();
       ++j) {
    if (r.new_edge_fraction_by_conn[j].count() > 0) {
      agg.new_edge_fraction_by_conn[j].add(r.new_edge_fraction_by_conn[j].mean());
    }
  }
  agg.total_reformations += r.reformations;
  agg.total_churn_events += r.churn_events;
  agg.all_payments_conserved = agg.all_payments_conserved && r.payment_conserved;
  agg.delivery_ratio.add(r.delivery_ratio());
  agg.setup_time.merge(r.setup_time);
  agg.time_to_detect.merge(r.time_to_detect);
  agg.total_connections_completed += r.connections_completed;
  agg.total_connections_failed += r.connections_failed;
  agg.total_setup_attempts += r.setup_attempts;
  agg.total_ack_timeouts += r.setup_ack_timeouts;
  agg.total_crashes += r.crashes;
  agg.total_messages_dropped += r.messages_dropped;
  agg.total_keepalives_sent += r.keepalives_sent;
  agg.total_keepalives_delivered += r.keepalives_delivered;
  agg.total_engine_events_scheduled += r.engine_events_scheduled;
  agg.total_engine_events_cancelled += r.engine_events_cancelled;
  agg.total_engine_events_fired += r.engine_events_fired;
  agg.total_engine_callback_heap_allocs += r.engine_callback_heap_allocs;
  agg.total_engine_cross_shard_messages += r.engine_cross_shard_messages;
  agg.total_engine_window_barriers += r.engine_window_barriers;
  agg.total_settlements_closed += r.settlements_closed;
  agg.total_settlements_abandoned += r.settlements_abandoned;
  agg.total_settlements_expired += r.settlements_expired;
  agg.total_settlements_prorata += r.settlements_prorata;
  agg.total_claims_submitted += r.claims_submitted;
  agg.total_claims_lost += r.claims_lost;
  agg.total_claims_rejected += r.claims_rejected;
  agg.total_claims_after_terminal += r.claims_after_terminal;
  agg.total_settlement_escrow_milli += r.settlement_escrow_milli;
  agg.total_settlement_paid_milli += r.settlement_paid_milli;
  agg.total_settlement_refunded_milli += r.settlement_refunded_milli;
  agg.all_settlements_reconciled = agg.all_settlements_reconciled && r.settlement_reconciled;
  agg.total_transport_frames_sent += r.transport_frames_sent;
  agg.total_transport_frames_delivered += r.transport_frames_delivered;
  agg.total_transport_frames_dropped += r.transport_frames_dropped;
  agg.total_transport_frames_rejected += r.transport_frames_rejected;
  agg.total_transport_reconnects += r.transport_reconnects;
  agg.total_transport_backoff_retries += r.transport_backoff_retries;
  agg.total_transport_heartbeat_timeouts += r.transport_heartbeat_timeouts;
  agg.total_transport_deadline_expiries += r.transport_deadline_expiries;
}

// --- Bit-exact ReplicatedResult <-> Checkpoint codec -----------------------
// Table-driven over pointer-to-member so a ReplicatedResult field added
// without a codec entry is a one-line fix, not a parallel serializer to
// keep in sync by hand.

struct AccField {
  const char* key;
  metrics::Accumulator ReplicatedResult::* member;
};
constexpr AccField kAccFields[] = {
    {"good_payoff", &ReplicatedResult::good_payoff},
    {"member_payoff", &ReplicatedResult::member_payoff},
    {"forwarder_set_size", &ReplicatedResult::forwarder_set_size},
    {"avg_path_length", &ReplicatedResult::avg_path_length},
    {"path_quality", &ReplicatedResult::path_quality},
    {"initiator_utility", &ReplicatedResult::initiator_utility},
    {"initiator_spend", &ReplicatedResult::initiator_spend},
    {"routing_efficiency", &ReplicatedResult::routing_efficiency},
    {"connection_latency", &ReplicatedResult::connection_latency},
    {"delivery_ratio", &ReplicatedResult::delivery_ratio},
    {"setup_time", &ReplicatedResult::setup_time},
    {"time_to_detect", &ReplicatedResult::time_to_detect},
};

struct U64Field {
  const char* key;
  std::uint64_t ReplicatedResult::* member;
};
constexpr U64Field kU64Fields[] = {
    {"total_reformations", &ReplicatedResult::total_reformations},
    {"total_churn_events", &ReplicatedResult::total_churn_events},
    {"total_connections_completed", &ReplicatedResult::total_connections_completed},
    {"total_connections_failed", &ReplicatedResult::total_connections_failed},
    {"total_setup_attempts", &ReplicatedResult::total_setup_attempts},
    {"total_ack_timeouts", &ReplicatedResult::total_ack_timeouts},
    {"total_crashes", &ReplicatedResult::total_crashes},
    {"total_messages_dropped", &ReplicatedResult::total_messages_dropped},
    {"total_keepalives_sent", &ReplicatedResult::total_keepalives_sent},
    {"total_keepalives_delivered", &ReplicatedResult::total_keepalives_delivered},
    {"total_engine_events_scheduled", &ReplicatedResult::total_engine_events_scheduled},
    {"total_engine_events_cancelled", &ReplicatedResult::total_engine_events_cancelled},
    {"total_engine_events_fired", &ReplicatedResult::total_engine_events_fired},
    {"total_engine_callback_heap_allocs", &ReplicatedResult::total_engine_callback_heap_allocs},
    {"total_engine_cross_shard_messages", &ReplicatedResult::total_engine_cross_shard_messages},
    {"total_engine_window_barriers", &ReplicatedResult::total_engine_window_barriers},
    {"total_settlements_closed", &ReplicatedResult::total_settlements_closed},
    {"total_settlements_abandoned", &ReplicatedResult::total_settlements_abandoned},
    {"total_settlements_expired", &ReplicatedResult::total_settlements_expired},
    {"total_settlements_prorata", &ReplicatedResult::total_settlements_prorata},
    {"total_claims_submitted", &ReplicatedResult::total_claims_submitted},
    {"total_claims_lost", &ReplicatedResult::total_claims_lost},
    {"total_claims_rejected", &ReplicatedResult::total_claims_rejected},
    {"total_claims_after_terminal", &ReplicatedResult::total_claims_after_terminal},
    {"total_transport_frames_sent", &ReplicatedResult::total_transport_frames_sent},
    {"total_transport_frames_delivered", &ReplicatedResult::total_transport_frames_delivered},
    {"total_transport_frames_dropped", &ReplicatedResult::total_transport_frames_dropped},
    {"total_transport_frames_rejected", &ReplicatedResult::total_transport_frames_rejected},
    {"total_transport_reconnects", &ReplicatedResult::total_transport_reconnects},
    {"total_transport_backoff_retries", &ReplicatedResult::total_transport_backoff_retries},
    {"total_transport_heartbeat_timeouts",
     &ReplicatedResult::total_transport_heartbeat_timeouts},
    {"total_transport_deadline_expiries",
     &ReplicatedResult::total_transport_deadline_expiries},
};

struct I64Field {
  const char* key;
  std::int64_t ReplicatedResult::* member;
};
constexpr I64Field kI64Fields[] = {
    {"total_settlement_escrow_milli", &ReplicatedResult::total_settlement_escrow_milli},
    {"total_settlement_paid_milli", &ReplicatedResult::total_settlement_paid_milli},
    {"total_settlement_refunded_milli", &ReplicatedResult::total_settlement_refunded_milli},
};

struct BoolField {
  const char* key;
  bool ReplicatedResult::* member;
};
constexpr BoolField kBoolFields[] = {
    {"all_payments_conserved", &ReplicatedResult::all_payments_conserved},
    {"all_settlements_reconciled", &ReplicatedResult::all_settlements_reconciled},
};

std::string encode_acc(const metrics::Accumulator& acc) {
  const auto raw = acc.raw();
  std::ostringstream out;
  out << encode_u64(raw.n) << " " << encode_u64(raw.mean_bits) << " " << encode_u64(raw.m2_bits)
      << " " << encode_u64(raw.min_bits) << " " << encode_u64(raw.max_bits);
  return out.str();
}

bool decode_acc(const std::string& text, metrics::Accumulator& out) {
  std::istringstream in(text);
  std::string n, mean, m2, mn, mx;
  if (!(in >> n >> mean >> m2 >> mn >> mx)) return false;
  const auto nv = decode_u64(n);
  const auto meanv = decode_u64(mean);
  const auto m2v = decode_u64(m2);
  const auto mnv = decode_u64(mn);
  const auto mxv = decode_u64(mx);
  if (!nv || !meanv || !m2v || !mnv || !mxv) return false;
  out = metrics::Accumulator::from_raw({*nv, *meanv, *m2v, *mnv, *mxv});
  return true;
}

std::string encode_samples(const std::vector<double>& samples) {
  std::ostringstream out;
  out << encode_u64(samples.size());
  for (const double x : samples) out << " " << encode_double(x);
  return out.str();
}

bool decode_samples(const std::string& text, std::vector<double>& out) {
  std::istringstream in(text);
  std::string tok;
  if (!(in >> tok)) return false;
  const auto count = decode_u64(tok);
  if (!count) return false;
  out.clear();
  out.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (!(in >> tok)) return false;
    const auto x = decode_double(tok);
    if (!x) return false;
    out.push_back(*x);
  }
  return !(in >> tok);  // trailing tokens = corrupt record
}

void encode_replicated(Checkpoint& ckpt, const std::string& prefix, const ReplicatedResult& r) {
  ckpt.set(prefix + "replicates", encode_u64(r.replicates));
  for (const AccField& f : kAccFields) ckpt.set(prefix + f.key, encode_acc(r.*f.member));
  for (const U64Field& f : kU64Fields) ckpt.set(prefix + f.key, encode_u64(r.*f.member));
  for (const I64Field& f : kI64Fields) {
    ckpt.set(prefix + f.key, encode_u64(static_cast<std::uint64_t>(r.*f.member)));
  }
  for (const BoolField& f : kBoolFields) ckpt.set(prefix + f.key, (r.*f.member) ? "1" : "0");
  ckpt.set(prefix + "pooled_good", encode_samples(r.pooled_good_payoffs));
  ckpt.set(prefix + "pooled_member", encode_samples(r.pooled_member_payoffs));
  ckpt.set(prefix + "nef.count", encode_u64(r.new_edge_fraction_by_conn.size()));
  for (std::size_t j = 0; j < r.new_edge_fraction_by_conn.size(); ++j) {
    ckpt.set(prefix + "nef." + std::to_string(j), encode_acc(r.new_edge_fraction_by_conn[j]));
  }
}

bool decode_replicated(const Checkpoint& ckpt, const std::string& prefix, ReplicatedResult& r) {
  const auto get = [&](const std::string& key) { return ckpt.find(prefix + key); };
  const std::string* reps = get("replicates");
  if (reps == nullptr) return false;
  const auto reps_v = decode_u64(*reps);
  if (!reps_v) return false;
  r.replicates = static_cast<std::size_t>(*reps_v);
  for (const AccField& f : kAccFields) {
    const std::string* v = get(f.key);
    if (v == nullptr || !decode_acc(*v, r.*f.member)) return false;
  }
  for (const U64Field& f : kU64Fields) {
    const std::string* v = get(f.key);
    if (v == nullptr) return false;
    const auto x = decode_u64(*v);
    if (!x) return false;
    r.*f.member = *x;
  }
  for (const I64Field& f : kI64Fields) {
    const std::string* v = get(f.key);
    if (v == nullptr) return false;
    const auto x = decode_u64(*v);
    if (!x) return false;
    r.*f.member = static_cast<std::int64_t>(*x);
  }
  for (const BoolField& f : kBoolFields) {
    const std::string* v = get(f.key);
    if (v == nullptr || (*v != "0" && *v != "1")) return false;
    r.*f.member = (*v == "1");
  }
  const std::string* pg = get("pooled_good");
  const std::string* pm = get("pooled_member");
  if (pg == nullptr || !decode_samples(*pg, r.pooled_good_payoffs)) return false;
  if (pm == nullptr || !decode_samples(*pm, r.pooled_member_payoffs)) return false;
  const std::string* nef_count = get("nef.count");
  if (nef_count == nullptr) return false;
  const auto nef_n = decode_u64(*nef_count);
  if (!nef_n) return false;
  r.new_edge_fraction_by_conn.assign(static_cast<std::size_t>(*nef_n), {});
  for (std::size_t j = 0; j < r.new_edge_fraction_by_conn.size(); ++j) {
    const std::string* v = get("nef." + std::to_string(j));
    if (v == nullptr || !decode_acc(*v, r.new_edge_fraction_by_conn[j])) return false;
  }
  return true;
}

}  // namespace

ReplicatedResult run_replicated(const ScenarioConfig& base, std::size_t replicates,
                                parallel::ThreadPool* pool) {
  std::vector<ScenarioResult> results(replicates);

  auto run_one = [&base](std::size_t r) {
    ScenarioConfig cfg = base;
    cfg.seed = base.seed + r;
    return ScenarioRunner(cfg).run();
  };

  if (pool != nullptr) {
    parallel::parallel_for(*pool, 0, replicates,
                           [&](std::size_t r) { results[r] = run_one(r); });
  } else {
    for (std::size_t r = 0; r < replicates; ++r) results[r] = run_one(r);
  }

  // Deterministic aggregation order: replicate index ascending.
  ReplicatedResult agg;
  agg.replicates = replicates;
  agg.new_edge_fraction_by_conn.resize(base.connections_per_pair);
  for (const ScenarioResult& r : results) accumulate_result(agg, r);
  return agg;
}

std::uint64_t config_fingerprint(const ScenarioConfig& cfg) noexcept {
  std::uint64_t h = fnv1a_init();
  const auto mix_u = [&](std::uint64_t v) { h = fnv1a_mix(h, v); };
  const auto mix_d = [&](double v) { h = fnv1a_double(h, v); };

  mix_u(cfg.seed);
  mix_u(cfg.overlay.node_count);
  mix_u(cfg.overlay.degree);
  mix_d(cfg.overlay.malicious_fraction);
  mix_u(cfg.overlay.malicious_always_online ? 1 : 0);
  mix_d(cfg.overlay.participation_cost);
  mix_d(cfg.overlay.churn.join_interarrival_mean);
  mix_d(cfg.overlay.churn.session_median);
  mix_d(cfg.overlay.churn.session_min);
  mix_d(cfg.overlay.churn.session_max);
  mix_d(cfg.overlay.churn.offline_gap_mean);
  mix_d(cfg.overlay.churn.departure_probability);
  mix_d(cfg.weights.w_selectivity);
  mix_d(cfg.weights.w_availability);
  mix_u(static_cast<std::uint64_t>(cfg.good_strategy));
  mix_u(cfg.lookahead_depth);
  mix_u(cfg.pair_count);
  mix_u(cfg.connections_per_pair);
  mix_d(cfg.responder_zipf);
  mix_u(cfg.cid_rotation);
  mix_d(cfg.p_f_lo);
  mix_d(cfg.p_f_hi);
  mix_d(cfg.tau);
  mix_u(static_cast<std::uint64_t>(cfg.termination));
  mix_d(cfg.p_forward);
  mix_u(cfg.ttl_hops);
  mix_d(cfg.warmup);
  mix_d(cfg.pair_start_window);
  mix_d(cfg.connection_interval_mean);
  mix_d(cfg.adversary.drop_probability);
  mix_u(cfg.adversary.max_retries);
  mix_u(cfg.history_capacity);
  mix_d(cfg.fault.link_loss);
  mix_d(cfg.fault.delay_jitter);
  mix_d(cfg.fault.crash_rate_per_hour);
  mix_d(cfg.fault.crash_recovery_mean);
  mix_d(cfg.fault.probe_false_negative);
  mix_u(cfg.fault.partitions.size());
  mix_u(cfg.fault.bank.lifecycle ? 1 : 0);
  mix_d(cfg.fault.bank.claim_loss);
  mix_d(cfg.fault.bank.claim_delay_mean);
  mix_d(cfg.fault.bank.initiator_crash);
  mix_d(cfg.fault.bank.forwarder_crash);
  mix_d(cfg.fault.bank.claim_deadline);
  mix_d(cfg.fault.bank.close_after);
  mix_d(cfg.fault.bank.claim_spread);
  mix_d(cfg.suspicion_penalty);
  mix_d(cfg.initial_balance_credits);
  mix_u(cfg.use_decision_cache ? 1 : 0);
  mix_u(cfg.use_sharded_engine ? 1 : 0);
  mix_d(cfg.engine_window);
  mix_u(static_cast<std::uint64_t>(cfg.transport));
  return h;
}

AdaptiveReplicatedResult run_replicated_adaptive(const ScenarioConfig& base, std::size_t planned,
                                                 const AdaptiveConfig& adaptive,
                                                 const std::vector<TrackedScenarioMetric>& tracked,
                                                 parallel::ThreadPool* pool,
                                                 const std::string& cell_key) {
  // Fast path: nothing adaptive, nothing persisted — defer to the fixed
  // runner so this wrapper is provably inert when its features are off.
  AdaptiveReplicatedResult out;
  out.outcome.replicates_planned = planned;

  std::uint64_t fp = config_fingerprint(base);
  for (const TrackedScenarioMetric& t : tracked) fp = fnv1a_bytes(fp, t.name);
  fp = fnv1a_mix(fp, static_cast<std::uint64_t>(planned));

  const bool use_ckpt = !adaptive.checkpoint.empty();
  if (!adaptive.adaptive && !use_ckpt) {
    out.result = run_replicated(base, planned, pool);
    out.outcome.replicates_used = planned;
    out.outcome.batches = planned > 0 ? 1 : 0;
    out.outcome.complete = true;
    for (const TrackedScenarioMetric& t : tracked) {
      out.intervals.push_back(metrics::confidence_interval(out.result.*t.accumulator));
    }
    return out;
  }

  ReplicatedResult agg;
  agg.new_edge_fraction_by_conn.resize(base.connections_per_pair);
  std::size_t done = 0;
  std::size_t peeks = 0;
  bool stopped = false;

  const std::filesystem::path ckpt_path = adaptive.checkpoint;
  std::string key;
  for (const char c : cell_key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    key.push_back(ok ? c : '_');
  }
  const std::string prefix = "r." + (key.empty() ? std::string("cell") : key) + ".";
  Checkpoint ckpt;

  if (use_ckpt) {
    if (auto loaded = Checkpoint::load(ckpt_path)) ckpt = std::move(*loaded);
    const std::string* stored_fp = ckpt.find(prefix + "fp");
    const std::string* d = ckpt.find(prefix + "done");
    const std::string* k = ckpt.find(prefix + "peeks");
    const std::string* st = ckpt.find(prefix + "stopped");
    const std::string* co = ckpt.find(prefix + "complete");
    bool restored = false;
    if (stored_fp != nullptr && decode_u64(*stored_fp) == fp && d != nullptr && k != nullptr &&
        st != nullptr && co != nullptr) {
      const auto done_v = decode_u64(*d);
      const auto peeks_v = decode_u64(*k);
      ReplicatedResult candidate;
      if (done_v && peeks_v && *done_v <= planned &&
          decode_replicated(ckpt, prefix, candidate)) {
        agg = std::move(candidate);
        done = static_cast<std::size_t>(*done_v);
        peeks = static_cast<std::size_t>(*peeks_v);
        stopped = (*st == "1");
        out.outcome.resumed = done > 0;
        restored = true;
        if (*co == "1") {
          out.result = std::move(agg);
          out.outcome.replicates_used = done;
          out.outcome.batches = peeks;
          out.outcome.stopped_early = stopped && done < planned;
          out.outcome.complete = true;
          for (const TrackedScenarioMetric& t : tracked) {
            out.intervals.push_back(metrics::anytime_interval(
                out.result.*t.accumulator, adaptive.alpha, std::max<std::size_t>(peeks, 1),
                std::max<std::size_t>(tracked.size(), 1)));
          }
          return out;
        }
      }
    }
    if (!restored) ckpt.erase_prefix(prefix);  // stale or torn cell state
  }

  auto run_one = [&base](std::size_t r) {
    ScenarioConfig cfg = base;
    cfg.seed = base.seed + r;
    return ScenarioRunner(cfg).run();
  };
  auto build_targets = [&](std::vector<StopTarget>& targets) {
    targets.clear();
    for (const TrackedScenarioMetric& t : tracked) {
      targets.push_back(
          {&(agg.*t.accumulator), t.eps > 0.0 ? t.eps : adaptive.eps, t.relative});
    }
  };

  static std::size_t saves_this_run = 0;  // kill hook counts process-wide saves
  std::vector<StopTarget> targets;
  const std::vector<PassTarget> no_passes;
  while (done < planned && !stopped) {
    std::size_t batch;
    if (!adaptive.adaptive) {
      batch = std::min(planned - done, std::max(adaptive.min_batch, done));
    } else {
      build_targets(targets);
      batch = plan_next_batch(targets, no_passes, adaptive.alpha, peeks + 1, done, planned,
                              adaptive.min_batch);
    }
    batch = std::max<std::size_t>(batch, 1);

    std::vector<ScenarioResult> results(batch);
    if (pool != nullptr) {
      parallel::parallel_for(*pool, 0, batch,
                             [&](std::size_t b) { results[b] = run_one(done + b); });
    } else {
      for (std::size_t b = 0; b < batch; ++b) results[b] = run_one(done + b);
    }
    for (const ScenarioResult& r : results) accumulate_result(agg, r);
    done += batch;
    agg.replicates = done;
    ++peeks;

    if (adaptive.adaptive && done < planned) {
      build_targets(targets);
      stopped = anytime_stop(targets, no_passes, adaptive.alpha, peeks);
    }

    if (use_ckpt) {
      const bool complete = stopped || done >= planned;
      ckpt.set(prefix + "fp", encode_u64(fp));
      ckpt.set(prefix + "done", encode_u64(done));
      ckpt.set(prefix + "peeks", encode_u64(peeks));
      ckpt.set(prefix + "stopped", stopped ? "1" : "0");
      ckpt.set(prefix + "complete", complete ? "1" : "0");
      encode_replicated(ckpt, prefix, agg);
      (void)ckpt.save(ckpt_path);
      ++saves_this_run;
      if (adaptive.kill_after_batches != 0 && saves_this_run >= adaptive.kill_after_batches) {
        std::_Exit(9);  // crash injection; see AdaptiveRunner::run_cell
      }
    }
  }

  out.result = std::move(agg);
  out.outcome.replicates_used = done;
  out.outcome.batches = peeks;
  out.outcome.stopped_early = stopped && done < planned;
  out.outcome.complete = true;
  for (const TrackedScenarioMetric& t : tracked) {
    out.intervals.push_back(metrics::anytime_interval(
        out.result.*t.accumulator, adaptive.alpha, std::max<std::size_t>(peeks, 1),
        std::max<std::size_t>(tracked.size(), 1)));
  }
  return out;
}

}  // namespace p2panon::harness
