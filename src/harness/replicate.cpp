#include "harness/replicate.hpp"

#include "parallel/parallel_for.hpp"

namespace p2panon::harness {

ReplicatedResult run_replicated(const ScenarioConfig& base, std::size_t replicates,
                                parallel::ThreadPool* pool) {
  std::vector<ScenarioResult> results(replicates);

  auto run_one = [&base](std::size_t r) {
    ScenarioConfig cfg = base;
    cfg.seed = base.seed + r;
    return ScenarioRunner(cfg).run();
  };

  if (pool != nullptr) {
    parallel::parallel_for(*pool, 0, replicates,
                           [&](std::size_t r) { results[r] = run_one(r); });
  } else {
    for (std::size_t r = 0; r < replicates; ++r) results[r] = run_one(r);
  }

  // Deterministic aggregation order: replicate index ascending.
  ReplicatedResult agg;
  agg.replicates = replicates;
  agg.new_edge_fraction_by_conn.resize(base.connections_per_pair);
  for (const ScenarioResult& r : results) {
    agg.good_payoff.add(r.good_payoff.mean());
    agg.member_payoff.add(r.member_payoff.mean());
    agg.pooled_member_payoffs.insert(agg.pooled_member_payoffs.end(),
                                     r.member_payoff_samples.begin(),
                                     r.member_payoff_samples.end());
    agg.forwarder_set_size.add(r.forwarder_set_size.mean());
    agg.avg_path_length.add(r.avg_path_length.mean());
    agg.path_quality.add(r.path_quality.mean());
    agg.initiator_utility.add(r.initiator_utility.mean());
    agg.initiator_spend.add(r.initiator_spend.mean());
    agg.connection_latency.add(r.connection_latency.mean());
    agg.routing_efficiency.add(r.routing_efficiency);
    agg.pooled_good_payoffs.insert(agg.pooled_good_payoffs.end(),
                                   r.good_payoff_samples.begin(), r.good_payoff_samples.end());
    for (std::size_t j = 0;
         j < r.new_edge_fraction_by_conn.size() && j < agg.new_edge_fraction_by_conn.size();
         ++j) {
      if (r.new_edge_fraction_by_conn[j].count() > 0) {
        agg.new_edge_fraction_by_conn[j].add(r.new_edge_fraction_by_conn[j].mean());
      }
    }
    agg.total_reformations += r.reformations;
    agg.total_churn_events += r.churn_events;
    agg.all_payments_conserved = agg.all_payments_conserved && r.payment_conserved;
    agg.delivery_ratio.add(r.delivery_ratio());
    agg.setup_time.merge(r.setup_time);
    agg.time_to_detect.merge(r.time_to_detect);
    agg.total_connections_completed += r.connections_completed;
    agg.total_connections_failed += r.connections_failed;
    agg.total_setup_attempts += r.setup_attempts;
    agg.total_ack_timeouts += r.setup_ack_timeouts;
    agg.total_crashes += r.crashes;
    agg.total_messages_dropped += r.messages_dropped;
    agg.total_keepalives_sent += r.keepalives_sent;
    agg.total_keepalives_delivered += r.keepalives_delivered;
    agg.total_engine_events_scheduled += r.engine_events_scheduled;
    agg.total_engine_events_cancelled += r.engine_events_cancelled;
    agg.total_engine_events_fired += r.engine_events_fired;
    agg.total_engine_callback_heap_allocs += r.engine_callback_heap_allocs;
    agg.total_engine_cross_shard_messages += r.engine_cross_shard_messages;
    agg.total_engine_window_barriers += r.engine_window_barriers;
    agg.total_settlements_closed += r.settlements_closed;
    agg.total_settlements_abandoned += r.settlements_abandoned;
    agg.total_settlements_expired += r.settlements_expired;
    agg.total_settlements_prorata += r.settlements_prorata;
    agg.total_claims_submitted += r.claims_submitted;
    agg.total_claims_lost += r.claims_lost;
    agg.total_claims_rejected += r.claims_rejected;
    agg.total_claims_after_terminal += r.claims_after_terminal;
    agg.total_settlement_escrow_milli += r.settlement_escrow_milli;
    agg.total_settlement_paid_milli += r.settlement_paid_milli;
    agg.total_settlement_refunded_milli += r.settlement_refunded_milli;
    agg.all_settlements_reconciled = agg.all_settlements_reconciled && r.settlement_reconciled;
  }
  return agg;
}

}  // namespace p2panon::harness
