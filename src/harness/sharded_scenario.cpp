#include "harness/sharded_scenario.hpp"

#include <cassert>
#include <bit>

#include "core/shard_quality.hpp"
#include "net/sharded_probing.hpp"
#include "net/soa.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"

namespace p2panon::harness {

namespace {

using net::NodeId;

/// FNV-1a 64 over 8-byte words.
struct Fingerprint {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void add_double(double d) noexcept { add(std::bit_cast<std::uint64_t>(d)); }
};

/// The whole sharded world: SoA overlay state, shard-scoped estimators,
/// per-shard counters, and the event handlers. Bound either to a
/// ShardedSimulator (windowed run) or to a plain Simulator (the serial
/// oracle) — the handlers are identical, which is the point.
class World {
 public:
  World(const ShardedScenarioConfig& cfg, sim::ShardedSimulator* sharded,
        sim::Simulator* serial)
      : cfg_(cfg),
        sharded_(sharded),
        serial_(serial),
        partition_(cfg.node_count, sharded != nullptr ? sharded->shard_count() : 1),
        stream_(cfg.seed),
        counters_(partition_.shard_count()) {
    assert(cfg.node_count >= 2);
    assert(cfg.degree >= 1 && cfg.degree < cfg.node_count);
    state_.resize(cfg.node_count, cfg.degree);
    // Built after the columns exist — both snapshot state_.size()/degree.
    probing_ = std::make_unique<net::ShardedProbing>(state_, partition_, cfg.probe_period,
                                                     stream_.child("probing"));

    // Same neighbour-selection draw order as Overlay: one shared stream,
    // nodes in id order, picks mapped onto V \ {id}.
    auto nb_stream = stream_.child("neighbors");
    for (NodeId id = 0; id < cfg.node_count; ++id) {
      auto picks = nb_stream.sample_indices(cfg.node_count - 1, cfg.degree);
      auto row = state_.neighbors_of(id);
      for (std::size_t slot = 0; slot < picks.size(); ++slot) {
        const std::size_t p = picks[slot];
        row[slot] = static_cast<NodeId>(p >= id ? p + 1 : p);
      }
    }

    quality_ = std::make_unique<core::ShardedEdgeQuality>(state_, partition_, *probing_,
                                                          cfg.weights);
    published_.assign(cfg.node_count, 0);
    churn_cycle_.assign(cfg.node_count, 0);
    conn_count_.assign(cfg.node_count, 0);
    probe_loop_active_.assign(cfg.node_count, 0);
    conn_loop_started_.assign(cfg.node_count, 0);
    pending_active_.assign(cfg.node_count, 0);
    pending_conn_.assign(cfg.node_count, 0);
    pending_slot_.assign(cfg.node_count, 0);
    pending_timer_.assign(cfg.node_count, sim::kInvalidEventId);
  }

  /// Schedule every node's initial join; uniform over [0, join_window).
  void seed_events() {
    for (NodeId id = 0; id < cfg_.node_count; ++id) {
      const sim::Time at = stream_.child("join", id).uniform(0.0, cfg_.join_window);
      const std::uint32_t s = partition_.shard_of(id);
      post(s, s, at, [this, id] { do_join(id); });
    }
  }

  /// Serial barrier work: publish the liveness snapshot cross-shard reads
  /// use next window, and settle the claims every shard accrued.
  void on_barrier(sim::Time /*boundary*/) {
    for (NodeId id = 0; id < cfg_.node_count; ++id) {
      published_[id] = state_.appears_online(id) ? 1 : 0;
    }
    settle_claims();
  }

  [[nodiscard]] ShardedScenarioResult finish() {
    settle_claims();  // residual claims from the tail of the run

    ShardedScenarioResult r;
    r.per_shard.assign(counters_.begin(), counters_.end());
    for (const ShardCounters& c : counters_) {
      r.connections_launched += c.connections_launched;
      r.connections_acked += c.connections_acked;
      r.ack_timeouts += c.ack_timeouts;
      r.no_candidate += c.no_candidate;
      r.hops_forwarded += c.hops_forwarded;
      r.churn_events += c.churn_events;
      r.departures += c.departures;
      r.claims_settled += c.claims_settled;
    }
    r.probes = probing_->probes_performed();
    r.settlement_batches = settlement_batches_;
    if (sharded_ != nullptr) {
      r.cross_shard_messages = sharded_->stats().cross_shard_messages;
      r.window_barriers = sharded_->stats().window_barriers;
      r.engine = sharded_->aggregate_queue_stats();
    } else {
      r.engine = serial_->queue_stats();
    }
    r.digest = digest();
    return r;
  }

 private:
  [[nodiscard]] sim::Simulator& local_sim(std::uint32_t s) {
    return sharded_ != nullptr ? sharded_->shard(s) : *serial_;
  }

  void post(std::uint32_t src, std::uint32_t dst, sim::Time at, sim::EventFn fn) {
    if (sharded_ != nullptr) {
      sharded_->post(src, dst, at, std::move(fn));
    } else {
      serial_->schedule_at(at, std::move(fn));
    }
  }

  [[nodiscard]] std::uint64_t key_of(NodeId id, std::uint64_t n) const noexcept {
    return (static_cast<std::uint64_t>(id) << 32) | n;
  }

  // ---- churn ------------------------------------------------------------

  void do_join(NodeId id) {
    if (state_.departed[id] != 0 || state_.online[id] != 0) return;
    const std::uint32_t s = partition_.shard_of(id);
    const sim::Time now = local_sim(s).now();
    state_.online[id] = 1;
    state_.tracker[id].on_join(now);
    ++counters_[s].churn_events;

    if (probe_loop_active_[id] == 0) {
      probe_loop_active_[id] = 1;
      post(s, s, now + cfg_.probe_period, [this, id] { probe_tick(id); });
    }
    if (conn_loop_started_[id] == 0) {
      conn_loop_started_[id] = 1;
      const double rate = 1.0 / cfg_.connection_interval_mean;
      const sim::Time gap = stream_.child("conn-gap", key_of(id, 0)).exponential(rate);
      post(s, s, now + gap, [this, id] { conn_tick(id); });
    }

    const std::uint64_t cycle = churn_cycle_[id];
    const sim::Time session =
        stream_.child("session", key_of(id, cycle)).exponential(1.0 / cfg_.session_mean);
    post(s, s, now + session, [this, id, cycle] { do_leave(id, cycle); });
  }

  void do_leave(NodeId id, std::uint64_t cycle) {
    if (state_.online[id] == 0 || churn_cycle_[id] != cycle) return;
    const std::uint32_t s = partition_.shard_of(id);
    const sim::Time now = local_sim(s).now();
    state_.online[id] = 0;
    state_.tracker[id].on_leave(now);
    ++counters_[s].churn_events;
    ++churn_cycle_[id];

    const std::uint64_t next_cycle = churn_cycle_[id];
    if (stream_.child("depart", key_of(id, next_cycle)).next_double() <
        cfg_.departure_probability) {
      state_.departed[id] = 1;
      ++counters_[s].departures;
      return;
    }
    const sim::Time gap =
        stream_.child("gap", key_of(id, next_cycle)).exponential(1.0 / cfg_.offline_gap_mean);
    post(s, s, now + gap, [this, id] { do_join(id); });
  }

  // ---- probing ----------------------------------------------------------

  void probe_tick(NodeId id) {
    if (state_.online[id] == 0) {
      probe_loop_active_[id] = 0;  // suspend; restarts on the next join
      return;
    }
    const std::uint32_t s = partition_.shard_of(id);
    probing_->probe(id, published_);
    post(s, s, local_sim(s).now() + cfg_.probe_period, [this, id] { probe_tick(id); });
  }

  // ---- traffic ----------------------------------------------------------

  void conn_tick(NodeId id) {
    if (state_.departed[id] != 0) return;  // loop ends with the node
    const std::uint32_t s = partition_.shard_of(id);
    const sim::Time now = local_sim(s).now();

    if (state_.online[id] != 0 && pending_active_[id] == 0) {
      const std::size_t slot = quality_->pick_best(id, published_);
      if (slot >= cfg_.degree) {
        ++counters_[s].no_candidate;
      } else {
        launch_connection(id, slot, s, now);
      }
    }

    ++conn_count_[id];
    const double rate = 1.0 / cfg_.connection_interval_mean;
    const sim::Time gap =
        stream_.child("conn-gap", key_of(id, conn_count_[id])).exponential(rate);
    post(s, s, now + gap, [this, id] { conn_tick(id); });
  }

  void launch_connection(NodeId id, std::size_t slot, std::uint32_t s, sim::Time now) {
    ++counters_[s].connections_launched;
    const std::uint64_t conn = key_of(id, conn_count_[id]);
    pending_active_[id] = 1;
    pending_conn_[id] = conn;
    pending_slot_[id] = static_cast<std::uint32_t>(slot);
    quality_->record_attempt(id, slot);
    // The ack timer: cancelled on ack arrival — the cancel-heavy pattern.
    pending_timer_[id] = local_sim(s).schedule_in(
        cfg_.ack_timeout, [this, id, conn] { on_ack_timeout(id, conn); });
    const NodeId next = state_.neighbors_of(id)[slot];
    const std::uint32_t hops_left = cfg_.path_hops > 0 ? cfg_.path_hops - 1 : 0;
    post(s, partition_.shard_of(next), now + cfg_.hop_latency,
         [this, id, conn, next, hops_left] { on_hop(id, conn, next, hops_left); });
  }

  void on_hop(NodeId initiator, std::uint64_t conn, NodeId at_node, std::uint32_t hops_left) {
    if (state_.online[at_node] == 0) return;  // dropped; the timer will fire
    const std::uint32_t s = partition_.shard_of(at_node);
    const sim::Time now = local_sim(s).now();
    ++counters_[s].hops_forwarded;
    ++counters_[s].claims_pending;  // the forwarding claim, settled at a barrier

    if (hops_left == 0) {
      const std::uint32_t is = partition_.shard_of(initiator);
      post(s, is, now + cfg_.hop_latency,
           [this, initiator, conn] { on_ack(initiator, conn); });
      return;
    }
    const std::size_t slot = quality_->pick_best(at_node, published_);
    if (slot >= cfg_.degree) return;  // stuck mid-path; the timer will fire
    quality_->record_attempt(at_node, slot);
    const NodeId next = state_.neighbors_of(at_node)[slot];
    post(s, partition_.shard_of(next), now + cfg_.hop_latency,
         [this, initiator, conn, next, hops_left] {
           on_hop(initiator, conn, next, hops_left - 1);
         });
  }

  void on_ack(NodeId id, std::uint64_t conn) {
    if (pending_active_[id] == 0 || pending_conn_[id] != conn) return;
    const std::uint32_t s = partition_.shard_of(id);
    pending_active_[id] = 0;
    local_sim(s).cancel(pending_timer_[id]);
    ++counters_[s].connections_acked;
    quality_->record_success(id, pending_slot_[id]);
  }

  void on_ack_timeout(NodeId id, std::uint64_t conn) {
    if (pending_active_[id] == 0 || pending_conn_[id] != conn) return;
    const std::uint32_t s = partition_.shard_of(id);
    pending_active_[id] = 0;
    ++counters_[s].ack_timeouts;
  }

  // ---- settlement & fingerprint -----------------------------------------

  void settle_claims() {
    for (ShardCounters& c : counters_) {
      c.claims_settled += c.claims_pending;
      c.claims_pending = 0;
    }
    ++settlement_batches_;
  }

  [[nodiscard]] std::uint64_t digest() const {
    Fingerprint f;
    for (const ShardCounters& c : counters_) {
      f.add(c.connections_launched);
      f.add(c.connections_acked);
      f.add(c.ack_timeouts);
      f.add(c.no_candidate);
      f.add(c.hops_forwarded);
      f.add(c.churn_events);
      f.add(c.departures);
      f.add(c.claims_settled);
    }
    for (NodeId id = 0; id < cfg_.node_count; ++id) {
      f.add(state_.online[id] | (static_cast<std::uint64_t>(state_.departed[id]) << 8) |
            (static_cast<std::uint64_t>(churn_cycle_[id]) << 16));
      f.add_double(state_.tracker[id].availability(cfg_.duration));
      f.add(probing_->epoch(id));
      for (std::size_t slot = 0; slot < cfg_.degree; ++slot) {
        f.add_double(probing_->observed_session_time(id, slot));
        f.add(quality_->attempts(id, slot) |
              (static_cast<std::uint64_t>(quality_->successes(id, slot)) << 32));
      }
    }
    return f.h;
  }

  ShardedScenarioConfig cfg_;
  sim::ShardedSimulator* sharded_;
  sim::Simulator* serial_;
  net::NodeStateSoA state_;
  net::ShardPartition partition_;
  sim::rng::Stream stream_;
  std::unique_ptr<net::ShardedProbing> probing_;
  std::unique_ptr<core::ShardedEdgeQuality> quality_;
  std::vector<ShardCounters> counters_;
  std::vector<std::uint8_t> published_;

  std::vector<std::uint64_t> churn_cycle_;
  std::vector<std::uint32_t> conn_count_;
  std::vector<std::uint8_t> probe_loop_active_;
  std::vector<std::uint8_t> conn_loop_started_;
  std::vector<std::uint8_t> pending_active_;
  std::vector<std::uint64_t> pending_conn_;
  std::vector<std::uint32_t> pending_slot_;
  std::vector<sim::EventId> pending_timer_;
  std::uint64_t settlement_batches_ = 0;
};

}  // namespace

ShardedScenarioResult run_sharded_scenario(const ShardedScenarioConfig& cfg,
                                           parallel::ThreadPool* pool) {
  sim::ShardedSimulator engine(cfg.shard_count, cfg.window, pool);
  World world(cfg, &engine, nullptr);
  engine.add_barrier_hook([&world](sim::Time boundary) { world.on_barrier(boundary); });
  world.seed_events();
  engine.run_until(cfg.duration);
  return world.finish();
}

ShardedScenarioResult run_serial_oracle(const ShardedScenarioConfig& cfg) {
  sim::Simulator engine;
  World world(cfg, nullptr, &engine);
  world.seed_events();
  engine.run_until(cfg.duration);
  return world.finish();
}

}  // namespace p2panon::harness
