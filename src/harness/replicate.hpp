// Replicated experiments: run a scenario across independent seeds in
// parallel and aggregate means, confidence intervals and pooled samples.
//
// Replicates are the parallelism unit (see src/parallel): each replicate is
// a fully independent single-threaded simulation with seed = base_seed +
// replicate index, so results are bitwise-identical regardless of thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/adaptive.hpp"
#include "harness/scenario.hpp"
#include "metrics/stats.hpp"
#include "parallel/thread_pool.hpp"

namespace p2panon::harness {

struct ReplicatedResult {
  std::size_t replicates = 0;

  /// Across-replicate accumulators of per-replicate means.
  metrics::Accumulator good_payoff;    ///< whole-experiment total per good node
  metrics::Accumulator member_payoff;  ///< per-(pair, good member) — the paper's payoff
  metrics::Accumulator forwarder_set_size;
  metrics::Accumulator avg_path_length;
  metrics::Accumulator path_quality;
  metrics::Accumulator initiator_utility;
  metrics::Accumulator initiator_spend;
  metrics::Accumulator routing_efficiency;
  metrics::Accumulator connection_latency;

  /// Pooled per-node payoff samples across replicates.
  std::vector<double> pooled_good_payoffs;
  /// Pooled per-(pair, good member) payoff samples (CDF Figs. 6-7).
  std::vector<double> pooled_member_payoffs;

  /// Prop. 1 curve: mean new-edge fraction by connection index.
  std::vector<metrics::Accumulator> new_edge_fraction_by_conn;

  std::uint64_t total_reformations = 0;
  std::uint64_t total_churn_events = 0;
  bool all_payments_conserved = true;

  // --- Fault/robustness aggregates (all zero outside fault mode).
  metrics::Accumulator delivery_ratio;  ///< per-replicate data-phase ratio
  metrics::Accumulator setup_time;      ///< pooled per-setup samples (merge)
  metrics::Accumulator time_to_detect;  ///< pooled per-failure samples (merge)
  std::uint64_t total_connections_completed = 0;
  std::uint64_t total_connections_failed = 0;
  std::uint64_t total_setup_attempts = 0;
  std::uint64_t total_ack_timeouts = 0;
  std::uint64_t total_crashes = 0;
  std::uint64_t total_messages_dropped = 0;
  std::uint64_t total_keepalives_sent = 0;
  std::uint64_t total_keepalives_delivered = 0;

  // --- Simulation-engine totals across replicates (see ScenarioResult).
  std::uint64_t total_engine_events_scheduled = 0;
  std::uint64_t total_engine_events_cancelled = 0;
  std::uint64_t total_engine_events_fired = 0;
  std::uint64_t total_engine_callback_heap_allocs = 0;
  std::uint64_t total_engine_cross_shard_messages = 0;
  std::uint64_t total_engine_window_barriers = 0;

  // --- Settlement-lifecycle totals across replicates (see ScenarioResult).
  std::uint64_t total_settlements_closed = 0;
  std::uint64_t total_settlements_abandoned = 0;
  std::uint64_t total_settlements_expired = 0;
  std::uint64_t total_settlements_prorata = 0;
  std::uint64_t total_claims_submitted = 0;
  std::uint64_t total_claims_lost = 0;
  std::uint64_t total_claims_rejected = 0;
  std::uint64_t total_claims_after_terminal = 0;
  std::int64_t total_settlement_escrow_milli = 0;
  std::int64_t total_settlement_paid_milli = 0;
  std::int64_t total_settlement_refunded_milli = 0;
  bool all_settlements_reconciled = true;

  // --- Transport-plane totals across replicates (see ScenarioResult).
  std::uint64_t total_transport_frames_sent = 0;
  std::uint64_t total_transport_frames_delivered = 0;
  std::uint64_t total_transport_frames_dropped = 0;
  std::uint64_t total_transport_frames_rejected = 0;
  std::uint64_t total_transport_reconnects = 0;
  std::uint64_t total_transport_backoff_retries = 0;
  std::uint64_t total_transport_heartbeat_timeouts = 0;
  std::uint64_t total_transport_deadline_expiries = 0;

  [[nodiscard]] metrics::ConfidenceInterval good_payoff_ci(double confidence = 0.95) const {
    return metrics::confidence_interval(good_payoff, confidence);
  }
  [[nodiscard]] metrics::ConfidenceInterval member_payoff_ci(double confidence = 0.95) const {
    return metrics::confidence_interval(member_payoff, confidence);
  }
  [[nodiscard]] metrics::ConfidenceInterval forwarder_set_ci(double confidence = 0.95) const {
    return metrics::confidence_interval(forwarder_set_size, confidence);
  }
};

/// Run `replicates` independent replicates of `base` (seed = base.seed + r).
/// `pool` may be nullptr for serial execution.
[[nodiscard]] ReplicatedResult run_replicated(const ScenarioConfig& base, std::size_t replicates,
                                              parallel::ThreadPool* pool = nullptr);

// --- Adaptive sequential stopping over full scenario replicates ------------
// (see adaptive.hpp for the generic per-sample runner and DESIGN.md §3.12
// for the stopping math).

/// One stopping target inside a ReplicatedResult: a pointer-to-member
/// selecting which across-replicate accumulator the anytime interval is
/// computed on. `eps <= 0` falls back to AdaptiveConfig::eps; `relative`
/// makes eps a fraction of |mean|.
struct TrackedScenarioMetric {
  std::string name;
  metrics::Accumulator ReplicatedResult::* accumulator = nullptr;
  double eps = 0.0;
  bool relative = false;
};

struct AdaptiveReplicatedResult {
  ReplicatedResult result;
  AdaptiveOutcome outcome;
  /// Anytime confidence intervals for the tracked metrics at the final peek
  /// (same order as `tracked`) — the ±eps claim the early stop rests on.
  std::vector<metrics::ConfidenceInterval> intervals;
};

/// FNV-1a fingerprint over every scenario knob that changes replicate
/// results. A checkpoint written under a different fingerprint is discarded
/// on resume, never silently merged.
[[nodiscard]] std::uint64_t config_fingerprint(const ScenarioConfig& cfg) noexcept;

/// run_replicated with a sequential-stopping layer on top.
///
/// With `adaptive.adaptive` off and no checkpoint path, this is exactly
/// run_replicated(base, planned, pool) — same replicates, same fold order,
/// bitwise-identical aggregates. With adaptivity on, replication stops at
/// the first batch boundary where every tracked metric's anytime interval
/// is within ±eps (planned stays the hard cap). With a checkpoint path set,
/// the full ReplicatedResult state is persisted after every batch and a
/// killed run resumes bit-exactly.
[[nodiscard]] AdaptiveReplicatedResult run_replicated_adaptive(
    const ScenarioConfig& base, std::size_t planned, const AdaptiveConfig& adaptive,
    const std::vector<TrackedScenarioMetric>& tracked, parallel::ThreadPool* pool = nullptr,
    const std::string& cell_key = "cell");

}  // namespace p2panon::harness
