#include "harness/paper_sharded.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/shard_history.hpp"
#include "net/link_model.hpp"
#include "net/sharded_probing.hpp"
#include "net/soa.hpp"
#include "payment/money.hpp"
#include "payment/receipt.hpp"
#include "payment/sharded_settlement.hpp"
#include "sim/rng.hpp"
#include "sim/sharded.hpp"

namespace p2panon::harness {

namespace {

using net::NodeId;
using payment::Amount;

/// FNV-1a 64 over 8-byte words (same shape as the scale scenario's).
struct Fingerprint {
  std::uint64_t h = 1469598103934665603ULL;
  void add(std::uint64_t x) noexcept {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void add_double(double d) noexcept { add(std::bit_cast<std::uint64_t>(d)); }
};

struct alignas(64) PaperShardCounters {
  std::uint64_t churn_events = 0;
  std::uint64_t departures = 0;
  std::uint64_t connections_launched = 0;
  std::uint64_t connections_completed = 0;
  std::uint64_t connections_failed = 0;  ///< initiator/responder down or hop lost
  std::uint64_t no_candidate = 0;        ///< walk steps with no eligible successor
  std::uint64_t hops_recorded = 0;       ///< forwarder instances on completed paths
  /// Data-plane deliveries. Cross-shard hops are delivered at window-clamped
  /// times and may still be in flight at the horizon, so this counter is
  /// window-dependent and MUST stay out of the digest.
  std::uint64_t hops_delivered = 0;
};

/// One (I, R) pair's lifecycle, owned by the initiator's shard.
struct PairState {
  NodeId initiator = net::kInvalidNode;
  NodeId responder = net::kInvalidNode;
  Amount p_f = 0;  ///< forwarding benefit per instance, milli-credits
  Amount p_r = 0;  ///< routing benefit, milli-credits
  std::uint32_t launched = 0;
  std::uint32_t completed = 0;
  std::uint64_t instances = 0;  ///< total forwarder instances across records
  std::vector<payment::PathRecord> records;
  /// (forwarder, view epoch) -> receipts accrued — the forwarder-epoch
  /// aggregation unit. Ordered so claim ops are enqueued deterministically.
  std::map<std::pair<NodeId, std::uint32_t>, std::vector<payment::ForwardReceipt>> aggregates;
  double length_sum = 0.0;   ///< sum of forwarder-path lengths L over completed
  double latency_sum = 0.0;  ///< sum of end-to-end path latencies (seconds)
  sim::Time deadline = payment::kNoSettlementDeadline;

  payment::SettlementHandle handle;
  bool opened = false;
  bool close_skipped = false;  ///< bank-fault initiator crash: deadline decides
  std::uint64_t claims_lost = 0;
};

/// One deferred settlement-plane operation, drained at the next barrier.
struct SettleOp {
  enum class Kind : std::uint8_t { kOpen, kClaim, kClose };
  Kind kind = Kind::kOpen;
  std::uint32_t pair = 0;
  payment::AggregatedClaim claim;  ///< kClaim only
};

class PaperWorld {
 public:
  PaperWorld(const ScenarioConfig& cfg, sim::ShardedSimulator& engine)
      : cfg_(cfg),
        engine_(engine),
        node_count_(cfg.overlay.node_count),
        degree_(cfg.overlay.degree),
        partition_(cfg.overlay.node_count, engine.shard_count()),
        stream_(sim::rng::Stream(cfg.seed).child("paper-sharded")),
        links_(cfg.overlay.link, cfg.seed),
        history_(partition_),
        plane_(cfg.bank_partitions != 0 ? cfg.bank_partitions : engine.shard_count(),
               cfg.overlay.node_count, payment::from_credits(cfg.initial_balance_credits),
               stream_.child("plane")),
        counters_(partition_.shard_count()),
        history_buf_(partition_.shard_count()),
        settle_buf_(partition_.shard_count()) {
    assert(node_count_ >= 4);
    assert(degree_ >= 1 && degree_ < node_count_);
    state_.resize(node_count_, degree_);
    probing_ = std::make_unique<net::ShardedProbing>(state_, partition_, cfg.probing.period,
                                                     stream_.child("probing"));

    // Same neighbour-selection idiom as the scale scenario: one shared
    // stream, nodes in id order, picks mapped onto V \ {id}.
    auto nb_stream = stream_.child("neighbors");
    for (NodeId id = 0; id < node_count_; ++id) {
      auto picks = nb_stream.sample_indices(node_count_ - 1, degree_);
      auto row = state_.neighbors_of(id);
      for (std::size_t slot = 0; slot < picks.size(); ++slot) {
        const std::size_t p = picks[slot];
        row[slot] = static_cast<NodeId>(p >= id ? p + 1 : p);
      }
    }

    published_.assign(node_count_, 0);
    avail_snap_.assign(node_count_ * degree_, 0.0);
    churn_cycle_.assign(node_count_, 0);

    // View-refresh interval R, snapped to a whole number of windows so every
    // refresh lands on a window boundary for ANY window that divides R.
    const sim::Time window = engine.window();
    const sim::Time requested = cfg.view_refresh > 0.0 ? cfg.view_refresh : window;
    const auto multiple = static_cast<std::uint64_t>(
        std::max<long long>(1, std::llround(requested / window)));
    refresh_interval_ = static_cast<sim::Time>(multiple) * window;
    half_window_ = window * 0.5;
    next_refresh_ = refresh_interval_;

    // Bounded-Pareto session shape for the configured median (truncation
    // shifts the median, so the shape is solved, not closed-form).
    session_shape_ = sim::rng::bounded_pareto_shape_for_median(
        cfg.overlay.churn.session_min, cfg.overlay.churn.session_max,
        cfg.overlay.churn.session_median);

    build_pairs();
  }

  /// Horizon: past every launch plus the settlement tail, snapped up to a
  /// whole number of refresh intervals (so runs with different windows
  /// execute the same refresh boundaries).
  [[nodiscard]] sim::Time duration() const noexcept { return duration_; }

  void seed_events() {
    for (NodeId id = 0; id < node_count_; ++id) {
      const sim::Time at = stream_.child("join", id).uniform(0.0, cfg_.warmup);
      const std::uint32_t s = partition_.shard_of(id);
      engine_.post(s, s, at, [this, id] { do_join(id); });
    }
    for (std::uint32_t p = 0; p < pairs_.size(); ++p) {
      const std::uint32_t s = owner_shard(p);
      engine_.post(s, s, launch_times_[p][0], [this, p] { launch(p, 0); });
    }
    // Barrier heartbeats: the engine fast-forwards over empty windows, so a
    // refresh boundary inside a quiet stretch would otherwise be skipped and
    // caught up late — after events past the boundary already ran. A no-op
    // event just before each refresh time forces the barrier to fire at it.
    const auto beats = static_cast<std::uint64_t>(duration_ / refresh_interval_);
    for (std::uint64_t q = 1; q <= beats; ++q) {
      const sim::Time at = static_cast<sim::Time>(q) * refresh_interval_ - 1.0e-7;
      engine_.post(0, 0, at, [] {});
    }
  }

  /// Serial barrier hook: refresh the merged read views at refresh
  /// boundaries, then drain every shard's settlement buffer into the plane.
  void on_barrier(sim::Time boundary) {
    while (next_refresh_ <= boundary + half_window_) {
      refresh_views();
      next_refresh_ += refresh_interval_;
    }
    drain_settlements();
  }

  [[nodiscard]] ScenarioResult finish() {
    drain_settlements();  // pairs completed after the final barrier
    plane_.expire_due(duration_ + 1.0);
    const payment::PlaneReconciliation rec = plane_.reconcile();
    return build_result(rec);
  }

 private:
  [[nodiscard]] std::uint32_t owner_shard(std::uint32_t pair) const noexcept {
    return partition_.shard_of(pairs_[pair].initiator);
  }
  [[nodiscard]] sim::Simulator& local_sim(std::uint32_t s) { return engine_.shard(s); }
  [[nodiscard]] std::uint64_t key_of(std::uint32_t pair, std::uint64_t n) const noexcept {
    return (static_cast<std::uint64_t>(pair) << 32) | n;
  }

  void build_pairs() {
    const auto pair_count = static_cast<std::uint32_t>(cfg_.pair_count);
    pairs_.resize(pair_count);
    launch_times_.resize(pair_count);
    sim::Time horizon = 0.0;
    for (std::uint32_t p = 0; p < pair_count; ++p) {
      PairState& st = pairs_[p];
      auto id_stream = stream_.child("pair-ids", p);
      st.initiator = static_cast<NodeId>(id_stream.uniform_int(0, node_count_ - 1));
      do {
        st.responder = cfg_.responder_zipf > 0.0
                           ? static_cast<NodeId>(id_stream.zipf(node_count_, cfg_.responder_zipf))
                           : static_cast<NodeId>(id_stream.uniform_int(0, node_count_ - 1));
      } while (st.responder == st.initiator);
      const double pf_credits = stream_.child("pf", p).uniform(cfg_.p_f_lo, cfg_.p_f_hi);
      st.p_f = payment::from_credits(pf_credits);
      st.p_r = payment::from_credits(cfg_.tau * pf_credits);

      auto& times = launch_times_[p];
      times.reserve(cfg_.connections_per_pair);
      sim::Time t = cfg_.warmup + stream_.child("pair-start", p).uniform(0.0, cfg_.pair_start_window);
      const double rate = 1.0 / cfg_.connection_interval_mean;
      for (std::uint32_t j = 0; j < cfg_.connections_per_pair; ++j) {
        times.push_back(t);
        t += stream_.child("conn-gap", key_of(p, j)).exponential(rate);
      }
      horizon = std::max(horizon, times.back());
    }
    // Tail: claim deadline plus an hour of slack for the data-plane echo,
    // then snap UP to a refresh boundary.
    const sim::Time tail = horizon + cfg_.fault.bank.claim_deadline + sim::hours(1.0);
    duration_ = std::ceil(tail / refresh_interval_) * refresh_interval_;
  }

  // ---- churn & probing (same-shard events; scale-scenario idiom) ---------

  void do_join(NodeId id) {
    if (state_.departed[id] != 0 || state_.online[id] != 0) return;
    const std::uint32_t s = partition_.shard_of(id);
    const sim::Time now = local_sim(s).now();
    state_.online[id] = 1;
    state_.tracker[id].on_join(now);
    ++counters_[s].churn_events;

    post_probe(id, now + cfg_.probing.period);

    const std::uint64_t cycle = churn_cycle_[id];
    const net::ChurnConfig& churn = cfg_.overlay.churn;
    const sim::Time session =
        stream_.child("session", key_of_node(id, cycle))
            .bounded_pareto(session_shape_, churn.session_min, churn.session_max);
    engine_.post(s, s, now + session, [this, id, cycle] { do_leave(id, cycle); });
  }

  void do_leave(NodeId id, std::uint64_t cycle) {
    if (state_.online[id] == 0 || churn_cycle_[id] != cycle) return;
    const std::uint32_t s = partition_.shard_of(id);
    const sim::Time now = local_sim(s).now();
    state_.online[id] = 0;
    state_.tracker[id].on_leave(now);
    ++counters_[s].churn_events;
    ++churn_cycle_[id];

    const std::uint64_t next_cycle = churn_cycle_[id];
    if (stream_.child("depart", key_of_node(id, next_cycle)).next_double() <
        cfg_.overlay.churn.departure_probability) {
      state_.departed[id] = 1;
      ++counters_[s].departures;
      return;
    }
    const sim::Time gap = stream_.child("gap", key_of_node(id, next_cycle))
                              .exponential(1.0 / cfg_.overlay.churn.offline_gap_mean);
    engine_.post(s, s, now + gap, [this, id] { do_join(id); });
  }

  void post_probe(NodeId id, sim::Time at) {
    const std::uint32_t s = partition_.shard_of(id);
    engine_.post(s, s, at, [this, id] { probe_tick(id); });
  }

  void probe_tick(NodeId id) {
    if (state_.online[id] == 0) return;  // suspended; do_join restarts it
    const std::uint32_t s = partition_.shard_of(id);
    probing_->probe(id, published_);
    post_probe(id, local_sim(s).now() + cfg_.probing.period);
  }

  [[nodiscard]] std::uint64_t key_of_node(NodeId id, std::uint64_t n) const noexcept {
    return (static_cast<std::uint64_t>(id) << 32) | n;
  }

  // ---- connections --------------------------------------------------------

  /// Launch connection j of pair p on the owner shard. The whole path is
  /// constructed here from epoch snapshots only (published liveness,
  /// availability snapshot, folded history), so the outcome is identical
  /// for any K, pool size, and window dividing the refresh interval. The
  /// data-plane echo (hop posts across shards) carries no digested state.
  void launch(std::uint32_t p, std::uint32_t j) {
    PairState& st = pairs_[p];
    const std::uint32_t s = owner_shard(p);
    const sim::Time now = local_sim(s).now();
    ++st.launched;
    ++counters_[s].connections_launched;

    if (j + 1 < cfg_.connections_per_pair) {
      engine_.post(s, s, launch_times_[p][j + 1], [this, p, j] { launch(p, j + 1); });
    }

    // Initiator liveness is a live same-shard read (the pair runs on its
    // shard); the responder is checked against the published snapshot.
    if (state_.online[st.initiator] == 0 || state_.departed[st.initiator] != 0 ||
        published_[st.responder] == 0) {
      ++counters_[s].connections_failed;
      finish_if_last(p, j, now);
      return;
    }

    auto conn_stream = stream_.child("conn", key_of(p, j));

    // Crowds-style length: one forwarder, then continue with p_forward up
    // to the TTL.
    std::uint32_t want = 1;
    while (want < cfg_.ttl_hops && conn_stream.bernoulli(cfg_.p_forward)) ++want;

    // Greedy walk over epoch snapshots: score w_s * sigma + w_a * alpha,
    // candidates filtered by published liveness; deterministic tie-break on
    // slot order. A dead end delivers early (Crowds hands the payload to
    // the responder when no eligible successor remains).
    std::vector<NodeId> path;
    path.reserve(want + 2);
    path.push_back(st.initiator);
    NodeId prev = net::kInvalidNode;
    const std::uint32_t k = j + 1;  // 1-based connection index for sigma
    for (std::uint32_t hop = 0; hop < want; ++hop) {
      const NodeId cur = path.back();
      auto row = state_.neighbors_of(cur);
      double best_score = -1.0;
      NodeId best = net::kInvalidNode;
      for (std::size_t slot = 0; slot < row.size(); ++slot) {
        const NodeId v = row[slot];
        if (published_[v] == 0 || v == prev || v == st.initiator || v == st.responder) continue;
        const double sigma = history_.selectivity(cur, p, prev, v, k);
        const double alpha = avail_snap_[cur * degree_ + slot];
        const double score =
            cfg_.weights.w_selectivity * sigma + cfg_.weights.w_availability * alpha;
        if (score > best_score) {
          best_score = score;
          best = v;
        }
      }
      if (best == net::kInvalidNode) {
        ++counters_[s].no_candidate;
        break;
      }
      prev = cur;
      path.push_back(best);
    }
    path.push_back(st.responder);

    // Fault plane: each edge of the path is an independent keyed loss draw;
    // any lost edge fails the connection (no record, no receipts).
    std::size_t delivered_edges = path.size() - 1;
    if (cfg_.fault.link_loss > 0.0) {
      for (std::size_t e = 0; e + 1 < path.size(); ++e) {
        if (conn_stream.bernoulli(cfg_.fault.link_loss)) {
          delivered_edges = e;
          break;
        }
      }
    }
    post_data_plane(p, path, s, now, delivered_edges);
    if (delivered_edges < path.size() - 1) {
      ++counters_[s].connections_failed;
      finish_if_last(p, j, now);
      return;
    }

    // Completed: record the path, buffer the history writes for the next
    // epoch fold, and accrue each forwarder's receipt into its
    // (forwarder, epoch) aggregate.
    payment::PathRecord record;
    record.conn_index = j;
    record.entry = st.initiator;
    record.exit = st.responder;
    record.forwarders.assign(path.begin() + 1, path.end() - 1);
    const auto epoch = static_cast<std::uint32_t>(now / refresh_interval_);
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      history_buf_[s].push_back(
          core::HistoryDelta{path[i], static_cast<net::PairId>(p), path[i - 1], path[i + 1]});
      st.aggregates[{path[i], epoch}].push_back(payment::make_receipt(
          plane_.mac_key_of(path[i]), static_cast<net::PairId>(p), j, path[i], path[i - 1],
          path[i + 1]));
      ++counters_[s].hops_recorded;
    }
    st.instances += record.forwarders.size();
    st.length_sum += static_cast<double>(record.forwarders.size());
    st.latency_sum += links_.path_latency(path);
    st.records.push_back(std::move(record));
    ++st.completed;
    ++counters_[s].connections_completed;
    finish_if_last(p, j, now);
  }

  /// After the pair's last launch, enqueue its settlement ops — open,
  /// aggregated claims, close — as one contiguous FIFO run in the owner
  /// shard's buffer. The serial barrier hook applies them to the plane.
  void finish_if_last(std::uint32_t p, std::uint32_t j, sim::Time now) {
    if (j + 1 != cfg_.connections_per_pair) return;
    PairState& st = pairs_[p];
    if (st.records.empty()) return;  // nothing to settle; outcome code 0

    const std::uint32_t s = owner_shard(p);
    st.deadline = now + cfg_.fault.bank.claim_deadline;
    settle_buf_[s].push_back(SettleOp{SettleOp::Kind::kOpen, p, {}});

    auto fault_stream = stream_.child("bank-fault", p);
    const bool bank_faults = cfg_.fault.bank.enabled();
    NodeId crashed_forwarder = net::kInvalidNode;
    for (auto& [fwd_epoch, receipts] : st.aggregates) {
      const auto& [fwd, epoch] = fwd_epoch;
      if (bank_faults) {
        if (fwd != crashed_forwarder && cfg_.fault.bank.forwarder_crash > 0.0 &&
            fault_stream.bernoulli(cfg_.fault.bank.forwarder_crash)) {
          crashed_forwarder = fwd;
        }
        if (fwd == crashed_forwarder ||
            (cfg_.fault.bank.claim_loss > 0.0 &&
             fault_stream.bernoulli(cfg_.fault.bank.claim_loss))) {
          st.claims_lost += receipts.size();
          continue;
        }
      }
      payment::AggregatedClaim claim;
      claim.claimant = plane_.account_of(fwd);
      claim.epoch = epoch;
      claim.receipts = std::move(receipts);
      payment::seal_aggregated_claim(plane_.mac_key_of(fwd), p, claim);
      settle_buf_[s].push_back(SettleOp{SettleOp::Kind::kClaim, p, std::move(claim)});
    }
    st.aggregates.clear();

    st.close_skipped = bank_faults && cfg_.fault.bank.initiator_crash > 0.0 &&
                       fault_stream.bernoulli(cfg_.fault.bank.initiator_crash);
    if (!st.close_skipped) {
      settle_buf_[s].push_back(SettleOp{SettleOp::Kind::kClose, p, {}});
    }
  }

  /// Data-plane echo: one post per delivered edge, landing on the receiving
  /// node's shard, plus an ack back to the initiator's shard. Engine load
  /// and cross-shard traffic only — never touches digested state.
  void post_data_plane(std::uint32_t p, const std::vector<NodeId>& path, std::uint32_t src,
                       sim::Time now, std::size_t delivered_edges) {
    sim::Time at = now;
    for (std::size_t e = 0; e < delivered_edges; ++e) {
      at += links_.transfer_time(path[e], path[e + 1]);
      const std::uint32_t dst = partition_.shard_of(path[e + 1]);
      engine_.post(src, dst, at, [this, dst] { ++counters_[dst].hops_delivered; });
    }
    if (delivered_edges == path.size() - 1) {
      const std::uint32_t home = owner_shard(p);
      engine_.post(src, home, at + links_.transfer_time(path.front(), path.back()),
                   [this, home] { ++counters_[home].hops_delivered; });
    }
  }

  // ---- barrier work -------------------------------------------------------

  /// Epoch boundary: fold the buffered history writes shard-ascending, then
  /// republish liveness and the per-edge availability snapshot.
  void refresh_views() {
    for (std::uint32_t s = 0; s < partition_.shard_count(); ++s) {
      history_.fold(history_buf_[s]);
      history_buf_[s].clear();
    }
    for (NodeId id = 0; id < node_count_; ++id) {
      published_[id] = state_.appears_online(id) ? 1 : 0;
      for (std::size_t slot = 0; slot < degree_; ++slot) {
        avail_snap_[id * degree_ + slot] = probing_->availability(id, slot);
      }
    }
  }

  /// Apply every buffered settlement op, source shard ascending, FIFO
  /// within a shard — each pair's open -> claims -> close run is contiguous,
  /// so per-pair outcomes are independent of how barriers batch the ops.
  void drain_settlements() {
    for (std::uint32_t s = 0; s < partition_.shard_count(); ++s) {
      for (SettleOp& op : settle_buf_[s]) {
        PairState& st = pairs_[op.pair];
        switch (op.kind) {
          case SettleOp::Kind::kOpen: {
            const Amount escrow =
                static_cast<Amount>(st.instances) * st.p_f + st.p_r;
            auto handle = plane_.open_settlement(
                op.pair, static_cast<net::PairId>(op.pair), st.initiator, escrow,
                payment::SettlementTerms{st.p_f, st.p_r}, st.records, st.deadline);
            assert(handle.has_value() && "initial balances must cover every escrow");
            if (handle.has_value()) {
              st.handle = *handle;
              st.opened = true;
              st.records.clear();  // copied into the engine's valid-hops index
              st.records.shrink_to_fit();
            }
            break;
          }
          case SettleOp::Kind::kClaim:
            if (st.opened) plane_.submit_aggregated_claim(op.pair, st.handle, op.claim);
            break;
          case SettleOp::Kind::kClose:
            if (st.opened) plane_.close_settlement(st.handle);
            break;
        }
      }
      settle_buf_[s].clear();
    }
    ++settlement_batches_;
  }

  // ---- result -------------------------------------------------------------

  [[nodiscard]] ScenarioResult build_result(const payment::PlaneReconciliation& rec) {
    ScenarioResult r;
    for (const PaperShardCounters& c : counters_) {
      r.churn_events += c.churn_events;
      r.connections_completed += c.connections_completed;
      r.connections_failed += c.connections_failed;
    }
    r.probes = probing_->probes_performed();
    r.sim_end_time = duration_;

    for (std::uint32_t p = 0; p < pairs_.size(); ++p) {
      const PairState& st = pairs_[p];
      if (!st.opened) continue;
      const payment::SettlementReport* report =
          plane_.partition_view(st.handle.partition).engine.report(st.handle.id);
      assert(report != nullptr && "expire_due terminalises every open settlement");
      if (report == nullptr) continue;
      r.forwarder_set_size.add(static_cast<double>(report->forwarder_set_size));
      if (st.completed > 0) {
        const double avg_len = st.length_sum / st.completed;
        r.avg_path_length.add(avg_len);
        r.connection_latency.add(st.latency_sum / st.completed);
        if (report->forwarder_set_size > 0) {
          r.path_quality.add(avg_len / static_cast<double>(report->forwarder_set_size));
        }
      }
      r.initiator_spend.add(payment::to_credits(report->paid_out));
      for (const auto& [acct, paid] : report->payouts) {
        (void)acct;
        const double payoff =
            payment::to_credits(paid) - cfg_.overlay.participation_cost;
        r.member_payoff.add(payoff);
        r.member_payoff_samples.push_back(payoff);
      }
      r.claims_lost += st.claims_lost;
    }
    if (r.forwarder_set_size.count() > 0 && r.forwarder_set_size.mean() > 0.0) {
      r.routing_efficiency = r.member_payoff.mean() / r.forwarder_set_size.mean();
    }

    r.settlements_closed = rec.closed;
    r.settlements_abandoned = rec.abandoned;
    r.settlements_expired = rec.expired;
    r.settlements_prorata = rec.prorata;
    r.claims_submitted = rec.claims_accepted + rec.claims_rejected;
    r.claims_rejected = rec.claims_rejected;
    r.claims_after_terminal = rec.claims_after_terminal;
    r.settlement_escrow_milli = rec.escrow_milli;
    r.settlement_paid_milli = rec.paid_milli;
    r.settlement_refunded_milli = rec.refunded_milli;
    r.total_paid_credits = payment::to_credits(rec.paid_milli);
    bool conserved = rec.global_conserved;
    for (const payment::PartitionAudit& part : rec.partitions) conserved &= part.conserved;
    r.payment_conserved = conserved;
    r.settlement_reconciled = rec.ok();

    const sim::EventQueue::Stats engine_stats = engine_.aggregate_queue_stats();
    r.engine_events_scheduled = engine_stats.scheduled;
    r.engine_events_cancelled = engine_stats.cancelled;
    r.engine_events_fired = engine_stats.fired;
    r.engine_callback_heap_allocs = engine_stats.callback_heap_allocs;
    r.engine_cross_shard_messages = engine_.stats().cross_shard_messages;
    r.engine_window_barriers = engine_.stats().window_barriers;

    r.sharded_digest = digest(rec);
    return r;
  }

  /// Order-invariant end-state fingerprint. Covered: per-pair settlement
  /// outcomes, per-node churn/probing end state, folded history totals,
  /// merged per-account balance deltas, per-shard model counters, plane
  /// money totals. Excluded by design: hops_delivered and every cross-shard
  /// engine counter (window-dependent), escrow/settlement/audit-seq ids and
  /// coin signatures (op-order-dependent), history/probing epoch counters
  /// driven by barrier cadence.
  [[nodiscard]] std::uint64_t digest(const payment::PlaneReconciliation& rec) const {
    Fingerprint f;
    for (std::uint32_t p = 0; p < pairs_.size(); ++p) {
      const PairState& st = pairs_[p];
      std::uint64_t outcome = 0;
      std::uint64_t escrow = 0;
      std::uint64_t paid = 0;
      std::uint64_t refunded = 0;
      std::uint64_t accepted = 0;
      std::uint64_t set_size = 0;
      if (st.opened) {
        const payment::SettlementReport* report =
            plane_.partition_view(st.handle.partition).engine.report(st.handle.id);
        if (report != nullptr) {
          switch (report->outcome) {
            case payment::SettlementState::kClosed: outcome = 1; break;
            case payment::SettlementState::kAbandoned: outcome = 2; break;
            case payment::SettlementState::kExpired: outcome = 3; break;
            default: outcome = 4; break;
          }
          escrow = static_cast<std::uint64_t>(report->escrow_in);
          paid = static_cast<std::uint64_t>(report->paid_out);
          refunded = static_cast<std::uint64_t>(report->refunded);
          accepted = report->accepted_claims;
          set_size = report->forwarder_set_size;
        }
      }
      f.add(outcome | (static_cast<std::uint64_t>(st.completed) << 8) |
            (static_cast<std::uint64_t>(st.launched) << 24) |
            (static_cast<std::uint64_t>(st.close_skipped) << 40));
      f.add(escrow);
      f.add(paid);
      f.add(refunded);
      f.add(accepted | (set_size << 32));
      f.add(st.claims_lost);
      f.add_double(st.length_sum);
      f.add_double(st.latency_sum);
    }
    for (NodeId id = 0; id < node_count_; ++id) {
      f.add(state_.online[id] | (static_cast<std::uint64_t>(state_.departed[id]) << 8) |
            (static_cast<std::uint64_t>(churn_cycle_[id]) << 16));
      f.add_double(state_.tracker[id].availability(duration_));
      for (std::size_t slot = 0; slot < degree_; ++slot) {
        f.add_double(probing_->observed_session_time(id, slot));
      }
      const Amount delta =
          plane_.merged_balance(static_cast<payment::AccountId>(id)) -
          payment::from_credits(cfg_.initial_balance_credits);
      f.add(static_cast<std::uint64_t>(delta));
    }
    f.add(history_.total_entries());
    for (std::uint32_t s = 0; s < partition_.shard_count(); ++s) {
      f.add(history_.entries_in_shard(s));
      const PaperShardCounters& c = counters_[s];
      f.add(c.churn_events);
      f.add(c.departures);
      f.add(c.connections_launched);
      f.add(c.connections_completed);
      f.add(c.connections_failed);
      f.add(c.no_candidate);
      f.add(c.hops_recorded);
    }
    f.add(static_cast<std::uint64_t>(rec.escrow_milli));
    f.add(static_cast<std::uint64_t>(rec.paid_milli));
    f.add(static_cast<std::uint64_t>(rec.refunded_milli));
    f.add(rec.closed | (rec.abandoned << 16) | (rec.expired << 32) | (rec.prorata << 48));
    f.add(rec.claims_accepted);
    f.add(rec.claims_rejected);
    return f.h;
  }

  const ScenarioConfig& cfg_;
  sim::ShardedSimulator& engine_;
  std::size_t node_count_;
  std::size_t degree_;
  net::NodeStateSoA state_;
  net::ShardPartition partition_;
  sim::rng::Stream stream_;
  net::LinkModel links_;
  core::ShardedHistory history_;
  payment::ShardedSettlementPlane plane_;
  std::unique_ptr<net::ShardedProbing> probing_;
  std::vector<PaperShardCounters> counters_;

  // Barrier-merged read views (mutated only in refresh_views).
  std::vector<std::uint8_t> published_;
  std::vector<double> avail_snap_;

  // Per-shard write buffers (each shard appends only to its own).
  std::vector<std::vector<core::HistoryDelta>> history_buf_;
  std::vector<std::vector<SettleOp>> settle_buf_;

  std::vector<std::uint64_t> churn_cycle_;
  std::vector<PairState> pairs_;
  std::vector<std::vector<sim::Time>> launch_times_;

  double session_shape_ = 1.0;
  sim::Time refresh_interval_ = 0.0;
  sim::Time half_window_ = 0.0;
  sim::Time next_refresh_ = 0.0;
  sim::Time duration_ = 0.0;
  std::uint64_t settlement_batches_ = 0;
};

}  // namespace

ScenarioResult run_paper_scenario_sharded(const ScenarioConfig& cfg, parallel::ThreadPool* pool) {
  assert(cfg.engine_shards >= 1);
  sim::ShardedSimulator engine(cfg.engine_shards, cfg.engine_window, pool);
  PaperWorld world(cfg, engine);
  engine.add_barrier_hook([&world](sim::Time boundary) { world.on_barrier(boundary); });
  world.seed_events();
  engine.run_until(world.duration());
  return world.finish();
}

}  // namespace p2panon::harness
