// The full paper scenario at K > 1 shards.
//
// The serial scenario (harness/scenario.cpp) owns one Overlay, one
// HistoryStore, and one SettlementEngine — single-owner state that pins it
// to K = 1. This runner re-expresses the paper workload on the sharded
// substrate so the whole pipeline scales:
//
//   * nodes are partitioned contiguously across K shards
//     (net::ShardPartition); churn, probing, and per-node traffic events
//     run on the owning shard (net::ShardedProbing live/published split);
//   * connection history lives in core::ShardedHistory — writes are
//     buffered per source shard during a window and folded serially in the
//     window-barrier hook at view-refresh epoch boundaries, so the store is
//     a read-only merged view while shards run;
//   * path construction reads ONLY epoch snapshots (published liveness,
//     per-edge availability snapshot, folded history selectivity) plus
//     static topology, so a pair's paths are identical for any K, pool
//     size, or window length dividing the refresh interval;
//   * pair settlement is batched: completed pairs enqueue their settlement
//     ops (open -> aggregated forwarder-epoch claims -> close) into
//     per-shard FIFO buffers, and the serial barrier hook drains the
//     buffers shard-ascending into the payment::ShardedSettlementPlane —
//     B independent bank partitions with batched MAC verification and a
//     deterministic merge reconciliation after the final barrier.
//
// Determinism contract (pinned by tests/harness/test_paper_sharded.cpp):
// for fixed {seed, K} the run is bitwise deterministic across thread-pool
// sizes AND across window lengths that divide the view-refresh interval —
// ScenarioResult::sharded_digest covers only order-invariant end state
// (per-pair settlement outcomes, merged balance deltas, model counters,
// probing/history end state), never op-order-dependent ids (escrow ids,
// audit sequence numbers) or horizon-racing cross-shard deliveries.
#pragma once

#include "harness/scenario.hpp"

namespace p2panon::parallel {
class ThreadPool;
}

namespace p2panon::harness {

/// Run one full-paper-scenario replicate on cfg.engine_shards > 1 shards.
/// `pool` may be nullptr (shards run serially per window — identical
/// results, by the determinism contract). ScenarioRunner::run() routes here
/// automatically when cfg.engine_shards > 1.
[[nodiscard]] ScenarioResult run_paper_scenario_sharded(const ScenarioConfig& cfg,
                                                        parallel::ThreadPool* pool);

}  // namespace p2panon::harness
