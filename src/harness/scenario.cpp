#include "harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <optional>

#include "core/edge_quality.hpp"
#include "core/path.hpp"
#include "core/suspicion.hpp"
#include "harness/paper_sharded.hpp"
#include "payment/settlement.hpp"
#include "sim/sharded.hpp"
#include "sim/simulator.hpp"
#include "transport/sim_transport.hpp"

namespace p2panon::harness {

ScenarioConfig paper_default_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 40;
  cfg.overlay.degree = 5;
  cfg.overlay.malicious_fraction = 0.0;
  cfg.overlay.churn.session_median = sim::minutes(60.0);
  cfg.pair_count = 100;
  cfg.connections_per_pair = 20;
  cfg.p_f_lo = 50.0;
  cfg.p_f_hi = 100.0;
  cfg.tau = 2.0;
  return cfg;
}

ScenarioResult ScenarioRunner::run() const {
  const ScenarioConfig& cfg = cfg_;
  if (cfg.engine_shards > 1) return run_paper_scenario_sharded(cfg, nullptr);
  sim::rng::Stream root(cfg.seed);

  // Engine routing: the plain serial Simulator, or the sharded engine at
  // K = 1 (whose windowed drive of shard 0 is order-preserving, hence
  // bitwise identical — pinned by test_sharded_equivalence). All model code
  // below holds `simulator`, the single shard's engine, either way.
  std::optional<sim::ShardedSimulator> sharded_engine;
  std::optional<sim::Simulator> serial_engine;
  if (cfg.use_sharded_engine) {
    sharded_engine.emplace(1u, cfg.engine_window, nullptr);
  } else {
    serial_engine.emplace();
  }
  sim::Simulator& simulator =
      cfg.use_sharded_engine ? sharded_engine->shard(0) : *serial_engine;
  const auto run_horizon = [&](sim::Time until) {
    if (sharded_engine) {
      sharded_engine->run_until(until);
    } else {
      simulator.run_until(until);
    }
  };
  net::Overlay overlay(cfg.overlay, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, cfg.probing, root.child("probing"));
  core::HistoryStore history(overlay.size(), cfg.history_capacity);

  // Fault mode: any enabled fault swaps the omniscient synchronous setup
  // for the timeout-driven async runner + keepalive data phase. With every
  // knob off none of these objects exist and every stream/draw/decision is
  // bitwise identical to the pre-fault implementation.
  const bool fault_mode = cfg.fault.enabled();
  std::optional<core::SuspicionTracker> suspicion;
  if (fault_mode) suspicion.emplace(overlay.size(), cfg.suspicion_penalty);
  std::optional<fault::FaultInjector> faults;
  if (fault_mode) {
    faults.emplace(cfg.fault, overlay, root.child("faults"));
    probing.set_probe_oracle([&f = *faults](net::NodeId prober, net::NodeId target) {
      return f.probe_observation(prober, target);
    });
  }

  // Transport plane (kSim): legs/acks/keepalives and bank-fault claim/close
  // messages travel as codec-verified wire frames. Delivery is
  // bitwise-identical to kDirect — SimTransport reproduces the exact
  // drop/delay draws and schedule calls the runners would make inline.
  std::optional<transport::SimTransport> transport;
  if (cfg.transport == TransportBackend::kSim) {
    transport.emplace(simulator, overlay, faults ? &*faults : nullptr);
  }

  core::EdgeQualityEvaluator quality(probing, history, cfg.weights,
                                     suspicion ? &*suspicion : nullptr);
  core::DecisionResources resources;  // one edge cache + memo arena per replicate
  core::PathBuilder builder(overlay, quality, cfg.path_builder,
                            cfg.use_decision_cache ? &resources : nullptr);
  core::PayoffLedger ledger(overlay.size());

  std::optional<core::AsyncConnectionRunner> setup_runner;
  std::optional<core::DataPhaseRunner> data_runner;
  if (fault_mode) {
    setup_runner.emplace(simulator, overlay, builder, cfg.async_setup, &*faults, &*suspicion,
                         transport ? &*transport : nullptr);
    data_runner.emplace(simulator, overlay, *setup_runner, cfg.data_phase, &*faults,
                        transport ? &*transport : nullptr);
  }

  // Bank-fault mode (orthogonal to message/liveness faults): settlement runs
  // as the event-driven, deadline-guarded lifecycle instead of the
  // instantaneous post-run settle, and the bank journals every operation for
  // the end-of-run reconciliation.
  const bool bank_mode = cfg.fault.bank.enabled();

  // --- Bank: every node opens an account with a registered MAC key. The
  // audit log attaches before the first account opens so a journal replay
  // reconstructs the full state.
  payment::Bank bank(root.child("bank"));
  payment::AuditLog audit;
  if (bank_mode) bank.attach_audit(&audit);
  payment::SettlementEngine engine(bank);
  auto key_stream = root.child("mac-keys");
  const payment::Amount initial = payment::from_credits(cfg.initial_balance_credits);
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    bank.open_account(id, initial, key_stream.child("key", id).next_u64());
  }
  const payment::Amount money_before = bank.total_money() + bank.outstanding_coin_value();

  // --- Strategy assignment.
  const auto strategy = core::make_strategy(cfg.good_strategy, cfg.lookahead_depth);
  core::StrategyAssignment strategies(overlay, *strategy);

  // --- Select the (I, R) pairs and their contracts.
  auto pair_stream = root.child("pairs");
  struct PairPlan {
    std::unique_ptr<core::ConnectionSetSession> session;
    sim::rng::Stream stream;
    std::uint32_t launched = 0;  ///< async launches (fault mode wire index)
  };
  std::vector<PairPlan> plans;
  plans.reserve(cfg.pair_count);
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = cfg.responder_zipf > 0.0
                      ? static_cast<net::NodeId>(
                            pair_stream.zipf(overlay.size(), cfg.responder_zipf))
                      : static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::Contract contract;
    contract.forwarding_benefit = pair_stream.uniform(cfg.p_f_lo, cfg.p_f_hi);
    contract.tau = cfg.tau;
    contract.termination = cfg.termination;
    contract.p_forward = cfg.p_forward;
    contract.ttl_hops = cfg.ttl_hops;
    contract.cid_rotation = cfg.cid_rotation;
    plans.emplace_back(
        std::make_unique<core::ConnectionSetSession>(pid, initiator, responder, contract),
        root.child("pair-run", pid));
    // Under bank faults a connection only counts as settleable once its data
    // phase confirmed completion; that signal exists only in fault mode.
    if (bank_mode && fault_mode) plans.back().session->enable_completion_tracking();
  }

  // --- Schedule: overlay churn (and fault hazards), then the recurring
  // connections. `result` exists before scheduling because fault-mode
  // completion callbacks write into it during the run.
  overlay.start();
  if (faults) faults->start();

  ScenarioResult result;
  result.new_edge_fraction_by_conn.resize(cfg.connections_per_pair);

  std::uint64_t connections_completed = 0;
  metrics::Accumulator latency;

  // Everything a connection launch touches, bundled so the scheduled lambda
  // captures one pointer (plus the pair id) instead of a dozen references —
  // small enough for EventCallback's inline buffer, so launch events do not
  // heap-allocate.
  struct LaunchContext {
    const ScenarioConfig& cfg;
    std::vector<PairPlan>& plans;
    net::Overlay& overlay;
    core::PathBuilder& builder;
    core::HistoryStore& history;
    core::StrategyAssignment& strategies;
    core::PayoffLedger& ledger;
    std::optional<core::AsyncConnectionRunner>& setup_runner;
    std::optional<core::DataPhaseRunner>& data_runner;
    ScenarioResult& result;
    metrics::Accumulator& latency;
    std::uint64_t& connections_completed;
    bool fault_mode;
    bool track_completion;
  };
  LaunchContext lctx{cfg,         plans,      overlay, builder,
                     history,     strategies, ledger,  setup_runner,
                     data_runner, result,     latency, connections_completed,
                     fault_mode,  bank_mode && fault_mode};

  auto schedule_stream = root.child("schedule");
  sim::Time last_connection_at = cfg.warmup;
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    sim::Time at = cfg.warmup + schedule_stream.uniform(0.0, cfg.pair_start_window);
    for (std::uint32_t j = 0; j < cfg.connections_per_pair; ++j) {
      simulator.schedule_at(at, [ctx = &lctx, pid] {
        PairPlan& p = ctx->plans[pid];
        // The endpoints must be online for the connection to run; the paper's
        // recurring applications (HTTP, FTP, ...) imply an active initiator.
        ctx->overlay.force_online(p.session->initiator());
        ctx->overlay.force_online(p.session->responder());
        if (!ctx->fault_mode) {
          const core::BuiltPath& path = p.session->run_connection(
              ctx->builder, ctx->history, ctx->strategies, ctx->ledger, ctx->overlay,
              p.stream, ctx->cfg.adversary);
          ctx->latency.add(ctx->overlay.links().path_latency(path.nodes));
          ++ctx->connections_completed;
          return;
        }

        // Fault mode: timeout-driven setup, then a keepalive data phase
        // whose detected failures re-form the path. Wire ids follow launch
        // order (completions may interleave across the pair's connections).
        const std::uint32_t conn = ++p.launched;
        const net::PairId wire_pair = p.session->effective_pair(conn);
        const std::uint32_t wire_index = p.session->effective_conn_index(conn);
        ctx->setup_runner->establish(
            wire_pair, wire_index, p.session->initiator(), p.session->responder(),
            p.session->contract(), ctx->strategies, p.stream.child("setup", conn),
            [ctx, pid, conn, wire_pair, wire_index](const core::AsyncResult& r) {
              PairPlan& plan = ctx->plans[pid];
              // A setup that completes after the set settled (possible only
              // in bank-fault mode, where the simulator keeps running through
              // the settlement phase) joins nothing: the escrow is committed
              // and the records are filed.
              if (plan.session->settled()) return;
              ScenarioResult& result = ctx->result;
              result.setup_attempts += r.attempts;
              result.setup_ack_timeouts += r.ack_timeouts;
              result.reformations += r.attempts - 1;
              if (!r.established) {
                ++result.connections_failed;
                return;
              }
              result.setup_time.add(r.setup_time);
              const core::BuiltPath& path = plan.session->adopt_connection(
                  r.path, ctx->history, ctx->ledger, ctx->overlay);
              // Session adoption index of this connection (completions can
              // interleave across a pair, so capture it now, not at launch).
              const std::uint32_t adopted = plan.session->connections_run();
              ctx->latency.add(ctx->overlay.links().path_latency(path.nodes));
              ++ctx->connections_completed;
              ctx->data_runner->run(
                  wire_pair, wire_index, path, plan.session->contract(), ctx->strategies,
                  plan.stream.child("data", conn),
                  [ctx, pid, adopted](const core::DataPhaseResult& d) {
                    PairPlan& owner = ctx->plans[pid];
                    if (owner.session->settled()) return;  // set already settled
                    ScenarioResult& result = ctx->result;
                    result.keepalives_sent += d.keepalives_sent;
                    result.keepalives_delivered += d.keepalives_delivered;
                    result.failures_detected += d.failures_detected;
                    result.reformations += d.reformations;
                    result.setup_attempts += d.reform_setup_attempts;
                    for (const sim::Time lag : d.detection_delays) {
                      result.time_to_detect.add(lag);
                    }
                    // The connection's live path is the last adopted one: the
                    // original if it never re-formed, else the final re-form.
                    std::uint32_t live = adopted;
                    for (const core::BuiltPath& reformed : d.reformed_paths) {
                      (void)owner.session->adopt_connection(reformed, ctx->history,
                                                            ctx->ledger, ctx->overlay);
                      live = owner.session->connections_run();
                    }
                    if (ctx->track_completion && d.completed) {
                      owner.session->mark_completed(live);
                    }
                  });
            });
      });
      last_connection_at = std::max(last_connection_at, at);
      at += schedule_stream.exponential(1.0 / cfg.connection_interval_mean);
    }
  }

  // Run just past the last connection; churn and probing are open-ended
  // (availability attackers never leave), so a horizon — not queue drain —
  // ends the run. Fault mode needs room for the last connection's data
  // phase (plus its re-formations) to play out.
  const sim::Time tail =
      fault_mode ? cfg.data_phase.duration + sim::minutes(10.0) : sim::minutes(1.0);
  run_horizon(last_connection_at + tail);

  // --- Settle every pair through the payment system.
  auto settle_stream = root.child("settle");
  std::vector<core::SettleOutcome> outcomes;
  outcomes.reserve(plans.size());
  if (!bank_mode) {
    for (PairPlan& plan : plans) {
      outcomes.push_back(plan.session->settle(bank, engine, ledger, overlay, settle_stream));
    }
  } else {
    // Event-driven settlement lifecycle: every escrow is funded and opened
    // now, but claims arrive as lossy, delayed bank messages, the
    // initiator's close may never come (crash between funding and close),
    // and the deadline sweep terminalises whatever is left on its own —
    // abandoning with a pro-rata payout, or expiring with a full refund.
    const fault::BankFaultConfig& bf = cfg.fault.bank;
    if (transport) {
      // The bank's message plane: claims and closes arrive as wire frames
      // and dispatch synchronously inside their scheduled events, so event
      // ordering (and every digest) matches the direct calls exactly.
      transport->set_bank_handler([&engine](const transport::wire::WireMessage& m) {
        if (const auto* c = std::get_if<transport::wire::ClaimMsg>(&m)) {
          (void)engine.submit_claim(c->sid, c->claimant, c->receipt);
        } else if (const auto* cl = std::get_if<transport::wire::CloseMsg>(&m)) {
          (void)engine.close(cl->sid);
        }
      });
    }
    auto bank_fault_stream = root.child("bank-faults");
    const sim::Time t0 = simulator.now();
    const sim::Time deadline = t0 + bf.claim_deadline;
    std::vector<payment::SettlementId> sids(plans.size());
    for (std::size_t i = 0; i < plans.size(); ++i) {
      auto fs = bank_fault_stream.child("pair", i);
      const core::PreparedSettlement prep =
          plans[i].session->open_settlement(bank, engine, settle_stream, deadline);
      sids[i] = prep.sid;

      // One crash draw per distinct claimant, in first-appearance order: a
      // crashed forwarder never sends any of its claims.
      std::vector<payment::AccountId> drawn;
      std::vector<payment::AccountId> crashed;
      for (const core::ClaimSubmission& claim : prep.claims) {
        if (std::find(drawn.begin(), drawn.end(), claim.claimant) != drawn.end()) continue;
        drawn.push_back(claim.claimant);
        if (fs.bernoulli(bf.forwarder_crash)) crashed.push_back(claim.claimant);
      }

      for (const core::ClaimSubmission& claim : prep.claims) {
        if (std::find(crashed.begin(), crashed.end(), claim.claimant) != crashed.end()) {
          ++result.claims_lost;  // never sent: the claimant is down
          continue;
        }
        const sim::Time spread = fs.uniform(0.0, bf.claim_spread);
        const sim::Time delay =
            bf.claim_delay_mean > 0.0 ? fs.exponential(1.0 / bf.claim_delay_mean) : 0.0;
        if (fs.bernoulli(bf.claim_loss)) {
          ++result.claims_lost;  // lost on the way to the bank
          continue;
        }
        // A delay past the deadline is not special-cased: the claim arrives,
        // the settlement is already terminal, and the engine refuses it
        // (claims_after_terminal) — exactly the race the lifecycle guards.
        if (transport) {
          simulator.schedule_at(
              t0 + spread + delay,
              [tp = &*transport,
               m = transport::wire::ClaimMsg{prep.sid, claim.claimant, claim.receipt}] {
                tp->post_to_bank(m);
              });
        } else {
          simulator.schedule_at(t0 + spread + delay, [&engine, sid = prep.sid, claim] {
            (void)engine.submit_claim(sid, claim.claimant, claim.receipt);
          });
        }
      }

      if (!fs.bernoulli(bf.initiator_crash)) {
        if (transport) {
          simulator.schedule_at(t0 + bf.close_after,
                                [tp = &*transport, m = transport::wire::CloseMsg{prep.sid}] {
                                  tp->post_to_bank(m);
                                });
        } else {
          simulator.schedule_at(t0 + bf.close_after,
                                [&engine, sid = prep.sid] { (void)engine.close(sid); });
        }
      }
    }
    simulator.schedule_at(deadline,
                          [&engine, &simulator] { (void)engine.expire_due(simulator.now()); });
    run_horizon(deadline + sim::minutes(1.0));
    assert(engine.open_settlements() == 0 && "deadline sweep left a settlement open");
    for (std::size_t i = 0; i < plans.size(); ++i) {
      outcomes.push_back(plans[i].session->finalize_settlement(bank, engine, ledger, sids[i]));
    }
  }

  std::vector<double> member_cost;  // NodeId-indexed, re-zeroed per pair
  for (std::size_t pi = 0; pi < plans.size(); ++pi) {
    core::ConnectionSetSession& session = *plans[pi].session;
    const core::SettleOutcome& outcome = outcomes[pi];

    switch (outcome.report.outcome) {
      case payment::SettlementState::kClosed: ++result.settlements_closed; break;
      case payment::SettlementState::kAbandoned: ++result.settlements_abandoned; break;
      case payment::SettlementState::kExpired: ++result.settlements_expired; break;
      default: break;  // non-terminal outcomes cannot reach a report
    }
    if (outcome.report.pro_rata) ++result.settlements_prorata;
    result.settlement_escrow_milli += outcome.report.escrow_in;
    result.settlement_paid_milli += outcome.report.paid_out;
    result.settlement_refunded_milli += outcome.report.refunded;

    const auto set_size = static_cast<double>(outcome.forwarder_set_size);
    result.forwarder_set_size.add(set_size);
    result.avg_path_length.add(session.average_path_length());
    result.path_quality.add(session.path_quality());
    result.initiator_spend.add(outcome.initiator_spend);
    result.initiator_utility.add(cfg.anonymity(set_size) - outcome.initiator_spend);
    result.total_paid_credits += payment::to_credits(outcome.report.paid_out);
    result.reformations += session.reformations();

    const auto& fractions = session.new_edge_fractions();
    for (std::size_t j = 0; j < fractions.size() && j < result.new_edge_fraction_by_conn.size();
         ++j) {
      result.new_edge_fraction_by_conn[j].add(fractions[j]);
    }

    // Membership payoff: for every good member of this pair's forwarder set,
    // its settlement payout (m*P_f + routing share) minus the transmission
    // costs of its instances within the set and its participation cost.
    member_cost.assign(overlay.size(), 0.0);
    for (const core::BuiltPath& p : session.paths()) {
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
        member_cost[p.nodes[i]] +=
            overlay.links().transmission_cost(p.nodes[i], p.nodes[i + 1]);
      }
    }
    for (const auto& [acct, amount] : outcome.report.payouts) {
      const net::NodeId owner = bank.account_owner(acct);
      if (owner == net::kInvalidNode || !overlay.node(owner).is_good()) continue;
      const double payoff = payment::to_credits(amount) - member_cost[owner] -
                            overlay.node(owner).participation_cost;
      result.member_payoff.add(payoff);
      result.member_payoff_samples.push_back(payoff);
    }
  }

  // --- Node-level payoffs (good nodes).
  result.good_payoff = ledger.good_node_payoffs(overlay);
  result.good_payoff_samples = ledger.good_node_payoff_samples(overlay);

  result.routing_efficiency =
      result.forwarder_set_size.mean() > 0.0
          ? result.member_payoff.mean() / result.forwarder_set_size.mean()
          : 0.0;

  const sim::EventQueue::Stats& queue_stats = simulator.queue_stats();
  result.engine_events_scheduled = queue_stats.scheduled;
  result.engine_events_cancelled = queue_stats.cancelled;
  result.engine_events_fired = queue_stats.fired;
  result.engine_callback_heap_allocs = queue_stats.callback_heap_allocs;
  if (sharded_engine) {
    result.engine_cross_shard_messages = sharded_engine->stats().cross_shard_messages;
    result.engine_window_barriers = sharded_engine->stats().window_barriers;
  }
  if (transport) {
    const transport::TransportCounters& tc = transport->counters();
    result.transport_frames_sent = tc.frames_sent;
    result.transport_frames_delivered = tc.frames_delivered;
    result.transport_frames_dropped = tc.frames_dropped;
    result.transport_frames_rejected = tc.frames_rejected;
    result.transport_reconnects = tc.reconnects;
    result.transport_backoff_retries = tc.backoff_retries;
    result.transport_heartbeat_timeouts = tc.heartbeat_timeouts;
    result.transport_deadline_expiries = tc.deadline_expiries;
  }

  result.connection_latency = latency;
  result.churn_events = overlay.churn_events();
  result.probes = probing.probes_performed();
  result.connections_completed = connections_completed;
  result.sim_end_time = simulator.now();
  if (faults) {
    result.crashes = faults->crashes();
    result.messages_dropped = faults->messages_dropped();
    result.probe_false_negatives = faults->probe_false_negatives();
  }

  const payment::Amount money_after = bank.total_money() + bank.outstanding_coin_value();
  result.payment_conserved = money_before == money_after;

  result.claims_submitted = engine.claims_accepted() + engine.claims_rejected();
  result.claims_rejected = engine.claims_rejected();
  result.claims_after_terminal = engine.claims_after_terminal();

  if (bank_mode) {
    // Reconcile the bank side against the node side. Journal replay must
    // rebuild the bank's exact final state, and the journal's escrow-pay /
    // escrow-refund flows must match the settlement reports to the
    // milli-credit, per account.
    payment::ReplayState replayed;
    bool ok = audit.replay(replayed);
    ok = ok && replayed.accounts.size() == bank.account_count();
    for (payment::AccountId a = 0; ok && a < replayed.accounts.size(); ++a) {
      ok = replayed.accounts[a] == bank.balance(a);
    }
    ok = ok && replayed.escrows.size() == bank.escrow_count();
    for (payment::EscrowId e = 0; ok && e < replayed.escrows.size(); ++e) {
      ok = replayed.escrows[e] == bank.escrow_balance(e);
    }
    ok = ok && replayed.outstanding == bank.outstanding_coin_value();

    std::map<payment::AccountId, payment::Amount> audit_paid;
    payment::Amount audit_paid_total = 0;
    payment::Amount audit_refund_total = 0;
    for (const payment::Transaction& tx : audit.transactions()) {
      if (tx.kind == payment::TxKind::kEscrowPay) {
        audit_paid[tx.account] += tx.amount;
        audit_paid_total += tx.amount;
      } else if (tx.kind == payment::TxKind::kEscrowRefund) {
        audit_refund_total += tx.amount;
      }
    }
    std::map<payment::AccountId, payment::Amount> report_paid;
    for (const core::SettleOutcome& o : outcomes) {
      for (const auto& [acct, amount] : o.report.payouts) report_paid[acct] += amount;
    }
    ok = ok && audit_paid == report_paid;
    ok = ok && audit_paid_total == result.settlement_paid_milli;
    ok = ok && audit_refund_total == result.settlement_refunded_milli;
    result.settlement_reconciled = ok;
  }

  return result;
}

}  // namespace p2panon::harness
