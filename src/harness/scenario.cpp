#include "harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>

#include "core/edge_quality.hpp"
#include "core/path.hpp"
#include "core/suspicion.hpp"
#include "payment/settlement.hpp"
#include "sim/simulator.hpp"

namespace p2panon::harness {

ScenarioConfig paper_default_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 40;
  cfg.overlay.degree = 5;
  cfg.overlay.malicious_fraction = 0.0;
  cfg.overlay.churn.session_median = sim::minutes(60.0);
  cfg.pair_count = 100;
  cfg.connections_per_pair = 20;
  cfg.p_f_lo = 50.0;
  cfg.p_f_hi = 100.0;
  cfg.tau = 2.0;
  return cfg;
}

ScenarioResult ScenarioRunner::run() const {
  const ScenarioConfig& cfg = cfg_;
  sim::rng::Stream root(cfg.seed);

  sim::Simulator simulator;
  net::Overlay overlay(cfg.overlay, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, cfg.probing, root.child("probing"));
  core::HistoryStore history(overlay.size(), cfg.history_capacity);

  // Fault mode: any enabled fault swaps the omniscient synchronous setup
  // for the timeout-driven async runner + keepalive data phase. With every
  // knob off none of these objects exist and every stream/draw/decision is
  // bitwise identical to the pre-fault implementation.
  const bool fault_mode = cfg.fault.enabled();
  std::optional<core::SuspicionTracker> suspicion;
  if (fault_mode) suspicion.emplace(overlay.size(), cfg.suspicion_penalty);
  std::optional<fault::FaultInjector> faults;
  if (fault_mode) {
    faults.emplace(cfg.fault, overlay, root.child("faults"));
    probing.set_probe_oracle([&f = *faults](net::NodeId prober, net::NodeId target) {
      return f.probe_observation(prober, target);
    });
  }

  core::EdgeQualityEvaluator quality(probing, history, cfg.weights,
                                     suspicion ? &*suspicion : nullptr);
  core::DecisionResources resources;  // one edge cache + memo arena per replicate
  core::PathBuilder builder(overlay, quality, cfg.path_builder,
                            cfg.use_decision_cache ? &resources : nullptr);
  core::PayoffLedger ledger(overlay.size());

  std::optional<core::AsyncConnectionRunner> setup_runner;
  std::optional<core::DataPhaseRunner> data_runner;
  if (fault_mode) {
    setup_runner.emplace(simulator, overlay, builder, cfg.async_setup, &*faults,
                         &*suspicion);
    data_runner.emplace(simulator, overlay, *setup_runner, cfg.data_phase, &*faults);
  }

  // --- Bank: every node opens an account with a registered MAC key.
  payment::Bank bank(root.child("bank"));
  payment::SettlementEngine engine(bank);
  auto key_stream = root.child("mac-keys");
  const payment::Amount initial = payment::from_credits(cfg.initial_balance_credits);
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    bank.open_account(id, initial, key_stream.child("key", id).next_u64());
  }
  const payment::Amount money_before = bank.total_money() + bank.outstanding_coin_value();

  // --- Strategy assignment.
  const auto strategy = core::make_strategy(cfg.good_strategy, cfg.lookahead_depth);
  core::StrategyAssignment strategies(overlay, *strategy);

  // --- Select the (I, R) pairs and their contracts.
  auto pair_stream = root.child("pairs");
  struct PairPlan {
    std::unique_ptr<core::ConnectionSetSession> session;
    sim::rng::Stream stream;
    std::uint32_t launched = 0;  ///< async launches (fault mode wire index)
  };
  std::vector<PairPlan> plans;
  plans.reserve(cfg.pair_count);
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = cfg.responder_zipf > 0.0
                      ? static_cast<net::NodeId>(
                            pair_stream.zipf(overlay.size(), cfg.responder_zipf))
                      : static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::Contract contract;
    contract.forwarding_benefit = pair_stream.uniform(cfg.p_f_lo, cfg.p_f_hi);
    contract.tau = cfg.tau;
    contract.termination = cfg.termination;
    contract.p_forward = cfg.p_forward;
    contract.ttl_hops = cfg.ttl_hops;
    contract.cid_rotation = cfg.cid_rotation;
    plans.emplace_back(
        std::make_unique<core::ConnectionSetSession>(pid, initiator, responder, contract),
        root.child("pair-run", pid));
  }

  // --- Schedule: overlay churn (and fault hazards), then the recurring
  // connections. `result` exists before scheduling because fault-mode
  // completion callbacks write into it during the run.
  overlay.start();
  if (faults) faults->start();

  ScenarioResult result;
  result.new_edge_fraction_by_conn.resize(cfg.connections_per_pair);

  std::uint64_t connections_completed = 0;
  metrics::Accumulator latency;

  // Everything a connection launch touches, bundled so the scheduled lambda
  // captures one pointer (plus the pair id) instead of a dozen references —
  // small enough for EventCallback's inline buffer, so launch events do not
  // heap-allocate.
  struct LaunchContext {
    const ScenarioConfig& cfg;
    std::vector<PairPlan>& plans;
    net::Overlay& overlay;
    core::PathBuilder& builder;
    core::HistoryStore& history;
    core::StrategyAssignment& strategies;
    core::PayoffLedger& ledger;
    std::optional<core::AsyncConnectionRunner>& setup_runner;
    std::optional<core::DataPhaseRunner>& data_runner;
    ScenarioResult& result;
    metrics::Accumulator& latency;
    std::uint64_t& connections_completed;
    bool fault_mode;
  };
  LaunchContext lctx{cfg,         plans,      overlay, builder,
                     history,     strategies, ledger,  setup_runner,
                     data_runner, result,     latency, connections_completed,
                     fault_mode};

  auto schedule_stream = root.child("schedule");
  sim::Time last_connection_at = cfg.warmup;
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    sim::Time at = cfg.warmup + schedule_stream.uniform(0.0, cfg.pair_start_window);
    for (std::uint32_t j = 0; j < cfg.connections_per_pair; ++j) {
      simulator.schedule_at(at, [ctx = &lctx, pid] {
        PairPlan& p = ctx->plans[pid];
        // The endpoints must be online for the connection to run; the paper's
        // recurring applications (HTTP, FTP, ...) imply an active initiator.
        ctx->overlay.force_online(p.session->initiator());
        ctx->overlay.force_online(p.session->responder());
        if (!ctx->fault_mode) {
          const core::BuiltPath& path = p.session->run_connection(
              ctx->builder, ctx->history, ctx->strategies, ctx->ledger, ctx->overlay,
              p.stream, ctx->cfg.adversary);
          ctx->latency.add(ctx->overlay.links().path_latency(path.nodes));
          ++ctx->connections_completed;
          return;
        }

        // Fault mode: timeout-driven setup, then a keepalive data phase
        // whose detected failures re-form the path. Wire ids follow launch
        // order (completions may interleave across the pair's connections).
        const std::uint32_t conn = ++p.launched;
        const net::PairId wire_pair = p.session->effective_pair(conn);
        const std::uint32_t wire_index = p.session->effective_conn_index(conn);
        ctx->setup_runner->establish(
            wire_pair, wire_index, p.session->initiator(), p.session->responder(),
            p.session->contract(), ctx->strategies, p.stream.child("setup", conn),
            [ctx, pid, conn, wire_pair, wire_index](const core::AsyncResult& r) {
              PairPlan& plan = ctx->plans[pid];
              ScenarioResult& result = ctx->result;
              result.setup_attempts += r.attempts;
              result.setup_ack_timeouts += r.ack_timeouts;
              result.reformations += r.attempts - 1;
              if (!r.established) {
                ++result.connections_failed;
                return;
              }
              result.setup_time.add(r.setup_time);
              const core::BuiltPath& path = plan.session->adopt_connection(
                  r.path, ctx->history, ctx->ledger, ctx->overlay);
              ctx->latency.add(ctx->overlay.links().path_latency(path.nodes));
              ++ctx->connections_completed;
              ctx->data_runner->run(
                  wire_pair, wire_index, path, plan.session->contract(), ctx->strategies,
                  plan.stream.child("data", conn),
                  [ctx, pid](const core::DataPhaseResult& d) {
                    PairPlan& owner = ctx->plans[pid];
                    ScenarioResult& result = ctx->result;
                    result.keepalives_sent += d.keepalives_sent;
                    result.keepalives_delivered += d.keepalives_delivered;
                    result.failures_detected += d.failures_detected;
                    result.reformations += d.reformations;
                    result.setup_attempts += d.reform_setup_attempts;
                    for (const sim::Time lag : d.detection_delays) {
                      result.time_to_detect.add(lag);
                    }
                    for (const core::BuiltPath& reformed : d.reformed_paths) {
                      (void)owner.session->adopt_connection(reformed, ctx->history,
                                                            ctx->ledger, ctx->overlay);
                    }
                  });
            });
      });
      last_connection_at = std::max(last_connection_at, at);
      at += schedule_stream.exponential(1.0 / cfg.connection_interval_mean);
    }
  }

  // Run just past the last connection; churn and probing are open-ended
  // (availability attackers never leave), so a horizon — not queue drain —
  // ends the run. Fault mode needs room for the last connection's data
  // phase (plus its re-formations) to play out.
  const sim::Time tail =
      fault_mode ? cfg.data_phase.duration + sim::minutes(10.0) : sim::minutes(1.0);
  simulator.run_until(last_connection_at + tail);

  // --- Settle every pair through the payment system.
  auto settle_stream = root.child("settle");
  std::vector<double> member_cost;  // NodeId-indexed, re-zeroed per pair
  for (PairPlan& plan : plans) {
    core::ConnectionSetSession& session = *plan.session;
    const core::SettleOutcome outcome =
        session.settle(bank, engine, ledger, overlay, settle_stream);

    const auto set_size = static_cast<double>(outcome.forwarder_set_size);
    result.forwarder_set_size.add(set_size);
    result.avg_path_length.add(session.average_path_length());
    result.path_quality.add(session.path_quality());
    result.initiator_spend.add(outcome.initiator_spend);
    result.initiator_utility.add(cfg.anonymity(set_size) - outcome.initiator_spend);
    result.total_paid_credits += payment::to_credits(outcome.report.paid_out);
    result.reformations += session.reformations();

    const auto& fractions = session.new_edge_fractions();
    for (std::size_t j = 0; j < fractions.size() && j < result.new_edge_fraction_by_conn.size();
         ++j) {
      result.new_edge_fraction_by_conn[j].add(fractions[j]);
    }

    // Membership payoff: for every good member of this pair's forwarder set,
    // its settlement payout (m*P_f + routing share) minus the transmission
    // costs of its instances within the set and its participation cost.
    member_cost.assign(overlay.size(), 0.0);
    for (const core::BuiltPath& p : session.paths()) {
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
        member_cost[p.nodes[i]] +=
            overlay.links().transmission_cost(p.nodes[i], p.nodes[i + 1]);
      }
    }
    for (const auto& [acct, amount] : outcome.report.payouts) {
      const net::NodeId owner = bank.account_owner(acct);
      if (owner == net::kInvalidNode || !overlay.node(owner).is_good()) continue;
      const double payoff = payment::to_credits(amount) - member_cost[owner] -
                            overlay.node(owner).participation_cost;
      result.member_payoff.add(payoff);
      result.member_payoff_samples.push_back(payoff);
    }
  }

  // --- Node-level payoffs (good nodes).
  result.good_payoff = ledger.good_node_payoffs(overlay);
  result.good_payoff_samples = ledger.good_node_payoff_samples(overlay);

  result.routing_efficiency =
      result.forwarder_set_size.mean() > 0.0
          ? result.member_payoff.mean() / result.forwarder_set_size.mean()
          : 0.0;

  const sim::EventQueue::Stats& queue_stats = simulator.queue_stats();
  result.engine_events_scheduled = queue_stats.scheduled;
  result.engine_events_cancelled = queue_stats.cancelled;
  result.engine_events_fired = queue_stats.fired;
  result.engine_callback_heap_allocs = queue_stats.callback_heap_allocs;

  result.connection_latency = latency;
  result.churn_events = overlay.churn_events();
  result.probes = probing.probes_performed();
  result.connections_completed = connections_completed;
  result.sim_end_time = simulator.now();
  if (faults) {
    result.crashes = faults->crashes();
    result.messages_dropped = faults->messages_dropped();
    result.probe_false_negatives = faults->probe_false_negatives();
  }

  const payment::Amount money_after = bank.total_money() + bank.outstanding_coin_value();
  result.payment_conserved = money_before == money_after;

  return result;
}

}  // namespace p2panon::harness
