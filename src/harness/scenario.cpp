#include "harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>

#include "core/edge_quality.hpp"
#include "core/path.hpp"
#include "payment/settlement.hpp"
#include "sim/simulator.hpp"

namespace p2panon::harness {

ScenarioConfig paper_default_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.seed = seed;
  cfg.overlay.node_count = 40;
  cfg.overlay.degree = 5;
  cfg.overlay.malicious_fraction = 0.0;
  cfg.overlay.churn.session_median = sim::minutes(60.0);
  cfg.pair_count = 100;
  cfg.connections_per_pair = 20;
  cfg.p_f_lo = 50.0;
  cfg.p_f_hi = 100.0;
  cfg.tau = 2.0;
  return cfg;
}

ScenarioResult ScenarioRunner::run() const {
  const ScenarioConfig& cfg = cfg_;
  sim::rng::Stream root(cfg.seed);

  sim::Simulator simulator;
  net::Overlay overlay(cfg.overlay, simulator, root.child("overlay"));
  net::ProbingEstimator probing(overlay, cfg.probing, root.child("probing"));
  core::HistoryStore history(overlay.size(), cfg.history_capacity);
  core::EdgeQualityEvaluator quality(probing, history, cfg.weights);
  core::DecisionResources resources;  // one edge cache + memo arena per replicate
  core::PathBuilder builder(overlay, quality, cfg.path_builder,
                            cfg.use_decision_cache ? &resources : nullptr);
  core::PayoffLedger ledger(overlay.size());

  // --- Bank: every node opens an account with a registered MAC key.
  payment::Bank bank(root.child("bank"));
  payment::SettlementEngine engine(bank);
  auto key_stream = root.child("mac-keys");
  const payment::Amount initial = payment::from_credits(cfg.initial_balance_credits);
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    bank.open_account(id, initial, key_stream.child("key", id).next_u64());
  }
  const payment::Amount money_before = bank.total_money() + bank.outstanding_coin_value();

  // --- Strategy assignment.
  const auto strategy = core::make_strategy(cfg.good_strategy, cfg.lookahead_depth);
  core::StrategyAssignment strategies(overlay, *strategy);

  // --- Select the (I, R) pairs and their contracts.
  auto pair_stream = root.child("pairs");
  struct PairPlan {
    std::unique_ptr<core::ConnectionSetSession> session;
    sim::rng::Stream stream;
  };
  std::vector<PairPlan> plans;
  plans.reserve(cfg.pair_count);
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    const auto initiator = static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    net::NodeId responder = initiator;
    while (responder == initiator) {
      responder = cfg.responder_zipf > 0.0
                      ? static_cast<net::NodeId>(
                            pair_stream.zipf(overlay.size(), cfg.responder_zipf))
                      : static_cast<net::NodeId>(pair_stream.below(overlay.size()));
    }
    core::Contract contract;
    contract.forwarding_benefit = pair_stream.uniform(cfg.p_f_lo, cfg.p_f_hi);
    contract.tau = cfg.tau;
    contract.termination = cfg.termination;
    contract.p_forward = cfg.p_forward;
    contract.ttl_hops = cfg.ttl_hops;
    contract.cid_rotation = cfg.cid_rotation;
    plans.emplace_back(
        std::make_unique<core::ConnectionSetSession>(pid, initiator, responder, contract),
        root.child("pair-run", pid));
  }

  // --- Schedule: overlay churn, then the recurring connections.
  overlay.start();

  std::uint64_t connections_completed = 0;
  metrics::Accumulator latency;
  auto schedule_stream = root.child("schedule");
  sim::Time last_connection_at = cfg.warmup;
  for (net::PairId pid = 0; pid < cfg.pair_count; ++pid) {
    sim::Time at = cfg.warmup + schedule_stream.uniform(0.0, cfg.pair_start_window);
    for (std::uint32_t j = 0; j < cfg.connections_per_pair; ++j) {
      simulator.schedule_at(at, [&, pid] {
        PairPlan& p = plans[pid];
        // The endpoints must be online for the connection to run; the paper's
        // recurring applications (HTTP, FTP, ...) imply an active initiator.
        overlay.force_online(p.session->initiator());
        overlay.force_online(p.session->responder());
        const core::BuiltPath& path = p.session->run_connection(
            builder, history, strategies, ledger, overlay, p.stream, cfg.adversary);
        latency.add(overlay.links().path_latency(path.nodes));
        ++connections_completed;
      });
      last_connection_at = std::max(last_connection_at, at);
      at += schedule_stream.exponential(1.0 / cfg.connection_interval_mean);
    }
  }

  // Run just past the last connection; churn and probing are open-ended
  // (availability attackers never leave), so a horizon — not queue drain —
  // ends the run.
  simulator.run_until(last_connection_at + sim::minutes(1.0));

  // --- Settle every pair through the payment system.
  ScenarioResult result;
  result.new_edge_fraction_by_conn.resize(cfg.connections_per_pair);
  auto settle_stream = root.child("settle");
  for (PairPlan& plan : plans) {
    core::ConnectionSetSession& session = *plan.session;
    const core::SettleOutcome outcome =
        session.settle(bank, engine, ledger, overlay, settle_stream);

    const auto set_size = static_cast<double>(outcome.forwarder_set_size);
    result.forwarder_set_size.add(set_size);
    result.avg_path_length.add(session.average_path_length());
    result.path_quality.add(session.path_quality());
    result.initiator_spend.add(outcome.initiator_spend);
    result.initiator_utility.add(cfg.anonymity(set_size) - outcome.initiator_spend);
    result.total_paid_credits += payment::to_credits(outcome.report.paid_out);
    result.reformations += session.reformations();

    const auto& fractions = session.new_edge_fractions();
    for (std::size_t j = 0; j < fractions.size() && j < result.new_edge_fraction_by_conn.size();
         ++j) {
      result.new_edge_fraction_by_conn[j].add(fractions[j]);
    }

    // Membership payoff: for every good member of this pair's forwarder set,
    // its settlement payout (m*P_f + routing share) minus the transmission
    // costs of its instances within the set and its participation cost.
    std::unordered_map<net::NodeId, double> member_cost;
    for (const core::BuiltPath& p : session.paths()) {
      for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
        member_cost[p.nodes[i]] +=
            overlay.links().transmission_cost(p.nodes[i], p.nodes[i + 1]);
      }
    }
    // Ascending account order keeps floating-point accumulation (and hence
    // replicate results) independent of hash-map iteration order.
    std::vector<payment::AccountId> paid_accounts;
    paid_accounts.reserve(outcome.report.payouts.size());
    for (const auto& [acct, amount] : outcome.report.payouts) {
      (void)amount;
      paid_accounts.push_back(acct);
    }
    std::sort(paid_accounts.begin(), paid_accounts.end());
    for (payment::AccountId acct : paid_accounts) {
      const net::NodeId owner = bank.account_owner(acct);
      if (owner == net::kInvalidNode || !overlay.node(owner).is_good()) continue;
      const double payoff = payment::to_credits(outcome.report.payouts.at(acct)) -
                            member_cost[owner] - overlay.node(owner).participation_cost;
      result.member_payoff.add(payoff);
      result.member_payoff_samples.push_back(payoff);
    }
  }

  // --- Node-level payoffs (good nodes).
  result.good_payoff = ledger.good_node_payoffs(overlay);
  result.good_payoff_samples = ledger.good_node_payoff_samples(overlay);

  result.routing_efficiency =
      result.forwarder_set_size.mean() > 0.0
          ? result.member_payoff.mean() / result.forwarder_set_size.mean()
          : 0.0;

  result.connection_latency = latency;
  result.churn_events = overlay.churn_events();
  result.probes = probing.probes_performed();
  result.connections_completed = connections_completed;
  result.sim_end_time = simulator.now();

  const payment::Amount money_after = bank.total_money() + bank.outstanding_coin_value();
  result.payment_conserved = money_before == money_after;

  return result;
}

}  // namespace p2panon::harness
