#include "harness/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace p2panon::harness {

bool atomic_write_file(const std::filesystem::path& path, std::string_view payload) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);  // best effort
  }
  // Temp file in the same directory so the rename cannot cross filesystems.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    // lint-exempt(atomic-write): this IS the atomic-rename helper's write leg
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
}

std::uint64_t fnv1a_bytes(std::uint64_t h, std::string_view bytes) noexcept {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double x) noexcept {
  return fnv1a_mix(h, std::bit_cast<std::uint64_t>(x));
}

std::string encode_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::optional<std::uint64_t> decode_u64(std::string_view s) noexcept {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

std::string encode_double(double x) { return encode_u64(std::bit_cast<std::uint64_t>(x)); }

std::optional<double> decode_double(std::string_view s) noexcept {
  const auto bits = decode_u64(s);
  if (!bits) return std::nullopt;
  return std::bit_cast<double>(*bits);
}

void Checkpoint::set(std::string key, std::string value) {
  for (auto& [k, v] : records_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  records_.emplace_back(std::move(key), std::move(value));
}

const std::string* Checkpoint::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : records_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Checkpoint::erase_prefix(std::string_view prefix) {
  std::erase_if(records_, [&](const auto& rec) {
    return rec.first.size() >= prefix.size() &&
           std::string_view(rec.first).substr(0, prefix.size()) == prefix;
  });
}

bool Checkpoint::save(const std::filesystem::path& path) const {
  std::ostringstream out;
  out << kHeader << "\n";
  std::uint64_t digest = fnv1a_init();
  for (const auto& [k, v] : records_) {
    out << k << " " << v << "\n";
    digest = fnv1a_bytes(digest, k);
    digest = fnv1a_bytes(digest, v);
  }
  out << "digest " << encode_u64(digest) << "\n";
  return atomic_write_file(path, out.str());
}

std::optional<Checkpoint> Checkpoint::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string line;
  if (!std::getline(in, line) || line != kHeader) return std::nullopt;

  Checkpoint ckpt;
  std::uint64_t digest = fnv1a_init();
  bool digest_ok = false;
  while (std::getline(in, line)) {
    const std::size_t sp = line.find(' ');
    if (sp == std::string::npos || sp == 0) return std::nullopt;
    std::string key = line.substr(0, sp);
    std::string value = line.substr(sp + 1);
    if (key == "digest") {
      const auto stored = decode_u64(value);
      digest_ok = stored && *stored == digest;
      // Anything after the digest line (torn concatenation) invalidates.
      if (std::getline(in, line)) return std::nullopt;
      break;
    }
    digest = fnv1a_bytes(digest, key);
    digest = fnv1a_bytes(digest, value);
    ckpt.records_.emplace_back(std::move(key), std::move(value));
  }
  if (!digest_ok) return std::nullopt;
  return ckpt;
}

}  // namespace p2panon::harness
