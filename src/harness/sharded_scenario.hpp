// Sharded scale scenario: the windowed workload the sharded core exists for.
//
// One World holds the SoA overlay state, the shard-scoped probing and
// edge-quality estimators, and the per-shard counters; its event handlers
// run on the owning shard of the node they touch. The workload is the
// cancel-heavy shape PR 4 optimised the queue for, at population scale:
//
//   * churn     — every node cycles join -> session -> leave -> gap ->
//                 rejoin (with a final-departure coin), ground-truth
//                 availability tracked per node;
//   * probing   — every online node sweeps D(s) once per period through
//                 ShardedProbing (live same-shard liveness, published
//                 snapshot cross-shard);
//   * traffic   — every online node launches connections at exponential
//                 intervals: hop-by-hop forwarding over the best-scoring
//                 neighbour edge (ShardedEdgeQuality), an ack racing an
//                 ack timer at the initiator — the timer is cancelled on
//                 ack, so cancels dominate at high delivery ratios;
//   * claims    — each forwarded hop accrues a claim in the forwarder's
//                 shard; claims settle in the serial barrier hook, the
//                 batch point the contract/settlement phases map onto.
//
// Determinism contract: every random draw is a stateless child-stream
// derivation keyed by {node, cycle} / {node, connection} — no shared
// mutable RNG — so results are bitwise identical across thread-pool sizes
// for fixed {seed, K, window}, and the model draws themselves do not depend
// on K at all (only window-clamped cross-shard delivery times do). The
// serial oracle (run_serial_oracle) executes the identical workload on a
// plain sim::Simulator; a sharded run with K = 1 must match it bitwise
// (digest-for-digest) — pinned by tests/harness/test_sharded_scenario.cpp.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/contract.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace p2panon::parallel {
class ThreadPool;
}

namespace p2panon::harness {

struct ShardedScenarioConfig {
  std::uint64_t seed = 1;
  std::size_t node_count = 1000;
  std::size_t degree = 8;
  std::uint32_t shard_count = 4;
  /// Window-synchronisation quantum W (seconds). Cross-shard messages are
  /// delivered at the first window boundary after they are sent.
  sim::Time window = 30.0;
  sim::Time duration = sim::hours(1.0);

  sim::Time probe_period = sim::minutes(5.0);
  /// Nodes join uniformly over [0, join_window).
  sim::Time join_window = sim::minutes(10.0);
  sim::Time session_mean = sim::minutes(60.0);
  sim::Time offline_gap_mean = sim::minutes(30.0);
  double departure_probability = 0.05;

  sim::Time connection_interval_mean = sim::minutes(2.0);
  std::uint32_t path_hops = 3;
  sim::Time hop_latency = 0.2;
  /// Must comfortably exceed path_hops * hop_latency + 2 * window, so that
  /// acks normally win the race and the timer is cancelled (the
  /// cancel-heavy regime).
  sim::Time ack_timeout = 90.0;

  core::QualityWeights weights;
};

/// Model counters of one shard. Cache-line separated: shards bump their own
/// block concurrently inside a window.
struct alignas(64) ShardCounters {
  std::uint64_t connections_launched = 0;
  std::uint64_t connections_acked = 0;
  std::uint64_t ack_timeouts = 0;
  std::uint64_t no_candidate = 0;   ///< launches aborted: no live neighbour
  std::uint64_t hops_forwarded = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t departures = 0;
  std::uint64_t claims_pending = 0; ///< accrued, not yet settled at a barrier
  std::uint64_t claims_settled = 0;
};

struct ShardedScenarioResult {
  // Model totals (sums over shards).
  std::uint64_t connections_launched = 0;
  std::uint64_t connections_acked = 0;
  std::uint64_t ack_timeouts = 0;
  std::uint64_t no_candidate = 0;
  std::uint64_t hops_forwarded = 0;
  std::uint64_t churn_events = 0;
  std::uint64_t departures = 0;
  std::uint64_t claims_settled = 0;
  std::uint64_t probes = 0;

  /// Engine counters — excluded from `digest` (the serial oracle has no
  /// barriers; K = 1 equivalence is a statement about the *model*).
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t window_barriers = 0;
  std::uint64_t settlement_batches = 0;
  sim::EventQueue::Stats engine;

  /// FNV-1a over every per-shard model counter and every node's state and
  /// availability bit pattern — the whole-run fingerprint the determinism
  /// and K = 1 equivalence tests compare.
  std::uint64_t digest = 0;

  std::vector<ShardCounters> per_shard;
};

/// Run the sharded workload on K = cfg.shard_count shards under window
/// synchronisation. `pool` may be nullptr (shards then run serially per
/// window — same results, by the determinism contract).
ShardedScenarioResult run_sharded_scenario(const ShardedScenarioConfig& cfg,
                                           parallel::ThreadPool* pool);

/// The bitwise oracle: the identical workload on one plain sim::Simulator
/// (no windows, no mailbox, single shard). A sharded run with
/// shard_count = 1 must reproduce this digest exactly.
ShardedScenarioResult run_serial_oracle(const ShardedScenarioConfig& cfg);

}  // namespace p2panon::harness
