// One end-to-end experiment scenario (paper §3 setup).
//
// A scenario builds the overlay (N nodes, degree d, malicious fraction f,
// churn), the probing estimators, bank accounts for every node, selects
// `pair_count` (I, R) pairs, runs `connections_per_pair` recurring
// connections per pair spread over simulated time, settles every pair
// through the payment system, and collects the metrics behind every table
// and figure of the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/async_path.hpp"
#include "core/data_phase.hpp"
#include "core/incentive.hpp"
#include "core/routing.hpp"
#include "fault/fault.hpp"
#include "metrics/anonymity.hpp"
#include "metrics/stats.hpp"
#include "net/overlay.hpp"
#include "net/probing.hpp"

namespace p2panon::harness {

/// Which carrier moves fault-mode legs/acks/keepalives and bank-fault
/// claim/close traffic.
enum class TransportBackend : std::uint8_t {
  /// Legacy direct in-sim delivery: the runners schedule continuations
  /// themselves, nothing is framed.
  kDirect = 0,
  /// transport::SimTransport: identical delivery (same draws, same
  /// schedule — pinned bitwise against kDirect by
  /// tests/harness/test_transport_equivalence.cpp), with every message
  /// additionally round-tripped through the wire codec and counted.
  kSim = 1,
};

struct ScenarioConfig {
  std::uint64_t seed = 1;

  net::OverlayConfig overlay;     ///< N = 40, d = 5, f, churn (paper defaults)
  net::ProbingConfig probing;

  core::QualityWeights weights;   ///< w_s = w_a = 0.5 (paper default)
  core::StrategyKind good_strategy = core::StrategyKind::kUtilityModelI;
  std::uint32_t lookahead_depth = 3;   ///< Utility Model II horizon

  std::size_t pair_count = 100;        ///< (I, R) pairs (paper: 100)
  std::uint32_t connections_per_pair = 20;  ///< max-connections (paper: 20)

  /// Popularity skew of responder selection: 0 = uniform (the paper's
  /// setup); > 0 picks responders Zipf(s) by node id (web-like workloads
  /// where a few responders receive most recurring connections).
  double responder_zipf = 0.0;

  /// Connection-id rotation epoch applied to every pair's contract
  /// (see core::Contract::cid_rotation). 0 = off.
  std::uint32_t cid_rotation = 0;

  double p_f_lo = 50.0;  ///< forwarding benefit drawn U[p_f_lo, p_f_hi]
  double p_f_hi = 100.0;
  double tau = 2.0;      ///< P_r = tau * P_f (paper: {0.5, 1, 2, 4})

  core::TerminationPolicy termination = core::TerminationPolicy::kCrowds;
  double p_forward = 0.75;
  std::uint32_t ttl_hops = 4;

  /// Overlay warm-up before the first connection (lets joins and probing
  /// populate availability estimates).
  sim::Time warmup = sim::minutes(60.0);
  /// Pairs start uniformly over this window after warm-up.
  sim::Time pair_start_window = sim::hours(2.0);
  /// Mean gap between successive connections of one pair (exponential).
  sim::Time connection_interval_mean = sim::minutes(5.0);

  core::AdversaryModel adversary;  ///< payload-drop attack knobs
  std::size_t history_capacity = 0;  ///< per-node entries; 0 = unbounded

  /// Fault model. Default-constructed (all-off) leaves the scenario on the
  /// omniscient synchronous path — bitwise identical to the pre-fault
  /// implementation. Any enabled fault switches connection setup to the
  /// timeout-driven AsyncConnectionRunner and adds a keepalive data phase
  /// per connection.
  fault::FaultConfig fault;
  core::AsyncConfig async_setup;    ///< setup timeouts/backoff (fault mode)
  core::DataPhaseConfig data_phase; ///< keepalive phase knobs (fault mode)
  /// SuspicionTracker penalty (availability multiplier per hop timeout).
  double suspicion_penalty = 0.5;

  double initial_balance_credits = 1.0e9;  ///< per-node bank balance

  metrics::AnonymityValuation anonymity;  ///< A(.) for the initiator utility

  core::PathBuilderConfig path_builder;

  /// Attach the per-replicate decision resources (epoch-invalidated
  /// edge-quality cache + memoised-lookahead arena) to the path builder.
  /// Off or on, replicate results are bitwise identical (see
  /// test_cache_equivalence); the switch exists for that proof and for
  /// before/after benchmarking.
  bool use_decision_cache = true;

  /// Drive the replicate through the sharded engine at K = 1 instead of the
  /// plain serial Simulator. Bitwise identical either way (the windowed
  /// drive of one shard preserves event order; pinned by
  /// test_sharded_equivalence) — the switch exists for that proof. The full
  /// paper scenario shares one Overlay and one HistoryStore, so it only
  /// runs single-sharded; K > 1 lives in the sharded scale scenario
  /// (harness/sharded_scenario).
  bool use_sharded_engine = false;
  /// Window-synchronisation quantum when use_sharded_engine is set.
  sim::Time engine_window = sim::minutes(5.0);

  /// Engine shards for the full paper scenario. 1 (default) keeps today's
  /// path — serial, or the windowed K = 1 drive above, both bitwise-pinned
  /// to each other. > 1 routes the replicate through the windowed sharded
  /// paper runner (harness/paper_sharded.hpp): node-partitioned
  /// history/probing state behind barrier-merged read views, pair
  /// settlement batched through the window-barrier hook onto the sharded
  /// settlement plane. K > 1 is a different (windowed) workload than the
  /// serial scenario — its contract is pool-size- and window-invariance of
  /// ScenarioResult::sharded_digest, not bitwise equality with K = 1.
  std::uint32_t engine_shards = 1;
  /// Bank partitions of the sharded settlement plane (K > 1 only);
  /// 0 = one per engine shard.
  std::uint32_t bank_partitions = 0;
  /// View-refresh interval R (K > 1 only): the barrier-merged read views
  /// (published liveness, availability snapshot, folded history) refresh
  /// every round(R / engine_window) window barriers — R is snapped to a
  /// whole number of windows. 0 = refresh at every barrier. Fixing R while
  /// varying the window is what makes the K > 1 digest window-invariant:
  /// runs whose windows both divide R refresh identical views at identical
  /// absolute times.
  sim::Time view_refresh = 0.0;

  /// Transport backend for fault/bank-fault message traffic. kSim (default)
  /// is bitwise-identical to kDirect in every result field except the
  /// transport_* counters; the K > 1 sharded paper runner ignores this knob
  /// (its messaging is the window mailbox, not per-hop frames).
  TransportBackend transport = TransportBackend::kSim;
};

/// Everything the benches and EXPERIMENTS.md need from one replicate.
struct ScenarioResult {
  // --- Node-level (good nodes only): whole-experiment totals per node.
  metrics::Accumulator good_payoff;             ///< total payoff per good node
  std::vector<double> good_payoff_samples;      ///< one sample per good node

  // --- Membership-level: the payoff a good node derives from ONE recurring
  // connection set it serves: m*P_f + P_r/||pi|| minus its transmission
  // costs within the set and its participation cost. This is the paper's
  // Figs. 3-4/6-7 payoff: it falls as adversaries inflate ||pi|| (both the
  // per-member workload m = L*k/||pi|| and the routing share shrink), while
  // whole-experiment per-node totals do not.
  metrics::Accumulator member_payoff;
  std::vector<double> member_payoff_samples;  ///< one sample per (pair, good member)

  // --- Pair-level (one sample per (I, R) pair).
  metrics::Accumulator forwarder_set_size;      ///< ||pi|| (Fig. 5)
  metrics::Accumulator avg_path_length;         ///< L
  metrics::Accumulator path_quality;            ///< Q(pi) = L / ||pi||
  metrics::Accumulator connection_latency;      ///< end-to-end seconds per connection
  metrics::Accumulator initiator_utility;       ///< Eq. 2 with actual spend
  metrics::Accumulator initiator_spend;

  /// Prop. 1: per-connection new-edge fraction E[X], indexed by connection
  /// number (averaged over pairs).
  std::vector<metrics::Accumulator> new_edge_fraction_by_conn;

  // --- System-level.
  double routing_efficiency = 0.0;  ///< avg member payoff / avg ||pi|| (Table 2)
  std::uint64_t churn_events = 0;
  std::uint64_t reformations = 0;
  std::uint64_t probes = 0;
  std::uint64_t connections_completed = 0;
  bool payment_conserved = false;  ///< bank money + coins unchanged
  double total_paid_credits = 0.0;
  sim::Time sim_end_time = 0.0;

  // --- Fault/robustness metrics (all zero outside fault mode).
  std::uint64_t connections_failed = 0;    ///< setups that exhausted attempts
  std::uint64_t setup_attempts = 0;        ///< attempts incl. re-formations
  std::uint64_t setup_ack_timeouts = 0;    ///< per-hop ack timers that fired
  std::uint64_t crashes = 0;               ///< silent crashes injected
  std::uint64_t messages_dropped = 0;      ///< legs/acks lost to the injector
  std::uint64_t probe_false_negatives = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_delivered = 0;
  std::uint64_t failures_detected = 0;     ///< keepalive timers that fired
  metrics::Accumulator setup_time;         ///< established setups, seconds
  metrics::Accumulator time_to_detect;     ///< detection lag per failure, seconds

  // --- Simulation-engine counters (EventQueue::Stats for the replicate's
  // simulator). Deterministic: bitwise-equal runs schedule/cancel/fire the
  // same events, so the determinism tests pin these too. The heap-alloc
  // count is the number of scheduled callbacks that outgrew EventCallback's
  // inline buffer — zero in steady state (see the scale bench / alloc guard).
  std::uint64_t engine_events_scheduled = 0;
  std::uint64_t engine_events_cancelled = 0;
  std::uint64_t engine_events_fired = 0;
  std::uint64_t engine_callback_heap_allocs = 0;
  /// Sharded-engine counters: zero on the serial path; on the sharded path
  /// cross-shard messages stay zero at K = 1 (everything is shard-local)
  /// while window barriers count the windowed drive's synchronisation
  /// points. Deterministic, so the determinism suite pins both.
  std::uint64_t engine_cross_shard_messages = 0;
  std::uint64_t engine_window_barriers = 0;

  // --- Settlement-lifecycle outcomes (PR 5). Every pair terminalises in
  // exactly one state; outside bank-fault mode every settlement closes
  // cleanly and the claim/refund counters stay zero. Money totals are exact
  // milli-credit integers so conservation is assertable to the last unit.
  std::uint64_t settlements_closed = 0;     ///< full close by the initiator
  std::uint64_t settlements_abandoned = 0;  ///< deadline/abandon with claims
  std::uint64_t settlements_expired = 0;    ///< deadline with zero claims
  std::uint64_t settlements_prorata = 0;    ///< abandoned with partial payout
  std::uint64_t claims_submitted = 0;       ///< claims that reached the bank
  std::uint64_t claims_lost = 0;            ///< lost/never-sent submissions
  std::uint64_t claims_rejected = 0;        ///< rejected by verification
  std::uint64_t claims_after_terminal = 0;  ///< raced past close/abandon
  std::int64_t settlement_escrow_milli = 0;   ///< money in (escrow funding)
  std::int64_t settlement_paid_milli = 0;     ///< money out to forwarders
  std::int64_t settlement_refunded_milli = 0; ///< money back to initiators
  /// Bank-fault mode: audit-journal replay matches the bank's final account/
  /// escrow/outstanding state AND the journal's per-account escrow payouts
  /// and refund totals match the settlement reports (bank side == node
  /// side). Vacuously true outside bank-fault mode.
  bool settlement_reconciled = true;

  // --- Transport-plane counters (zero under kDirect and outside fault/
  // bank-fault modes — the synchronous path sends no messages). Under kSim
  // these count codec-verified frames; deterministic, pinned by the
  // determinism suite alongside the engine counters. The TCP-only rows
  // (reconnects, backoff, heartbeats, deadlines) stay zero in-sim and are
  // populated by the multi-process chaos driver's processes instead.
  std::uint64_t transport_frames_sent = 0;
  std::uint64_t transport_frames_delivered = 0;
  std::uint64_t transport_frames_dropped = 0;
  std::uint64_t transport_frames_rejected = 0;
  std::uint64_t transport_reconnects = 0;
  std::uint64_t transport_backoff_retries = 0;
  std::uint64_t transport_heartbeat_timeouts = 0;
  std::uint64_t transport_deadline_expiries = 0;

  /// K > 1 model fingerprint (zero on the serial / K = 1 paths): FNV-1a over
  /// the sharded paper runner's order-invariant end state — per-pair
  /// settlement outcomes, merged per-account balance deltas, per-shard model
  /// counters, probing/history end state. Bitwise-stable across thread-pool
  /// sizes and window lengths for fixed {seed, K}; pinned by
  /// tests/harness/test_paper_sharded.cpp.
  std::uint64_t sharded_digest = 0;

  /// Data-phase delivery ratio; 1.0 when no keepalive was ever sent (the
  /// fault-free synchronous path delivers by construction).
  [[nodiscard]] double delivery_ratio() const noexcept {
    return keepalives_sent == 0
               ? 1.0
               : static_cast<double>(keepalives_delivered) /
                     static_cast<double>(keepalives_sent);
  }
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioConfig cfg) : cfg_(std::move(cfg)) {}

  /// Run one full replicate. Deterministic in cfg.seed.
  [[nodiscard]] ScenarioResult run() const;

  [[nodiscard]] const ScenarioConfig& config() const noexcept { return cfg_; }

 private:
  ScenarioConfig cfg_;
};

/// Paper-§3 defaults: N = 40, d = 5, 100 pairs, 20 connections each,
/// P_f ~ U[50, 100], w_s = w_a = 0.5, Pareto sessions with median 60 min.
[[nodiscard]] ScenarioConfig paper_default_config(std::uint64_t seed = 1);

}  // namespace p2panon::harness
