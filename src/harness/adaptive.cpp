#include "harness/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "harness/checkpoint.hpp"
#include "parallel/parallel_for.hpp"

namespace p2panon::harness {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return false;
  const std::string_view s(v);
  return s == "1" || s == "true" || s == "on" || s == "yes";
}

/// Checkpoint keys must be single whitespace-free tokens.
std::string sanitize_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    out.push_back(ok ? c : '_');
  }
  return out.empty() ? std::string("cell") : out;
}

/// Completed-replicate bitmap as space-free hex words (64 bits per word,
/// LSB = replicate 0). Replicates complete strictly in index order, so the
/// bitmap doubles as a consistency check on the stored `done` count.
std::string bitmap_for(std::size_t done) {
  std::string out;
  for (std::size_t word = 0; word * 64 < done || (word == 0 && done == 0); ++word) {
    const std::size_t lo = word * 64;
    std::uint64_t bits = 0;
    for (std::size_t b = 0; b < 64 && lo + b < done; ++b) bits |= 1ULL << b;
    if (word) out.push_back(':');
    out += encode_u64(bits);
    if (done == 0) break;
  }
  return out;
}

}  // namespace

AdaptiveConfig parse_adaptive_flags(int& argc, char** argv, double default_eps) {
  AdaptiveConfig cfg;
  cfg.eps = default_eps;
  if (env_truthy("P2PANON_ADAPTIVE")) cfg.adaptive = true;
  if (const char* v = std::getenv("P2PANON_EPS")) {
    const double e = std::strtod(v, nullptr);
    if (e > 0.0) cfg.eps = e;
  }
  if (const char* v = std::getenv("P2PANON_CHECKPOINT")) cfg.checkpoint = v;
  if (const char* v = std::getenv("P2PANON_KILL_AFTER_BATCH")) {
    cfg.kill_after_batches = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
  }

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--adaptive") {
      cfg.adaptive = true;
    } else if (arg == "--eps" && i + 1 < argc) {
      const double e = std::strtod(argv[++i], nullptr);
      if (e > 0.0) cfg.eps = e;
    } else if (arg == "--checkpoint" && i + 1 < argc) {
      cfg.checkpoint = argv[++i];
    } else if (arg == "--kill-after-batch" && i + 1 < argc) {
      cfg.kill_after_batches = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return cfg;
}

double StopTarget::eps_abs() const noexcept {
  if (!relative) return eps;
  // Relative target on a near-zero mean degenerates to "run to the cap",
  // which is the conservative choice.
  return eps * std::abs(acc != nullptr ? acc->mean() : 0.0);
}

bool anytime_stop(const std::vector<StopTarget>& targets, const std::vector<PassTarget>& passes,
                  double alpha, std::size_t peek) {
  const std::size_t m = targets.size() + passes.size();
  if (m == 0) return false;
  for (const StopTarget& t : targets) {
    // With < 2 samples the t interval is degenerate (half-width 0); never
    // let that count as "converged".
    if (t.acc == nullptr || t.acc->count() < 2) return false;
    const auto ci = metrics::anytime_interval(*t.acc, alpha, peek, m);
    const double target = t.eps_abs();
    if (target <= 0.0 || ci.half_width > target) return false;
  }
  for (const PassTarget& p : passes) {
    if (p.trials == 0) return false;
    // A single observed failure can never be argued away by more samples
    // at thresholds this close to 1; only an all-pass record stops early.
    const double delta =
        std::clamp(metrics::alpha_spend(alpha, peek) / static_cast<double>(m), 1.0e-12, 0.5);
    if (metrics::pass_rate_lower_bound(p.passes, p.trials, delta) < p.threshold) return false;
  }
  return true;
}

std::size_t plan_next_batch(const std::vector<StopTarget>& targets,
                            const std::vector<PassTarget>& passes, double alpha, std::size_t peek,
                            std::size_t done, std::size_t planned, std::size_t min_batch) {
  if (done >= planned) return 0;
  min_batch = std::max<std::size_t>(min_batch, 1);
  const std::size_t remaining = planned - done;
  const std::size_t m = std::max<std::size_t>(targets.size() + passes.size(), 1);
  const double delta =
      std::clamp(metrics::alpha_spend(alpha, peek) / static_cast<double>(m), 1.0e-12, 0.5);

  // Hoeffding estimate of the total n each target still needs, using the
  // observed range as the (data-driven) range proxy.
  std::size_t want_total = 0;
  for (const StopTarget& t : targets) {
    if (t.acc == nullptr) continue;
    const double target = t.eps_abs();
    if (target <= 0.0) {
      want_total = planned;  // degenerate target: plan for the cap
      continue;
    }
    double range = t.acc->count() >= 2 ? t.acc->max() - t.acc->min() : 0.0;
    if (!(range > 0.0)) range = 1.0;
    want_total = std::max(want_total, metrics::hoeffding_plan(range, target, delta));
  }
  for (const PassTarget& p : passes) {
    // n with an all-pass record needed before the Hoeffding LCB clears the
    // threshold: n >= ln(1/delta) / (2 (1 - threshold)^2).
    const double gap = 1.0 - std::min(p.threshold, 1.0 - 1e-9);
    const double n = std::log(1.0 / delta) / (2.0 * gap * gap);
    want_total = std::max(
        want_total, static_cast<std::size_t>(std::ceil(std::min(n, 1.0e18))));
  }
  const std::size_t want = want_total > done ? want_total - done : min_batch;

  // Geometric growth cap keeps the alpha-spending schedule peeking often
  // enough to actually stop early.
  const std::size_t grow = std::max(min_batch, done);
  return std::min(remaining, std::min(grow, std::max(want, min_batch)));
}

AdaptiveRunner::AdaptiveRunner(AdaptiveConfig cfg, std::vector<MetricSpec> specs)
    : cfg_(std::move(cfg)), specs_(std::move(specs)) {}

AdaptiveCellResult AdaptiveRunner::run_cell(
    const std::string& cell_key, std::uint64_t fingerprint, std::size_t planned,
    const std::function<std::vector<double>(std::size_t)>& replicate,
    parallel::ThreadPool* pool) {
  const std::size_t nspec = specs_.size();

  // Fold the metric set and the cap into the fingerprint: changing either
  // invalidates stored cell state just like a config change would.
  std::uint64_t fp = fingerprint;
  for (const MetricSpec& s : specs_) {
    fp = fnv1a_bytes(fp, s.name);
    fp = fnv1a_mix(fp, static_cast<std::uint64_t>(s.kind));
  }
  fp = fnv1a_mix(fp, static_cast<std::uint64_t>(planned));

  AdaptiveCellResult out;
  out.metrics.resize(nspec);
  out.sums.assign(nspec, 0.0);
  out.outcome.replicates_planned = planned;
  std::vector<std::uint64_t> pass_counts(nspec, 0);
  std::uint64_t sample_digest = fnv1a_init();
  std::size_t done = 0;
  std::size_t peeks = 0;
  bool stopped = false;

  const bool use_ckpt = !cfg_.checkpoint.empty();
  const std::filesystem::path ckpt_path = cfg_.checkpoint;
  const std::string prefix = "c." + sanitize_key(cell_key) + ".";
  Checkpoint ckpt;

  auto store_state = [&](bool complete) {
    ckpt.set(prefix + "fp", encode_u64(fp));
    ckpt.set(prefix + "planned", encode_u64(planned));
    ckpt.set(prefix + "done", encode_u64(done));
    ckpt.set(prefix + "peeks", encode_u64(peeks));
    ckpt.set(prefix + "stopped", stopped ? "1" : "0");
    ckpt.set(prefix + "complete", complete ? "1" : "0");
    ckpt.set(prefix + "bitmap", bitmap_for(done));
    ckpt.set(prefix + "samples", encode_u64(sample_digest));
    for (std::size_t i = 0; i < nspec; ++i) {
      const auto raw = out.metrics[i].raw();
      std::ostringstream acc;
      acc << encode_u64(raw.n) << " " << encode_u64(raw.mean_bits) << " "
          << encode_u64(raw.m2_bits) << " " << encode_u64(raw.min_bits) << " "
          << encode_u64(raw.max_bits);
      ckpt.set(prefix + "m" + std::to_string(i), acc.str());
      ckpt.set(prefix + "s" + std::to_string(i), encode_double(out.sums[i]));
      ckpt.set(prefix + "p" + std::to_string(i), encode_u64(pass_counts[i]));
    }
  };

  auto restore_state = [&]() -> bool {  // true = complete, replay stored result
    const std::string* stored_fp = ckpt.find(prefix + "fp");
    const std::string* stored_planned = ckpt.find(prefix + "planned");
    if (stored_fp == nullptr || decode_u64(*stored_fp) != fp || stored_planned == nullptr ||
        decode_u64(*stored_planned) != planned) {
      ckpt.erase_prefix(prefix);  // config changed: this cell restarts
      return false;
    }
    const std::string* d = ckpt.find(prefix + "done");
    const std::string* k = ckpt.find(prefix + "peeks");
    const std::string* st = ckpt.find(prefix + "stopped");
    const std::string* co = ckpt.find(prefix + "complete");
    const std::string* bm = ckpt.find(prefix + "bitmap");
    const std::string* sd = ckpt.find(prefix + "samples");
    if (d == nullptr || k == nullptr || st == nullptr || co == nullptr || bm == nullptr ||
        sd == nullptr) {
      ckpt.erase_prefix(prefix);
      return false;
    }
    const auto done_v = decode_u64(*d);
    const auto peeks_v = decode_u64(*k);
    const auto digest_v = decode_u64(*sd);
    if (!done_v || !peeks_v || !digest_v || *done_v > planned || *bm != bitmap_for(*done_v)) {
      ckpt.erase_prefix(prefix);
      return false;
    }
    std::vector<metrics::Accumulator> accs(nspec);
    std::vector<double> sums(nspec, 0.0);
    std::vector<std::uint64_t> pcs(nspec, 0);
    for (std::size_t i = 0; i < nspec; ++i) {
      const std::string* acc = ckpt.find(prefix + "m" + std::to_string(i));
      const std::string* sum = ckpt.find(prefix + "s" + std::to_string(i));
      const std::string* pc = ckpt.find(prefix + "p" + std::to_string(i));
      if (acc == nullptr || sum == nullptr || pc == nullptr) {
        ckpt.erase_prefix(prefix);
        return false;
      }
      std::istringstream fields(*acc);
      std::string n, mean, m2, mn, mx;
      fields >> n >> mean >> m2 >> mn >> mx;
      const auto nv = decode_u64(n);
      const auto meanv = decode_u64(mean);
      const auto m2v = decode_u64(m2);
      const auto mnv = decode_u64(mn);
      const auto mxv = decode_u64(mx);
      const auto sumv = decode_double(*sum);
      const auto pcv = decode_u64(*pc);
      if (!nv || !meanv || !m2v || !mnv || !mxv || !sumv || !pcv) {
        ckpt.erase_prefix(prefix);
        return false;
      }
      accs[i] = metrics::Accumulator::from_raw({*nv, *meanv, *m2v, *mnv, *mxv});
      sums[i] = *sumv;
      pcs[i] = *pcv;
    }
    out.metrics = std::move(accs);
    out.sums = std::move(sums);
    pass_counts = std::move(pcs);
    done = *done_v;
    peeks = *peeks_v;
    sample_digest = *digest_v;
    stopped = (*st == "1");
    out.outcome.resumed = done > 0 || *co == "1";
    return *co == "1";
  };

  if (use_ckpt) {
    if (auto loaded = Checkpoint::load(ckpt_path)) ckpt = std::move(*loaded);
    if (restore_state()) {
      out.outcome.replicates_used = done;
      out.outcome.batches = peeks;
      out.outcome.stopped_early = stopped && done < planned;
      out.outcome.complete = true;
      return out;
    }
  }

  auto build_targets = [&](std::vector<StopTarget>& targets, std::vector<PassTarget>& passes) {
    targets.clear();
    passes.clear();
    for (std::size_t i = 0; i < nspec; ++i) {
      const MetricSpec& s = specs_[i];
      const double eps = s.eps > 0.0 ? s.eps : cfg_.eps;
      if (s.kind == MetricSpec::Kind::kMean) {
        targets.push_back({&out.metrics[i], eps, s.relative});
      } else if (s.kind == MetricSpec::Kind::kPassRate) {
        passes.push_back({pass_counts[i], done, s.threshold});
      }
    }
  };

  std::vector<StopTarget> targets;
  std::vector<PassTarget> passes;
  while (done < planned && !stopped) {
    std::size_t batch;
    if (!cfg_.adaptive && !use_ckpt) {
      batch = planned - done;  // fixed-count fast path: one batch, zero overhead
    } else if (!cfg_.adaptive) {
      // Checkpointing without adaptivity: doubling batches bound the work a
      // crash can lose while leaving aggregates identical (fold order is
      // still replicate-index ascending).
      batch = std::min(planned - done, std::max(cfg_.min_batch, done));
      batch = std::max<std::size_t>(batch, 1);
    } else {
      build_targets(targets, passes);
      batch = plan_next_batch(targets, passes, cfg_.alpha, peeks + 1, done, planned,
                              cfg_.min_batch);
      batch = std::max<std::size_t>(batch, 1);
    }

    std::vector<std::vector<double>> samples(batch);
    if (pool != nullptr) {
      parallel::parallel_for(*pool, 0, batch,
                             [&](std::size_t b) { samples[b] = replicate(done + b); });
    } else {
      for (std::size_t b = 0; b < batch; ++b) samples[b] = replicate(done + b);
    }

    // Fold strictly in replicate-index order: results are independent of
    // batching, pool size, and whether the run was ever interrupted.
    for (std::size_t b = 0; b < batch; ++b) {
      const std::vector<double>& row = samples[b];
      for (std::size_t i = 0; i < nspec && i < row.size(); ++i) {
        out.metrics[i].add(row[i]);
        if (specs_[i].kind == MetricSpec::Kind::kSum) out.sums[i] += row[i];
        if (specs_[i].kind == MetricSpec::Kind::kPassRate && row[i] > 0.5) ++pass_counts[i];
        sample_digest = fnv1a_double(sample_digest, row[i]);
      }
    }
    done += batch;
    ++peeks;

    if (cfg_.adaptive && done < planned) {
      build_targets(targets, passes);
      stopped = anytime_stop(targets, passes, cfg_.alpha, peeks);
    }

    if (use_ckpt) {
      const bool complete = stopped || done >= planned;
      store_state(complete);
      (void)ckpt.save(ckpt_path);
      ++saves_this_run_;
      if (cfg_.kill_after_batches != 0 && saves_this_run_ >= cfg_.kill_after_batches) {
        // Crash injection for the kill-and-resume gates: die with no
        // unwinding, no flushing, right after the checkpoint rename — the
        // closest portable stand-in for SIGKILL at the worst moment.
        std::_Exit(9);
      }
    }
  }

  out.outcome.replicates_used = done;
  out.outcome.batches = peeks;
  out.outcome.stopped_early = stopped && done < planned;
  out.outcome.complete = true;
  return out;
}

}  // namespace p2panon::harness
