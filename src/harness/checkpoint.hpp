// Crash-tolerant artifact plane for the replication harness.
//
// Two layers:
//
//  1. atomic_write_file — the single sanctioned way to put a results
//     artifact (BENCH_*.json, CSV tables, checkpoints) on disk. Bytes land
//     in a sibling temp file first and are moved over the destination with
//     one atomic rename, so a crash at any instant leaves either the old
//     complete file or the new complete file — never a truncated artifact.
//     (Invariant-linter rule R7 flags direct ofstream writes that bypass it.)
//
//  2. Checkpoint — a versioned, integrity-digested key/value codec for sweep
//     state. Doubles are encoded as IEEE-754 bit patterns (encode_double /
//     decode_double), so a state save/load round-trip is bit-exact: a sweep
//     resumed from its checkpoint produces numerically identical final
//     aggregates to an uninterrupted run (asserted by the kill-and-resume
//     gates; see DESIGN.md §3.12).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace p2panon::harness {

/// Atomically replace `path` with `payload` (write temp + rename).
/// Returns false (with the partial temp file removed) on any I/O error.
[[nodiscard]] bool atomic_write_file(const std::filesystem::path& path,
                                     std::string_view payload);

// --- FNV-1a, the repo's standard cheap digest (cf. the sharded scenario's
// model digest): used for checkpoint integrity and config fingerprints.

[[nodiscard]] constexpr std::uint64_t fnv1a_init() noexcept {
  return 1469598103934665603ULL;
}
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= 1099511628211ULL;
  }
  return h;
}
[[nodiscard]] std::uint64_t fnv1a_bytes(std::uint64_t h, std::string_view bytes) noexcept;
/// Mix a double by bit pattern (distinguishes +0.0 / -0.0; total on NaNs).
[[nodiscard]] std::uint64_t fnv1a_double(std::uint64_t h, double x) noexcept;

// --- Bit-exact double <-> text -------------------------------------------

/// IEEE-754 bit pattern as lowercase hex; round-trips every value
/// (including -0.0, infinities and NaN payloads) exactly.
[[nodiscard]] std::string encode_double(double x);
[[nodiscard]] std::optional<double> decode_double(std::string_view s) noexcept;
[[nodiscard]] std::string encode_u64(std::uint64_t v);
[[nodiscard]] std::optional<std::uint64_t> decode_u64(std::string_view s) noexcept;

/// Checkpoint file: ordered (key, value) records under a versioned header,
/// closed by a whole-file FNV-1a digest line. `load` refuses a file whose
/// header, shape, or digest does not check out (a torn or tampered file
/// behaves exactly like no checkpoint: the sweep restarts from scratch).
///
/// Keys are whitespace-free tokens ('.'-namespaced by convention); values
/// are single-line strings. `save` goes through atomic_write_file.
class Checkpoint {
 public:
  static constexpr std::string_view kHeader = "p2panon-checkpoint v1";

  /// Replace the first record with this key, or append a new one.
  void set(std::string key, std::string value);
  /// First value stored under `key`, or nullptr.
  [[nodiscard]] const std::string* find(std::string_view key) const noexcept;
  /// Drop every record whose key starts with `prefix`.
  void erase_prefix(std::string_view prefix);
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  [[nodiscard]] bool save(const std::filesystem::path& path) const;
  [[nodiscard]] static std::optional<Checkpoint> load(const std::filesystem::path& path);

 private:
  std::vector<std::pair<std::string, std::string>> records_;
};

}  // namespace p2panon::harness
