#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace p2panon::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stopping_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  assert(task);
  {
    std::lock_guard lk(mu_);
    assert(!stopping_ && "submit after destruction began");
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with a drained queue: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      // A throwing task must not escape the worker (std::terminate); park
      // the first exception for wait_idle() to rethrow on the caller.
      std::lock_guard lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace p2panon::parallel
