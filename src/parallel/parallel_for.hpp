// Parallel iteration and deterministic Monte-Carlo replication helpers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <mutex>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace p2panon::parallel {

/// Invoke body(i) for i in [begin, end) across the pool, blocking until all
/// iterations finish. Exceptions thrown by any iteration are rethrown (first
/// one wins) after all iterations complete.
///
/// Iterations must be independent; there is no ordering guarantee.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Static block partitioning: replicate workloads are near-uniform, and
  // static blocks keep per-task overhead negligible.
  const std::size_t blocks = std::min(n, pool.thread_count() * 4);
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::mutex err_mu;
  std::exception_ptr first_error;

  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body, &err_mu, &first_error] {
      try {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

/// Run `count` independent replicates, each producing a Result, in parallel.
/// Results are returned indexed by replicate id, so aggregation order is
/// deterministic regardless of thread count or scheduling.
template <typename Result, typename Fn>
std::vector<Result> run_replicates(ThreadPool& pool, std::size_t count, Fn&& fn) {
  std::vector<Result> results(count);
  parallel_for(pool, 0, count, [&](std::size_t r) { results[r] = fn(r); });
  return results;
}

}  // namespace p2panon::parallel
