// Fixed-size thread pool.
//
// The simulator itself is single-threaded; parallelism in this project is
// across *independent Monte-Carlo replicates* (one Simulator instance per
// seed). The pool therefore favours simplicity and predictability over
// work-stealing sophistication: a single mutex-protected FIFO queue is
// entirely adequate when each task is a multi-millisecond simulation run.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace p2panon::parallel {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueue a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished executing.
  ///
  /// Exception safety: a task that throws does NOT take the worker thread
  /// down (which would std::terminate the process). The first exception is
  /// captured and rethrown here once the pool drains; later exceptions from
  /// the same batch are dropped, matching parallel_for's first-error-wins
  /// contract. The captured slot is cleared on rethrow, so the pool remains
  /// usable for subsequent batches.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;   // workers wait for tasks
  std::condition_variable cv_idle_;   // wait_idle waits for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;  // first task exception, guarded by mu_
};

}  // namespace p2panon::parallel
