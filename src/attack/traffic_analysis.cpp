#include "attack/traffic_analysis.hpp"

#include <algorithm>

namespace p2panon::attack {

void TrafficAnalysis::observe_path(net::PairId pair, std::span<const net::NodeId> path) {
  ++paths_;
  if (path.size() < 3) return;  // no forwarders: nothing to compromise

  const bool first_bad = compromised(path[1]);
  const bool last_bad = compromised(path[path.size() - 2]);
  if (first_bad) ++first_;
  if (last_bad) ++last_;
  if (first_bad && last_bad) ++both_;

  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (compromised(path[i])) {
      ++linked_observations_[pair];
      break;  // one linkage per connection
    }
  }
}

double TrafficAnalysis::uniform_baseline() const noexcept {
  std::size_t c = 0;
  for (bool b : compromised_) c += b ? 1 : 0;
  if (compromised_.empty()) return 0.0;
  const double frac = static_cast<double>(c) / static_cast<double>(compromised_.size());
  return frac * frac;
}

std::size_t TrafficAnalysis::largest_linked_profile() const {
  std::size_t best = 0;
  for (const auto& [pair, count] : linked_observations_) {
    (void)pair;
    best = std::max(best, count);
  }
  return best;
}

}  // namespace p2panon::attack
