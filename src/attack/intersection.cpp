#include "attack/intersection.hpp"

#include <algorithm>
#include <cmath>

namespace p2panon::attack {

OnlineSetIntersection::OnlineSetIntersection(std::size_t candidate_count)
    : candidate_(candidate_count, true), remaining_(candidate_count) {}

std::size_t OnlineSetIntersection::observe(std::span<const net::NodeId> online_nodes) {
  ++observations_;
  std::vector<bool> online(candidate_.size(), false);
  for (net::NodeId id : online_nodes) {
    if (id < online.size()) online[id] = true;
  }
  std::size_t eliminated = 0;
  for (std::size_t id = 0; id < candidate_.size(); ++id) {
    if (candidate_[id] && !online[id]) {
      candidate_[id] = false;
      --remaining_;
      ++eliminated;
    }
  }
  return eliminated;
}

bool OnlineSetIntersection::identified(net::NodeId target) const {
  return remaining_ == 1 && candidate_.at(target);
}

double OnlineSetIntersection::entropy_bits() const noexcept {
  return remaining_ > 0 ? std::log2(static_cast<double>(remaining_)) : 0.0;
}

net::NodeId PredecessorAttack::top_candidate() const noexcept {
  if (observations_ == 0) return net::kInvalidNode;
  net::NodeId best = net::kInvalidNode;
  std::uint64_t best_count = 0;
  for (net::NodeId id = 0; id < counts_.size(); ++id) {
    if (counts_[id] > best_count) {
      best_count = counts_[id];
      best = id;
    }
  }
  return best;
}

double PredecessorAttack::top_candidate_share() const noexcept {
  if (observations_ == 0) return 0.0;
  std::uint64_t best = 0;
  for (std::uint64_t c : counts_) best = std::max(best, c);
  return static_cast<double>(best) / static_cast<double>(observations_);
}

double PredecessorAttack::degree_of_anonymity() const {
  std::vector<double> probs;
  probs.reserve(counts_.size());
  for (std::uint64_t c : counts_) probs.push_back(static_cast<double>(c));
  return metrics::degree_of_anonymity(probs);
}

}  // namespace p2panon::attack
