// End-to-end traffic-analysis attack (paper §5 threat (2)).
//
// Classic timing-correlation model: a connection is fully compromised when
// BOTH its first forwarder (who sees the initiator as predecessor) and its
// last forwarder (who sees the responder as successor) are adversarial —
// the two observation points suffice to correlate the flow end to end. For
// c compromised nodes out of n, the per-path compromise probability under
// uniform selection is approximately (c/n)^2; incentive routing changes it
// by skewing who gets selected.
//
// The analyzer also keeps the Crowds-style first-hop statistic used by the
// predecessor attack (attack/intersection.hpp) and per-connection linkage
// via the connection-set id — the paper's §5 threat (3): a malicious
// forwarder can use the cid in its history to link the connections of one
// recurring set it serves.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ids.hpp"

namespace p2panon::attack {

class TrafficAnalysis {
 public:
  /// `is_compromised[id]` marks adversarial nodes.
  explicit TrafficAnalysis(std::vector<bool> is_compromised)
      : compromised_(std::move(is_compromised)) {}

  /// Observe one completed path (full node sequence initiator..responder)
  /// belonging to connection-set `pair`.
  void observe_path(net::PairId pair, std::span<const net::NodeId> path);

  [[nodiscard]] std::uint64_t paths_observed() const noexcept { return paths_; }

  /// Connections whose first forwarder was compromised (initiator exposure
  /// opportunities — the predecessor-attack feed).
  [[nodiscard]] std::uint64_t first_hop_compromised() const noexcept { return first_; }

  /// Connections whose last forwarder was compromised (responder linkage).
  [[nodiscard]] std::uint64_t last_hop_compromised() const noexcept { return last_; }

  /// Connections with both ends compromised: fully correlated end-to-end.
  [[nodiscard]] std::uint64_t end_to_end_compromised() const noexcept { return both_; }

  [[nodiscard]] double end_to_end_rate() const noexcept {
    return paths_ > 0 ? static_cast<double>(both_) / static_cast<double>(paths_) : 0.0;
  }

  /// Analytic uniform-selection baseline (c/n)^2 for comparison.
  [[nodiscard]] double uniform_baseline() const noexcept;

  /// §5 threat (3): number of (pair, connection) observations a malicious
  /// coalition can LINK into per-pair profiles via the cid its members saw.
  /// Returns the size of the largest linked profile.
  [[nodiscard]] std::size_t largest_linked_profile() const;

  /// Pairs for which at least one connection passed a compromised node.
  [[nodiscard]] std::size_t pairs_touched() const noexcept {
    return linked_observations_.size();
  }

 private:
  [[nodiscard]] bool compromised(net::NodeId id) const {
    return id < compromised_.size() && compromised_[id];
  }

  std::vector<bool> compromised_;
  std::uint64_t paths_ = 0;
  std::uint64_t first_ = 0;
  std::uint64_t last_ = 0;
  std::uint64_t both_ = 0;
  /// pair -> count of connections observed by >= 1 compromised forwarder.
  std::unordered_map<net::PairId, std::size_t> linked_observations_;
};

}  // namespace p2panon::attack
