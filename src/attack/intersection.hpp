// Passive-logging attacks on initiator anonymity (paper §1, §2.1; Wright et
// al.). These are the attacks the incentive mechanism is designed to blunt:
// fewer path reformations and a smaller, stabler forwarder set give the
// attacker fewer useful observations.
//
// Two attacker models:
//
//  * OnlineSetIntersection — a passive observer who, at every path
//    (re)formation for a target recurring connection, snapshots the set of
//    online nodes. The initiator must be online whenever a connection runs,
//    so intersecting the snapshots monotonically shrinks the candidate set.
//
//  * PredecessorAttack — compromised forwarders log their predecessor every
//    time they occupy the first-hop position of the target connection. Over
//    many reformations the true initiator is logged most often (it precedes
//    the first hop on *every* path), while other nodes only appear when they
//    happen to be forwarders.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "metrics/anonymity.hpp"
#include "net/ids.hpp"

namespace p2panon::attack {

class OnlineSetIntersection {
 public:
  /// All `candidate_count` node ids start as initiator candidates.
  explicit OnlineSetIntersection(std::size_t candidate_count);

  /// Observe the online-node set at a (re)formation instant. Candidates not
  /// present are eliminated. Returns the number eliminated by this
  /// observation.
  std::size_t observe(std::span<const net::NodeId> online_nodes);

  [[nodiscard]] std::size_t candidate_count() const noexcept { return remaining_; }
  [[nodiscard]] bool is_candidate(net::NodeId id) const { return candidate_.at(id); }

  /// The attack succeeded iff the candidate set collapsed to exactly the
  /// target.
  [[nodiscard]] bool identified(net::NodeId target) const;

  /// Anonymity remaining: log2(candidate set size) bits (uniform attacker
  /// belief over the candidates).
  [[nodiscard]] double entropy_bits() const noexcept;

  [[nodiscard]] std::size_t observations() const noexcept { return observations_; }

 private:
  std::vector<bool> candidate_;
  std::size_t remaining_;
  std::size_t observations_ = 0;
};

class PredecessorAttack {
 public:
  explicit PredecessorAttack(std::size_t node_count) : counts_(node_count, 0) {}

  /// A compromised first-hop forwarder logs its predecessor.
  void log_predecessor(net::NodeId predecessor) {
    ++counts_.at(predecessor);
    ++observations_;
  }

  [[nodiscard]] std::size_t observations() const noexcept { return observations_; }
  [[nodiscard]] std::uint64_t count(net::NodeId id) const { return counts_.at(id); }

  /// Current best guess: the most-logged predecessor (lowest id wins ties);
  /// kInvalidNode before any observation.
  [[nodiscard]] net::NodeId top_candidate() const noexcept;

  /// Attacker confidence: empirical probability mass of the top candidate.
  [[nodiscard]] double top_candidate_share() const noexcept;

  /// Degree of anonymity of the attacker's empirical distribution
  /// (Diaz et al.: H / H_max); 1 = fully anonymous, 0 = identified.
  [[nodiscard]] double degree_of_anonymity() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::size_t observations_ = 0;
};

}  // namespace p2panon::attack
