// The transport plane: one message contract, two carriers.
//
// Everything above this layer (path setup, data keepalives, claims,
// settlement) speaks wire::WireMessage. Below it sit two backends:
//
//   * SimTransport (sim_transport.hpp) — routes messages through the
//     discrete-event engine, reproducing the legacy direct delivery
//     *bitwise*: same RNG draw order, same schedule order, same event
//     capture sizes. Every frame round-trips through the wire codec as a
//     self-check, so the in-sim protocol and the on-the-wire format cannot
//     drift apart.
//
//   * TcpTransport (tcp_transport.hpp) — carries the same frames between
//     real processes over loopback TCP: length-prefixed versioned framing,
//     capped jittered exponential reconnect backoff, per-request read
//     deadlines, heartbeat-based dead-peer detection, graceful Bye on clean
//     shutdown (a crash is silence — exactly the announced/unannounced
//     liveness split the decision layer models).
//
// Both report through the same counter block so ScenarioResult can surface
// transport behaviour uniformly.
#pragma once

#include <cstdint>

namespace p2panon::transport {

/// Frame- and liveness-level counters, shared by both backends. Sim runs
/// leave the TCP-only rows (reconnects, backoff, heartbeats, deadlines) at
/// zero; they exist so the reporting plumbing upstream is identical.
struct TransportCounters {
  std::uint64_t frames_sent = 0;       ///< send() calls (before drop decision)
  std::uint64_t frames_delivered = 0;  ///< handed to the link (sent minus dropped)
  std::uint64_t frames_dropped = 0;    ///< fault-injector drops (sim) / send failures (tcp)
  std::uint64_t frames_rejected = 0;   ///< inbound frames the codec refused
  std::uint64_t bytes_sent = 0;        ///< encoded frame bytes
  std::uint64_t reconnects = 0;        ///< successful re-dials after a lost connection
  std::uint64_t backoff_retries = 0;   ///< dial attempts that waited a backoff first
  std::uint64_t heartbeat_timeouts = 0;  ///< peers declared dead by heartbeat silence
  std::uint64_t deadline_expiries = 0;   ///< requests abandoned at the read deadline

  friend bool operator==(const TransportCounters&, const TransportCounters&) = default;
};

}  // namespace p2panon::transport
