#include "transport/wire_codec.hpp"

#include <array>
#include <cstring>

#include "transport/crc32.hpp"

namespace p2panon::transport {

namespace {

using namespace wire;

// --- Little-endian primitive writers/readers -------------------------------

class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put(v); }
  void u32(std::uint32_t v) { put(v); }
  void u64(std::uint64_t v) { put(v); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v)); }

  void node_list(const std::vector<net::NodeId>& nodes) {
    u32(static_cast<std::uint32_t>(nodes.size()));
    for (const net::NodeId n : nodes) u32(n);
  }

  void receipt(const payment::ForwardReceipt& r) {
    // The canonical enumeration (payment/receipt.hpp) IS the wire layout.
    for (const auto w : payment::receipt_words(r)) u64(w);
    u64(r.mac);
  }

 private:
  template <typename T>
  void put(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }

  std::vector<std::byte>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::byte> data) : data_(data) {}

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] bool exhausted() const noexcept { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(get(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(get(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(get(4)); }
  std::uint64_t u64() { return get(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(get(8)); }

  bool node_list(std::vector<net::NodeId>& nodes) {
    const std::uint32_t count = u32();
    if (!ok_ || count > kMaxWirePath * 4) {  // sanity bound: no giant allocs
      ok_ = false;
      return false;
    }
    if ((data_.size() - pos_) / 4 < count) {  // checked before reserving
      ok_ = false;
      return false;
    }
    nodes.clear();
    nodes.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) nodes.push_back(u32());
    return ok_;
  }

  payment::ForwardReceipt receipt() {
    std::array<payment::crypto::u64, payment::kReceiptWordCount> words{};
    for (auto& w : words) w = u64();
    const payment::crypto::u64 mac = u64();
    return payment::receipt_from_words(words, mac);
  }

 private:
  std::uint64_t get(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Per-type payload layouts ----------------------------------------------

void encode_payload(Writer& w, const LegMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
  w.u32(m.attempt);
  w.u64(m.tid);
  w.u8(m.kind);
  w.u32(m.holder);
  w.u32(m.next);
  w.u32(m.forwarders);
  w.u32(m.index);
}
bool decode_payload(Reader& r, LegMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  m.attempt = r.u32();
  m.tid = r.u64();
  m.kind = r.u8();
  m.holder = r.u32();
  m.next = r.u32();
  m.forwarders = r.u32();
  m.index = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const AckMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
  w.u64(m.tid);
}
bool decode_payload(Reader& r, AckMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  m.tid = r.u64();
  return r.exhausted();
}

void encode_payload(Writer& w, const NackMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
  w.u32(m.attempt);
}
bool decode_payload(Reader& r, NackMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  m.attempt = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const DataMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
  w.u32(m.gen);
  w.u64(m.seq);
  w.u32(m.index);
  w.u8(m.echo);
}
bool decode_payload(Reader& r, DataMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  m.gen = r.u32();
  m.seq = r.u64();
  m.index = r.u32();
  m.echo = r.u8();
  return r.exhausted();
}

void encode_payload(Writer& w, const ClaimMsg& m) {
  w.u32(m.sid);
  w.u32(m.claimant);
  w.receipt(m.receipt);
}
bool decode_payload(Reader& r, ClaimMsg& m) {
  m.sid = r.u32();
  m.claimant = r.u32();
  m.receipt = r.receipt();
  return r.exhausted();
}

void encode_payload(Writer& w, const ClaimReplyMsg& m) { w.u8(m.result); }
bool decode_payload(Reader& r, ClaimReplyMsg& m) {
  m.result = r.u8();
  return r.exhausted();
}

void encode_payload(Writer& w, const CloseMsg& m) { w.u32(m.sid); }
bool decode_payload(Reader& r, CloseMsg& m) {
  m.sid = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const CloseReplyMsg& m) { w.u8(m.ok); }
bool decode_payload(Reader& r, CloseReplyMsg& m) {
  m.ok = r.u8();
  return r.exhausted();
}

void encode_payload(Writer& w, const OpenSettlementMsg& m) {
  w.u32(m.pair);
  w.u32(m.initiator_account);
  w.i64(m.escrow_milli);
  w.i64(m.forwarding_benefit_milli);
  w.i64(m.routing_benefit_milli);
  w.u32(static_cast<std::uint32_t>(m.records.size()));
  for (const WirePathRecord& rec : m.records) {
    w.u32(rec.conn_index);
    w.u32(rec.entry);
    w.u32(rec.exit);
    w.node_list(rec.forwarders);
  }
}
bool decode_payload(Reader& r, OpenSettlementMsg& m) {
  m.pair = r.u32();
  m.initiator_account = r.u32();
  m.escrow_milli = r.i64();
  m.forwarding_benefit_milli = r.i64();
  m.routing_benefit_milli = r.i64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > 4096) return false;
  m.records.clear();
  m.records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WirePathRecord rec;
    rec.conn_index = r.u32();
    rec.entry = r.u32();
    rec.exit = r.u32();
    if (!r.node_list(rec.forwarders)) return false;
    m.records.push_back(std::move(rec));
  }
  return r.exhausted();
}

void encode_payload(Writer& w, const OpenReplyMsg& m) {
  w.u8(m.ok);
  w.u32(m.sid);
}
bool decode_payload(Reader& r, OpenReplyMsg& m) {
  m.ok = r.u8();
  m.sid = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const ContractMsg& m) {
  w.u32(m.sid);
  w.u16(m.bank_port);
  w.receipt(m.receipt);
}
bool decode_payload(Reader& r, ContractMsg& m) {
  m.sid = r.u32();
  m.bank_port = r.u16();
  m.receipt = r.receipt();
  return r.exhausted();
}

void encode_payload(Writer& w, const ContractAckMsg& m) { w.u32(m.sid); }
bool decode_payload(Reader& r, ContractAckMsg& m) {
  m.sid = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const HelloMsg& m) { w.u32(m.node); }
bool decode_payload(Reader& r, HelloMsg& m) {
  m.node = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const HelloReplyMsg& m) {
  w.u32(m.account);
  w.u64(m.mac_key);
  w.i64(m.balance_milli);
}
bool decode_payload(Reader& r, HelloReplyMsg& m) {
  m.account = r.u32();
  m.mac_key = r.u64();
  m.balance_milli = r.i64();
  return r.exhausted();
}

void encode_payload(Writer& w, const SetupMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
  w.u32(m.hop);
  w.node_list(m.path);
}
bool decode_payload(Reader& r, SetupMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  m.hop = r.u32();
  if (!r.node_list(m.path)) return false;
  return r.exhausted() && m.path.size() <= kMaxWirePath;
}

void encode_payload(Writer& w, const SetupAckMsg& m) {
  w.u32(m.pair);
  w.u32(m.conn_index);
}
bool decode_payload(Reader& r, SetupAckMsg& m) {
  m.pair = r.u32();
  m.conn_index = r.u32();
  return r.exhausted();
}

void encode_payload(Writer& w, const HeartbeatMsg& m) { w.u64(m.nonce); }
bool decode_payload(Reader& r, HeartbeatMsg& m) {
  m.nonce = r.u64();
  return r.exhausted();
}

void encode_payload(Writer& w, const HeartbeatAckMsg& m) { w.u64(m.nonce); }
bool decode_payload(Reader& r, HeartbeatAckMsg& m) {
  m.nonce = r.u64();
  return r.exhausted();
}

void encode_payload(Writer& w, const ByeMsg& m) { w.u16(m.port); }
bool decode_payload(Reader& r, ByeMsg& m) {
  m.port = r.u16();
  return r.exhausted();
}

void encode_payload(Writer& w, const SweepMsg& m) { w.u8(m.write_report); }
bool decode_payload(Reader& r, SweepMsg& m) {
  m.write_report = r.u8();
  return r.exhausted();
}

void encode_payload(Writer& w, const SweepReplyMsg& m) { w.u32(m.terminalised); }
bool decode_payload(Reader& r, SweepReplyMsg& m) {
  m.terminalised = r.u32();
  return r.exhausted();
}

template <typename T>
bool parse_into(std::span<const std::byte> payload, WireMessage& out) {
  Reader r(payload);
  T msg;
  if (!decode_payload(r, msg)) return false;
  out = std::move(msg);
  return true;
}

[[nodiscard]] std::uint32_t read_u32(std::span<const std::byte> b, std::size_t at) noexcept {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[at + i]) << (8 * i);
  return v;
}

[[nodiscard]] std::uint16_t read_u16(std::span<const std::byte> b, std::size_t at) noexcept {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(b[at]) |
                                    (static_cast<std::uint16_t>(b[at + 1]) << 8));
}

}  // namespace

const char* to_string(DecodeResult r) noexcept {
  switch (r) {
    case DecodeResult::kOk: return "ok";
    case DecodeResult::kTruncated: return "truncated";
    case DecodeResult::kBadMagic: return "bad-magic";
    case DecodeResult::kOversize: return "oversize";
    case DecodeResult::kFutureVersion: return "future-version";
    case DecodeResult::kBadCrc: return "bad-crc";
    case DecodeResult::kUnknownType: return "unknown-type";
    case DecodeResult::kBadLength: return "bad-length";
  }
  return "?";
}

std::size_t encode(const wire::WireMessage& msg, std::vector<std::byte>& out) {
  const std::size_t start = out.size();
  Writer w(out);
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u16(static_cast<std::uint16_t>(wire::type_of(msg)));
  w.u32(0);  // length backpatched below
  std::visit([&w](const auto& m) { encode_payload(w, m); }, msg);
  const std::size_t payload_len = out.size() - start - kHeaderSize;
  for (std::size_t i = 0; i < 4; ++i) {
    out[start + 8 + i] = static_cast<std::byte>((payload_len >> (8 * i)) & 0xFF);
  }
  const std::uint32_t crc =
      crc32(std::span<const std::byte>(out.data() + start, out.size() - start));
  w.u32(crc);
  return out.size() - start;
}

DecodeResult decode(std::span<const std::byte> buffer, wire::WireMessage& out,
                    std::size_t& consumed, std::size_t max_frame) {
  consumed = 0;
  if (buffer.size() < kHeaderSize) return DecodeResult::kTruncated;
  if (read_u32(buffer, 0) != kWireMagic) return DecodeResult::kBadMagic;
  const std::uint16_t version = read_u16(buffer, 4);
  const std::uint16_t type = read_u16(buffer, 6);
  const std::uint32_t length = read_u32(buffer, 8);
  if (static_cast<std::size_t>(length) + kFrameOverhead > max_frame) {
    return DecodeResult::kOversize;
  }
  const std::size_t frame_size = kHeaderSize + length + 4;
  if (buffer.size() < frame_size) return DecodeResult::kTruncated;
  // Version gates before the CRC: a future version may change the checksum
  // algorithm, but never the header layout (that is the versioning contract),
  // so the frame is skippable whole either way.
  if (version > kWireVersion) {
    consumed = frame_size;
    return DecodeResult::kFutureVersion;
  }
  const std::uint32_t want = read_u32(buffer, kHeaderSize + length);
  const std::uint32_t got = crc32(buffer.subspan(0, kHeaderSize + length));
  if (want != got) {
    consumed = frame_size;
    return DecodeResult::kBadCrc;
  }
  consumed = frame_size;
  const std::span<const std::byte> payload = buffer.subspan(kHeaderSize, length);
  bool parsed = false;
  switch (static_cast<wire::MsgType>(type)) {
    case wire::MsgType::kLeg: parsed = parse_into<LegMsg>(payload, out); break;
    case wire::MsgType::kAck: parsed = parse_into<AckMsg>(payload, out); break;
    case wire::MsgType::kNack: parsed = parse_into<NackMsg>(payload, out); break;
    case wire::MsgType::kData: parsed = parse_into<DataMsg>(payload, out); break;
    case wire::MsgType::kClaim: parsed = parse_into<ClaimMsg>(payload, out); break;
    case wire::MsgType::kClaimReply: parsed = parse_into<ClaimReplyMsg>(payload, out); break;
    case wire::MsgType::kClose: parsed = parse_into<CloseMsg>(payload, out); break;
    case wire::MsgType::kCloseReply: parsed = parse_into<CloseReplyMsg>(payload, out); break;
    case wire::MsgType::kOpenSettlement:
      parsed = parse_into<OpenSettlementMsg>(payload, out);
      break;
    case wire::MsgType::kOpenReply: parsed = parse_into<OpenReplyMsg>(payload, out); break;
    case wire::MsgType::kContract: parsed = parse_into<ContractMsg>(payload, out); break;
    case wire::MsgType::kContractAck: parsed = parse_into<ContractAckMsg>(payload, out); break;
    case wire::MsgType::kHello: parsed = parse_into<HelloMsg>(payload, out); break;
    case wire::MsgType::kHelloReply: parsed = parse_into<HelloReplyMsg>(payload, out); break;
    case wire::MsgType::kSetup: parsed = parse_into<SetupMsg>(payload, out); break;
    case wire::MsgType::kSetupAck: parsed = parse_into<SetupAckMsg>(payload, out); break;
    case wire::MsgType::kHeartbeat: parsed = parse_into<HeartbeatMsg>(payload, out); break;
    case wire::MsgType::kHeartbeatAck:
      parsed = parse_into<HeartbeatAckMsg>(payload, out);
      break;
    case wire::MsgType::kBye: parsed = parse_into<ByeMsg>(payload, out); break;
    case wire::MsgType::kSweep: parsed = parse_into<SweepMsg>(payload, out); break;
    case wire::MsgType::kSweepReply: parsed = parse_into<SweepReplyMsg>(payload, out); break;
    default: return DecodeResult::kUnknownType;
  }
  return parsed ? DecodeResult::kOk : DecodeResult::kBadLength;
}

}  // namespace p2panon::transport
