// TcpTransport: the multi-process backend of the transport plane.
//
// Each node is a real OS process listening on a loopback TCP port; a peer's
// identity IS its port. Frames are the versioned length-prefixed format of
// wire_codec.hpp, and a hostile or corrupted byte stream is classified per
// the codec contract: skippable verdicts (bad CRC, future version, unknown
// type, bad length) are counted and the stream continues; unresynchronisable
// ones (bad magic, oversize) drop the connection. Nothing a peer sends can
// crash the receiver or make it allocate on the reject path.
//
// The loop is single-threaded and poll-based. A blocking request() keeps
// pumping the poll loop while it waits, so a process that is itself waiting
// on a reply still serves inbound requests — the re-entrancy that breaks
// the distributed deadlock of two peers requesting from each other.
//
// Failure handling mirrors the decision layer's announced/unannounced split:
//   * clean shutdown sends ByeMsg (the NACK analog — "gone", not "crashed");
//   * a crash is silence, detected by heartbeat timeout, which reports the
//     peer through the dead-peer callback (the chaos driver feeds this to
//     the same SuspicionTracker the sim uses);
//   * lost connections are re-dialled with capped exponential backoff and
//     multiplicative jitter — the exact ldexp shape of the in-sim setup
//     retries, with the jitter drawn from a seeded sim::rng::Stream so even
//     the real-process backoff schedule is reproducible given the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "sim/rng.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"
#include "transport/wire_codec.hpp"

namespace p2panon::transport {

struct TcpConfig {
  double connect_backoff_base = 0.05;  ///< seconds; attempt n waits ldexp(base, n-1)
  double connect_backoff_cap = 2.0;
  double connect_jitter = 0.5;  ///< multiplicative: delay *= U(1-j, 1+j)
  int connect_max_attempts = 10;
  double read_deadline = 5.0;      ///< seconds a request() may wait for its reply
  double heartbeat_period = 0.5;   ///< seconds between heartbeats to a watched peer
  double heartbeat_timeout = 2.0;  ///< silence that declares a watched peer dead
  std::size_t max_frame = kDefaultMaxFrame;
};

class TcpTransport {
 public:
  /// Request handler: inbound message -> optional reply (sent on the same
  /// connection, preserving FIFO request/reply correlation). May itself
  /// call request() — the pump is re-entrant.
  using Handler = std::function<std::optional<wire::WireMessage>(const wire::WireMessage&)>;

  TcpTransport(TcpConfig cfg, sim::rng::Stream jitter_stream);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// True when this environment permits AF_INET sockets (sandboxes may
  /// refuse socket(2) with EPERM/EACCES); tests skip on false.
  [[nodiscard]] static bool sockets_available() noexcept;

  /// Bind + listen on loopback. port 0 asks the kernel for an ephemeral
  /// port. Returns the bound port, or 0 on failure.
  std::uint16_t listen(std::uint16_t port = 0);
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void set_handler(Handler handler) { handler_ = std::move(handler); }
  /// Called when a watched peer times out its heartbeats (crash detection).
  void set_peer_dead(std::function<void(std::uint16_t)> fn) { peer_dead_ = std::move(fn); }
  /// Called when a peer announces a clean departure (ByeMsg).
  void set_peer_bye(std::function<void(std::uint16_t)> fn) { peer_bye_ = std::move(fn); }

  /// Blocking request/reply. Dials (with backoff) if needed, sends the
  /// frame, pumps until the reply arrives or the read deadline expires
  /// (deadline_expiries++, nullopt). A connection that dies mid-wait also
  /// returns nullopt — the caller owns retry policy, because a blind
  /// retransmit could double-submit a non-idempotent operation.
  std::optional<wire::WireMessage> request(std::uint16_t peer, const wire::WireMessage& msg);

  /// Best-effort one-way send (no reply expected). False if no connection
  /// could be established.
  bool send_oneway(std::uint16_t peer, const wire::WireMessage& msg);

  /// Start/stop heartbeating a peer. Watched peers that go silent past the
  /// heartbeat timeout fire the dead-peer callback once and are unwatched.
  void watch(std::uint16_t peer);
  void unwatch(std::uint16_t peer);

  /// Run the poll loop for up to `max_wait` seconds: accept, read, decode,
  /// dispatch, flush, heartbeat. Returns after one poll round.
  void pump(double max_wait);

  /// Graceful shutdown: Bye to every live connection, flush, close all.
  /// (A crash sends nothing — that is the point of the Bye/silence split.)
  void shutdown();

  [[nodiscard]] const TransportCounters& counters() const noexcept { return counters_; }

 private:
  struct Conn {
    int fd = -1;
    std::uint16_t peer_port = 0;  ///< 0 for inbound connections (unknown)
    bool outbound = false;
    bool draining = false;   ///< drain_inbuf re-entrancy guard (nested pump)
    bool in_flight = false;  ///< a request() awaits its reply on this conn
    std::vector<std::byte> inbuf;
    std::vector<std::byte> outbuf;
    std::deque<wire::WireMessage> replies;  ///< inbound non-liveness frames (outbound conns)
  };

  struct Watch {
    double next_send = 0.0;
    double last_seen = 0.0;
    std::uint64_t nonce = 0;
  };

  [[nodiscard]] static double now_seconds() noexcept;

  Conn* connection(std::uint16_t peer);  ///< existing outbound conn or nullptr
  Conn* dial(std::uint16_t peer);        ///< connect with capped jittered backoff
  /// Single attempt, no backoff. With register_conn false, the connection is
  /// kept out of outbound_fd_ — a private channel for a nested request()
  /// while the cached connection already has a reply in flight.
  Conn* dial_once(std::uint16_t peer, bool register_conn = true);
  void enqueue_frame(Conn& c, const wire::WireMessage& msg);
  void flush(Conn& c);
  void close_conn(int fd);
  void drain_inbuf(Conn& c);
  void dispatch(Conn& c, const wire::WireMessage& msg);
  void heartbeat_tick(double now);

  TcpConfig cfg_;
  sim::rng::Stream jitter_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  Handler handler_;
  std::function<void(std::uint16_t)> peer_dead_;
  std::function<void(std::uint16_t)> peer_bye_;
  std::map<int, Conn> conns_;                  ///< by fd
  std::map<std::uint16_t, int> outbound_fd_;   ///< peer port -> fd
  std::map<std::uint16_t, bool> was_connected_;  ///< peer ever dialled (reconnect counting)
  std::map<std::uint16_t, Watch> watched_;
  /// Reply that arrived in the same read batch as the connection's death
  /// (e.g. reply + Bye from a peer shutting down): parked here by
  /// close_conn so the in-flight request() can still return it.
  std::map<int, wire::WireMessage> orphaned_;
  std::vector<std::byte> scratch_;
  TransportCounters counters_;
  bool shut_down_ = false;
};

}  // namespace p2panon::transport
