// Wire messages of the transport plane.
//
// One message set serves both backends: SimTransport routes these through
// the discrete-event engine (codec-verifying every frame against the wire
// format so the two backends cannot drift), and TcpTransport carries them
// between real processes as length-prefixed frames (wire_codec.hpp). The
// set covers the protocol's four planes:
//
//   * contract/setup — LegMsg/AckMsg/NackMsg (the in-sim hop legs of
//     AsyncConnectionRunner) and SetupMsg/SetupAckMsg (the multi-process
//     hop-by-hop path formation of examples/transport_chaos);
//   * data — DataMsg keepalives, forward and echo;
//   * claim/settlement — OpenSettlementMsg/ContractMsg/ClaimMsg/CloseMsg
//     and their replies, reusing payment::ForwardReceipt verbatim so the
//     claim a forwarder redeems is byte-for-byte the receipt the codec
//     framed (single serialization site, see receipt_words());
//   * liveness — HeartbeatMsg/HeartbeatAckMsg for dead-peer detection and
//     ByeMsg for graceful shutdown (the NACK analog: a peer that says Bye
//     is *gone*, not crashed — suspicion learns nothing from it).
//
// Every struct is equality-comparable so the codec round-trip tests (and
// SimTransport's per-send self-check) can assert bit-exactness.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/ids.hpp"
#include "payment/money.hpp"
#include "payment/receipt.hpp"

namespace p2panon::transport::wire {

/// Longest node path a fixed-size wire message carries (initiator,
/// forwarders, responder). The paper's TTL caps forwarders at ttl_hops
/// (default 4); 16 leaves generous headroom without unbounded frames.
inline constexpr std::size_t kMaxWirePath = 16;

enum class MsgType : std::uint16_t {
  kLeg = 1,
  kAck = 2,
  kNack = 3,
  kData = 4,
  kClaim = 5,
  kClose = 6,
  kHello = 7,
  kHelloReply = 8,
  kSetup = 9,
  kSetupAck = 10,
  kContract = 11,
  kContractAck = 12,
  kOpenSettlement = 13,
  kOpenReply = 14,
  kClaimReply = 15,
  kCloseReply = 16,
  kHeartbeat = 17,
  kHeartbeatAck = 18,
  kBye = 19,
  kSweep = 20,
  kSweepReply = 21,
};

// --- Contract/setup plane (sim legs) ---------------------------------------

/// One hop of the in-sim setup protocol: the payload of a setup leg moving
/// forward, reaching the responder, or the confirmation retracing a hop.
struct LegMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  std::uint32_t attempt = 0;
  std::uint64_t tid = 0;  ///< leg identity (stale acks/timeouts compare it)
  std::uint8_t kind = 0;  ///< AsyncConnectionRunner::LegDelivery::Kind
  net::NodeId holder = net::kInvalidNode;
  net::NodeId next = net::kInvalidNode;
  std::uint32_t forwarders = 0;
  std::uint32_t index = 0;

  friend bool operator==(const LegMsg&, const LegMsg&) = default;
};

struct AckMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  std::uint64_t tid = 0;

  friend bool operator==(const AckMsg&, const AckMsg&) = default;
};

struct NackMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  std::uint32_t attempt = 0;

  friend bool operator==(const NackMsg&, const NackMsg&) = default;
};

// --- Data plane ------------------------------------------------------------

/// One keepalive hop: generation + sequence identify the probe, `index` is
/// its position on the path, `echo` marks the return direction.
struct DataMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  std::uint32_t gen = 0;
  std::uint64_t seq = 0;
  std::uint32_t index = 0;
  std::uint8_t echo = 0;

  friend bool operator==(const DataMsg&, const DataMsg&) = default;
};

// --- Claim/settlement plane ------------------------------------------------

/// A forwarder redeems one receipt against an open settlement.
struct ClaimMsg {
  std::uint32_t sid = 0;  ///< payment::SettlementId
  std::uint32_t claimant = 0;  ///< payment::AccountId
  payment::ForwardReceipt receipt;

  friend bool operator==(const ClaimMsg&, const ClaimMsg&) = default;
};

struct ClaimReplyMsg {
  std::uint8_t result = 0;  ///< payment::ClaimResult

  friend bool operator==(const ClaimReplyMsg&, const ClaimReplyMsg&) = default;
};

struct CloseMsg {
  std::uint32_t sid = 0;

  friend bool operator==(const CloseMsg&, const CloseMsg&) = default;
};

struct CloseReplyMsg {
  std::uint8_t ok = 0;

  friend bool operator==(const CloseReplyMsg&, const CloseReplyMsg&) = default;
};

/// One validated path record inside OpenSettlementMsg — the wire image of
/// payment::PathRecord.
struct WirePathRecord {
  std::uint32_t conn_index = 0;
  net::NodeId entry = net::kInvalidNode;
  net::NodeId exit = net::kInvalidNode;
  std::vector<net::NodeId> forwarders;

  friend bool operator==(const WirePathRecord&, const WirePathRecord&) = default;
};

/// Initiator -> bank: fund an escrow and open the settlement with the
/// completed-connection records.
struct OpenSettlementMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t initiator_account = 0;
  payment::Amount escrow_milli = 0;
  payment::Amount forwarding_benefit_milli = 0;  ///< P_f
  payment::Amount routing_benefit_milli = 0;     ///< P_r
  std::vector<WirePathRecord> records;

  friend bool operator==(const OpenSettlementMsg&, const OpenSettlementMsg&) = default;
};

struct OpenReplyMsg {
  std::uint8_t ok = 0;
  std::uint32_t sid = 0;

  friend bool operator==(const OpenReplyMsg&, const OpenReplyMsg&) = default;
};

/// Initiator -> forwarder: your receipt for this settlement (the reverse of
/// the paper's receipt chain — here the initiator distributes the MAC'd
/// statements it validated, and the forwarder claims directly at the bank).
struct ContractMsg {
  std::uint32_t sid = 0;
  std::uint16_t bank_port = 0;  ///< where to claim (loopback TCP)
  payment::ForwardReceipt receipt;

  friend bool operator==(const ContractMsg&, const ContractMsg&) = default;
};

struct ContractAckMsg {
  std::uint32_t sid = 0;

  friend bool operator==(const ContractAckMsg&, const ContractAckMsg&) = default;
};

// --- Membership / liveness plane -------------------------------------------

struct HelloMsg {
  net::NodeId node = net::kInvalidNode;

  friend bool operator==(const HelloMsg&, const HelloMsg&) = default;
};

struct HelloReplyMsg {
  std::uint32_t account = 0;
  std::uint64_t mac_key = 0;
  payment::Amount balance_milli = 0;

  friend bool operator==(const HelloReplyMsg&, const HelloReplyMsg&) = default;
};

/// Multi-process path formation: the full path rides along, `hop` is the
/// receiver's position; it forwards to path[hop + 1] and acks back once the
/// downstream ack arrived (acks cascade, giving an end-to-end confirm).
struct SetupMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  std::uint32_t hop = 0;
  std::vector<net::NodeId> path;  ///< size <= kMaxWirePath

  friend bool operator==(const SetupMsg&, const SetupMsg&) = default;
};

struct SetupAckMsg {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;

  friend bool operator==(const SetupAckMsg&, const SetupAckMsg&) = default;
};

struct HeartbeatMsg {
  std::uint64_t nonce = 0;

  friend bool operator==(const HeartbeatMsg&, const HeartbeatMsg&) = default;
};

struct HeartbeatAckMsg {
  std::uint64_t nonce = 0;

  friend bool operator==(const HeartbeatAckMsg&, const HeartbeatAckMsg&) = default;
};

/// Graceful shutdown: the sender is leaving cleanly (NACK analog). A crash
/// sends nothing — the difference is exactly the announced-liveness split
/// the decision layer already models.
struct ByeMsg {
  std::uint16_t port = 0;  ///< the departing peer's listen port

  friend bool operator==(const ByeMsg&, const ByeMsg&) = default;
};

/// Driver -> bank: run the deadline sweep and write the reconciliation
/// report (end of a chaos run).
struct SweepMsg {
  std::uint8_t write_report = 0;

  friend bool operator==(const SweepMsg&, const SweepMsg&) = default;
};

struct SweepReplyMsg {
  std::uint32_t terminalised = 0;

  friend bool operator==(const SweepReplyMsg&, const SweepReplyMsg&) = default;
};

using WireMessage =
    std::variant<LegMsg, AckMsg, NackMsg, DataMsg, ClaimMsg, ClaimReplyMsg, CloseMsg,
                 CloseReplyMsg, OpenSettlementMsg, OpenReplyMsg, ContractMsg, ContractAckMsg,
                 HelloMsg, HelloReplyMsg, SetupMsg, SetupAckMsg, HeartbeatMsg, HeartbeatAckMsg,
                 ByeMsg, SweepMsg, SweepReplyMsg>;

[[nodiscard]] constexpr MsgType type_of(const WireMessage& m) noexcept {
  struct Visitor {
    constexpr MsgType operator()(const LegMsg&) const { return MsgType::kLeg; }
    constexpr MsgType operator()(const AckMsg&) const { return MsgType::kAck; }
    constexpr MsgType operator()(const NackMsg&) const { return MsgType::kNack; }
    constexpr MsgType operator()(const DataMsg&) const { return MsgType::kData; }
    constexpr MsgType operator()(const ClaimMsg&) const { return MsgType::kClaim; }
    constexpr MsgType operator()(const ClaimReplyMsg&) const { return MsgType::kClaimReply; }
    constexpr MsgType operator()(const CloseMsg&) const { return MsgType::kClose; }
    constexpr MsgType operator()(const CloseReplyMsg&) const { return MsgType::kCloseReply; }
    constexpr MsgType operator()(const OpenSettlementMsg&) const {
      return MsgType::kOpenSettlement;
    }
    constexpr MsgType operator()(const OpenReplyMsg&) const { return MsgType::kOpenReply; }
    constexpr MsgType operator()(const ContractMsg&) const { return MsgType::kContract; }
    constexpr MsgType operator()(const ContractAckMsg&) const { return MsgType::kContractAck; }
    constexpr MsgType operator()(const HelloMsg&) const { return MsgType::kHello; }
    constexpr MsgType operator()(const HelloReplyMsg&) const { return MsgType::kHelloReply; }
    constexpr MsgType operator()(const SetupMsg&) const { return MsgType::kSetup; }
    constexpr MsgType operator()(const SetupAckMsg&) const { return MsgType::kSetupAck; }
    constexpr MsgType operator()(const HeartbeatMsg&) const { return MsgType::kHeartbeat; }
    constexpr MsgType operator()(const HeartbeatAckMsg&) const { return MsgType::kHeartbeatAck; }
    constexpr MsgType operator()(const ByeMsg&) const { return MsgType::kBye; }
    constexpr MsgType operator()(const SweepMsg&) const { return MsgType::kSweep; }
    constexpr MsgType operator()(const SweepReplyMsg&) const { return MsgType::kSweepReply; }
  };
  return std::visit(Visitor{}, m);
}

}  // namespace p2panon::transport::wire
