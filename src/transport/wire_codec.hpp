// Versioned length-prefixed framing for wire messages.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic    0x50325041 ("P2PA")
//   4       2     version  kWireVersion (1)
//   6       2     type     wire::MsgType
//   8       4     length   payload byte count
//   12      len   payload  type-specific field layout
//   12+len  4     crc      CRC-32 (IEEE) over bytes [0, 12+len)
//
// decode() classifies a frame before parsing a single payload byte, and the
// reject path allocates nothing (pinned by tests/transport — a hostile peer
// spraying garbage must not be able to make the receiver allocate, let
// alone crash):
//
//   kTruncated      fewer bytes than the header, or than the declared frame
//   kBadMagic       first four bytes are not the magic (stream is garbage —
//                   no resync is possible, the connection must be dropped)
//   kOversize       declared length exceeds max_frame (header is not
//                   trusted further; drop the connection)
//   kFutureVersion  version > kWireVersion; the frame is skipped whole
//                   (header layout is stable across versions by contract)
//   kBadCrc         checksum mismatch over header + payload
//   kUnknownType    intact frame, but no such message type at this version
//   kBadLength      payload did not parse to exactly `length` bytes
//
// `consumed` tells a streaming caller how many bytes the frame occupied:
// set for every verdict that identified a complete frame (kOk, kBadCrc,
// kFutureVersion, kUnknownType, kBadLength — skip and continue), zero when
// the stream cannot be resynchronised (kTruncated, kBadMagic, kOversize).
//
// Receipt-bearing messages serialise payment::ForwardReceipt through
// receipt_words() — the same canonical field enumeration the MAC and the
// sharded settlement plane's aggregate digest walk — so the wire image and
// the in-memory struct cannot drift (see payment/receipt.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "transport/wire.hpp"

namespace p2panon::transport {

inline constexpr std::uint32_t kWireMagic = 0x50325041u;  // "P2PA"
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::size_t kFrameOverhead = kHeaderSize + 4;  // + trailing CRC
inline constexpr std::size_t kDefaultMaxFrame = 64 * 1024;

enum class DecodeResult : std::uint8_t {
  kOk,
  kTruncated,
  kBadMagic,
  kOversize,
  kFutureVersion,
  kBadCrc,
  kUnknownType,
  kBadLength,
};

[[nodiscard]] const char* to_string(DecodeResult r) noexcept;

/// Append one framed message to `out` (which is reused across calls by both
/// backends, so steady-state encoding does not allocate). Returns the frame
/// size in bytes.
std::size_t encode(const wire::WireMessage& msg, std::vector<std::byte>& out);

/// Classify and (on kOk) parse the frame at the front of `buffer`. See the
/// header comment for the verdict/consumed contract. `out` is written only
/// on kOk.
[[nodiscard]] DecodeResult decode(std::span<const std::byte> buffer, wire::WireMessage& out,
                                  std::size_t& consumed,
                                  std::size_t max_frame = kDefaultMaxFrame);

}  // namespace p2panon::transport
