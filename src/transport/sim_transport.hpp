// SimTransport: the discrete-event backend of the transport plane.
//
// Reproduces the legacy direct-delivery path *bitwise*. The pinned
// equivalence (tests/harness/test_transport_equivalence.cpp) holds because
// send() is shaped exactly like the inline code it replaced:
//
//   1. fault drop draw FIRST, extra-delay draw SECOND (same RNG order);
//   2. one schedule_in() per surviving frame, with the caller's
//      continuation scheduled *unwrapped* — the event capture is
//      byte-identical to the legacy lambda, so the engine's inline-callback
//      buffer (and its pinned zero heap-fallback count) is untouched;
//   3. no additional events, draws, or clock reads anywhere.
//
// What it adds on top: every frame round-trips through the wire codec
// (encode -> decode -> operator==) before delivery. A message the codec
// cannot carry faithfully aborts the simulation — the in-sim protocol and
// the TCP wire format are forced to stay the same protocol.
#pragma once

#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "net/overlay.hpp"
#include "sim/simulator.hpp"
#include "transport/transport.hpp"
#include "transport/wire.hpp"
#include "transport/wire_codec.hpp"

namespace p2panon::transport {

class SimTransport {
 public:
  SimTransport(sim::Simulator& sim, const net::Overlay& overlay,
               fault::FaultInjector* faults) noexcept
      : sim_(sim), overlay_(overlay), faults_(faults) {}

  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  /// Frame `msg` and deliver it from -> to through the event engine.
  /// Returns false when the fault injector ate the frame (the caller's
  /// timeout machinery handles the loss, exactly as before). `deliver` is
  /// scheduled verbatim after the link's flight time.
  template <typename F>
  bool send(net::NodeId from, net::NodeId to, const wire::WireMessage& msg, F&& deliver) {
    ++counters_.frames_sent;
    verify_roundtrip(msg);
    if (faults_ != nullptr && faults_->drop_message(from, to)) {
      ++counters_.frames_dropped;
      return false;
    }
    sim::Time flight = overlay_.links().transfer_time(from, to);
    if (faults_ != nullptr) flight += faults_->extra_delay(from, to);
    ++counters_.frames_delivered;
    sim_.schedule_in(flight, std::forward<F>(deliver));
    return true;
  }

  /// The settlement plane: messages to the bank are framed and verified
  /// like any other, then dispatched synchronously (the legacy path called
  /// the engine directly inside an already-scheduled event; adding a hop
  /// here would perturb event ordering).
  void set_bank_handler(std::function<void(const wire::WireMessage&)> handler) {
    bank_handler_ = std::move(handler);
  }

  void post_to_bank(const wire::WireMessage& msg) {
    ++counters_.frames_sent;
    verify_roundtrip(msg);
    ++counters_.frames_delivered;
    if (bank_handler_) bank_handler_(msg);
  }

  [[nodiscard]] const TransportCounters& counters() const noexcept { return counters_; }

 private:
  /// Encode into the reused scratch buffer, decode back, require equality.
  /// Cannot legitimately fail — a mismatch means the codec lost
  /// information, which must be a loud build-breaking bug, not a counter.
  void verify_roundtrip(const wire::WireMessage& msg) {
    scratch_.clear();
    const std::size_t frame = encode(msg, scratch_);
    counters_.bytes_sent += frame;
    std::size_t consumed = 0;
    const DecodeResult r = decode(scratch_, decoded_, consumed);
    if (r != DecodeResult::kOk || consumed != frame || !(decoded_ == msg)) {
      ++counters_.frames_rejected;
      std::abort();  // codec drift: the wire cannot carry this message
    }
  }

  sim::Simulator& sim_;
  const net::Overlay& overlay_;
  fault::FaultInjector* faults_;
  std::function<void(const wire::WireMessage&)> bank_handler_;
  std::vector<std::byte> scratch_;
  wire::WireMessage decoded_;
  TransportCounters counters_;
};

}  // namespace p2panon::transport
