// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for wire-frame
// integrity. Constexpr table-driven so the checksum of a constant frame can
// be computed at compile time (the codec tests pin known-answer vectors).
//
// This is an *integrity* check against truncation and bit rot on the wire,
// not an authenticity check — receipts and claims carry their own MACs
// (payment/receipt.hpp); the frame CRC only decides accept-vs-reject of the
// raw bytes before any payload is parsed.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace p2panon::transport {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = make_crc32_table();

}  // namespace detail

/// Running update: fold `data` into a CRC state previously returned by
/// crc32_init()/crc32_update(); finish with crc32_final().
[[nodiscard]] constexpr std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

[[nodiscard]] constexpr std::uint32_t crc32_update(std::uint32_t state,
                                                   std::span<const std::byte> data) noexcept {
  for (const std::byte b : data) {
    state = detail::kCrc32Table[(state ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

[[nodiscard]] constexpr std::uint32_t crc32_final(std::uint32_t state) noexcept {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of a byte span.
[[nodiscard]] constexpr std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace p2panon::transport
