#include "transport/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

namespace p2panon::transport {

namespace {

constexpr std::size_t kReadChunk = 4096;

int make_socket() noexcept { return ::socket(AF_INET, SOCK_STREAM, 0); }

sockaddr_in loopback_addr(std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void set_nodelay(int fd) noexcept {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// Every connection runs non-blocking: the poll loop must never wedge in
// send() against a peer that stopped reading, or in accept()/recv() on a
// spurious wakeup.
void set_nonblock(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

TcpTransport::TcpTransport(TcpConfig cfg, sim::rng::Stream jitter_stream)
    : cfg_(cfg), jitter_(jitter_stream) {}

TcpTransport::~TcpTransport() {
  for (auto& [fd, c] : conns_) ::close(fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

double TcpTransport::now_seconds() noexcept {
  // Real processes need real time; the waiver scopes the wall clock to this
  // one accessor so the rest of the file stays greppably clock-free.
  using clock = std::chrono::steady_clock;  // lint-allow(determinism): multi-process transport runs outside the simulator; deadlines/heartbeats need wall time
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

bool TcpTransport::sockets_available() noexcept {
  const int fd = make_socket();
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::uint16_t TcpTransport::listen(std::uint16_t port) {
  const int fd = make_socket();
  if (fd < 0) return 0;
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return 0;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return 0;
  }
  set_nonblock(fd);
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return port_;
}

TcpTransport::Conn* TcpTransport::connection(std::uint16_t peer) {
  const auto it = outbound_fd_.find(peer);
  if (it == outbound_fd_.end()) return nullptr;
  const auto cit = conns_.find(it->second);
  return cit == conns_.end() ? nullptr : &cit->second;
}

TcpTransport::Conn* TcpTransport::dial_once(std::uint16_t peer, bool register_conn) {
  const int fd = make_socket();
  if (fd < 0) return nullptr;
  sockaddr_in addr = loopback_addr(peer);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;
  }
  set_nodelay(fd);
  set_nonblock(fd);
  Conn& c = conns_[fd];
  c.fd = fd;
  c.peer_port = peer;
  c.outbound = true;
  if (register_conn) {
    outbound_fd_[peer] = fd;
    if (was_connected_[peer]) ++counters_.reconnects;
    was_connected_[peer] = true;
  }
  return &c;
}

TcpTransport::Conn* TcpTransport::dial(std::uint16_t peer) {
  if (Conn* c = connection(peer)) return c;
  for (int attempt = 1; attempt <= cfg_.connect_max_attempts; ++attempt) {
    if (Conn* c = dial_once(peer)) return c;
    if (attempt == cfg_.connect_max_attempts) break;
    // Same capped-exponential shape as the in-sim setup retries: the cap is
    // applied to the exact power of two (ldexp) and the jitter is a seeded
    // multiplicative draw, so the dial schedule replays with the seed.
    const double capped =
        std::min(std::ldexp(cfg_.connect_backoff_base, attempt - 1), cfg_.connect_backoff_cap);
    const double delay = capped * jitter_.uniform(1.0 - cfg_.connect_jitter,
                                                  1.0 + cfg_.connect_jitter);
    ++counters_.backoff_retries;
    const double until = now_seconds() + delay;
    while (now_seconds() < until) {
      // Keep serving peers while we wait out the backoff.
      pump(std::min(0.05, until - now_seconds()));
    }
  }
  return nullptr;
}

void TcpTransport::enqueue_frame(Conn& c, const wire::WireMessage& msg) {
  scratch_.clear();
  const std::size_t frame = encode(msg, scratch_);
  ++counters_.frames_sent;
  counters_.bytes_sent += frame;
  c.outbuf.insert(c.outbuf.end(), scratch_.begin(), scratch_.end());
}

void TcpTransport::flush(Conn& c) {
  while (!c.outbuf.empty()) {
    const ssize_t n = ::send(c.fd, c.outbuf.data(), c.outbuf.size(), MSG_NOSIGNAL);
    if (n > 0) {
      c.outbuf.erase(c.outbuf.begin(), c.outbuf.begin() + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) return;
    ++counters_.frames_dropped;
    close_conn(c.fd);
    return;
  }
  ++counters_.frames_delivered;
}

void TcpTransport::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.in_flight && !it->second.replies.empty()) {
    // The peer answered and then closed (reply + Bye in one batch). The
    // waiting request() must still see the reply, not a dead connection.
    orphaned_.insert_or_assign(fd, std::move(it->second.replies.front()));
  }
  if (it->second.outbound) {
    const auto out = outbound_fd_.find(it->second.peer_port);
    if (out != outbound_fd_.end() && out->second == fd) outbound_fd_.erase(out);
  }
  ::close(fd);
  conns_.erase(it);
}

void TcpTransport::drain_inbuf(Conn& c) {
  // A handler may pump re-entrantly (nested request()), and that pump may
  // read MORE bytes into this very connection. A second drain walking the
  // same buffer would re-dispatch frames the outer walk already consumed
  // and erase the prefix out from under the outer offset — heap corruption.
  // The guard makes the inner read a pure append; the outer loop re-checks
  // inbuf.size() every iteration and picks the new bytes up itself.
  if (c.draining) return;
  c.draining = true;
  std::size_t offset = 0;
  bool drop = false;
  while (offset < c.inbuf.size()) {
    wire::WireMessage msg;
    std::size_t consumed = 0;
    const DecodeResult r = decode(
        std::span<const std::byte>(c.inbuf.data() + offset, c.inbuf.size() - offset), msg,
        consumed, cfg_.max_frame);
    if (r == DecodeResult::kTruncated) break;  // wait for more bytes
    if (r == DecodeResult::kBadMagic || r == DecodeResult::kOversize) {
      // Unresynchronisable garbage: count it and cut the connection.
      ++counters_.frames_rejected;
      drop = true;
      break;
    }
    offset += consumed;
    if (r != DecodeResult::kOk) {
      // Skippable verdicts (bad CRC, future version, unknown type, bad
      // length): count and continue with the next frame.
      ++counters_.frames_rejected;
      continue;
    }
    const int fd = c.fd;
    dispatch(c, msg);
    if (conns_.find(fd) == conns_.end()) return;  // dispatch closed us (Bye)
  }
  c.inbuf.erase(c.inbuf.begin(), c.inbuf.begin() + static_cast<std::ptrdiff_t>(offset));
  c.draining = false;
  if (drop) close_conn(c.fd);
}

void TcpTransport::dispatch(Conn& c, const wire::WireMessage& msg) {
  if (const auto* hb = std::get_if<wire::HeartbeatMsg>(&msg)) {
    enqueue_frame(c, wire::HeartbeatAckMsg{hb->nonce});
    flush(c);
    return;
  }
  if (std::get_if<wire::HeartbeatAckMsg>(&msg) != nullptr) {
    if (c.outbound) {
      const auto it = watched_.find(c.peer_port);
      if (it != watched_.end()) it->second.last_seen = now_seconds();
    }
    return;
  }
  if (const auto* bye = std::get_if<wire::ByeMsg>(&msg)) {
    if (peer_bye_) peer_bye_(bye->port);
    close_conn(c.fd);
    return;
  }
  if (c.outbound) {
    // FIFO reply to an in-flight request on this connection.
    c.replies.push_back(msg);
    return;
  }
  if (!handler_) return;
  std::optional<wire::WireMessage> reply = handler_(msg);
  // The handler may have pumped re-entrantly; make sure we still exist.
  const auto it = conns_.find(c.fd);
  if (it == conns_.end() || !reply.has_value()) return;
  enqueue_frame(it->second, *reply);
  flush(it->second);
}

void TcpTransport::heartbeat_tick(double now) {
  std::vector<std::uint16_t> dead;
  for (auto& [peer, w] : watched_) {
    if (now - w.last_seen > cfg_.heartbeat_timeout) {
      dead.push_back(peer);
      continue;
    }
    if (now >= w.next_send) {
      w.next_send = now + cfg_.heartbeat_period;
      Conn* c = connection(peer);
      if (c == nullptr) c = dial_once(peer);  // no backoff: the timeout decides
      if (c != nullptr) {
        enqueue_frame(*c, wire::HeartbeatMsg{++w.nonce});
        flush(*c);
      }
    }
  }
  for (const std::uint16_t peer : dead) {
    watched_.erase(peer);
    ++counters_.heartbeat_timeouts;
    if (Conn* c = connection(peer)) close_conn(c->fd);
    if (peer_dead_) peer_dead_(peer);
  }
}

void TcpTransport::pump(double max_wait) {
  std::vector<pollfd> fds;
  fds.reserve(conns_.size() + 1);
  if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
  for (const auto& [fd, c] : conns_) {
    short events = POLLIN;
    if (!c.outbuf.empty()) events |= POLLOUT;
    fds.push_back({fd, events, 0});
  }
  const int timeout_ms =
      std::max(0, static_cast<int>(std::min(max_wait, cfg_.heartbeat_period / 2) * 1000.0));
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc > 0) {
    for (const pollfd& p : fds) {
      if (p.revents == 0) continue;
      if (p.fd == listen_fd_) {
        // Non-blocking listen socket: drain the whole backlog this round.
        for (;;) {
          const int nfd = ::accept(listen_fd_, nullptr, nullptr);
          if (nfd < 0) break;
          set_nodelay(nfd);
          set_nonblock(nfd);
          Conn& c = conns_[nfd];
          c.fd = nfd;
        }
        continue;
      }
      const auto it = conns_.find(p.fd);
      if (it == conns_.end()) continue;  // closed by an earlier dispatch
      if ((p.revents & POLLOUT) != 0) flush(it->second);
      if (conns_.find(p.fd) == conns_.end()) continue;
      if ((p.revents & POLLIN) != 0) {
        std::byte chunk[kReadChunk];
        const ssize_t n = ::recv(p.fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
          it->second.inbuf.insert(it->second.inbuf.end(), chunk, chunk + n);
          drain_inbuf(it->second);
        } else if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
          close_conn(p.fd);
          continue;
        }
      }
      if ((p.revents & (POLLERR | POLLHUP)) != 0 && conns_.find(p.fd) != conns_.end() &&
          conns_[p.fd].inbuf.empty()) {
        close_conn(p.fd);
      }
    }
  }
  heartbeat_tick(now_seconds());
}

std::optional<wire::WireMessage> TcpTransport::request(std::uint16_t peer,
                                                       const wire::WireMessage& msg) {
  Conn* c = dial(peer);
  if (c == nullptr) {
    ++counters_.frames_dropped;
    return std::nullopt;
  }
  // A nested request() to the SAME peer (a handler calling out while an
  // outer request is parked in its wait loop below) must not share the
  // connection: FIFO correlation would hand the inner caller the outer
  // caller's reply. Nested calls get a private, unregistered connection
  // that is torn down once their reply (or deadline) arrives.
  bool private_conn = false;
  if (c->in_flight) {
    c = dial_once(peer, /*register_conn=*/false);
    if (c == nullptr) {
      ++counters_.frames_dropped;
      return std::nullopt;
    }
    private_conn = true;
  }
  const int fd = c->fd;
  c->in_flight = true;
  enqueue_frame(*c, msg);
  flush(*c);
  std::optional<wire::WireMessage> reply;
  const double deadline = now_seconds() + cfg_.read_deadline;
  for (;;) {
    const auto orphan = orphaned_.find(fd);
    if (orphan != orphaned_.end()) {  // conn died right after replying
      reply = std::move(orphan->second);
      orphaned_.erase(orphan);
      break;
    }
    const auto it = conns_.find(fd);
    if (it == conns_.end()) break;  // connection died mid-wait, no reply
    if (!it->second.replies.empty()) {
      reply = std::move(it->second.replies.front());
      it->second.replies.pop_front();
      break;
    }
    const double remaining = deadline - now_seconds();
    if (remaining <= 0.0) {
      ++counters_.deadline_expiries;
      break;
    }
    pump(std::min(remaining, 0.05));
  }
  orphaned_.erase(fd);
  const auto it = conns_.find(fd);
  if (it != conns_.end()) {
    it->second.in_flight = false;
    // Tear down private channels always, and any channel whose request
    // timed out: a reply arriving after the deadline would sit in the FIFO
    // and be mis-correlated with the NEXT request on this connection.
    if (private_conn || !reply.has_value()) close_conn(fd);
  }
  return reply;
}

bool TcpTransport::send_oneway(std::uint16_t peer, const wire::WireMessage& msg) {
  Conn* c = dial(peer);
  if (c == nullptr) {
    ++counters_.frames_dropped;
    return false;
  }
  enqueue_frame(*c, msg);
  flush(*c);
  return true;
}

void TcpTransport::watch(std::uint16_t peer) {
  Watch w;
  w.last_seen = now_seconds();
  w.next_send = w.last_seen;
  watched_.emplace(peer, w);
}

void TcpTransport::unwatch(std::uint16_t peer) { watched_.erase(peer); }

void TcpTransport::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  std::vector<int> open_fds;
  open_fds.reserve(conns_.size());
  for (const auto& [fd, c] : conns_) open_fds.push_back(fd);
  for (const int fd : open_fds) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    enqueue_frame(it->second, wire::ByeMsg{port_});
    flush(it->second);
  }
  for (const int fd : open_fds) close_conn(fd);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace p2panon::transport
