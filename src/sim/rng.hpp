// Deterministic, stream-splittable random number generation.
//
// Every stochastic element of the simulation draws from a named Stream keyed
// by (root seed, purpose tag, entity id, replicate id). Streams are cheap
// value types; two streams derived with the same key sequence produce the
// same values regardless of construction order or thread, which makes the
// parallel Monte-Carlo replication layer bitwise-deterministic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace p2panon::sim::rng {

/// SplitMix64 step: the de-facto standard 64-bit mixing function
/// (Steele, Lea, Flood: "Fast splittable pseudorandom number generators").
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit finaliser (SplitMix64's avalanche function). Applied
/// between key-derivation steps so that derivations cannot cancel: a plain
/// XOR chain would make child("a", i).child("b", i) independent of i.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// FNV-1a over a string, used to derive sub-stream keys from purpose tags.
[[nodiscard]] constexpr std::uint64_t hash_tag(std::string_view tag) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : tag) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// A splittable deterministic PRNG stream (xoshiro256** core seeded via
/// SplitMix64). Satisfies UniformRandomBitGenerator so it can also be used
/// with <random> adaptors when convenient.
class Stream {
 public:
  using result_type = std::uint64_t;

  /// Root stream for a given seed.
  explicit Stream(std::uint64_t seed) noexcept { reseed(seed); }

  /// Derive a child stream. Children with distinct (tag, id) pairs are
  /// statistically independent of the parent and of each other.
  [[nodiscard]] Stream child(std::string_view tag, std::uint64_t id = 0) const noexcept {
    std::uint64_t k = mix64(key_ ^ (hash_tag(tag) * 0x9E3779B97F4A7C15ULL));
    k = mix64(k ^ (id + 0xD1B54A32D192ED03ULL) * 0xEB44ACCAB455D165ULL);
    return Stream(k);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Bounded Pareto variate on [lo, hi] with shape alpha.
  double bounded_pareto(double alpha, double lo, double hi) noexcept;

  /// Pareto (Lomax-free classic form x >= xm) with shape alpha.
  double pareto(double alpha, double xm) noexcept;

  /// Normal variate via Box-Muller (no cached spare: deterministic stream use).
  double normal(double mean, double stddev) noexcept;

  /// Zipf-distributed rank in [0, n): P(k) proportional to 1/(k+1)^s.
  /// s = 0 degenerates to uniform. O(n) per draw (fine for overlay sizes).
  std::size_t zipf(std::size_t n, double s) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  void reseed(std::uint64_t seed) noexcept {
    key_ = seed;
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    // xoshiro must not start in the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9E3779B97F4A7C15ULL;
  }

  std::uint64_t key_ = 0;  // derivation key, preserved for child()
  std::uint64_t s_[4] = {};
};

/// Pareto shape parameter such that the *median* of the classic Pareto
/// distribution (scale xm) equals the requested median: median = xm * 2^(1/a).
[[nodiscard]] double pareto_shape_for_median(double xm, double median) noexcept;

/// Analytic median of the bounded Pareto on [lo, hi] with shape alpha.
[[nodiscard]] double bounded_pareto_median(double alpha, double lo, double hi) noexcept;

/// Shape parameter such that the *bounded* Pareto on [lo, hi] has the
/// requested median (truncation shifts the median, so the unbounded formula
/// does not apply). Solved by bisection; median must lie in (lo, hi).
[[nodiscard]] double bounded_pareto_shape_for_median(double lo, double hi,
                                                     double median) noexcept;

}  // namespace p2panon::sim::rng
