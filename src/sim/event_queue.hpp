// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence number): ties in time are broken by
// insertion order, which makes runs independent of heap internals and hence
// reproducible. Cancellation is lazy: cancelled entries stay in the heap and
// are skipped on pop, which keeps cancel O(1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/types.hpp"

namespace p2panon::sim {

/// An event is an opaque callback executed at its scheduled time.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(Time at, EventFn fn);

  /// Cancel a previously scheduled event. Returns false if the event has
  /// already fired, been cancelled, or never existed.
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] Time next_time() const noexcept;

  /// Pop and return the earliest live event. Precondition: !empty().
  struct Popped {
    Time time;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  /// Drop everything.
  void clear();

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    EventId id;
    EventFn fn;
  };

  // Min-heap ordering on (time, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;  // 0 is kInvalidEventId
};

}  // namespace p2panon::sim
