// Pending-event set for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence number) orders execution: ties in
// time are broken by insertion order, which makes runs independent of heap
// internals and hence reproducible. Callbacks live in a generation-checked
// slot map; the heap holds only light (time, seq, slot, gen) records. An
// EventId encodes (generation << 32 | slot), so cancel() is O(1): decode,
// compare generations, drop the callback. The heap entry of a cancelled event
// stays behind and is skipped when it surfaces at the top.
//
// Cancellation semantics (tested in tests/sim/test_event_queue.cpp):
//  - cancel() returns true exactly once, and only if the event had not yet
//    fired: the slot is freed and the callback destroyed immediately.
//  - cancel-after-fire returns false: pop() frees the slot before the caller
//    runs the callback, so from the callback's perspective the event no
//    longer exists.
//  - double-cancel returns false: the first cancel frees the slot.
//  - cancel-inside-own-callback returns false (the mid-pop() window): the
//    event is already spent once pop() has returned it, even though the
//    callback has not finished running.
//  - cancel-other-from-callback behaves normally: cancelling a different
//    pending event from inside a running callback returns true and the
//    victim never fires.
//  - stale ids never alias: a slot's generation is bumped on reuse (and
//    generation 0 is skipped on wrap), so an id from a fired or cancelled
//    event keeps returning false even after its slot is recycled — including
//    across clear().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/event_callback.hpp"
#include "sim/types.hpp"

namespace p2panon::sim {

/// An event is an opaque callback executed at its scheduled time.
using EventFn = EventCallback;

class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Engine-health counters, monotone over the queue's lifetime (reset() by
  /// clear()). callback_heap_allocs counts scheduled callbacks whose capture
  /// outgrew EventCallback's inline buffer — zero in steady state.
  struct Stats {
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t fired = 0;
    std::uint64_t callback_heap_allocs = 0;
  };

  /// Schedule `fn` at absolute time `at`. Returns a handle for cancel().
  EventId schedule(Time at, EventFn fn);

  /// Cancel a previously scheduled event in O(1). Returns false if the event
  /// has already fired, been cancelled, or never existed (see the semantics
  /// block above).
  bool cancel(EventId id);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// Time of the earliest live event; kTimeInfinity when empty.
  [[nodiscard]] Time next_time() const noexcept;

  /// Pop and return the earliest live event. Precondition: !empty().
  /// The event's slot is freed before this returns: cancel(id) for the popped
  /// id answers false from here on, and the id may be reused by a later
  /// schedule() (under a fresh generation).
  struct Popped {
    Time time;
    EventId id;
    EventFn fn;
  };
  Popped pop();

  /// Drop everything and zero the stats. Outstanding ids stay dead: slot
  /// generations survive and are bumped on reuse as usual.
  void clear();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Slot {
    EventCallback fn;
    std::uint32_t gen = 0;       // bumped on allocation; 0 is never live
    std::uint32_t next_free = 0; // free-list link, valid while not live
    bool live = false;
  };

  struct HeapEntry {
    Time time;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };

  // Min-heap ordering on (time, seq).
  struct Later {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static constexpr std::uint32_t kNoFreeSlot = 0xFFFFFFFFu;

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const noexcept {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }

  // Physically remove heap entries of cancelled events as they surface.
  // Logically const: the live set is unchanged (heap_ is mutable
  // bookkeeping, slots are not touched).
  void drop_stale_tops() const;

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  mutable std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoFreeSlot;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace p2panon::sim
