// Discrete-event simulation engine.
//
// Single-threaded per instance (parallelism happens across replicate
// instances, see src/parallel). The engine owns the clock and the pending
// event set; model code schedules callbacks and reads now().
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace p2panon::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Number of events executed so far.
  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }

  /// Engine counters (events scheduled/cancelled/fired, callback heap
  /// fallbacks) since construction or the last reset().
  [[nodiscard]] const EventQueue::Stats& queue_stats() const noexcept {
    return queue_.stats();
  }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule_in(Time delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (at >= now()).
  EventId schedule_at(Time at, EventFn fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the event set drains or the clock would pass `until`.
  /// Events at exactly `until` are executed. Returns the final clock value
  /// (== until if the horizon was hit with events still pending).
  Time run_until(Time until);

  /// Time of the earliest pending event; kTimeInfinity when idle. The sharded
  /// engine uses this to fast-forward over empty windows.
  [[nodiscard]] Time next_event_time() const noexcept { return queue_.next_time(); }

  /// Run until the event set drains completely.
  Time run_to_completion();

  /// Execute at most one event. Returns false when nothing is pending.
  bool step();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

  /// Reset clock and drop all pending events.
  void reset();

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace p2panon::sim
