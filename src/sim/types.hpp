// Fundamental simulation types shared by every subsystem.
#pragma once

#include <cstdint>
#include <limits>

namespace p2panon::sim {

/// Simulation time in seconds. All paper-scale scenarios are specified in
/// minutes; helpers below convert.
using Time = double;

/// Sentinel for "never" / "not scheduled".
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

constexpr Time minutes(double m) noexcept { return m * 60.0; }
constexpr Time hours(double h) noexcept { return h * 3600.0; }
constexpr double to_minutes(Time t) noexcept { return t / 60.0; }

/// Monotone handle identifying a scheduled event (for cancellation).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

}  // namespace p2panon::sim
