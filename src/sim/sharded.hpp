// Sharded discrete-event engine: K independent per-shard Simulators advanced
// in lock-step time windows, with cross-shard effects exchanged only at
// window boundaries (conservative parallel discrete-event simulation).
//
// Model contract
// --------------
//   - Every model entity (node, contract leg, probe loop) is owned by exactly
//     one shard. Events touching only that shard's state are scheduled
//     directly on its Simulator (`shard(s).schedule_*` or `post` with
//     src == dst).
//   - An effect on *another* shard must go through `post(src, dst, at, fn)`.
//     The callback is buffered in the source shard's outbox and delivered at
//     the first window boundary >= the send window, at time
//     max(at, boundary). Shards therefore never observe mid-window state of
//     their peers, which is what makes the windowed run race-free without
//     any locking in model code.
//   - Cross-shard *reads* must use state published at the previous barrier
//     (see barrier hooks below), never live peer state.
//
// Determinism contract
// --------------------
//   - K = 1: `post` with src == dst == 0 degenerates to a plain local
//     schedule_at and run_until is a chunked drive of the single Simulator —
//     bitwise identical to running the serial engine directly (chunking
//     run_until never reorders events).
//   - K > 1: for a fixed {seed, K, window} the result is bitwise identical
//     across thread-pool sizes, including the serial pool == nullptr path.
//     Within a window shards share no mutable state; at the barrier the
//     mailboxes are flushed serially in (source shard ascending, append
//     order) — a deterministic merge.
//
// The thread pool is borrowed per window (submit + wait_idle). Do not run a
// windowed ShardedSimulator from *inside* a task on the same pool: wait_idle
// waits for all queued tasks and would deadlock.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace p2panon::parallel {
class ThreadPool;
}

namespace p2panon::sim {

class ShardedSimulator {
 public:
  using ShardId = std::uint32_t;

  /// Counters over the sharded run (in addition to the per-shard
  /// EventQueue::Stats reachable through shard(s).queue_stats()).
  struct Stats {
    std::uint64_t cross_shard_messages = 0;  ///< mailbox deliveries (src != dst)
    std::uint64_t window_barriers = 0;       ///< barrier synchronisations executed
  };

  /// A hook run serially at every window barrier (after all shards reached
  /// the boundary, before mailboxes flush). Used to publish cross-shard
  /// snapshots and to drain model-level batch queues (claims, settlement).
  using BarrierHook = std::function<void(Time boundary)>;

  /// `shard_count` >= 1. `window` > 0 is the synchronisation quantum; the
  /// window grid is anchored at t = 0. `pool` may be nullptr, in which case
  /// shards run serially in shard order (still window-synchronised, same
  /// results by the determinism contract).
  ShardedSimulator(ShardId shard_count, Time window, parallel::ThreadPool* pool);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] ShardId shard_count() const noexcept {
    return static_cast<ShardId>(shards_.size());
  }
  [[nodiscard]] Time window() const noexcept { return window_; }

  /// The per-shard serial engine. Model code owned by shard `s` schedules
  /// local events here and reads shard-local time via shard(s).now().
  [[nodiscard]] Simulator& shard(ShardId s) noexcept { return *shards_[s]; }
  [[nodiscard]] const Simulator& shard(ShardId s) const noexcept { return *shards_[s]; }

  /// Schedule `fn` to run on shard `dst` at absolute time `at`, from code
  /// currently executing on shard `src`. Local posts (src == dst) bypass the
  /// mailbox entirely. Cross-shard posts are buffered in the src outbox —
  /// safe to call concurrently from distinct shards — and delivered at the
  /// next window barrier at time max(at, boundary).
  void post(ShardId src, ShardId dst, Time at, EventFn fn);

  /// Register a barrier hook (see BarrierHook). Hooks run serially in
  /// registration order; they must not schedule cross-shard work directly
  /// (use post from a shard, or schedule locally on any shard — the shard
  /// clocks all equal the boundary while hooks run).
  void add_barrier_hook(BarrierHook hook) { hooks_.push_back(std::move(hook)); }

  /// Advance all shards to `until`, window by window. Events at exactly
  /// `until` are executed; every shard's clock ends at `until`.
  Time run_until(Time until);

  /// Earliest pending event over all shards; kTimeInfinity when fully idle.
  [[nodiscard]] Time next_event_time() const noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Sum of shard(s).queue_stats() over all shards.
  [[nodiscard]] EventQueue::Stats aggregate_queue_stats() const noexcept;

 private:
  struct Outgoing {
    ShardId dst;
    Time at;
    EventFn fn;
  };

  void run_window(Time window_end);
  void flush_mailboxes(Time boundary);

  std::vector<std::unique_ptr<Simulator>> shards_;
  // One outbox per *source* shard: within a window each shard appends only to
  // its own, so cross-shard sends need no synchronisation.
  std::vector<std::vector<Outgoing>> outbox_;
  std::vector<BarrierHook> hooks_;
  Time window_;
  parallel::ThreadPool* pool_;
  Stats stats_;
};

}  // namespace p2panon::sim
