#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/thread_pool.hpp"

namespace p2panon::sim {

ShardedSimulator::ShardedSimulator(ShardId shard_count, Time window,
                                   parallel::ThreadPool* pool)
    : window_(window), pool_(pool) {
  assert(shard_count >= 1 && "need at least one shard");
  assert(window > 0.0 && "window must be positive");
  shards_.reserve(shard_count);
  for (ShardId s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  outbox_.resize(shard_count);
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::post(ShardId src, ShardId dst, Time at, EventFn fn) {
  assert(src < shards_.size() && dst < shards_.size());
  if (src == dst) {
    // Local effect: plain schedule on the owning shard. This branch is what
    // makes K = 1 degenerate to the serial engine bitwise.
    shards_[src]->schedule_at(at, std::move(fn));
    return;
  }
  outbox_[src].push_back(Outgoing{dst, at, std::move(fn)});
}

Time ShardedSimulator::next_event_time() const noexcept {
  Time next = kTimeInfinity;
  for (const auto& shard : shards_) {
    next = std::min(next, shard->next_event_time());
  }
  return next;
}

EventQueue::Stats ShardedSimulator::aggregate_queue_stats() const noexcept {
  EventQueue::Stats total;
  for (const auto& shard : shards_) {
    const auto& s = shard->queue_stats();
    total.scheduled += s.scheduled;
    total.cancelled += s.cancelled;
    total.fired += s.fired;
    total.callback_heap_allocs += s.callback_heap_allocs;
  }
  return total;
}

void ShardedSimulator::run_window(Time window_end) {
  if (pool_ != nullptr && shards_.size() > 1) {
    for (const auto& shard : shards_) {
      Simulator* s = shard.get();
      pool_->submit([s, window_end] { s->run_until(window_end); });
    }
    pool_->wait_idle();
  } else {
    for (const auto& shard : shards_) {
      shard->run_until(window_end);
    }
  }
}

void ShardedSimulator::flush_mailboxes(Time boundary) {
  // Deterministic merge: source shards in ascending order, each outbox in
  // append order. Delivery time is clamped up to the boundary so no shard
  // ever receives an event in its past.
  for (auto& box : outbox_) {
    for (auto& msg : box) {
      stats_.cross_shard_messages += 1;
      shards_[msg.dst]->schedule_at(std::max(msg.at, boundary), std::move(msg.fn));
    }
    box.clear();  // keeps capacity — steady state appends do not allocate
  }
}

Time ShardedSimulator::run_until(Time until) {
  // Posts made outside a window (harness setup) are delivered now, at the
  // current barrier, before any window runs.
  Time now = shards_[0]->now();
  bool pending_mail = false;
  for (const auto& box : outbox_) pending_mail |= !box.empty();
  if (pending_mail) flush_mailboxes(now);

  for (;;) {
    const Time next = next_event_time();
    if (next > until) break;
    // Fast-forward across empty windows: jump straight to the window that
    // contains the earliest pending event instead of barriering through
    // quiet ones. floor() keeps the grid anchored at t = 0 so {seed, K,
    // window} fully determines every boundary.
    const Time window_start = std::max(now, std::floor(next / window_) * window_);
    const Time window_end = std::min(until, window_start + window_);
    run_window(window_end);
    stats_.window_barriers += 1;
    for (const auto& hook : hooks_) hook(window_end);
    flush_mailboxes(window_end);
    now = window_end;
  }

  // Advance idle clocks to the horizon (mirrors Simulator::run_until).
  for (const auto& shard : shards_) {
    shard->run_until(until);
  }
  return until;
}

}  // namespace p2panon::sim
