#include "sim/rng.hpp"

#include <cassert>
#include <cmath>

namespace p2panon::sim::rng {

std::uint64_t Stream::below(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Stream::exponential(double rate) noexcept {
  assert(rate > 0.0);
  // Avoid log(0): next_double() is in [0,1), so 1-u is in (0,1].
  return -std::log(1.0 - next_double()) / rate;
}

double Stream::pareto(double alpha, double xm) noexcept {
  assert(alpha > 0.0 && xm > 0.0);
  const double u = 1.0 - next_double();  // (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Stream::bounded_pareto(double alpha, double lo, double hi) noexcept {
  assert(alpha > 0.0 && 0.0 < lo && lo < hi);
  // Inverse CDF of the bounded Pareto on [lo, hi].
  const double u = next_double();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double x = -(u * ha - u * la - ha) / (ha * la);
  return std::pow(1.0 / x, 1.0 / alpha);
}

double Stream::normal(double mean, double stddev) noexcept {
  // Box-Muller, discarding the second variate to keep stream usage
  // position-independent (one draw pair per call).
  double u1 = 1.0 - next_double();  // (0,1]
  double u2 = next_double();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

std::size_t Stream::zipf(std::size_t n, double s) noexcept {
  assert(n > 0 && s >= 0.0);
  if (n == 1) return 0;
  // Inverse-CDF walk over the (unnormalised) weights 1/(k+1)^s.
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) total += std::pow(static_cast<double>(k + 1), -s);
  double u = next_double() * total;
  for (std::size_t k = 0; k < n; ++k) {
    u -= std::pow(static_cast<double>(k + 1), -s);
    if (u <= 0.0) return k;
  }
  return n - 1;  // floating-point slack
}

std::vector<std::size_t> Stream::sample_indices(std::size_t n, std::size_t k) noexcept {
  assert(k <= n);
  // Partial Fisher-Yates over an index vector; O(n) setup, fine for the
  // overlay sizes this simulator targets.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

double pareto_shape_for_median(double xm, double median) noexcept {
  assert(median > xm && xm > 0.0);
  // median = xm * 2^(1/alpha)  =>  alpha = ln 2 / ln(median / xm)
  return std::log(2.0) / std::log(median / xm);
}

double bounded_pareto_median(double alpha, double lo, double hi) noexcept {
  assert(alpha > 0.0 && 0.0 < lo && lo < hi);
  // CDF F(x) = (1 - (lo/x)^a) / (1 - (lo/hi)^a); F(m) = 1/2 gives
  // (lo/m)^a = (1 + r) / 2 with r = (lo/hi)^a.
  const double r = std::pow(lo / hi, alpha);
  return lo * std::pow((1.0 + r) / 2.0, -1.0 / alpha);
}

double bounded_pareto_shape_for_median(double lo, double hi, double median) noexcept {
  assert(0.0 < lo && lo < median && median < hi);
  // As alpha -> 0 the bounded Pareto tends to log-uniform on [lo, hi], whose
  // median is the geometric mean sqrt(lo*hi) — the supremum of achievable
  // medians. Requesting more silently degenerates, so reject it loudly.
  assert(median < std::sqrt(lo * hi) &&
         "median unreachable: raise the bounded-Pareto upper bound");
  // The bounded median is strictly decreasing in alpha: bisect.
  double a_lo = 1e-6, a_hi = 64.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (a_lo + a_hi);
    if (bounded_pareto_median(mid, lo, hi) > median) {
      a_lo = mid;
    } else {
      a_hi = mid;
    }
  }
  return 0.5 * (a_lo + a_hi);
}

}  // namespace p2panon::sim::rng
