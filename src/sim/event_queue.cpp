#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::sim {

std::uint32_t EventQueue::acquire_slot() {
  std::uint32_t idx;
  if (free_head_ != kNoFreeSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    assert(slots_.size() < kNoFreeSlot && "slot index space exhausted");
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  ++s.gen;
  if (s.gen == 0) ++s.gen;  // gen 0 never names a live event (id 0 is invalid)
  s.live = true;
  return idx;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.live = false;
  s.fn.reset();
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::schedule(Time at, EventFn fn) {
  assert(fn && "scheduling an empty event");
  ++stats_.scheduled;
  if (fn.uses_heap()) ++stats_.callback_heap_allocs;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  heap_.push_back(HeapEntry{at, next_seq_++, slot, slots_[slot].gen});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return make_id(slot, slots_[slot].gen);
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return false;  // fired, cancelled, or recycled
  release_slot(slot);
  --live_count_;
  ++stats_.cancelled;
  // The heap entry stays behind; drop_stale_tops() discards it when it
  // surfaces (its generation no longer matches the slot's).
  return true;
}

void EventQueue::drop_stale_tops() const {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const noexcept {
  drop_stale_tops();
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_stale_tops();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const HeapEntry e = heap_.back();
  heap_.pop_back();
  Popped out{e.time, make_id(e.slot, e.gen), std::move(slots_[e.slot].fn)};
  // Free the slot before the caller runs the callback: the event is spent,
  // so cancel() of its own id from inside the callback reports false.
  release_slot(e.slot);
  --live_count_;
  ++stats_.fired;
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  // Rebuild the free list over every slot. Generations are preserved (and
  // bumped on reuse), so ids handed out before clear() can never alias a
  // post-clear event.
  free_head_ = kNoFreeSlot;
  for (std::uint32_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    s.live = false;
    s.fn.reset();
    s.next_free = free_head_;
    free_head_ = i;
  }
  live_count_ = 0;
  next_seq_ = 0;
  stats_ = Stats{};
}

}  // namespace p2panon::sim
