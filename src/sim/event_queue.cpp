#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::sim {

EventId EventQueue::schedule(Time at, EventFn fn) {
  assert(fn && "scheduling an empty event");
  const EventId id = next_id_++;
  heap_.emplace_back(at, next_seq_++, id, std::move(fn));
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return false;
  // An id is live iff it is in the heap and not already cancelled. We cannot
  // cheaply test heap membership, so track cancellations and let pop() and
  // size accounting reconcile: double-cancel and cancel-after-fire are
  // detected via the cancelled set and fired ids.
  auto [it, inserted] = cancelled_.insert(id);
  (void)it;
  if (!inserted) return false;  // already cancelled
  // If the id already fired, pop() removed it from the heap; detect that by
  // scanning being too slow, we instead rely on pop() erasing fired ids from
  // cancelled_ lazily. To keep the API honest we verify liveness here:
  bool present = std::any_of(heap_.begin(), heap_.end(),
                             [id](const Entry& e) { return e.id == id; });
  if (!present) {
    cancelled_.erase(id);
    return false;
  }
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() const {
  // Note: physically removing cancelled heads; logically const (live set
  // unchanged; heap_ and cancelled_ are mutable bookkeeping). Erasing the id
  // from cancelled_ here matters beyond memory: ids are never reused, so a
  // stale entry can't misfire, but the set would otherwise grow with every
  // cancellation for the lifetime of the run.
  while (!heap_.empty() && cancelled_.count(heap_.front().id) != 0) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

Time EventQueue::next_time() const noexcept {
  skip_cancelled();
  return heap_.empty() ? kTimeInfinity : heap_.front().time;
}

EventQueue::Popped EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  --live_count_;
  return Popped{e.time, e.id, std::move(e.fn)};
}

void EventQueue::clear() {
  heap_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

}  // namespace p2panon::sim
