// Small-buffer-optimised, move-only callable for simulator events.
//
// Every scheduled event used to carry a std::function<void()>, whose capture
// allocates once it outgrows the (implementation-defined, typically 16-byte)
// inline buffer — which every model lambda does. EventCallback stores captures
// up to kInlineSize bytes in place, so steady-state scheduling performs zero
// per-event heap allocations; larger callables still work but fall back to the
// heap and are counted via uses_heap() (surfaced as
// EventQueue::Stats::callback_heap_allocs, guarded by a test).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace p2panon::sim {

class EventCallback {
 public:
  /// Inline capture budget. Sized for the largest steady-state capture in the
  /// model layers (async_path leg delivery / data_phase relay flight / churn
  /// timers); grow it if the allocation-guard test starts reporting heap
  /// fallbacks.
  static constexpr std::size_t kInlineSize = 96;

  EventCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = heap_vtable<Fn>();
    }
  }

  EventCallback(EventCallback&& other) noexcept : vt_(other.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(storage_, other.storage_);
      other.vt_ = nullptr;
    }
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vt_ = other.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(storage_, other.storage_);
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() {
    vt_->invoke(storage_);
  }

  /// Destroy the held callable (no-op when empty).
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True when the held callable outgrew the inline buffer.
  [[nodiscard]] bool uses_heap() const noexcept {
    return vt_ != nullptr && vt_->heap;
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    // Move-construct into dst from src, then destroy src's residue. All held
    // types are nothrow-movable (enforced below), so relocation can't throw.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* s) { (*static_cast<Fn*>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        },
        [](void* s) noexcept { static_cast<Fn*>(s)->~Fn(); },
        /*heap=*/false,
    };
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* s) { (**static_cast<Fn**>(s))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        },
        [](void* s) noexcept { delete *static_cast<Fn**>(s); },
        /*heap=*/true,
    };
    return &vt;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const VTable* vt_ = nullptr;
};

}  // namespace p2panon::sim
