#include "sim/simulator.hpp"

#include <cassert>

namespace p2panon::sim {

EventId Simulator::schedule_in(Time delay, EventFn fn) {
  assert(delay >= 0.0 && "negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  assert(at >= now_ && "scheduling into the past");
  return queue_.schedule(at, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto ev = queue_.pop();
  assert(ev.time >= now_);
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

Time Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    step();
  }
  if (now_ < until) now_ = until;
  return now_;
}

Time Simulator::run_to_completion() {
  while (step()) {
  }
  return now_;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  executed_ = 0;
}

}  // namespace p2panon::sim
