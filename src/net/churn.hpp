// Churn model: session times, offline gaps, joins and final departures.
//
// Per the paper (§3) session times follow a Pareto distribution with a
// median of 60 minutes (after Saroiu et al.'s measurement study), and node
// joins are a Poisson process. A node's *availability* is the ratio of the
// sum of its session times to its lifetime (first entry -> final departure),
// following Rhea et al. (§2.1).
#pragma once

#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace p2panon::net {

struct ChurnConfig {
  /// Mean inter-arrival time of initial node joins (Poisson process).
  sim::Time join_interarrival_mean = sim::minutes(1.0);
  /// Median session time (Pareto). Paper: 60 minutes.
  sim::Time session_median = sim::minutes(60.0);
  /// Pareto scale (minimum session length).
  sim::Time session_min = sim::minutes(5.0);
  /// Cap on a single session (bounded Pareto upper edge).
  sim::Time session_max = sim::hours(24.0);
  /// Mean offline gap between sessions (exponential).
  sim::Time offline_gap_mean = sim::minutes(30.0);
  /// Probability that a leave is a *final* departure (free-riding exit).
  double departure_probability = 0.1;
};

/// Draws churn-process variates from a dedicated RNG stream.
class ChurnProcess {
 public:
  ChurnProcess(const ChurnConfig& cfg, sim::rng::Stream stream) noexcept;

  /// Delay from the previous join to the next initial join.
  [[nodiscard]] sim::Time next_join_gap() noexcept;

  /// One session duration (bounded Pareto, median == cfg.session_median).
  [[nodiscard]] sim::Time session_length() noexcept;

  /// One offline gap between two sessions of the same node.
  [[nodiscard]] sim::Time offline_gap() noexcept;

  /// Whether this leave is the node's final departure.
  [[nodiscard]] bool is_final_departure() noexcept;

  [[nodiscard]] const ChurnConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] double pareto_shape() const noexcept { return shape_; }

 private:
  ChurnConfig cfg_;
  sim::rng::Stream stream_;
  double shape_;
};

/// Ground-truth availability bookkeeping for a single node.
///
/// Robust to out-of-order driving: a join while online and a leave while
/// offline are ignored (the first event of each kind wins), so forced
/// transitions and fault injection cannot corrupt the accounting.
class AvailabilityTracker {
 public:
  void on_join(sim::Time now) noexcept;
  void on_leave(sim::Time now) noexcept;

  /// Availability = total session time / lifetime, evaluated at `now`
  /// (lifetime extends to `now` if the node has not finally departed).
  [[nodiscard]] double availability(sim::Time now) const noexcept;

  [[nodiscard]] bool ever_joined() const noexcept { return first_join_ >= 0.0; }
  [[nodiscard]] bool online() const noexcept { return session_start_ >= 0.0; }
  [[nodiscard]] sim::Time total_session_time(sim::Time now) const noexcept;

  /// Time of the most recent leave (graceful or crash); -1 if none yet.
  /// Ground truth for the time-to-detect metric: detection delay is
  /// "detector noticed at t" minus this.
  [[nodiscard]] sim::Time last_leave() const noexcept { return last_leave_; }

 private:
  sim::Time first_join_ = -1.0;
  sim::Time session_start_ = -1.0;  // >= 0 while online
  sim::Time accumulated_ = 0.0;
  sim::Time last_leave_ = -1.0;
};

}  // namespace p2panon::net
