#include "net/sharded_probing.hpp"

#include <cassert>

namespace p2panon::net {

ShardedProbing::ShardedProbing(const NodeStateSoA& state, const ShardPartition& partition,
                               sim::Time period, sim::rng::Stream stream)
    : state_(state),
      partition_(partition),
      period_(period),
      stream_(stream),
      session_time_(state.size() * state.degree, kNeverObserved),
      avail_total_(state.size(), 0.0),
      probe_epoch_(state.size(), 0),
      probes_per_shard_(partition.shard_count(), 0) {
  assert(period_ > 0.0);
  assert(partition_.node_count() == state_.size());
}

void ShardedProbing::probe(NodeId s, std::span<const std::uint8_t> published_online) {
  const std::uint32_t home = partition_.shard_of(s);
  ++probes_per_shard_[home];
  ++probe_epoch_[s];  // session times are about to move

  const auto row = state_.neighbors_of(s);
  double* times = session_time_.data() + static_cast<std::size_t>(s) * state_.degree;
  double total = 0.0;
  for (std::size_t slot = 0; slot < row.size(); ++slot) {
    const NodeId u = row[slot];
    // Window contract: live liveness for a same-shard neighbour, the
    // last-barrier snapshot for a cross-shard one.
    const bool observed_alive = partition_.shard_of(u) == home
                                    ? state_.online[u] != 0
                                    : published_online[u] != 0;
    if (observed_alive) {
      if (times[slot] >= 0.0) {
        times[slot] += period_;
      } else {
        // New neighbour first observed alive: t_s(u) = rand(0, T). Child
        // derivation is const on stream_, so concurrent shards can draw.
        auto init_stream =
            stream_.child("init", (static_cast<std::uint64_t>(s) << 32) | u);
        times[slot] = init_stream.uniform(0.0, period_);
      }
    }
    if (times[slot] >= 0.0) total += times[slot];
  }
  avail_total_[s] = total;
}

void ShardedProbing::on_neighbor_replaced(NodeId s, std::size_t slot) {
  double* times = session_time_.data() + static_cast<std::size_t>(s) * state_.degree;
  times[slot] = kNeverObserved;
  double total = 0.0;
  for (std::size_t j = 0; j < state_.degree; ++j) {
    if (times[j] >= 0.0) total += times[j];
  }
  avail_total_[s] = total;
  ++probe_epoch_[s];
}

double ShardedProbing::availability(NodeId s, std::size_t slot) const {
  const double total = avail_total_[s];
  if (total <= 0.0) {
    // No observations yet: uniform prior over the neighbour set.
    return state_.degree > 0 ? 1.0 / static_cast<double>(state_.degree) : 0.0;
  }
  const double t = session_time_[static_cast<std::size_t>(s) * state_.degree + slot];
  return t < 0.0 ? 0.0 : t / total;
}

double ShardedProbing::availability_of(NodeId s, NodeId u) const {
  const auto row = state_.neighbors_of(s);
  for (std::size_t slot = 0; slot < row.size(); ++slot) {
    if (row[slot] == u) return availability(s, slot);
  }
  return 0.0;
}

std::uint64_t ShardedProbing::probes_performed() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : probes_per_shard_) total += n;
  return total;
}

}  // namespace p2panon::net
