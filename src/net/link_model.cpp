#include "net/link_model.hpp"

#include <algorithm>

#include "sim/rng.hpp"

namespace p2panon::net {

double LinkModel::bandwidth(NodeId a, NodeId b) const noexcept {
  // Canonicalise the unordered pair, mix with the seed, and map one
  // SplitMix64 output into [lo, hi). Self-links get maximal bandwidth.
  if (a == b) return cfg_.bandwidth_hi;
  const NodeId lo_id = std::min(a, b);
  const NodeId hi_id = std::max(a, b);
  std::uint64_t state = seed_ ^ (static_cast<std::uint64_t>(lo_id) << 32 | hi_id);
  const std::uint64_t bits = sim::rng::splitmix64(state);
  const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
  return cfg_.bandwidth_lo + (cfg_.bandwidth_hi - cfg_.bandwidth_lo) * u;
}

}  // namespace p2panon::net
