// Identifier types for the P2P overlay and the anonymity layer.
#pragma once

#include <cstdint>
#include <limits>

namespace p2panon::net {

/// Dense node identifier: nodes are numbered 0..N-1 within an Overlay.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Identifier of one anonymous connection (one message transmission).
using ConnectionId = std::uint64_t;

/// Identifier of a recurring connection *set* pi = {pi^1..pi^k} between one
/// (I, R) pair. Forwarders see this id (it ties history entries together,
/// paper §2.3) but never the initiator's identity.
using PairId = std::uint32_t;
inline constexpr PairId kInvalidPair = std::numeric_limits<PairId>::max();

}  // namespace p2panon::net
