// Active-probing availability estimation (paper §2.3, after Bustamante &
// Qiao).
//
// There is no centralised availability service: each peer s estimates the
// availability of its neighbours from its own probes. At the start of every
// probing period of length T, s checks the liveness of each u in D(s):
//   * if u is alive, its observed session time grows: t_s(u) += T;
//   * if u is a *new* neighbour first seen alive this period, its session
//     time is initialised to rand(0, T) (uniform), since it may have come
//     online anywhere within the period.
// The availability estimate is the normalised observed session time
//   alpha_s(u) = t_s(u) / sum_{v in D(s)} t_s(v),
// so a neighbour with a longer observed session time has higher availability.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/flat_hash.hpp"
#include "net/overlay.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace p2panon::net {

struct ProbingConfig {
  sim::Time period = sim::minutes(5.0);  ///< T
};

class ProbingEstimator {
 public:
  /// What a probe by `prober` observes about `target`. Installed by the
  /// fault layer to degrade ground truth (false negatives, partitions);
  /// when absent, probes see the simulator's omniscient liveness, which is
  /// the fault-free baseline behaviour, bit for bit.
  using ProbeOracle = std::function<bool(NodeId prober, NodeId target)>;

  /// Registers churn/neighbour observers on the overlay and schedules the
  /// per-node probe loops. Construct before Overlay::start().
  ProbingEstimator(Overlay& overlay, const ProbingConfig& cfg, sim::rng::Stream stream);

  ProbingEstimator(const ProbingEstimator&) = delete;
  ProbingEstimator& operator=(const ProbingEstimator&) = delete;

  /// alpha_s(u): s's availability estimate for neighbour u, in [0, 1].
  /// Falls back to uniform 1/|D(s)| before any session time accumulates.
  /// O(1): the denominator sum_{v in D(s)} t_s(v) is maintained
  /// incrementally at the two points session times mutate (probe() and
  /// neighbour replacement) rather than re-walked per query.
  [[nodiscard]] double availability(NodeId s, NodeId u) const;

  /// Monotonically increasing per-node estimate epoch: bumped whenever
  /// anything alpha_s(.) depends on changes (a probe of s updating session
  /// times, or a neighbour replacement in D(s)). Equal epochs guarantee
  /// identical availability answers for s — the invalidation signal for the
  /// edge-quality cache (core/edge_quality).
  [[nodiscard]] std::uint64_t epoch(NodeId s) const { return epoch_.at(s); }

  /// Raw observed session time t_s(u) in seconds.
  [[nodiscard]] sim::Time observed_session_time(NodeId s, NodeId u) const;

  [[nodiscard]] std::uint64_t probes_performed() const noexcept { return probes_; }
  [[nodiscard]] const ProbingConfig& config() const noexcept { return cfg_; }

  /// Route probe outcomes through `oracle` instead of ground truth.
  /// Install before any probing period elapses (estimates made under the
  /// old oracle are not revised).
  void set_probe_oracle(ProbeOracle oracle) { oracle_ = std::move(oracle); }

 private:
  void on_churn(NodeId node, bool online);
  void on_neighbor_replaced(NodeId s, NodeId old_neighbor, NodeId fresh);
  void start_probe_loop(NodeId s);
  void probe(NodeId s);

  Overlay& overlay_;
  ProbingConfig cfg_;
  sim::rng::Stream stream_;
  ProbeOracle oracle_;  ///< empty = ground truth (fault-free baseline)
  /// t_s(u), keyed PackedKey::of(s, u). Entries exist only for neighbours of
  /// s that have been observed alive at least once.
  core::PackedFlatMap<sim::Time> session_time_;
  /// total_[s] = sum_{v in D(s)} t_s(v), the availability() denominator.
  /// Recomputed with the same neighbour-order walk the per-query sum used to
  /// do — at exactly the mutation points that bump epoch_[s] — so cached and
  /// freshly-summed answers are bit-identical.
  std::vector<double> total_;
  std::vector<std::uint64_t> epoch_;
  std::vector<bool> loop_active_;
  std::uint64_t probes_ = 0;
};

}  // namespace p2panon::net
