// The P2P overlay: N peers with fixed-degree neighbour sets, Poisson joins,
// Pareto session times, offline gaps and final departures.
//
// The overlay drives all churn through the discrete-event simulator and
// notifies registered observers of joins, leaves and neighbour replacements
// so that availability estimators (net/probing) and metrics collectors can
// react without the overlay knowing about them.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "net/churn.hpp"
#include "net/ids.hpp"
#include "net/link_model.hpp"
#include "net/soa.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace p2panon::net {

struct OverlayConfig {
  std::size_t node_count = 40;      ///< N (paper §3: 40)
  std::size_t degree = 5;           ///< d, |D(s)| (paper §3: 5)
  double malicious_fraction = 0.0;  ///< f
  /// Availability attack (paper §5 threat 1): malicious nodes keep their
  /// sessions alive permanently to attract re-formed paths.
  bool malicious_always_online = false;
  /// Cost C_p assigned to every node (constant-cost model of Prop. 2).
  double participation_cost = 10.0;
  ChurnConfig churn;
  LinkModelConfig link;
};

class Overlay {
 public:
  /// Fires on every join (online=true) and leave (online=false).
  using ChurnObserver = std::function<void(NodeId node, bool online, sim::Time when)>;
  /// Fires when node `s` replaces departed neighbour `old_neighbor` with
  /// `fresh` in D(s).
  using NeighborObserver =
      std::function<void(NodeId s, NodeId old_neighbor, NodeId fresh, sim::Time when)>;

  Overlay(const OverlayConfig& cfg, sim::Simulator& simulator, sim::rng::Stream stream);

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Schedule the initial Poisson join process. Call once before running the
  /// simulator.
  void start();

  [[nodiscard]] std::size_t size() const noexcept { return state_.size(); }

  /// Row snapshot across the SoA columns; fields as of the call, `tracker`
  /// a live reference (see NodeView).
  [[nodiscard]] NodeView node(NodeId id) const {
    return NodeView{id,
                    state_.kind.at(id),
                    state_.online[id] != 0,
                    state_.crashed[id] != 0,
                    state_.departed[id] != 0,
                    state_.participation_cost[id],
                    state_.tracker[id]};
  }
  [[nodiscard]] bool is_online(NodeId id) const { return state_.online.at(id) != 0; }

  /// What the rest of the overlay *believes* about the node's liveness: a
  /// silently-crashed node still appears online (nobody was told), while a
  /// graceful leave is announced and visible immediately. Protocol code
  /// (candidate selection, routing) must use this instead of is_online();
  /// only physical message delivery and probes may consult ground truth.
  [[nodiscard]] bool appears_online(NodeId id) const { return state_.appears_online(id); }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId id) const {
    return state_.neighbors_of(id);
  }

  /// The columnar node state, for shard-local views and streaming sweeps.
  [[nodiscard]] const NodeStateSoA& state() const noexcept { return state_; }
  [[nodiscard]] const LinkModel& links() const noexcept { return links_; }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Ground-truth availability of a node at the current simulation time.
  [[nodiscard]] double true_availability(NodeId id) const {
    return state_.tracker.at(id).availability(sim_.now());
  }

  /// All currently-online node ids, ascending.
  [[nodiscard]] std::vector<NodeId> online_nodes() const;

  /// Online members of D(s).
  [[nodiscard]] std::vector<NodeId> online_neighbors(NodeId id) const;

  /// Ids of all good (non-malicious) nodes.
  [[nodiscard]] std::vector<NodeId> good_nodes() const;
  [[nodiscard]] std::vector<NodeId> malicious_nodes() const;

  void add_churn_observer(ChurnObserver obs) { churn_observers_.push_back(std::move(obs)); }
  void add_neighbor_observer(NeighborObserver obs) {
    neighbor_observers_.push_back(std::move(obs));
  }

  /// Force a node online immediately (used by harness to guarantee an
  /// initiator/responder pair can communicate). No-op if already online.
  void force_online(NodeId id);

  /// Force a node gracefully offline immediately (test/harness hook): the
  /// leave is announced to churn observers exactly like a natural one, but
  /// no rejoin is scheduled and no churn-stream variates are drawn. No-op
  /// if already offline.
  void force_offline(NodeId id);

  /// Silent crash (fault injection): the node goes down *without* any
  /// churn-observer notification — the rest of the system keeps believing
  /// it is online until timeouts prove otherwise. Ground-truth availability
  /// tracking still records the downtime (that is what time-to-detect is
  /// measured against). Returns false (no-op) if the node is not up.
  bool crash(NodeId id);

  /// Recover a crashed node: it rejoins like any other join (observers see
  /// it) and a fresh session is scheduled. No-op if the node is not
  /// currently crashed.
  void recover(NodeId id);

  /// Number of join and leave events processed so far.
  [[nodiscard]] std::uint64_t churn_events() const noexcept { return churn_event_count_; }

  [[nodiscard]] const OverlayConfig& config() const noexcept { return cfg_; }

 private:
  void do_join(NodeId id);
  void do_leave(NodeId id, std::uint64_t leave_epoch);
  void schedule_leave(NodeId id);
  void replace_departed_neighbor(NodeId departed);
  [[nodiscard]] NodeId pick_replacement(NodeId owner, NodeId departed);
  void notify_churn(NodeId id, bool online);

  OverlayConfig cfg_;
  sim::Simulator& sim_;
  sim::rng::Stream stream_;
  ChurnProcess churn_;
  LinkModel links_;
  NodeStateSoA state_;
  std::vector<ChurnObserver> churn_observers_;
  std::vector<NeighborObserver> neighbor_observers_;
  std::uint64_t churn_event_count_ = 0;
};

}  // namespace p2panon::net
