// Pairwise link bandwidth and transmission cost.
//
// The paper models the transmission cost between two peers as proportional
// to (per-unit cost on) the communication bandwidth between them: C_t = b*l
// where b is payload size and l the per-unit transmission cost of the link
// (§2.4.1). We give every unordered node pair a deterministic bandwidth drawn
// from a configurable range — deterministic in (seed, pair), so cost queries
// need no stored N^2 matrix and replicate runs are reproducible.
#pragma once

#include <cstdint>

#include "net/ids.hpp"

namespace p2panon::net {

struct LinkModelConfig {
  double bandwidth_lo = 1.0;    ///< minimum link bandwidth (arbitrary units)
  double bandwidth_hi = 10.0;   ///< maximum link bandwidth
  double cost_scale = 1.0;      ///< per-unit cost l = cost_scale / bandwidth
  double payload_size = 1.0;    ///< payload units b per forwarding instance
  double propagation_delay = 0.05;  ///< fixed per-hop latency (seconds)
};

class LinkModel {
 public:
  LinkModel(const LinkModelConfig& cfg, std::uint64_t seed) noexcept
      : cfg_(cfg), seed_(seed) {}

  /// Symmetric deterministic bandwidth of the (a, b) link.
  [[nodiscard]] double bandwidth(NodeId a, NodeId b) const noexcept;

  /// Per-unit transmission cost l of the (a, b) link.
  [[nodiscard]] double unit_cost(NodeId a, NodeId b) const noexcept {
    return cfg_.cost_scale / bandwidth(a, b);
  }

  /// Full transmission cost C_t = b * l for one forwarding instance.
  [[nodiscard]] double transmission_cost(NodeId a, NodeId b) const noexcept {
    return cfg_.payload_size * unit_cost(a, b);
  }

  /// Time to push one payload over the (a, b) link: propagation base plus
  /// payload / bandwidth. Used by the end-to-end latency analyses.
  [[nodiscard]] double transfer_time(NodeId a, NodeId b) const noexcept {
    return cfg_.propagation_delay + cfg_.payload_size / bandwidth(a, b);
  }

  /// End-to-end latency of a path (sum over its edges).
  template <typename NodeRange>
  [[nodiscard]] double path_latency(const NodeRange& nodes) const noexcept {
    double total = 0.0;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      total += transfer_time(nodes[i], nodes[i + 1]);
    }
    return total;
  }

  [[nodiscard]] const LinkModelConfig& config() const noexcept { return cfg_; }

 private:
  LinkModelConfig cfg_;
  std::uint64_t seed_;
};

}  // namespace p2panon::net
