// Per-node overlay state.
#pragma once

#include <cstdint>
#include <vector>

#include "net/churn.hpp"
#include "net/ids.hpp"

namespace p2panon::net {

/// Behavioural class of a peer. Malicious peers follow the paper's adversary
/// model: they participate but route *randomly*, since their objective is
/// breaking anonymity, not income (§2.4).
enum class NodeKind { kGood, kMalicious };

struct Node {
  NodeId id = kInvalidNode;
  NodeKind kind = NodeKind::kGood;
  bool online = false;
  bool departed = false;  ///< final departure happened; never returns
  /// Down by *silent* crash (fault injection): offline, but no churn
  /// observer was notified, so the rest of the system still believes the
  /// node is up until timeouts say otherwise.
  bool crashed = false;
  /// Session epoch for pending leave events: bumped whenever a session ends
  /// or begins outside the normal churn draw flow (crash, recovery, forced
  /// offline), so a leave scheduled for a dead session cannot fire into a
  /// later one. Never bumped on the ordinary join/leave path, which keeps
  /// fault-free runs bitwise identical.
  std::uint64_t leave_epoch = 0;

  /// Fixed-size neighbour set D(s); entries are replaced (not removed) when
  /// a neighbour departs for good.
  std::vector<NodeId> neighbors;

  /// Ground-truth availability bookkeeping (Rhea et al. definition).
  AvailabilityTracker tracker;

  /// Participation cost C_p for this node (paper §2.4.1) — one-time cost of
  /// running the forwarding software for a peer session.
  double participation_cost = 0.0;

  [[nodiscard]] bool is_good() const noexcept { return kind == NodeKind::kGood; }
  [[nodiscard]] bool is_malicious() const noexcept { return kind == NodeKind::kMalicious; }
};

}  // namespace p2panon::net
