// Struct-of-arrays node state and shard partitioning.
//
// The hot loops of the system — probing sweeps, edge-quality scoring,
// candidate scans — touch one field of *many* nodes, not many fields of one
// node. An array-of-structs layout (vector<Node> with an embedded neighbour
// vector per node) makes every such sweep a pointer chase; the SoA layout
// below keeps each field contiguous and the neighbour table a single
// fixed-stride CSR block, so sweeps stream through memory.
//
// Shard-local views: nodes are partitioned into contiguous id ranges, one
// per shard (ShardPartition). A shard's slice of every column is then itself
// contiguous, which is what lets the sharded engine hand each shard a
// mutable window of the same arrays with no false sharing beyond the two
// boundary cache lines.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "net/churn.hpp"
#include "net/ids.hpp"

namespace p2panon::net {

/// Behavioural class of a peer. Malicious peers follow the paper's adversary
/// model: they participate but route *randomly*, since their objective is
/// breaking anonymity, not income (§2.4).
enum class NodeKind : std::uint8_t { kGood, kMalicious };

/// Columnar node state. Field semantics are identical to the former
/// `struct Node` (see NodeView below for the per-field contracts); only the
/// layout changed. The neighbour table is CSR with a fixed stride of
/// `degree` — entries are replaced in place (never removed) when a
/// neighbour departs for good, so the stride is an invariant.
struct NodeStateSoA {
  std::size_t degree = 0;

  std::vector<NodeKind> kind;
  std::vector<std::uint8_t> online;
  std::vector<std::uint8_t> crashed;
  std::vector<std::uint8_t> departed;
  /// Session epoch for pending leave events: bumped whenever a session ends
  /// or begins outside the normal churn draw flow (crash, recovery, forced
  /// offline), so a leave scheduled for a dead session cannot fire into a
  /// later one. Never bumped on the ordinary join/leave path, which keeps
  /// fault-free runs bitwise identical.
  std::vector<std::uint64_t> leave_epoch;
  std::vector<double> participation_cost;
  /// Ground-truth availability bookkeeping (Rhea et al. definition).
  std::vector<AvailabilityTracker> tracker;
  /// Fixed-stride CSR neighbour table, size() * degree entries.
  std::vector<NodeId> neighbors;

  [[nodiscard]] std::size_t size() const noexcept { return kind.size(); }

  /// Allocate all columns for `n` nodes of degree `d`, zero-initialised.
  void resize(std::size_t n, std::size_t d) {
    degree = d;
    kind.assign(n, NodeKind::kGood);
    online.assign(n, 0);
    crashed.assign(n, 0);
    departed.assign(n, 0);
    leave_epoch.assign(n, 0);
    participation_cost.assign(n, 0.0);
    tracker.assign(n, AvailabilityTracker{});
    neighbors.assign(n * d, kInvalidNode);
  }

  [[nodiscard]] std::span<NodeId> neighbors_of(NodeId id) noexcept {
    return {neighbors.data() + static_cast<std::size_t>(id) * degree, degree};
  }
  [[nodiscard]] std::span<const NodeId> neighbors_of(NodeId id) const noexcept {
    return {neighbors.data() + static_cast<std::size_t>(id) * degree, degree};
  }

  [[nodiscard]] bool is_good(NodeId id) const noexcept {
    return kind[id] == NodeKind::kGood;
  }
  [[nodiscard]] bool is_malicious(NodeId id) const noexcept {
    return kind[id] == NodeKind::kMalicious;
  }
  /// What the rest of the overlay *believes* about liveness: a silent crash
  /// is invisible (the node still appears up), a graceful leave is not.
  [[nodiscard]] bool appears_online(NodeId id) const noexcept {
    return online[id] != 0 || crashed[id] != 0;
  }
};

/// A cheap value-type snapshot of one node's row across the columns, shaped
/// like the former `struct Node` so call sites keep reading `n.online`,
/// `n.participation_cost`, `n.is_good()` unchanged. Plain fields are copies
/// taken at the call; `tracker` stays a reference into the column (the
/// availability query needs the live history).
struct NodeView {
  NodeId id;
  NodeKind kind;
  bool online;
  bool crashed;
  bool departed;   ///< final departure happened; never returns
  double participation_cost;  ///< C_p (paper §2.4.1)
  const AvailabilityTracker& tracker;

  [[nodiscard]] bool is_good() const noexcept { return kind == NodeKind::kGood; }
  [[nodiscard]] bool is_malicious() const noexcept { return kind == NodeKind::kMalicious; }
};

/// Contiguous node-id partition into K shards: shard s owns
/// [range(s).begin, range(s).end). Remainder nodes go to the low shards so
/// sizes differ by at most one. Contiguity is load-bearing — it is what
/// makes every per-shard column slice a single memory window.
class ShardPartition {
 public:
  struct Range {
    NodeId begin = 0;
    NodeId end = 0;
    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
  };

  ShardPartition() : starts_{0, 0} {}

  ShardPartition(std::size_t node_count, std::uint32_t shard_count) {
    assert(shard_count >= 1);
    starts_.reserve(shard_count + 1);
    const std::size_t base = node_count / shard_count;
    const std::size_t extra = node_count % shard_count;
    NodeId at = 0;
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      starts_.push_back(at);
      at += static_cast<NodeId>(base + (s < extra ? 1 : 0));
    }
    starts_.push_back(at);
  }

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(starts_.size() - 1);
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return starts_.back(); }

  [[nodiscard]] Range range(std::uint32_t s) const noexcept {
    return Range{starts_[s], starts_[s + 1]};
  }

  /// Owning shard of a node id. O(1): with near-equal contiguous ranges the
  /// guess id / ceil(N/K) lands on the right shard or one below.
  [[nodiscard]] std::uint32_t shard_of(NodeId id) const noexcept {
    const std::uint32_t k = shard_count();
    const std::size_t n = node_count();
    std::uint32_t s = static_cast<std::uint32_t>(
        (static_cast<std::size_t>(id) * k) / (n == 0 ? 1 : n));
    if (s >= k) s = k - 1;
    while (id < starts_[s]) --s;
    while (id >= starts_[s + 1]) ++s;
    return s;
  }

 private:
  std::vector<NodeId> starts_;  // size K+1; starts_[K] == node_count
};

}  // namespace p2panon::net
