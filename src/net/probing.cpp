#include "net/probing.hpp"

#include <cassert>

namespace p2panon::net {

ProbingEstimator::ProbingEstimator(Overlay& overlay, const ProbingConfig& cfg,
                                   sim::rng::Stream stream)
    : overlay_(overlay),
      cfg_(cfg),
      stream_(stream),
      session_time_(overlay.size()),
      epoch_(overlay.size(), 0),
      loop_active_(overlay.size(), false) {
  assert(cfg_.period > 0.0);
  overlay_.add_churn_observer(
      [this](NodeId node, bool online, sim::Time) { on_churn(node, online); });
  overlay_.add_neighbor_observer([this](NodeId s, NodeId old_nb, NodeId fresh, sim::Time) {
    on_neighbor_replaced(s, old_nb, fresh);
  });
}

void ProbingEstimator::on_churn(NodeId node, bool online) {
  if (!online) return;  // probe loop self-suspends while offline
  // "When a peer first joins the system, it initializes the session time of
  // each of its neighbors to 0" — the map default (absent => 0) realises
  // this; we only need to (re)start the probe loop.
  if (!loop_active_[node]) {
    loop_active_[node] = true;
    start_probe_loop(node);
  }
}

void ProbingEstimator::on_neighbor_replaced(NodeId s, NodeId old_neighbor, NodeId /*fresh*/) {
  // Forget the departed neighbour; the fresh one is initialised on first
  // sighting by probe(). D(s) changed, so every alpha_s(.) may have.
  session_time_[s].erase(old_neighbor);
  ++epoch_[s];
}

void ProbingEstimator::start_probe_loop(NodeId s) {
  overlay_.simulator().schedule_in(cfg_.period, [this, s] { probe(s); });
}

void ProbingEstimator::probe(NodeId s) {
  if (!overlay_.is_online(s)) {
    // Peer went offline; suspend its loop. It restarts on the next join.
    loop_active_[s] = false;
    return;
  }
  ++probes_;
  ++epoch_[s];  // session times are about to move
  auto& times = session_time_[s];
  for (NodeId u : overlay_.neighbors(s)) {
    // What this probe *observes* — ground truth unless a fault oracle is
    // installed (probe false negatives, partitions). A neighbour observed
    // dead simply fails to accumulate session time this period.
    const bool observed_alive = oracle_ ? oracle_(s, u) : overlay_.is_online(u);
    if (!observed_alive) continue;
    auto it = times.find(u);
    if (it == times.end()) {
      // New neighbour first observed alive: t_s(u) = rand(0, T).
      auto init_stream = stream_.child("init", (static_cast<std::uint64_t>(s) << 32) | u);
      times.emplace(u, init_stream.uniform(0.0, cfg_.period));
    } else {
      it->second += cfg_.period;
    }
  }
  start_probe_loop(s);
}

double ProbingEstimator::availability(NodeId s, NodeId u) const {
  const auto& times = session_time_.at(s);
  double total = 0.0;
  for (NodeId v : overlay_.neighbors(s)) {
    auto it = times.find(v);
    if (it != times.end()) total += it->second;
  }
  if (total <= 0.0) {
    // No observations yet: uniform prior over the neighbour set.
    const auto d = overlay_.neighbors(s).size();
    return d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  auto it = times.find(u);
  return it == times.end() ? 0.0 : it->second / total;
}

sim::Time ProbingEstimator::observed_session_time(NodeId s, NodeId u) const {
  const auto& times = session_time_.at(s);
  auto it = times.find(u);
  return it == times.end() ? 0.0 : it->second;
}

}  // namespace p2panon::net
