#include "net/probing.hpp"

#include <cassert>

namespace p2panon::net {

namespace {

[[nodiscard]] core::PackedKey session_key(NodeId s, NodeId u) noexcept {
  return core::PackedKey::of(s, u);
}

}  // namespace

ProbingEstimator::ProbingEstimator(Overlay& overlay, const ProbingConfig& cfg,
                                   sim::rng::Stream stream)
    : overlay_(overlay),
      cfg_(cfg),
      stream_(stream),
      total_(overlay.size(), 0.0),
      epoch_(overlay.size(), 0),
      loop_active_(overlay.size(), false) {
  assert(cfg_.period > 0.0);
  overlay_.add_churn_observer(
      [this](NodeId node, bool online, sim::Time) { on_churn(node, online); });
  overlay_.add_neighbor_observer([this](NodeId s, NodeId old_nb, NodeId fresh, sim::Time) {
    on_neighbor_replaced(s, old_nb, fresh);
  });
}

void ProbingEstimator::on_churn(NodeId node, bool online) {
  if (!online) return;  // probe loop self-suspends while offline
  // "When a peer first joins the system, it initializes the session time of
  // each of its neighbors to 0" — the map default (absent => 0) realises
  // this; we only need to (re)start the probe loop.
  if (!loop_active_[node]) {
    loop_active_[node] = true;
    start_probe_loop(node);
  }
}

void ProbingEstimator::on_neighbor_replaced(NodeId s, NodeId old_neighbor, NodeId /*fresh*/) {
  // Forget the departed neighbour; the fresh one is initialised on first
  // sighting by probe(). D(s) changed, so every alpha_s(.) may have —
  // rebuild the cached denominator over the (already updated) neighbour set.
  session_time_.erase(session_key(s, old_neighbor));
  double total = 0.0;
  for (NodeId v : overlay_.neighbors(s)) {
    if (const sim::Time* t = session_time_.find(session_key(s, v))) total += *t;
  }
  total_[s] = total;
  ++epoch_[s];
}

void ProbingEstimator::start_probe_loop(NodeId s) {
  overlay_.simulator().schedule_in(cfg_.period, [this, s] { probe(s); });
}

void ProbingEstimator::probe(NodeId s) {
  if (!overlay_.is_online(s)) {
    // Peer went offline; suspend its loop. It restarts on the next join.
    loop_active_[s] = false;
    return;
  }
  ++probes_;
  ++epoch_[s];  // session times are about to move
  // One walk both updates session times and refreshes the cached
  // denominator. Each neighbour's own update lands before it is added, so
  // the accumulation below is the neighbour-order sum of the final values —
  // bit-identical to the per-query walk this cache replaced.
  double total = 0.0;
  for (NodeId u : overlay_.neighbors(s)) {
    // What this probe *observes* — ground truth unless a fault oracle is
    // installed (probe false negatives, partitions). A neighbour observed
    // dead simply fails to accumulate session time this period.
    const bool observed_alive = oracle_ ? oracle_(s, u) : overlay_.is_online(u);
    const core::PackedKey key = session_key(s, u);
    if (observed_alive) {
      if (sim::Time* t = session_time_.find(key)) {
        *t += cfg_.period;
      } else {
        // New neighbour first observed alive: t_s(u) = rand(0, T).
        auto init_stream = stream_.child("init", (static_cast<std::uint64_t>(s) << 32) | u);
        session_time_.get_or_insert(key) = init_stream.uniform(0.0, cfg_.period);
      }
    }
    if (const sim::Time* t = session_time_.find(key)) total += *t;
  }
  total_[s] = total;
  start_probe_loop(s);
}

double ProbingEstimator::availability(NodeId s, NodeId u) const {
  const double total = total_.at(s);
  if (total <= 0.0) {
    // No observations yet: uniform prior over the neighbour set.
    const auto d = overlay_.neighbors(s).size();
    return d > 0 ? 1.0 / static_cast<double>(d) : 0.0;
  }
  const sim::Time* t = session_time_.find(session_key(s, u));
  return t == nullptr ? 0.0 : *t / total;
}

sim::Time ProbingEstimator::observed_session_time(NodeId s, NodeId u) const {
  const sim::Time* t = session_time_.find(session_key(s, u));
  return t == nullptr ? 0.0 : *t;
}

}  // namespace p2panon::net
