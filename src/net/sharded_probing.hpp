// Shard-scoped availability estimation over SoA node state.
//
// The sharded counterpart of ProbingEstimator (same paper-§2.3 estimator —
// per-period session-time accumulation, rand(0, T) initialisation on first
// sighting, normalised alpha_s(u) = t_s(u) / sum_v t_s(v)) restructured for
// the sharded engine:
//
//   * Session times live in one flat array aligned with the overlay's CSR
//     neighbour table (slot (s, j) of the probing state is slot (s, j) of
//     D(s)) — a probe sweep is a contiguous streaming walk, no hashing.
//   * All mutable state for node s is written only by s's owning shard, so
//     concurrent windows need no synchronisation.
//   * Liveness reads respect the window contract: a same-shard neighbour is
//     read live, a cross-shard neighbour through the liveness snapshot
//     published at the last window barrier. At K = 1 every neighbour is
//     same-shard and the estimator degenerates to fully-live reads — the
//     serial-oracle identity the equivalence tests pin.
//
// Epoch contract (mirrors ProbingEstimator::epoch): probe_epoch_[s] is
// bumped by every mutation that any alpha_s(.) depends on — a probe sweep of
// s or a neighbour replacement in D(s). Equal epochs guarantee bit-identical
// availability answers for s.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/soa.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace p2panon::net {

class ShardedProbing {
 public:
  /// Sentinel for "neighbour never observed alive" (session times are
  /// otherwise >= 0).
  static constexpr double kNeverObserved = -1.0;

  /// `state` and `partition` must outlive the estimator. `stream` is only
  /// used through const child() derivations, so probes of distinct nodes may
  /// run concurrently on distinct shards.
  ShardedProbing(const NodeStateSoA& state, const ShardPartition& partition,
                 sim::Time period, sim::rng::Stream stream);

  ShardedProbing(const ShardedProbing&) = delete;
  ShardedProbing& operator=(const ShardedProbing&) = delete;

  /// One probing period for node s: walk D(s) once, accumulate session time
  /// for neighbours observed alive, refresh the cached denominator. Must be
  /// called on s's owning shard. `published_online` is the last-barrier
  /// liveness snapshot (size N) consulted for cross-shard neighbours.
  void probe(NodeId s, std::span<const std::uint8_t> published_online);

  /// alpha_s(u) addressed by neighbour slot j in D(s). Uniform 1/d prior
  /// before any observation; 0 for a never-observed neighbour once any
  /// other accumulated.
  [[nodiscard]] double availability(NodeId s, std::size_t slot) const;

  /// alpha_s(u) addressed by node id (linear scan of D(s); slot addressing
  /// is the hot path).
  [[nodiscard]] double availability_of(NodeId s, NodeId u) const;

  /// Neighbour slot j of D(s) was replaced: forget the departed occupant's
  /// session time and rebuild the denominator.
  void on_neighbor_replaced(NodeId s, std::size_t slot);

  [[nodiscard]] std::uint64_t epoch(NodeId s) const { return probe_epoch_[s]; }
  [[nodiscard]] sim::Time observed_session_time(NodeId s, std::size_t slot) const {
    const double t = session_time_[static_cast<std::size_t>(s) * state_.degree + slot];
    return t < 0.0 ? 0.0 : t;
  }
  [[nodiscard]] sim::Time period() const noexcept { return period_; }

  /// Probes performed by nodes of shard `shard` (per-shard so concurrent
  /// windows never contend on one counter).
  [[nodiscard]] std::uint64_t probes_in_shard(std::uint32_t shard) const {
    return probes_per_shard_[shard];
  }
  [[nodiscard]] std::uint64_t probes_performed() const;

 private:
  const NodeStateSoA& state_;
  const ShardPartition& partition_;
  sim::Time period_;
  sim::rng::Stream stream_;
  /// t_s(u) by CSR slot, size N * d; kNeverObserved until first sighting.
  std::vector<double> session_time_;
  /// avail_total_[s] = sum over observed slots of D(s) — the alpha
  /// denominator, maintained at the same mutation points that bump
  /// probe_epoch_[s].
  std::vector<double> avail_total_;
  std::vector<std::uint64_t> probe_epoch_;
  std::vector<std::uint64_t> probes_per_shard_;
};

}  // namespace p2panon::net
