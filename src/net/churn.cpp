#include "net/churn.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::net {

ChurnProcess::ChurnProcess(const ChurnConfig& cfg, sim::rng::Stream stream) noexcept
    : cfg_(cfg),
      stream_(stream),
      shape_(sim::rng::bounded_pareto_shape_for_median(cfg.session_min, cfg.session_max,
                                                       cfg.session_median)) {
  assert(cfg.session_min > 0.0 && cfg.session_median > cfg.session_min);
  assert(cfg.session_max > cfg.session_median);
  assert(cfg.departure_probability >= 0.0 && cfg.departure_probability <= 1.0);
}

sim::Time ChurnProcess::next_join_gap() noexcept {
  return stream_.exponential(1.0 / cfg_.join_interarrival_mean);
}

sim::Time ChurnProcess::session_length() noexcept {
  return stream_.bounded_pareto(shape_, cfg_.session_min, cfg_.session_max);
}

sim::Time ChurnProcess::offline_gap() noexcept {
  return stream_.exponential(1.0 / cfg_.offline_gap_mean);
}

bool ChurnProcess::is_final_departure() noexcept {
  return stream_.bernoulli(cfg_.departure_probability);
}

void AvailabilityTracker::on_join(sim::Time now) noexcept {
  if (online()) return;  // duplicate join: the session already runs
  if (first_join_ < 0.0) first_join_ = now;
  session_start_ = now;
}

void AvailabilityTracker::on_leave(sim::Time now) noexcept {
  if (!online()) return;  // leave before/without a join: nothing to close
  assert(now >= session_start_);
  accumulated_ += now - session_start_;
  session_start_ = -1.0;
  last_leave_ = now;
}

sim::Time AvailabilityTracker::total_session_time(sim::Time now) const noexcept {
  sim::Time t = accumulated_;
  if (online()) t += std::max(0.0, now - session_start_);
  return t;
}

double AvailabilityTracker::availability(sim::Time now) const noexcept {
  if (!ever_joined()) return 0.0;
  const sim::Time horizon = online() ? now : (last_leave_ >= 0.0 ? last_leave_ : now);
  const sim::Time lifetime = horizon - first_join_;
  if (lifetime <= 0.0) return online() ? 1.0 : 0.0;
  return std::clamp(total_session_time(now) / lifetime, 0.0, 1.0);
}

}  // namespace p2panon::net
