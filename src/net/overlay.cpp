#include "net/overlay.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::net {

Overlay::Overlay(const OverlayConfig& cfg, sim::Simulator& simulator, sim::rng::Stream stream)
    : cfg_(cfg),
      sim_(simulator),
      stream_(stream),
      churn_(cfg.churn, stream.child("churn")),
      links_(cfg.link, stream.child("links").next_u64()) {
  assert(cfg.node_count >= 2);
  assert(cfg.degree >= 1 && cfg.degree < cfg.node_count);
  assert(cfg.malicious_fraction >= 0.0 && cfg.malicious_fraction <= 1.0);

  state_.resize(cfg.node_count, cfg.degree);
  for (NodeId id = 0; id < cfg.node_count; ++id) {
    state_.participation_cost[id] = cfg.participation_cost;
  }

  // Assign the malicious fraction uniformly at random.
  auto mal_stream = stream.child("malicious");
  const auto mal_count =
      static_cast<std::size_t>(cfg.malicious_fraction * static_cast<double>(cfg.node_count) + 0.5);
  for (std::size_t idx : mal_stream.sample_indices(cfg.node_count, mal_count)) {
    state_.kind[idx] = NodeKind::kMalicious;
  }

  // Each node randomly selects d distinct neighbours (paper §3), written
  // straight into the node's fixed-stride CSR row.
  auto nb_stream = stream.child("neighbors");
  for (NodeId id = 0; id < cfg.node_count; ++id) {
    auto picks = nb_stream.sample_indices(cfg.node_count - 1, cfg.degree);
    auto row = state_.neighbors_of(id);
    for (std::size_t slot = 0; slot < picks.size(); ++slot) {
      // Map [0, N-1) onto V \ {id}.
      const std::size_t p = picks[slot];
      row[slot] = static_cast<NodeId>(p >= id ? p + 1 : p);
    }
  }
}

void Overlay::start() {
  // Poisson join process: nodes enter the system one by one in a random
  // order, with exponential inter-arrival gaps.
  std::vector<NodeId> order(state_.size());
  for (NodeId id = 0; id < state_.size(); ++id) order[id] = id;
  auto order_stream = stream_.child("join-order");
  order_stream.shuffle(order);

  sim::Time at = 0.0;
  for (NodeId id : order) {
    if (cfg_.malicious_always_online && state_.is_malicious(id)) {
      // Availability attackers are present from the very start and stay.
      sim_.schedule_at(0.0, [this, id] { do_join(id); });
      continue;
    }
    sim_.schedule_at(at, [this, id] { do_join(id); });
    at += churn_.next_join_gap();
  }
}

void Overlay::do_join(NodeId id) {
  if (state_.departed[id] != 0 || state_.online[id] != 0 || state_.crashed[id] != 0) return;
  state_.online[id] = 1;
  state_.tracker[id].on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);
  if (!(cfg_.malicious_always_online && state_.is_malicious(id))) {
    schedule_leave(id);
  }
}

void Overlay::schedule_leave(NodeId id) {
  const sim::Time session = churn_.session_length();
  // Capture the session epoch: if the session ends abnormally (crash,
  // forced offline) before this fires, the epoch moves on and the stale
  // leave becomes a no-op instead of truncating a later session.
  const std::uint64_t epoch = state_.leave_epoch.at(id);
  sim_.schedule_in(session, [this, id, epoch] { do_leave(id, epoch); });
}

void Overlay::do_leave(NodeId id, std::uint64_t leave_epoch) {
  if (state_.online[id] == 0 || state_.leave_epoch[id] != leave_epoch) return;
  state_.online[id] = 0;
  state_.tracker[id].on_leave(sim_.now());
  ++churn_event_count_;
  notify_churn(id, false);

  if (churn_.is_final_departure()) {
    state_.departed[id] = 1;
    replace_departed_neighbor(id);
    return;
  }
  const sim::Time gap = churn_.offline_gap();
  sim_.schedule_in(gap, [this, id] { do_join(id); });
}

void Overlay::force_online(NodeId id) {
  if (state_.online.at(id) != 0) return;
  state_.departed[id] = 0;
  if (state_.crashed[id] != 0) {
    state_.crashed[id] = 0;
    ++state_.leave_epoch[id];
  }
  state_.online[id] = 1;
  state_.tracker[id].on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);
  schedule_leave(id);
}

void Overlay::force_offline(NodeId id) {
  if (state_.online.at(id) == 0) return;
  state_.online[id] = 0;
  ++state_.leave_epoch[id];  // the pending natural leave belongs to a dead session
  state_.tracker[id].on_leave(sim_.now());
  ++churn_event_count_;
  notify_churn(id, false);
}

bool Overlay::crash(NodeId id) {
  if (state_.online.at(id) == 0 || state_.departed[id] != 0) return false;
  state_.online[id] = 0;
  state_.crashed[id] = 1;
  ++state_.leave_epoch[id];  // invalidate the session's pending graceful leave
  // Ground truth sees the downtime (availability, last_leave for the
  // time-to-detect metric) — but observers are NOT notified: that silence
  // is the entire point of a silent crash.
  state_.tracker[id].on_leave(sim_.now());
  ++churn_event_count_;
  return true;
}

void Overlay::recover(NodeId id) {
  if (state_.crashed.at(id) == 0) return;
  state_.crashed[id] = 0;
  ++state_.leave_epoch[id];
  if (state_.departed[id] != 0 || state_.online[id] != 0) return;
  state_.online[id] = 1;
  state_.tracker[id].on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);  // a recovery is an ordinary, visible (re)join
  schedule_leave(id);
}

void Overlay::replace_departed_neighbor(NodeId departed) {
  for (NodeId s = 0; s < state_.size(); ++s) {
    if (s == departed) continue;
    for (NodeId& nb : state_.neighbors_of(s)) {
      if (nb == departed) {
        const NodeId fresh = pick_replacement(s, departed);
        if (fresh == kInvalidNode) continue;  // nobody suitable; keep stale entry
        nb = fresh;
        for (const auto& obs : neighbor_observers_) obs(s, departed, fresh, sim_.now());
      }
    }
  }
}

NodeId Overlay::pick_replacement(NodeId owner, NodeId departed) {
  // Candidates: any non-departed node that is not the owner, not the departed
  // neighbour, and not already in D(owner).
  const auto own_row = state_.neighbors_of(owner);
  std::vector<NodeId> candidates;
  candidates.reserve(state_.size());
  for (NodeId c = 0; c < state_.size(); ++c) {
    if (c == owner || c == departed || state_.departed[c] != 0) continue;
    if (std::find(own_row.begin(), own_row.end(), c) != own_row.end()) continue;
    candidates.push_back(c);
  }
  if (candidates.empty()) return kInvalidNode;
  auto pick_stream = stream_.child("replacement", (static_cast<std::uint64_t>(owner) << 32) ^
                                                      churn_event_count_);
  return candidates[pick_stream.below(candidates.size())];
}

void Overlay::notify_churn(NodeId id, bool online) {
  for (const auto& obs : churn_observers_) obs(id, online, sim_.now());
}

std::vector<NodeId> Overlay::online_nodes() const {
  std::vector<NodeId> out;
  out.reserve(state_.size());
  for (NodeId id = 0; id < state_.size(); ++id) {
    if (state_.online[id] != 0) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Overlay::online_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId nb : state_.neighbors_of(id)) {
    if (state_.online.at(nb) != 0) out.push_back(nb);
  }
  return out;
}

std::vector<NodeId> Overlay::good_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < state_.size(); ++id) {
    if (state_.is_good(id)) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Overlay::malicious_nodes() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < state_.size(); ++id) {
    if (state_.is_malicious(id)) out.push_back(id);
  }
  return out;
}

}  // namespace p2panon::net
