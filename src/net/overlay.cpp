#include "net/overlay.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::net {

Overlay::Overlay(const OverlayConfig& cfg, sim::Simulator& simulator, sim::rng::Stream stream)
    : cfg_(cfg),
      sim_(simulator),
      stream_(stream),
      churn_(cfg.churn, stream.child("churn")),
      links_(cfg.link, stream.child("links").next_u64()) {
  assert(cfg.node_count >= 2);
  assert(cfg.degree >= 1 && cfg.degree < cfg.node_count);
  assert(cfg.malicious_fraction >= 0.0 && cfg.malicious_fraction <= 1.0);

  nodes_.resize(cfg.node_count);
  for (NodeId id = 0; id < cfg.node_count; ++id) {
    nodes_[id].id = id;
    nodes_[id].participation_cost = cfg.participation_cost;
  }

  // Assign the malicious fraction uniformly at random.
  auto mal_stream = stream.child("malicious");
  const auto mal_count =
      static_cast<std::size_t>(cfg.malicious_fraction * static_cast<double>(cfg.node_count) + 0.5);
  for (std::size_t idx : mal_stream.sample_indices(cfg.node_count, mal_count)) {
    nodes_[idx].kind = NodeKind::kMalicious;
  }

  // Each node randomly selects d distinct neighbours (paper §3).
  auto nb_stream = stream.child("neighbors");
  for (NodeId id = 0; id < cfg.node_count; ++id) {
    auto picks = nb_stream.sample_indices(cfg.node_count - 1, cfg.degree);
    nodes_[id].neighbors.reserve(cfg.degree);
    for (std::size_t p : picks) {
      // Map [0, N-1) onto V \ {id}.
      const auto neighbor = static_cast<NodeId>(p >= id ? p + 1 : p);
      nodes_[id].neighbors.push_back(neighbor);
    }
  }
}

void Overlay::start() {
  // Poisson join process: nodes enter the system one by one in a random
  // order, with exponential inter-arrival gaps.
  std::vector<NodeId> order(nodes_.size());
  for (NodeId id = 0; id < nodes_.size(); ++id) order[id] = id;
  auto order_stream = stream_.child("join-order");
  order_stream.shuffle(order);

  sim::Time at = 0.0;
  for (NodeId id : order) {
    if (cfg_.malicious_always_online && nodes_[id].is_malicious()) {
      // Availability attackers are present from the very start and stay.
      sim_.schedule_at(0.0, [this, id] { do_join(id); });
      continue;
    }
    sim_.schedule_at(at, [this, id] { do_join(id); });
    at += churn_.next_join_gap();
  }
}

void Overlay::do_join(NodeId id) {
  Node& n = nodes_.at(id);
  if (n.departed || n.online || n.crashed) return;
  n.online = true;
  n.tracker.on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);
  if (!(cfg_.malicious_always_online && n.is_malicious())) {
    schedule_leave(id);
  }
}

void Overlay::schedule_leave(NodeId id) {
  const sim::Time session = churn_.session_length();
  // Capture the session epoch: if the session ends abnormally (crash,
  // forced offline) before this fires, the epoch moves on and the stale
  // leave becomes a no-op instead of truncating a later session.
  const std::uint64_t epoch = nodes_.at(id).leave_epoch;
  sim_.schedule_in(session, [this, id, epoch] { do_leave(id, epoch); });
}

void Overlay::do_leave(NodeId id, std::uint64_t leave_epoch) {
  Node& n = nodes_.at(id);
  if (!n.online || n.leave_epoch != leave_epoch) return;
  n.online = false;
  n.tracker.on_leave(sim_.now());
  ++churn_event_count_;
  notify_churn(id, false);

  if (churn_.is_final_departure()) {
    n.departed = true;
    replace_departed_neighbor(id);
    return;
  }
  const sim::Time gap = churn_.offline_gap();
  sim_.schedule_in(gap, [this, id] { do_join(id); });
}

void Overlay::force_online(NodeId id) {
  Node& n = nodes_.at(id);
  if (n.online) return;
  n.departed = false;
  if (n.crashed) {
    n.crashed = false;
    ++n.leave_epoch;
  }
  n.online = true;
  n.tracker.on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);
  schedule_leave(id);
}

void Overlay::force_offline(NodeId id) {
  Node& n = nodes_.at(id);
  if (!n.online) return;
  n.online = false;
  ++n.leave_epoch;  // the pending natural leave belongs to a dead session
  n.tracker.on_leave(sim_.now());
  ++churn_event_count_;
  notify_churn(id, false);
}

bool Overlay::crash(NodeId id) {
  Node& n = nodes_.at(id);
  if (!n.online || n.departed) return false;
  n.online = false;
  n.crashed = true;
  ++n.leave_epoch;  // invalidate the session's pending graceful leave
  // Ground truth sees the downtime (availability, last_leave for the
  // time-to-detect metric) — but observers are NOT notified: that silence
  // is the entire point of a silent crash.
  n.tracker.on_leave(sim_.now());
  ++churn_event_count_;
  return true;
}

void Overlay::recover(NodeId id) {
  Node& n = nodes_.at(id);
  if (!n.crashed) return;
  n.crashed = false;
  ++n.leave_epoch;
  if (n.departed || n.online) return;
  n.online = true;
  n.tracker.on_join(sim_.now());
  ++churn_event_count_;
  notify_churn(id, true);  // a recovery is an ordinary, visible (re)join
  schedule_leave(id);
}

void Overlay::replace_departed_neighbor(NodeId departed) {
  for (Node& s : nodes_) {
    if (s.id == departed) continue;
    for (NodeId& nb : s.neighbors) {
      if (nb == departed) {
        const NodeId fresh = pick_replacement(s.id, departed);
        if (fresh == kInvalidNode) continue;  // nobody suitable; keep stale entry
        nb = fresh;
        for (const auto& obs : neighbor_observers_) obs(s.id, departed, fresh, sim_.now());
      }
    }
  }
}

NodeId Overlay::pick_replacement(NodeId owner, NodeId departed) {
  // Candidates: any non-departed node that is not the owner, not the departed
  // neighbour, and not already in D(owner).
  const Node& s = nodes_.at(owner);
  std::vector<NodeId> candidates;
  candidates.reserve(nodes_.size());
  for (const Node& c : nodes_) {
    if (c.id == owner || c.id == departed || c.departed) continue;
    if (std::find(s.neighbors.begin(), s.neighbors.end(), c.id) != s.neighbors.end()) continue;
    candidates.push_back(c.id);
  }
  if (candidates.empty()) return kInvalidNode;
  auto pick_stream = stream_.child("replacement", (static_cast<std::uint64_t>(owner) << 32) ^
                                                      churn_event_count_);
  return candidates[pick_stream.below(candidates.size())];
}

void Overlay::notify_churn(NodeId id, bool online) {
  for (const auto& obs : churn_observers_) obs(id, online, sim_.now());
}

std::vector<NodeId> Overlay::online_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const Node& n : nodes_) {
    if (n.online) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Overlay::online_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (NodeId nb : nodes_.at(id).neighbors) {
    if (nodes_.at(nb).online) out.push_back(nb);
  }
  return out;
}

std::vector<NodeId> Overlay::good_nodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_good()) out.push_back(n.id);
  }
  return out;
}

std::vector<NodeId> Overlay::malicious_nodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_) {
    if (n.is_malicious()) out.push_back(n.id);
  }
  return out;
}

}  // namespace p2panon::net
