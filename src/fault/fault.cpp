#include "fault/fault.hpp"

#include <cassert>

namespace p2panon::fault {

FaultInjector::FaultInjector(const FaultConfig& cfg, net::Overlay& overlay,
                             sim::rng::Stream stream)
    : cfg_(cfg),
      overlay_(overlay),
      loss_stream_(stream.child("loss")),
      jitter_stream_(stream.child("jitter")),
      probe_stream_(stream.child("probe")),
      last_crash_(overlay.size(), -1.0),
      last_recovery_(overlay.size(), -1.0) {
  assert(cfg.link_loss >= 0.0 && cfg.link_loss <= 1.0);
  assert(cfg.probe_false_negative >= 0.0 && cfg.probe_false_negative <= 1.0);
  assert(cfg.delay_jitter >= 0.0);
  assert(cfg.crash_rate_per_hour >= 0.0);
  crash_streams_.reserve(overlay.size());
  for (net::NodeId id = 0; id < overlay.size(); ++id) {
    crash_streams_.push_back(stream.child("crash", id));
  }
}

void FaultInjector::start() {
  if (cfg_.crash_rate_per_hour <= 0.0) return;
  for (net::NodeId id = 0; id < overlay_.size(); ++id) schedule_next_crash(id);
}

void FaultInjector::schedule_next_crash(net::NodeId id) {
  const double rate_per_sec = cfg_.crash_rate_per_hour / sim::hours(1.0);
  const sim::Time gap = crash_streams_[id].exponential(rate_per_sec);
  overlay_.simulator().schedule_in(gap, [this, id] { fire_crash(id); });
}

void FaultInjector::fire_crash(net::NodeId id) {
  // The hazard runs whether or not the node is currently up; a draw that
  // lands while the node is offline (or already crashed) is a miss. This
  // keeps each node's crash schedule a function of its own stream alone.
  if (overlay_.crash(id)) {
    ++crashes_;
    last_crash_[id] = overlay_.simulator().now();
    if (cfg_.crash_recovery_mean > 0.0) {
      const sim::Time down = crash_streams_[id].exponential(1.0 / cfg_.crash_recovery_mean);
      overlay_.simulator().schedule_in(down, [this, id] {
        last_recovery_[id] = overlay_.simulator().now();
        overlay_.recover(id);
      });
    }
  }
  schedule_next_crash(id);
}

bool FaultInjector::partitioned(net::NodeId a, net::NodeId b) const {
  if (cfg_.partitions.empty()) return false;
  const auto half = static_cast<net::NodeId>(overlay_.size() / 2);
  if ((a < half) == (b < half)) return false;
  const sim::Time now = overlay_.simulator().now();
  for (const PartitionWindow& w : cfg_.partitions) {
    if (now >= w.start && now < w.end) return true;
  }
  return false;
}

bool FaultInjector::drop_message(net::NodeId from, net::NodeId to) {
  if (partitioned(from, to)) {
    ++drops_;
    return true;
  }
  if (cfg_.link_loss > 0.0 && loss_stream_.bernoulli(cfg_.link_loss)) {
    ++drops_;
    return true;
  }
  return false;
}

sim::Time FaultInjector::extra_delay(net::NodeId from, net::NodeId to) {
  if (cfg_.delay_jitter <= 0.0) return 0.0;
  const sim::Time base = overlay_.links().transfer_time(from, to);
  return jitter_stream_.uniform(0.0, cfg_.delay_jitter * base);
}

bool FaultInjector::probe_observation(net::NodeId prober, net::NodeId target) {
  // A dead (or unreachable) target never answers: false positives are
  // physically impossible, so only the true->false direction is degraded.
  if (!overlay_.is_online(target)) return false;
  if (partitioned(prober, target)) return false;
  if (cfg_.probe_false_negative > 0.0 &&
      probe_stream_.bernoulli(cfg_.probe_false_negative)) {
    ++probe_false_negatives_;
    return false;
  }
  return true;
}

}  // namespace p2panon::fault
