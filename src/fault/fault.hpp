// Deterministic fault injection for the overlay's message and liveness
// planes (robustness PR; see DESIGN.md "Fault model").
//
// Every fault draw comes from a seeded sim::rng::Stream child, so a faulty
// run is exactly as reproducible as a clean one: same seed, same drops,
// same crashes, same lies — across any replicate-pool size. A
// default-constructed FaultConfig is all-off and the injector is then never
// even constructed by the harness, so the existing result corpus stays
// bitwise unchanged.
//
// Fault taxonomy:
//  * link loss         — each message independently dropped with p = link_loss;
//  * delay jitter      — per-message extra latency U[0, delay_jitter * base];
//  * silent crashes    — per-node Poisson hazard; a crashed node goes down
//                        WITHOUT any churn-observer notification (unlike a
//                        graceful leave), so failure must be *detected* by
//                        timeouts, not learned from the simulator;
//  * probe lies        — a live target is reported dead with
//                        p = probe_false_negative (false negatives only:
//                        a dead node never answers a probe);
//  * partitions        — scheduled bisections (node id < N/2 vs the rest)
//                        during [start, end) windows; cross-side messages
//                        and probes fail deterministically.
#pragma once

#include <cstdint>
#include <vector>

#include "net/overlay.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace p2panon::fault {

/// One scheduled bisection: the overlay splits into {id < N/2} vs the rest
/// for sim-time [start, end).
struct PartitionWindow {
  sim::Time start = 0.0;
  sim::Time end = 0.0;
};

/// Bank-facing faults for the settlement lifecycle (robustness PR 5). These
/// strike the *payment* plane: the messages between nodes and the bank, and
/// the liveness of the parties between escrow funding and close. Any enabled
/// knob (or `lifecycle = true`) switches the harness from the instantaneous
/// post-run settle to the event-driven, deadline-guarded settlement phase;
/// all-off stays bitwise identical to the pre-lifecycle pipeline. Every draw
/// comes from a dedicated seeded stream child ("bank-faults"), so a chaos
/// schedule replays exactly.
struct BankFaultConfig {
  /// Force the deadline-driven settlement lifecycle even with every fault
  /// probability at zero (the clean-path lifecycle regression tests).
  bool lifecycle = false;
  double claim_loss = 0.0;        ///< P(a forwarder's claim submission is lost)
  sim::Time claim_delay_mean = 0.0;  ///< exponential extra delay per claim
  double initiator_crash = 0.0;   ///< P(initiator dies between funding and close)
  double forwarder_crash = 0.0;   ///< P(a forwarder dies before claiming anything)
  /// Claim deadline after open; at deadline the bank abandons (claims
  /// pending, pro-rata) or expires (zero claims, full refund) on its own.
  sim::Time claim_deadline = sim::minutes(30.0);
  /// The surviving initiator sends close() this long after opening.
  sim::Time close_after = sim::minutes(10.0);
  /// Honest claim submissions spread uniformly over this window after open.
  sim::Time claim_spread = sim::minutes(5.0);

  [[nodiscard]] bool enabled() const noexcept {
    return lifecycle || claim_loss > 0.0 || claim_delay_mean > 0.0 ||
           initiator_crash > 0.0 || forwarder_crash > 0.0;
  }
};

struct FaultConfig {
  double link_loss = 0.0;            ///< per-message drop probability
  double delay_jitter = 0.0;         ///< extra delay up to this fraction of base
  double crash_rate_per_hour = 0.0;  ///< per-node silent-crash hazard rate
  sim::Time crash_recovery_mean = sim::minutes(10.0);  ///< 0 = crashed for good
  double probe_false_negative = 0.0;  ///< P(live target reported dead)
  std::vector<PartitionWindow> partitions;
  BankFaultConfig bank;               ///< settlement-lifecycle fault plane

  /// True when any *message/liveness* fault source is active; the harness
  /// switches to the timeout-driven (async + data-phase) pipeline only in
  /// that case. Bank faults are orthogonal: they trigger the settlement
  /// lifecycle (see BankFaultConfig::enabled), not the async data plane.
  [[nodiscard]] bool enabled() const noexcept {
    return link_loss > 0.0 || delay_jitter > 0.0 || crash_rate_per_hour > 0.0 ||
           probe_false_negative > 0.0 || !partitions.empty();
  }
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& cfg, net::Overlay& overlay, sim::rng::Stream stream);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule the per-node crash hazards. Call once, before running the
  /// simulator (a no-op when crash_rate_per_hour == 0).
  void start();

  /// Decide the fate of one message from -> to at the current sim time.
  /// Partition cuts are deterministic; loss is an independent Bernoulli draw.
  [[nodiscard]] bool drop_message(net::NodeId from, net::NodeId to);

  /// Extra one-way latency for a message on (from, to): U[0, jitter * base].
  /// Zero (and no stream draw) when delay_jitter == 0.
  [[nodiscard]] sim::Time extra_delay(net::NodeId from, net::NodeId to);

  /// What a probe by `prober` observes about `target`: ground truth liveness
  /// degraded by partitions and false negatives. Never a false positive.
  [[nodiscard]] bool probe_observation(net::NodeId prober, net::NodeId target);

  /// Whether a and b are on opposite sides of an active bisection window.
  [[nodiscard]] bool partitioned(net::NodeId a, net::NodeId b) const;

  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t messages_dropped() const noexcept { return drops_; }
  [[nodiscard]] std::uint64_t probe_false_negatives() const noexcept {
    return probe_false_negatives_;
  }

  /// Time of the node's most recent silent crash / recovery; -1 if never.
  [[nodiscard]] sim::Time last_crash_time(net::NodeId id) const { return last_crash_.at(id); }
  [[nodiscard]] sim::Time last_recovery_time(net::NodeId id) const {
    return last_recovery_.at(id);
  }

  [[nodiscard]] const FaultConfig& config() const noexcept { return cfg_; }

 private:
  void schedule_next_crash(net::NodeId id);
  void fire_crash(net::NodeId id);

  FaultConfig cfg_;
  net::Overlay& overlay_;
  sim::rng::Stream loss_stream_;
  sim::rng::Stream jitter_stream_;
  sim::rng::Stream probe_stream_;
  std::vector<sim::rng::Stream> crash_streams_;  ///< one per node, keyed by id
  std::vector<sim::Time> last_crash_;
  std::vector<sim::Time> last_recovery_;
  std::uint64_t crashes_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t probe_false_negatives_ = 0;
};

}  // namespace p2panon::fault
