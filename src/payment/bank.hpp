// The central bank (paper §2.2): accounts, blind e-cash withdrawal,
// double-spend detection, and escrows that fund connection-set settlements.
//
// Anonymity property delivered: the bank learns which *accounts* are paid as
// forwarders (the paper only needs initiator anonymity — forwarder identity
// is visible to the path anyway), but it cannot link an escrow's funding
// coins to the initiator's account, because those coins were withdrawn
// blind. Forwarder receipts never contain the initiator's identity.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/ids.hpp"
#include "payment/audit.hpp"
#include "payment/crypto.hpp"
#include "payment/money.hpp"
#include "payment/token.hpp"
#include "sim/rng.hpp"

namespace p2panon::payment {

inline constexpr AccountId kInvalidAccount = 0xFFFFFFFFu;

enum class DepositResult {
  kOk,
  kBadSignature,
  kUnknownDenomination,
  kDoubleSpend,
};

class Bank {
 public:
  explicit Bank(sim::rng::Stream stream);

  Bank(const Bank&) = delete;
  Bank& operator=(const Bank&) = delete;

  /// Open an account bound to a network identity. `mac_key` is the secret
  /// the node will use to MAC its forwarding receipts; the bank stores it to
  /// verify settlement claims. Returns the new account id.
  AccountId open_account(net::NodeId owner, Amount initial_balance, crypto::u64 mac_key);

  /// Open an unbound (pseudonymous) account, e.g. an initiator's refund
  /// destination.
  AccountId open_pseudonymous_account(Amount initial_balance = 0);

  [[nodiscard]] Amount balance(AccountId id) const;
  [[nodiscard]] std::size_t account_count() const noexcept { return accounts_.size(); }

  /// Account registered for a network identity; kInvalidAccount when none.
  [[nodiscard]] AccountId account_of(net::NodeId owner) const;

  /// Public key used for coins of this denomination (created on first use —
  /// deterministic given the bank's RNG stream and request order).
  [[nodiscard]] const crypto::RsaPublicKey& denomination_key(Amount denom);

  /// Blind withdrawal of one coin: debit `denom` from the account and sign
  /// the blinded message under the denomination key. Returns nullopt on
  /// insufficient funds. The bank never sees the coin serial.
  [[nodiscard]] std::optional<crypto::u64> withdraw_blind(AccountId id, Amount denom,
                                                          crypto::u64 blinded_message);

  /// Deposit a coin into an account. Marks the serial spent on success.
  DepositResult deposit_coin(AccountId id, const Coin& coin);

  /// Fund a new escrow with coins. All coins must verify and be unspent;
  /// on any bad coin the whole funding is rejected (and *no* coin is marked
  /// spent). Returns the escrow id on success.
  [[nodiscard]] std::optional<EscrowId> open_escrow(const std::vector<Coin>& funding);

  [[nodiscard]] Amount escrow_balance(EscrowId id) const;
  [[nodiscard]] std::size_t escrow_count() const noexcept { return escrows_.size(); }

  /// Transfer from escrow to an account. Fails (returns false) on
  /// insufficient escrow balance; balances are unchanged on failure.
  bool escrow_pay(EscrowId id, AccountId to, Amount amount);

  /// Same mechanics as escrow_pay, journaled as a refund (unclaimed
  /// remainder at close, or the full escrow on expiry) so the audit log can
  /// reconcile payouts against refunds per settlement outcome.
  bool escrow_refund(EscrowId id, AccountId to, Amount amount);

  /// MAC key registered for an account (bank-internal verification helper).
  [[nodiscard]] crypto::u64 account_mac_key(AccountId id) const;

  /// Network identity bound to an account; kInvalidNode for pseudonymous.
  [[nodiscard]] net::NodeId account_owner(AccountId id) const;

  /// Total money in existence (accounts + escrows). Conserved by every
  /// operation except withdraw (burns into coins) and deposit (re-mints);
  /// total_money() + outstanding_coin_value() is the true invariant.
  [[nodiscard]] Amount total_money() const;

  /// Value withdrawn into coins and not yet re-deposited or escrowed.
  [[nodiscard]] Amount outstanding_coin_value() const noexcept { return outstanding_; }

  [[nodiscard]] std::size_t spent_serials() const noexcept { return spent_.size(); }

  /// Journal every balance-moving operation into `log` (not owned; nullptr
  /// detaches). The journal never sees coin serials, only amounts.
  void attach_audit(AuditLog* log) noexcept { audit_ = log; }

 private:
  void journal(TxKind kind, AccountId account, EscrowId escrow, Amount amount) {
    if (audit_ != nullptr) audit_->record(kind, account, escrow, amount);
  }

  struct Account {
    net::NodeId owner = net::kInvalidNode;
    Amount balance = 0;
    crypto::u64 mac_key = 0;
  };

  [[nodiscard]] bool is_spent(const Coin& c) const;
  void mark_spent(const Coin& c);

  sim::rng::Stream stream_;
  std::vector<Account> accounts_;
  std::unordered_map<net::NodeId, AccountId> by_owner_;
  std::map<Amount, crypto::RsaKeyPair> denom_keys_;
  /// Spent-coin ledger keyed by (serial, denomination) digest.
  std::unordered_set<crypto::u64> spent_;
  std::vector<Amount> escrows_;
  Amount outstanding_ = 0;
  AuditLog* audit_ = nullptr;
};

/// Client-side wallet: drives blind-withdrawal rounds against a bank and
/// assembles coins for arbitrary amounts.
class Wallet {
 public:
  Wallet(Bank& bank, AccountId account, sim::rng::Stream stream) noexcept
      : bank_(bank), account_(account), stream_(stream) {}

  [[nodiscard]] AccountId account() const noexcept { return account_; }

  /// Withdraw coins totalling exactly `total`. Returns nullopt (with no
  /// funds moved beyond successfully withdrawn coins being auto-redeposited)
  /// on insufficient balance.
  [[nodiscard]] std::optional<std::vector<Coin>> withdraw(Amount total);

 private:
  Bank& bank_;
  AccountId account_;
  sim::rng::Stream stream_;
};

}  // namespace p2panon::payment
