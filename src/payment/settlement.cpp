#include "payment/settlement.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace p2panon::payment {

SettlementId SettlementEngine::open(net::PairId pair, EscrowId escrow, SettlementTerms terms,
                                    const std::vector<PathRecord>& records,
                                    AccountId refund_account, sim::Time deadline) {
  assert(terms.forwarding_benefit >= 0 && terms.routing_benefit >= 0);
  Settlement s;
  s.pair = pair;
  s.escrow = escrow;
  s.terms = terms;
  s.refund_account = refund_account;
  s.deadline = deadline;

  std::unordered_set<net::NodeId> distinct;
  std::unordered_set<std::uint32_t> conns;
  for (const PathRecord& rec : records) {
    conns.insert(rec.conn_index);
    net::NodeId pred = rec.entry;
    for (std::size_t i = 0; i < rec.forwarders.size(); ++i) {
      const net::NodeId fwd = rec.forwarders[i];
      const net::NodeId succ = i + 1 < rec.forwarders.size() ? rec.forwarders[i + 1] : rec.exit;
      ++s.valid_hops[{rec.conn_index, fwd, pred, succ}];
      distinct.insert(fwd);
      pred = fwd;
    }
  }
  s.set_size = distinct.size();
  s.completed_connections = conns.size();

  const auto id = static_cast<SettlementId>(settlements_.size());
  settlements_.push_back(std::move(s));
  return id;
}

ClaimResult SettlementEngine::submit_claim(SettlementId id, AccountId claimant,
                                           const ForwardReceipt& receipt) {
  const crypto::u64 key = bank_.account_mac_key(claimant);
  ForwardReceipt check = receipt;
  check.mac = 0;
  return submit_checked(id, claimant, bank_.account_owner(claimant), receipt,
                        receipt_mac(key, check) == receipt.mac);
}

SettlementEngine::ClaimBatchResult SettlementEngine::submit_claim_batch(
    SettlementId id, AccountId claimant, std::span<const ForwardReceipt> receipts) {
  // Batched MAC verification: one key fetch, one streaming pass over the
  // whole batch, no ledger state touched until every verdict is in.
  const crypto::u64 key = bank_.account_mac_key(claimant);
  const net::NodeId owner = bank_.account_owner(claimant);
  mac_scratch_.assign(receipts.size(), 0);
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    ForwardReceipt check = receipts[i];
    check.mac = 0;
    mac_scratch_[i] = receipt_mac(key, check) == receipts[i].mac ? 1 : 0;
  }
  ClaimBatchResult out;
  for (std::size_t i = 0; i < receipts.size(); ++i) {
    const ClaimResult r = submit_checked(id, claimant, owner, receipts[i], mac_scratch_[i] != 0);
    if (r == ClaimResult::kAccepted) {
      ++out.accepted;
    } else {
      ++out.rejected;
    }
  }
  return out;
}

ClaimResult SettlementEngine::submit_checked(SettlementId id, AccountId claimant,
                                             net::NodeId claimant_owner,
                                             const ForwardReceipt& receipt, bool mac_ok) {
  if (id >= settlements_.size()) return ClaimResult::kUnknownSettlement;
  Settlement& s = settlements_[id];
  if (is_terminal(s.state)) {
    // First-wins: money already moved; a late or replayed claim must see a
    // hard terminal refusal, never a payout.
    ++s.rejected;
    ++claims_rejected_;
    ++claims_after_terminal_;
    return ClaimResult::kNotOpen;
  }
  if (receipt.pair != s.pair) {
    ++s.rejected;
    ++claims_rejected_;
    return ClaimResult::kUnknownSettlement;
  }
  // The claimant must be the account bound to the forwarder named in the
  // receipt — you cannot redeem someone else's receipt.
  if (claimant_owner != receipt.forwarder) {
    ++s.rejected;
    ++claims_rejected_;
    return ClaimResult::kWrongClaimant;
  }
  // MAC must verify under the claimant's registered key.
  if (!mac_ok) {
    ++s.rejected;
    ++claims_rejected_;
    return ClaimResult::kBadMac;
  }
  const auto hop = std::make_tuple(receipt.conn_index, receipt.forwarder, receipt.predecessor,
                                   receipt.successor);
  auto valid_it = s.valid_hops.find(hop);
  if (valid_it == s.valid_hops.end()) {
    ++s.rejected;
    ++claims_rejected_;
    return ClaimResult::kNotOnPath;  // over-claim
  }
  // A re-formed set settles under a fresh settlement with the same pair id;
  // a receipt already redeemed under a sibling settlement is a replay even
  // though this settlement has never seen it.
  const auto redeemed_it = redeemed_.find(receipt.mac);
  if (redeemed_it != redeemed_.end() && redeemed_it->second != id) {
    ++s.rejected;
    ++claims_rejected_;
    ++cross_settlement_replays_;
    return ClaimResult::kDuplicate;
  }
  std::size_t& used = s.seen_claims[hop];
  if (used >= valid_it->second) {
    ++s.rejected;
    ++claims_rejected_;
    return ClaimResult::kDuplicate;  // replay beyond the hop's multiplicity
  }
  ++used;
  ++s.accepted_instances[claimant];
  ++claims_accepted_;
  redeemed_.emplace(receipt.mac, id);
  if (s.state == SettlementState::kOpen) s.state = SettlementState::kClaiming;
  return ClaimResult::kAccepted;
}

const SettlementReport& SettlementEngine::finalize(SettlementId id, SettlementState outcome) {
  Settlement& s = settlements_[id];
  assert(!is_terminal(s.state) && "finalize on a terminal settlement");
  assert(is_terminal(outcome));

  SettlementReport report;
  report.escrow_in = bank_.escrow_balance(s.escrow);
  report.forwarder_set_size = s.set_size;
  report.rejected_claims = s.rejected;
  report.outcome = outcome;
  report.completed_connections = s.completed_connections;
  report.pro_rata = outcome == SettlementState::kAbandoned && !s.accepted_instances.empty();

  // Deterministic payout order: ascending account id.
  std::vector<AccountId> claimants;
  claimants.reserve(s.accepted_instances.size());
  for (const auto& [acct, m] : s.accepted_instances) {
    (void)m;
    claimants.push_back(acct);
  }
  std::sort(claimants.begin(), claimants.end());

  // Routing benefit splits over the *recorded* forwarder-set size ||pi|| —
  // for an abandoned set that is the realized set of its completed
  // connections, so the pro-rata share is P_r / ||pi_realized||. Shares of
  // forwarders that never claimed are refunded to the initiator, never
  // redistributed (otherwise claimants would profit from suppressing other
  // nodes' claims).
  const std::vector<Amount> shares =
      s.set_size > 0 ? split_evenly(s.terms.routing_benefit, s.set_size) : std::vector<Amount>{};

  std::size_t share_idx = 0;
  for (AccountId acct : claimants) {
    const auto m = static_cast<Amount>(s.accepted_instances.at(acct));
    Amount due = m * s.terms.forwarding_benefit;
    if (share_idx < shares.size()) due += shares[share_idx++];
    const bool ok = bank_.escrow_pay(s.escrow, acct, due);
    assert(ok && "escrow underfunded for verified claims");
    if (ok) {
      report.paid_out += due;
      report.payouts[acct] += due;
      report.accepted_claims += static_cast<std::size_t>(m);
    }
  }

  const Amount leftover = bank_.escrow_balance(s.escrow);
  if (leftover > 0) {
    const bool ok = bank_.escrow_refund(s.escrow, s.refund_account, leftover);
    assert(ok);
    if (ok) report.refunded = leftover;
  }

  s.state = outcome;
  s.report = std::move(report);
  return *s.report;
}

const SettlementReport& SettlementEngine::close(SettlementId id) {
  Settlement& s = settlements_.at(id);
  if (is_terminal(s.state)) return *s.report;  // first-wins
  return finalize(id, SettlementState::kClosed);
}

const SettlementReport& SettlementEngine::abandon(SettlementId id) {
  Settlement& s = settlements_.at(id);
  if (is_terminal(s.state)) return *s.report;  // first-wins
  return finalize(id, s.accepted_instances.empty() ? SettlementState::kExpired
                                                   : SettlementState::kAbandoned);
}

std::size_t SettlementEngine::expire_due(sim::Time now) {
  std::size_t terminalised = 0;
  for (SettlementId id = 0; id < settlements_.size(); ++id) {
    Settlement& s = settlements_[id];
    if (is_terminal(s.state)) continue;  // first-wins
    if (s.deadline < 0.0 || now < s.deadline) continue;
    finalize(id, s.accepted_instances.empty() ? SettlementState::kExpired
                                              : SettlementState::kAbandoned);
    ++terminalised;
  }
  return terminalised;
}

SettlementState SettlementEngine::state(SettlementId id) const {
  return settlements_.at(id).state;
}

sim::Time SettlementEngine::deadline(SettlementId id) const {
  return settlements_.at(id).deadline;
}

bool SettlementEngine::is_closed(SettlementId id) const {
  return settlements_.at(id).report.has_value();
}

const SettlementReport* SettlementEngine::report(SettlementId id) const {
  const Settlement& s = settlements_.at(id);
  return s.report.has_value() ? &*s.report : nullptr;
}

std::size_t SettlementEngine::open_settlements() const noexcept {
  std::size_t n = 0;
  for (const Settlement& s : settlements_) {
    if (!s.report.has_value()) ++n;
  }
  return n;
}

std::size_t SettlementEngine::forwarder_set_size(SettlementId id) const {
  return settlements_.at(id).set_size;
}

std::vector<crypto::u64> SettlementEngine::redeemed_macs() const {
  std::vector<crypto::u64> macs;
  macs.reserve(redeemed_.size());
  for (const auto& [mac, id] : redeemed_) {
    (void)id;
    macs.push_back(mac);
  }
  std::sort(macs.begin(), macs.end());
  return macs;
}

}  // namespace p2panon::payment
