#include "payment/settlement.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace p2panon::payment {

SettlementId SettlementEngine::open(net::PairId pair, EscrowId escrow, SettlementTerms terms,
                                    const std::vector<PathRecord>& records,
                                    AccountId refund_account) {
  assert(terms.forwarding_benefit >= 0 && terms.routing_benefit >= 0);
  Settlement s;
  s.pair = pair;
  s.escrow = escrow;
  s.terms = terms;
  s.refund_account = refund_account;

  std::unordered_set<net::NodeId> distinct;
  for (const PathRecord& rec : records) {
    net::NodeId pred = rec.entry;
    for (std::size_t i = 0; i < rec.forwarders.size(); ++i) {
      const net::NodeId fwd = rec.forwarders[i];
      const net::NodeId succ = i + 1 < rec.forwarders.size() ? rec.forwarders[i + 1] : rec.exit;
      ++s.valid_hops[{rec.conn_index, fwd, pred, succ}];
      distinct.insert(fwd);
      pred = fwd;
    }
  }
  s.set_size = distinct.size();

  const auto id = static_cast<SettlementId>(settlements_.size());
  settlements_.push_back(std::move(s));
  return id;
}

ClaimResult SettlementEngine::submit_claim(SettlementId id, AccountId claimant,
                                           const ForwardReceipt& receipt) {
  if (id >= settlements_.size()) return ClaimResult::kUnknownSettlement;
  Settlement& s = settlements_[id];
  if (s.report.has_value() || receipt.pair != s.pair) {
    ++s.rejected;
    return ClaimResult::kUnknownSettlement;
  }
  // The claimant must be the account bound to the forwarder named in the
  // receipt — you cannot redeem someone else's receipt.
  if (bank_.account_owner(claimant) != receipt.forwarder) {
    ++s.rejected;
    return ClaimResult::kWrongClaimant;
  }
  // MAC must verify under the claimant's registered key.
  const crypto::u64 key = bank_.account_mac_key(claimant);
  ForwardReceipt check = receipt;
  check.mac = 0;
  if (receipt_mac(key, check) != receipt.mac) {
    ++s.rejected;
    return ClaimResult::kBadMac;
  }
  const auto hop = std::make_tuple(receipt.conn_index, receipt.forwarder, receipt.predecessor,
                                   receipt.successor);
  auto valid_it = s.valid_hops.find(hop);
  if (valid_it == s.valid_hops.end()) {
    ++s.rejected;
    return ClaimResult::kNotOnPath;  // over-claim
  }
  std::size_t& used = s.seen_claims[hop];
  if (used >= valid_it->second) {
    ++s.rejected;
    return ClaimResult::kDuplicate;  // replay beyond the hop's multiplicity
  }
  ++used;
  ++s.accepted_instances[claimant];
  return ClaimResult::kAccepted;
}

const SettlementReport& SettlementEngine::close(SettlementId id) {
  Settlement& s = settlements_.at(id);
  if (s.report.has_value()) return *s.report;

  SettlementReport report;
  report.escrow_in = bank_.escrow_balance(s.escrow);
  report.forwarder_set_size = s.set_size;
  report.rejected_claims = s.rejected;

  // Deterministic payout order: ascending account id.
  std::vector<AccountId> claimants;
  claimants.reserve(s.accepted_instances.size());
  for (const auto& [acct, m] : s.accepted_instances) {
    (void)m;
    claimants.push_back(acct);
  }
  std::sort(claimants.begin(), claimants.end());

  // Routing benefit splits over the *recorded* forwarder-set size ||pi||;
  // shares of forwarders that never claimed are refunded to the initiator,
  // never redistributed (otherwise claimants would profit from suppressing
  // other nodes' claims).
  const std::vector<Amount> shares =
      s.set_size > 0 ? split_evenly(s.terms.routing_benefit, s.set_size) : std::vector<Amount>{};

  std::size_t share_idx = 0;
  for (AccountId acct : claimants) {
    const auto m = static_cast<Amount>(s.accepted_instances.at(acct));
    Amount due = m * s.terms.forwarding_benefit;
    if (share_idx < shares.size()) due += shares[share_idx++];
    const bool ok = bank_.escrow_pay(s.escrow, acct, due);
    assert(ok && "escrow underfunded for verified claims");
    if (ok) {
      report.paid_out += due;
      report.payouts[acct] += due;
      report.accepted_claims += static_cast<std::size_t>(m);
    }
  }

  const Amount leftover = bank_.escrow_balance(s.escrow);
  if (leftover > 0) {
    const bool ok = bank_.escrow_pay(s.escrow, s.refund_account, leftover);
    assert(ok);
    if (ok) report.refunded = leftover;
  }

  s.report = std::move(report);
  return *s.report;
}

bool SettlementEngine::is_closed(SettlementId id) const {
  return settlements_.at(id).report.has_value();
}

std::size_t SettlementEngine::open_settlements() const noexcept {
  std::size_t n = 0;
  for (const Settlement& s : settlements_) {
    if (!s.report.has_value()) ++n;
  }
  return n;
}

std::size_t SettlementEngine::forwarder_set_size(SettlementId id) const {
  return settlements_.at(id).set_size;
}

}  // namespace p2panon::payment
