#include "payment/audit.hpp"

#include <ostream>

namespace p2panon::payment {

Amount ReplayState::total() const noexcept {
  Amount t = outstanding;
  for (Amount a : accounts) t += a;
  for (Amount e : escrows) t += e;
  return t;
}

void AuditLog::record(TxKind kind, AccountId account, EscrowId escrow, Amount amount) {
  log_.emplace_back(log_.size(), kind, account, escrow, amount);
}

bool AuditLog::replay(ReplayState& out) const {
  out = ReplayState{};
  auto account_ok = [&out](AccountId id) { return id < out.accounts.size(); };
  auto escrow_ok = [&out](EscrowId id) { return id < out.escrows.size(); };

  for (const Transaction& tx : log_) {
    if (tx.amount < 0) return false;
    switch (tx.kind) {
      case TxKind::kOpenAccount:
        if (tx.account != out.accounts.size()) return false;  // ids are dense
        out.accounts.push_back(tx.amount);
        break;
      case TxKind::kWithdraw:
        if (!account_ok(tx.account) || out.accounts[tx.account] < tx.amount) return false;
        out.accounts[tx.account] -= tx.amount;
        out.outstanding += tx.amount;
        break;
      case TxKind::kDeposit:
        if (!account_ok(tx.account) || out.outstanding < tx.amount) return false;
        out.outstanding -= tx.amount;
        out.accounts[tx.account] += tx.amount;
        break;
      case TxKind::kEscrowFund:
        if (tx.escrow != out.escrows.size()) return false;  // ids are dense
        if (out.outstanding < tx.amount) return false;      // funded by coins
        out.outstanding -= tx.amount;
        out.escrows.push_back(tx.amount);
        break;
      case TxKind::kEscrowPay:
      case TxKind::kEscrowRefund:
        if (!account_ok(tx.account) || !escrow_ok(tx.escrow)) return false;
        if (out.escrows[tx.escrow] < tx.amount) return false;
        out.escrows[tx.escrow] -= tx.amount;
        out.accounts[tx.account] += tx.amount;
        break;
    }
  }
  return true;
}

void AuditLog::print(std::ostream& os) const {
  static const char* names[] = {"open",        "withdraw",  "deposit",
                                "escrow-fund", "escrow-pay", "escrow-refund"};
  for (const Transaction& tx : log_) {
    os << tx.seq << "  " << names[static_cast<std::size_t>(tx.kind)] << "  acct="
       << tx.account << " escrow=" << tx.escrow << " amount=" << to_credits(tx.amount)
       << '\n';
  }
}

}  // namespace p2panon::payment
