// Toy-strength cryptographic primitives for the payment substrate.
//
// The paper's payment mechanism (described only in its technical report)
// needs blind signatures for unlinkable e-cash, message digests and MACs for
// path receipts. We implement RSA blind signatures over 64-bit moduli
// (two ~31-bit primes) and FNV-based digests/MACs. Key sizes are TOY — the
// point of this substrate is protocol structure (blinding, unlinkability,
// double-spend ledgers, receipt verification), not cryptographic strength;
// see DESIGN.md §1.3.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>

#include "sim/rng.hpp"

namespace p2panon::payment::crypto {

using u64 = std::uint64_t;

/// (a * b) mod m without overflow.
[[nodiscard]] constexpr u64 mulmod(u64 a, u64 b, u64 m) noexcept {
  return static_cast<u64>((static_cast<__uint128_t>(a) * b) % m);
}

/// (base ^ exp) mod m.
[[nodiscard]] constexpr u64 powmod(u64 base, u64 exp, u64 m) noexcept {
  u64 result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

[[nodiscard]] constexpr u64 gcd_u64(u64 a, u64 b) noexcept {
  while (b != 0) {
    const u64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Modular inverse of a mod m; nullopt when gcd(a, m) != 1.
[[nodiscard]] std::optional<u64> modinv(u64 a, u64 m) noexcept;

/// Deterministic Miller-Rabin, exact for all 64-bit inputs.
[[nodiscard]] bool is_prime(u64 n) noexcept;

/// Next prime >= n (n must leave room below 2^63).
[[nodiscard]] u64 next_prime(u64 n) noexcept;

inline constexpr u64 kFnvInit = 0xCBF29CE484222325ULL;

/// Continue an FNV-1a fold from state `h` over more 64-bit words. digest()
/// below is digest_more(kFnvInit, words) — callers that fold a canonical
/// field enumeration (e.g. receipt_words()) chain through this so the byte
/// stream is identical to one flat digest({...}) call.
[[nodiscard]] constexpr u64 digest_more(u64 h, std::span<const u64> words) noexcept {
  for (u64 w : words) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  }
  return h;
}

/// FNV-1a over a sequence of 64-bit words; the digest/MAC primitive.
[[nodiscard]] constexpr u64 digest(std::initializer_list<u64> words) noexcept {
  return digest_more(kFnvInit, {words.begin(), words.size()});
}

/// Keyed MAC: digest with the secret key mixed in first and last
/// (sponge-ish sandwich; toy-strength like the rest).
[[nodiscard]] constexpr u64 mac(u64 key, std::span<const u64> words) noexcept {
  u64 h = digest({key});
  for (u64 w : words) h = digest({h, w});
  return digest({h, key});
}

[[nodiscard]] constexpr u64 mac(u64 key, std::initializer_list<u64> words) noexcept {
  return mac(key, std::span<const u64>{words.begin(), words.size()});
}

struct RsaPublicKey {
  u64 n = 0;  ///< modulus
  u64 e = 0;  ///< public exponent

  [[nodiscard]] bool valid() const noexcept { return n > 1 && e > 1; }
  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  u64 d = 0;  ///< private exponent
};

/// Generate an RSA keypair with two ~31-bit primes drawn from the stream.
[[nodiscard]] RsaKeyPair generate_keypair(sim::rng::Stream& stream) noexcept;

/// Sign (raw RSA: m^d mod n). Message must be < n.
[[nodiscard]] u64 rsa_sign(const RsaKeyPair& key, u64 message) noexcept;

/// Verify sig^e mod n == message.
[[nodiscard]] bool rsa_verify(const RsaPublicKey& key, u64 message, u64 signature) noexcept;

/// Client-side blinding state for one blind-signature round.
struct Blinding {
  u64 blinded_message = 0;  ///< m * r^e mod n (what the signer sees)
  u64 unblinder = 0;        ///< r^{-1} mod n
};

/// Blind `message` under `key` using randomness from `stream`.
/// message must be < key.n.
[[nodiscard]] Blinding blind(const RsaPublicKey& key, u64 message,
                             sim::rng::Stream& stream) noexcept;

/// Remove the blinding from a signature over a blinded message.
[[nodiscard]] u64 unblind(const RsaPublicKey& key, u64 blind_signature,
                          const Blinding& blinding) noexcept;

}  // namespace p2panon::payment::crypto
