// Route verification chain (the technical report's "cryptographic
// operations involved in route formation and verification", paper §2.2/§5).
//
// When the responder's confirmation travels the reverse path, each
// forwarder folds its own MAC'd statement into an accumulating digest:
//
//   V_R            = MAC(k_R, cid || conn || "responder")
//   V_i            = MAC(k_i, V_{i+1} || cid || conn || pred_i || succ_i)
//
// so the initiator receives V_1 together with the claimed hop list. The
// initiator cannot check individual MACs (it holds no forwarder keys), but
// the *bank* can: at settlement it recomputes the chain from the registered
// keys and the submitted path record. Any tampering — a dropped hop, an
// inserted hop, a reordered pair, a forged key — changes V_1.
//
// This hardens path recreation beyond the per-hop receipts of
// payment/receipt.hpp: receipts authenticate each hop in isolation; the
// chain additionally authenticates the hops' ORDER and completeness, which
// is what the initiator's "recreate the path and validate it" step needs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ids.hpp"
#include "payment/crypto.hpp"

namespace p2panon::payment {

/// One hop's contribution, carried alongside the confirmation.
struct ChainLink {
  net::NodeId forwarder = net::kInvalidNode;
  net::NodeId predecessor = net::kInvalidNode;
  net::NodeId successor = net::kInvalidNode;
  crypto::u64 accumulated = 0;  ///< V_i after this forwarder folded in
};

/// A verification chain for one connection, built responder-first.
class RouteVerificationChain {
 public:
  RouteVerificationChain(net::PairId pair, std::uint32_t conn_index) noexcept
      : pair_(pair), conn_index_(conn_index) {}

  [[nodiscard]] net::PairId pair() const noexcept { return pair_; }
  [[nodiscard]] std::uint32_t conn_index() const noexcept { return conn_index_; }

  /// Seed the chain at the responder with its key.
  void seed(crypto::u64 responder_key, net::NodeId responder);

  /// Fold in one forwarder (called in reverse-path order: the hop nearest
  /// the responder first).
  void extend(crypto::u64 forwarder_key, net::NodeId forwarder, net::NodeId predecessor,
              net::NodeId successor);

  [[nodiscard]] bool seeded() const noexcept { return seeded_; }
  [[nodiscard]] crypto::u64 head() const noexcept { return head_; }
  [[nodiscard]] const std::vector<ChainLink>& links() const noexcept { return links_; }

  /// The hop list the initiator extracts (path order: first hop first).
  [[nodiscard]] std::vector<net::NodeId> claimed_forwarders() const;

 private:
  net::PairId pair_;
  std::uint32_t conn_index_;
  bool seeded_ = false;
  crypto::u64 head_ = 0;
  /// Reverse-path order: links_[0] is the forwarder nearest the responder.
  std::vector<ChainLink> links_;
};

/// Build the chain for a completed path (full node sequence
/// initiator..responder), fetching each participant's MAC key via
/// `key_of(node)`.
template <typename KeyFn>
[[nodiscard]] RouteVerificationChain build_chain(net::PairId pair, std::uint32_t conn_index,
                                                 std::span<const net::NodeId> path,
                                                 KeyFn&& key_of) {
  RouteVerificationChain chain(pair, conn_index);
  const net::NodeId responder = path.back();
  chain.seed(key_of(responder), responder);
  for (std::size_t i = path.size() - 2; i >= 1; --i) {
    chain.extend(key_of(path[i]), path[i], path[i - 1], path[i + 1]);
  }
  return chain;
}

enum class ChainVerdict {
  kValid,
  kNotSeeded,
  kEmptyPath,          ///< no links for a path that claims forwarders
  kHeadMismatch,       ///< recomputed V_1 differs: tampered order/content
  kEndpointMismatch,   ///< chain does not terminate at the expected endpoints
};

/// Bank-side verification: recompute the chain from registered keys and the
/// claimed hop sequence, compare against the received head. `key_of` maps
/// node -> registered MAC key.
template <typename KeyFn>
[[nodiscard]] ChainVerdict verify_chain(const RouteVerificationChain& chain,
                                        net::NodeId initiator, net::NodeId responder,
                                        KeyFn&& key_of) {
  if (!chain.seeded()) return ChainVerdict::kNotSeeded;
  const auto& links = chain.links();
  if (links.empty()) {
    // Direct path: the head must be the responder seed alone.
    RouteVerificationChain fresh(chain.pair(), chain.conn_index());
    fresh.seed(key_of(responder), responder);
    return fresh.head() == chain.head() ? ChainVerdict::kValid : ChainVerdict::kHeadMismatch;
  }
  // Endpoints: the outermost link's predecessor is the initiator, the
  // innermost link's successor is the responder.
  if (links.back().predecessor != initiator || links.front().successor != responder) {
    return ChainVerdict::kEndpointMismatch;
  }
  // Adjacent links must interlock: link[j]'s forwarder is link[j+1]'s
  // successor (reverse-path order).
  for (std::size_t j = 0; j + 1 < links.size(); ++j) {
    if (links[j + 1].successor != links[j].forwarder) {
      return ChainVerdict::kEndpointMismatch;
    }
  }
  // Recompute the accumulated MACs with the registered keys.
  RouteVerificationChain fresh(chain.pair(), chain.conn_index());
  fresh.seed(key_of(responder), responder);
  for (const ChainLink& link : links) {
    fresh.extend(key_of(link.forwarder), link.forwarder, link.predecessor, link.successor);
  }
  return fresh.head() == chain.head() ? ChainVerdict::kValid : ChainVerdict::kHeadMismatch;
}

}  // namespace p2panon::payment
