#include "payment/crypto.hpp"

#include <cassert>

namespace p2panon::payment::crypto {

std::optional<u64> modinv(u64 a, u64 m) noexcept {
  // Extended Euclid on signed 128-bit intermediates.
  __int128 t = 0, new_t = 1;
  __int128 r = m, new_r = a % m;
  while (new_r != 0) {
    const __int128 q = r / new_r;
    const __int128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const __int128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) return std::nullopt;
  if (t < 0) t += m;
  return static_cast<u64>(t);
}

bool is_prime(u64 n) noexcept {
  if (n < 2) return false;
  for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  u64 d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  // These witnesses make Miller-Rabin deterministic for all n < 3.3e24.
  for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
    u64 x = powmod(a % n, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < s - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

u64 next_prime(u64 n) noexcept {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

RsaKeyPair generate_keypair(sim::rng::Stream& stream) noexcept {
  constexpr u64 e = 65537;
  for (;;) {
    // Two distinct ~31-bit primes; n fits comfortably in 62 bits.
    const u64 p = next_prime((stream.next_u64() & 0x3FFFFFFFULL) | 0x40000000ULL);
    u64 q = next_prime((stream.next_u64() & 0x3FFFFFFFULL) | 0x40000000ULL);
    if (p == q) continue;
    const u64 phi = (p - 1) * (q - 1);
    if (gcd_u64(e, phi) != 1) continue;
    const auto d = modinv(e, phi);
    if (!d) continue;
    RsaKeyPair kp;
    kp.pub.n = p * q;
    kp.pub.e = e;
    kp.d = *d;
    return kp;
  }
}

u64 rsa_sign(const RsaKeyPair& key, u64 message) noexcept {
  assert(message < key.pub.n);
  return powmod(message, key.d, key.pub.n);
}

bool rsa_verify(const RsaPublicKey& key, u64 message, u64 signature) noexcept {
  if (!key.valid() || message >= key.n || signature >= key.n) return false;
  return powmod(signature, key.e, key.n) == message;
}

Blinding blind(const RsaPublicKey& key, u64 message, sim::rng::Stream& stream) noexcept {
  assert(key.valid() && message < key.n);
  for (;;) {
    const u64 r = stream.next_u64() % key.n;
    if (r < 2) continue;
    const auto inv = modinv(r, key.n);
    if (!inv) continue;  // r shares a factor with n (astronomically unlikely)
    Blinding b;
    b.blinded_message = mulmod(message, powmod(r, key.e, key.n), key.n);
    b.unblinder = *inv;
    return b;
  }
}

u64 unblind(const RsaPublicKey& key, u64 blind_signature, const Blinding& blinding) noexcept {
  return mulmod(blind_signature, blinding.unblinder, key.n);
}

}  // namespace p2panon::payment::crypto
