// Unlinkable e-cash coins.
//
// A coin is a (serial, denomination) pair carrying the bank's RSA signature
// over digest(serial, denomination) under the *per-denomination* key. The
// bank signs the digest blinded, so it cannot link a deposited coin back to
// the withdrawal (and hence to the withdrawing account) — this is what keeps
// the initiator anonymous when it funds an escrow.
#pragma once

#include "payment/crypto.hpp"
#include "payment/money.hpp"

namespace p2panon::payment {

struct Coin {
  crypto::u64 serial = 0;  ///< withdrawer-chosen random serial
  Amount denomination = 0;
  crypto::u64 signature = 0;  ///< bank signature over message()

  /// The signed message: digest of serial and denomination, reduced mod n by
  /// the caller before signing/verifying.
  [[nodiscard]] crypto::u64 message(const crypto::RsaPublicKey& key) const noexcept {
    return crypto::digest({serial, static_cast<crypto::u64>(denomination)}) % key.n;
  }

  [[nodiscard]] bool verify(const crypto::RsaPublicKey& key) const noexcept {
    return crypto::rsa_verify(key, message(key), signature);
  }
};

/// Canonical denomination ladder: powers of two in milli-credits, which lets
/// any integer amount be decomposed exactly with a bounded number of
/// per-denomination bank keys.
[[nodiscard]] inline std::vector<Amount> decompose_amount(Amount value) {
  std::vector<Amount> denoms;
  for (Amount bit = 1; value > 0; bit <<= 1) {
    if (value & bit) {
      denoms.push_back(bit);
      value &= ~bit;
    }
  }
  return denoms;
}

}  // namespace p2panon::payment
