// Connection-set settlement (paper §2.2) with a crash-tolerant lifecycle.
//
// After all k connections of a recurring set pi complete, the initiator's
// escrow pays every forwarder  m * P_f + P_r / ||pi||  where m is its number
// of forwarding instances across the set and ||pi|| the size of the distinct
// forwarder set. The engine is bank-side logic:
//
//   1. The initiator opens a settlement against a funded escrow, submitting
//      the validated per-connection path records (recreated from the
//      reverse-path receipt chains). Records cover only connections whose
//      completion the initiator confirmed — receipts for dead connections
//      are excluded at the source rather than over-claimed.
//   2. Forwarders submit claims: their account plus their receipts.
//   3. The engine verifies each receipt's MAC under the claimant's
//      registered key, rejects receipts that do not match the initiator's
//      path records (over-claims), and dedupes replays — both within one
//      settlement and across settlements of the same connection set (a
//      re-formed set must not pay one receipt twice).
//   4. The settlement terminates exactly once (first-wins; replayed or
//      racing bank messages are no-ops):
//
//        Open ──claim──> Claiming ──close()──────────> Closed
//          │                │
//          │                ├──abandon()/deadline────> Abandoned (pro-rata)
//          └──deadline, zero verified claims────────> Expired  (full refund)
//
//      close() pays verified claims out of escrow and refunds the remainder
//      to the initiator-designated (pseudonymous) refund account. abandon()
//      — explicit, or implied by an expired deadline with verified claims —
//      pays the same verified-claims math pro-rata over the *completed*
//      connections the records describe (m counts completed instances only,
//      the routing share splits over the realized ||pi||). An expired
//      settlement with zero verified claims refunds the whole escrow.
//
// Cheating handled: forged MACs, over-claims (receipts for hops not on any
// validated path), replayed receipts (same or sibling settlement), claims
// against the wrong account, claims raced past close/abandon, and initiator
// payment refusal (impossible by construction — the escrow was funded
// before any forwarding happened). An initiator crash between funding and
// close can delay forwarders' payment until the deadline, never void it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "payment/bank.hpp"
#include "payment/receipt.hpp"
#include "sim/types.hpp"

namespace p2panon::payment {

using SettlementId = std::uint32_t;

/// Settlements opened without a deadline never expire (the pre-fault
/// synchronous pipeline closes them in the same step it opens them).
inline constexpr sim::Time kNoSettlementDeadline = -1.0;

/// Lifecycle of one settlement. Closed/Abandoned/Expired are terminal; every
/// transition site is first-wins guarded (see tools/lint/check_invariants.py
/// rule R5), so a replayed close, a racing abandon, or a late deadline sweep
/// can never move money twice.
enum class SettlementState : std::uint8_t {
  kOpen,       ///< opened, no verified claim yet
  kClaiming,   ///< at least one verified claim accepted
  kClosed,     ///< initiator closed: full payout of verified claims
  kAbandoned,  ///< initiator never closed: pro-rata payout of verified claims
  kExpired,    ///< deadline passed with zero verified claims: full refund
};

[[nodiscard]] constexpr bool is_terminal(SettlementState s) noexcept {
  return s == SettlementState::kClosed || s == SettlementState::kAbandoned ||
         s == SettlementState::kExpired;
}

/// The initiator's validated record of one connection's path: the ordered
/// forwarder list for pi^j (excluding initiator and responder), plus the
/// on-the-wire entry node (the first forwarder's predecessor — the initiator
/// itself, though nothing marks it as such: a forwarder of a longer path
/// would look identical, which is exactly the Crowds-style deniability the
/// paper relies on) and the exit node (the responder).
struct PathRecord {
  std::uint32_t conn_index = 0;
  net::NodeId entry = net::kInvalidNode;
  net::NodeId exit = net::kInvalidNode;
  std::vector<net::NodeId> forwarders;
};

struct SettlementTerms {
  Amount forwarding_benefit = 0;  ///< P_f per forwarding instance
  Amount routing_benefit = 0;     ///< P_r shared across the forwarder set
};

enum class ClaimResult {
  kAccepted,
  kBadMac,          ///< MAC does not verify under the claimant's key
  kWrongClaimant,   ///< receipt names a different forwarder than the account
  kNotOnPath,       ///< over-claim: hop absent from the validated records
  kDuplicate,       ///< replayed receipt (same settlement or a sibling's)
  kUnknownSettlement,
  kNotOpen,         ///< settlement already closed/abandoned/expired
};

struct SettlementReport {
  Amount escrow_in = 0;
  Amount paid_out = 0;
  Amount refunded = 0;
  std::size_t accepted_claims = 0;
  std::size_t rejected_claims = 0;
  std::size_t forwarder_set_size = 0;  ///< ||pi|| over the settled records
  SettlementState outcome = SettlementState::kClosed;
  /// Abandoned with at least one verified claim: forwarders were paid over
  /// the partial (completed-connections-only) record set.
  bool pro_rata = false;
  std::size_t completed_connections = 0;  ///< distinct conn_index in records
  /// Per-account payout, for auditing. Ordered so consumers that fold the
  /// payouts into floating-point sums iterate in ascending account order
  /// without sorting first.
  std::map<AccountId, Amount> payouts;
};

class SettlementEngine {
 public:
  explicit SettlementEngine(Bank& bank) noexcept : bank_(bank) {}

  SettlementEngine(const SettlementEngine&) = delete;
  SettlementEngine& operator=(const SettlementEngine&) = delete;

  /// Open a settlement for connection-set `pair` against `escrow`. The path
  /// records are the initiator's validated paths (completed connections
  /// only); `refund_account` receives whatever the escrow does not pay out.
  /// A non-negative `deadline` arms the crash-tolerant lifecycle: once the
  /// simulator clock reaches it, expire_due() terminalises the settlement
  /// without the initiator.
  SettlementId open(net::PairId pair, EscrowId escrow, SettlementTerms terms,
                    const std::vector<PathRecord>& records, AccountId refund_account,
                    sim::Time deadline = kNoSettlementDeadline);

  /// Submit one receipt as a claim by `claimant`.
  ClaimResult submit_claim(SettlementId id, AccountId claimant, const ForwardReceipt& receipt);

  struct ClaimBatchResult {
    std::size_t accepted = 0;
    std::size_t rejected = 0;
  };

  /// Batched claim submission: one claimant redeems many receipts against
  /// one settlement. The claimant's registered key and owner are fetched
  /// once and every receipt's MAC is verified in a single streaming pass
  /// before any ledger state is touched; the verified receipts then flow
  /// through the normal path-validation/replay machinery. The outcome is
  /// identical to submitting each receipt through submit_claim in order
  /// (pinned by tests/payment/test_sharded_settlement.cpp) — the batch form
  /// exists so a sharded settlement plane can amortise verification over
  /// forwarder-epoch aggregates instead of paying it per claim.
  ClaimBatchResult submit_claim_batch(SettlementId id, AccountId claimant,
                                      std::span<const ForwardReceipt> receipts);

  /// Pay all verified claims and refund the remainder. Each forwarder with
  /// at least one verified instance receives m*P_f plus an equal share of
  /// P_r across the *claimed* forwarder set (unclaimed shares are refunded).
  /// Idempotent / first-wins: on an already-terminal settlement it returns
  /// the stored report unchanged (no second payout, no second refund).
  const SettlementReport& close(SettlementId id);

  /// Terminalise without the initiator (the bank learned it is gone): pay
  /// the verified claims pro-rata over the completed records, refund the
  /// rest. First-wins like close().
  const SettlementReport& abandon(SettlementId id);

  /// Deadline sweep, driven by the simulator clock: every non-terminal
  /// settlement whose deadline is <= `now` is abandoned (verified claims
  /// pending) or expired (zero verified claims — full refund). Returns the
  /// number of settlements terminalised by this call; idempotent.
  std::size_t expire_due(sim::Time now);

  [[nodiscard]] SettlementState state(SettlementId id) const;
  [[nodiscard]] sim::Time deadline(SettlementId id) const;
  /// Terminal in any way (closed, abandoned, or expired).
  [[nodiscard]] bool is_closed(SettlementId id) const;
  [[nodiscard]] std::size_t open_settlements() const noexcept;

  /// Report of a terminal settlement; nullptr while still open/claiming.
  [[nodiscard]] const SettlementReport* report(SettlementId id) const;

  /// ||pi|| as recorded by the initiator (distinct forwarders across records).
  [[nodiscard]] std::size_t forwarder_set_size(SettlementId id) const;

  /// Number of settlements ever opened (terminal or not).
  [[nodiscard]] std::size_t settlement_count() const noexcept { return settlements_.size(); }

  /// Sorted copy of every receipt digest this engine has redeemed. Sorted so
  /// consumers never observe the hash map's iteration order; used by the
  /// sharded plane's merge reconciliation to assert that no receipt was
  /// redeemed by two bank partitions.
  [[nodiscard]] std::vector<crypto::u64> redeemed_macs() const;

  // --- Engine-wide counters (for the chaos-sweep conservation audit).
  [[nodiscard]] std::uint64_t claims_accepted() const noexcept { return claims_accepted_; }
  [[nodiscard]] std::uint64_t claims_rejected() const noexcept { return claims_rejected_; }
  /// Claims that arrived after close/abandon/expire — each one a would-be
  /// double-spend the lifecycle refused.
  [[nodiscard]] std::uint64_t claims_after_terminal() const noexcept {
    return claims_after_terminal_;
  }
  /// Receipts replayed against a sibling settlement of the same set.
  [[nodiscard]] std::uint64_t cross_settlement_replays() const noexcept {
    return cross_settlement_replays_;
  }

 private:
  struct Settlement {
    net::PairId pair = net::kInvalidPair;
    EscrowId escrow = 0;
    SettlementTerms terms;
    AccountId refund_account = kInvalidAccount;
    SettlementState state = SettlementState::kOpen;
    sim::Time deadline = kNoSettlementDeadline;
    /// (conn_index, forwarder, predecessor, successor) -> multiplicity on
    /// the validated paths (a node may occupy several positions on one path,
    /// and in degenerate cycles even with identical neighbours).
    std::map<std::tuple<std::uint32_t, net::NodeId, net::NodeId, net::NodeId>, std::size_t>
        valid_hops;
    std::size_t set_size = 0;  ///< distinct forwarders in records
    std::size_t completed_connections = 0;  ///< distinct conn_index in records
    /// Accepted (deduped) instances per claimant account.
    std::unordered_map<AccountId, std::size_t> accepted_instances;
    /// Claims already accepted per hop tuple (replay guard, bounded by the
    /// hop's multiplicity).
    std::map<std::tuple<std::uint32_t, net::NodeId, net::NodeId, net::NodeId>, std::size_t>
        seen_claims;
    std::size_t rejected = 0;
    std::optional<SettlementReport> report;  ///< set on terminalisation
  };

  /// The one place money moves: pays verified claims, refunds the rest,
  /// stamps the terminal state. Callers must have first-wins-checked.
  const SettlementReport& finalize(SettlementId id, SettlementState outcome);

  /// Shared claim path with the claimant's owner identity and MAC verdict
  /// precomputed (submit_claim computes them inline; submit_claim_batch
  /// hoists them out of the per-receipt loop).
  ClaimResult submit_checked(SettlementId id, AccountId claimant, net::NodeId claimant_owner,
                             const ForwardReceipt& receipt, bool mac_ok);

  std::vector<Settlement> settlements_;
  /// Per-receipt MAC verdicts of the current batch (reused across batches so
  /// steady-state batch submission does not allocate).
  std::vector<std::uint8_t> mac_scratch_;
  /// Receipt digest -> settlement that redeemed it (cross-settlement replay
  /// guard for re-formed sets sharing a pair id).
  std::unordered_map<crypto::u64, SettlementId> redeemed_;
  Bank& bank_;
  std::uint64_t claims_accepted_ = 0;
  std::uint64_t claims_rejected_ = 0;
  std::uint64_t claims_after_terminal_ = 0;
  std::uint64_t cross_settlement_replays_ = 0;
};

}  // namespace p2panon::payment
