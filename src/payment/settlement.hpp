// Connection-set settlement (paper §2.2).
//
// After all k connections of a recurring set pi complete, the initiator's
// escrow pays every forwarder  m * P_f + P_r / ||pi||  where m is its number
// of forwarding instances across the set and ||pi|| the size of the distinct
// forwarder set. The engine is bank-side logic:
//
//   1. The initiator opens a settlement against a funded escrow, submitting
//      the validated per-connection path records (recreated from the
//      reverse-path receipt chains).
//   2. Forwarders submit claims: their account plus their receipts.
//   3. The engine verifies each receipt's MAC under the claimant's
//      registered key, rejects receipts that do not match the initiator's
//      path records (over-claims), and dedupes replays.
//   4. close() pays verified claims out of escrow and refunds the remainder
//      to the initiator-designated (pseudonymous) refund account.
//
// Cheating handled: forged MACs, over-claims (receipts for hops not on any
// validated path), replayed receipts, claims against the wrong account, and
// initiator payment refusal (impossible by construction — the escrow was
// funded before any forwarding happened).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "payment/bank.hpp"
#include "payment/receipt.hpp"

namespace p2panon::payment {

using SettlementId = std::uint32_t;

/// The initiator's validated record of one connection's path: the ordered
/// forwarder list for pi^j (excluding initiator and responder), plus the
/// on-the-wire entry node (the first forwarder's predecessor — the initiator
/// itself, though nothing marks it as such: a forwarder of a longer path
/// would look identical, which is exactly the Crowds-style deniability the
/// paper relies on) and the exit node (the responder).
struct PathRecord {
  std::uint32_t conn_index = 0;
  net::NodeId entry = net::kInvalidNode;
  net::NodeId exit = net::kInvalidNode;
  std::vector<net::NodeId> forwarders;
};

struct SettlementTerms {
  Amount forwarding_benefit = 0;  ///< P_f per forwarding instance
  Amount routing_benefit = 0;     ///< P_r shared across the forwarder set
};

enum class ClaimResult {
  kAccepted,
  kBadMac,          ///< MAC does not verify under the claimant's key
  kWrongClaimant,   ///< receipt names a different forwarder than the account
  kNotOnPath,       ///< over-claim: hop absent from the validated records
  kDuplicate,       ///< replayed receipt
  kUnknownSettlement,
};

struct SettlementReport {
  Amount escrow_in = 0;
  Amount paid_out = 0;
  Amount refunded = 0;
  std::size_t accepted_claims = 0;
  std::size_t rejected_claims = 0;
  std::size_t forwarder_set_size = 0;  ///< ||pi||
  /// Per-account payout, for auditing. Ordered so consumers that fold the
  /// payouts into floating-point sums iterate in ascending account order
  /// without sorting first.
  std::map<AccountId, Amount> payouts;
};

class SettlementEngine {
 public:
  explicit SettlementEngine(Bank& bank) noexcept : bank_(bank) {}

  SettlementEngine(const SettlementEngine&) = delete;
  SettlementEngine& operator=(const SettlementEngine&) = delete;

  /// Open a settlement for connection-set `pair` against `escrow`. The path
  /// records are the initiator's validated paths; `refund_account` receives
  /// whatever the escrow does not pay out.
  SettlementId open(net::PairId pair, EscrowId escrow, SettlementTerms terms,
                    const std::vector<PathRecord>& records, AccountId refund_account);

  /// Submit one receipt as a claim by `claimant`.
  ClaimResult submit_claim(SettlementId id, AccountId claimant, const ForwardReceipt& receipt);

  /// Pay all verified claims and refund the remainder. Each forwarder with
  /// at least one verified instance receives m*P_f plus an equal share of
  /// P_r across the *claimed* forwarder set (unclaimed shares are refunded).
  /// Idempotent: second close returns the stored report.
  const SettlementReport& close(SettlementId id);

  [[nodiscard]] bool is_closed(SettlementId id) const;
  [[nodiscard]] std::size_t open_settlements() const noexcept;

  /// ||pi|| as recorded by the initiator (distinct forwarders across records).
  [[nodiscard]] std::size_t forwarder_set_size(SettlementId id) const;

 private:
  struct Settlement {
    net::PairId pair = net::kInvalidPair;
    EscrowId escrow = 0;
    SettlementTerms terms;
    AccountId refund_account = kInvalidAccount;
    /// (conn_index, forwarder, predecessor, successor) -> multiplicity on
    /// the validated paths (a node may occupy several positions on one path,
    /// and in degenerate cycles even with identical neighbours).
    std::map<std::tuple<std::uint32_t, net::NodeId, net::NodeId, net::NodeId>, std::size_t>
        valid_hops;
    std::size_t set_size = 0;  ///< distinct forwarders in records
    /// Accepted (deduped) instances per claimant account.
    std::unordered_map<AccountId, std::size_t> accepted_instances;
    /// Claims already accepted per hop tuple (replay guard, bounded by the
    /// hop's multiplicity).
    std::map<std::tuple<std::uint32_t, net::NodeId, net::NodeId, net::NodeId>, std::size_t>
        seen_claims;
    std::size_t rejected = 0;
    std::optional<SettlementReport> report;  ///< set on close
  };

  std::vector<Settlement> settlements_;
  Bank& bank_;
};

}  // namespace p2panon::payment
