// Forwarding receipts.
//
// When the responder's confirmation travels the reverse path (paper §2.2),
// every forwarder appends path information. We realise that information as a
// MAC'd receipt per (connection, hop): the forwarder states its predecessor
// and successor for connection `conn_index` of connection-set `pair`, and
// authenticates the statement with the MAC key it registered at the bank.
// The initiator uses the receipt chain to recreate and validate the path;
// the bank uses the MACs at settlement to verify forwarder claims. Receipts
// never mention the initiator.
#pragma once

#include <array>
#include <cstdint>

#include "net/ids.hpp"
#include "payment/crypto.hpp"

namespace p2panon::payment {

struct ForwardReceipt {
  net::PairId pair = net::kInvalidPair;  ///< connection-set id (cid family)
  std::uint32_t conn_index = 0;          ///< which pi^j in the set
  net::NodeId forwarder = net::kInvalidNode;
  net::NodeId predecessor = net::kInvalidNode;
  net::NodeId successor = net::kInvalidNode;
  crypto::u64 mac = 0;

  friend bool operator==(const ForwardReceipt&, const ForwardReceipt&) = default;
};

/// The canonical field enumeration of a receipt — THE single serialization
/// site. The MAC below, the sharded settlement plane's aggregate digest
/// (sharded_settlement.cpp), and the transport wire codec
/// (transport/wire_codec.cpp) all walk the receipt through this one list,
/// so the wire format, the MAC input, and the in-memory struct cannot
/// drift: adding a field here changes all three in lockstep.
inline constexpr std::size_t kReceiptWordCount = 5;

[[nodiscard]] constexpr std::array<crypto::u64, kReceiptWordCount> receipt_words(
    const ForwardReceipt& r) noexcept {
  return {static_cast<crypto::u64>(r.pair), static_cast<crypto::u64>(r.conn_index),
          static_cast<crypto::u64>(r.forwarder), static_cast<crypto::u64>(r.predecessor),
          static_cast<crypto::u64>(r.successor)};
}

/// Inverse of receipt_words(): rebuild the receipt from its canonical word
/// list (plus the MAC, which rides alongside rather than inside the list).
[[nodiscard]] constexpr ForwardReceipt receipt_from_words(
    const std::array<crypto::u64, kReceiptWordCount>& w, crypto::u64 mac) noexcept {
  ForwardReceipt r;
  r.pair = static_cast<net::PairId>(w[0]);
  r.conn_index = static_cast<std::uint32_t>(w[1]);
  r.forwarder = static_cast<net::NodeId>(w[2]);
  r.predecessor = static_cast<net::NodeId>(w[3]);
  r.successor = static_cast<net::NodeId>(w[4]);
  r.mac = mac;
  return r;
}

/// MAC over all receipt fields under the forwarder's registered key.
[[nodiscard]] inline crypto::u64 receipt_mac(crypto::u64 key, const ForwardReceipt& r) noexcept {
  const auto words = receipt_words(r);
  return crypto::mac(key, std::span<const crypto::u64>{words});
}

[[nodiscard]] inline ForwardReceipt make_receipt(crypto::u64 key, net::PairId pair,
                                                 std::uint32_t conn_index, net::NodeId forwarder,
                                                 net::NodeId predecessor,
                                                 net::NodeId successor) noexcept {
  ForwardReceipt r{pair, conn_index, forwarder, predecessor, successor, 0};
  r.mac = receipt_mac(key, r);
  return r;
}

}  // namespace p2panon::payment
