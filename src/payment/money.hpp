// Monetary amounts for the payment substrate.
//
// The payment system does exact integer accounting in milli-credits so that
// settlement conservation (escrow in == payouts + refund) holds to the last
// unit. The simulation's utility arithmetic stays in doubles; conversion
// happens at the payment boundary.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace p2panon::payment {

/// Milli-credits. 1 credit == 1000 Amount units.
using Amount = std::int64_t;

[[nodiscard]] inline Amount from_credits(double credits) noexcept {
  return static_cast<Amount>(std::llround(credits * 1000.0));
}

[[nodiscard]] inline double to_credits(Amount a) noexcept {
  return static_cast<double>(a) / 1000.0;
}

/// Split `total` into `parts` near-equal integer shares that sum exactly to
/// `total` (largest-remainder method: the first total%parts shares get one
/// extra unit). Used for the routing-benefit split P_r / ||pi||.
[[nodiscard]] inline std::vector<Amount> split_evenly(Amount total, std::size_t parts) {
  std::vector<Amount> shares;
  if (parts == 0) return shares;
  const Amount base = total / static_cast<Amount>(parts);
  Amount remainder = total - base * static_cast<Amount>(parts);
  shares.assign(parts, base);
  for (std::size_t i = 0; i < parts && remainder > 0; ++i, --remainder) {
    ++shares[i];
  }
  return shares;
}

}  // namespace p2panon::payment
