#include "payment/route_verification.hpp"

#include <cassert>

namespace p2panon::payment {

void RouteVerificationChain::seed(crypto::u64 responder_key, net::NodeId responder) {
  assert(!seeded_ && "chain already seeded");
  seeded_ = true;
  head_ = crypto::mac(responder_key,
                      {static_cast<crypto::u64>(pair_), static_cast<crypto::u64>(conn_index_),
                       static_cast<crypto::u64>(responder), 0x726573ULL /*"res"*/});
}

void RouteVerificationChain::extend(crypto::u64 forwarder_key, net::NodeId forwarder,
                                    net::NodeId predecessor, net::NodeId successor) {
  assert(seeded_ && "extend before seed");
  head_ = crypto::mac(forwarder_key,
                      {head_, static_cast<crypto::u64>(pair_),
                       static_cast<crypto::u64>(conn_index_),
                       static_cast<crypto::u64>(predecessor),
                       static_cast<crypto::u64>(successor)});
  links_.emplace_back(forwarder, predecessor, successor, head_);
}

std::vector<net::NodeId> RouteVerificationChain::claimed_forwarders() const {
  // links_ is reverse-path order; the initiator reads them outermost-first.
  std::vector<net::NodeId> out;
  out.reserve(links_.size());
  for (auto it = links_.rbegin(); it != links_.rend(); ++it) {
    out.push_back(it->forwarder);
  }
  return out;
}

}  // namespace p2panon::payment
