#include "payment/sharded_settlement.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>

namespace p2panon::payment {

crypto::u64 aggregated_claim_mac(crypto::u64 key, SettlementKey settlement,
                                 const AggregatedClaim& claim) noexcept {
  // Chained toy MAC: the key sandwiches a digest fold over the batch
  // identity (settlement, claimant, epoch, count) and every receipt field,
  // including the per-receipt MACs — reordering, dropping, or splicing a
  // receipt changes the aggregate.
  crypto::u64 h = crypto::digest({key, settlement, claim.claimant, claim.epoch,
                                  static_cast<crypto::u64>(claim.receipts.size())});
  for (const ForwardReceipt& r : claim.receipts) {
    // Byte-identical to one flat digest({h, fields..., mac}) call, but the
    // field list comes from the canonical enumeration (receipt_words), so
    // this digest cannot drift from the receipt MAC or the wire codec.
    crypto::u64 x = crypto::digest_more(crypto::kFnvInit, std::array<crypto::u64, 1>{h});
    x = crypto::digest_more(x, receipt_words(r));
    h = crypto::digest_more(x, std::array<crypto::u64, 1>{r.mac});
  }
  return crypto::digest({h, key});
}

void seal_aggregated_claim(crypto::u64 key, SettlementKey settlement, AggregatedClaim& claim) {
  claim.aggregate_mac = 0;
  claim.aggregate_mac = aggregated_claim_mac(key, settlement, claim);
}

ShardedSettlementPlane::ShardedSettlementPlane(std::uint32_t partition_count,
                                               std::size_t node_count, Amount initial_balance,
                                               sim::rng::Stream stream)
    : stream_(stream), node_count_(node_count), initial_balance_(initial_balance) {
  assert(partition_count > 0);
  mac_keys_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    mac_keys_.push_back(stream_.child("mac-key", i).next_u64());
  }
  parts_.reserve(partition_count);
  for (std::uint32_t b = 0; b < partition_count; ++b) {
    auto part = std::make_unique<BankPartition>(stream_.child("bank", b));
    // Identical open order in every partition, so node i is account i
    // everywhere and the merged view can fold balances by account id.
    for (std::size_t i = 0; i < node_count; ++i) {
      const AccountId acct =
          part->bank.open_account(static_cast<net::NodeId>(i), initial_balance, mac_keys_[i]);
      assert(acct == static_cast<AccountId>(i));
      (void)acct;
    }
    part->initial_total = part->bank.total_money() + part->bank.outstanding_coin_value();
    parts_.push_back(std::move(part));
  }
}

std::uint32_t ShardedSettlementPlane::partition_of(SettlementKey key) const noexcept {
  return static_cast<std::uint32_t>(sim::rng::mix64(key) % parts_.size());
}

std::optional<SettlementHandle> ShardedSettlementPlane::open_settlement(
    SettlementKey key, net::PairId pair, net::NodeId initiator, Amount escrow_amount,
    SettlementTerms terms, const std::vector<PathRecord>& records, sim::Time deadline) {
  const std::uint32_t b = partition_of(key);
  BankPartition& part = *parts_[b];
  const AccountId acct = account_of(initiator);
  // Wallet randomness keyed by the settlement, not by arrival order: the
  // coin blinding of settlement X is the same whether it funds first or
  // last, which keeps the plane's money flow order-invariant.
  Wallet wallet(part.bank, acct, stream_.child("wallet", key));
  std::optional<std::vector<Coin>> coins = wallet.withdraw(escrow_amount);
  if (!coins.has_value()) return std::nullopt;
  std::optional<EscrowId> escrow = part.bank.open_escrow(*coins);
  assert(escrow.has_value() && "freshly withdrawn coins must fund an escrow");
  if (!escrow.has_value()) return std::nullopt;
  const SettlementId id = part.engine.open(pair, *escrow, terms, records, acct, deadline);
  return SettlementHandle{b, id, *escrow};
}

ClaimBatchOutcome ShardedSettlementPlane::submit_aggregated_claim(SettlementKey key,
                                                                  const SettlementHandle& handle,
                                                                  const AggregatedClaim& claim) {
  ++aggregates_;
  ClaimBatchOutcome out;
  BankPartition& part = *parts_[handle.partition];
  AggregatedClaim check = claim;
  check.aggregate_mac = 0;
  const crypto::u64 expected =
      aggregated_claim_mac(part.bank.account_mac_key(claim.claimant), key, check);
  if (expected != claim.aggregate_mac) {
    // Reject-all: a tampered batch never reaches the engine, so none of its
    // receipts can probe the redeemed-MAC map.
    ++aggregates_refused_;
    out.aggregate_mac_ok = false;
    out.rejected = claim.receipts.size();
    return out;
  }
  receipts_batched_ += claim.receipts.size();
  const SettlementEngine::ClaimBatchResult r =
      part.engine.submit_claim_batch(handle.id, claim.claimant, claim.receipts);
  out.accepted = r.accepted;
  out.rejected = r.rejected;
  return out;
}

const SettlementReport& ShardedSettlementPlane::close_settlement(const SettlementHandle& handle) {
  return parts_[handle.partition]->engine.close(handle.id);
}

std::size_t ShardedSettlementPlane::expire_due(sim::Time now) {
  std::size_t terminalised = 0;
  for (auto& part : parts_) terminalised += part->engine.expire_due(now);
  return terminalised;
}

bool ShardedSettlementPlane::partition_conserved(std::uint32_t b) const {
  const BankPartition& part = *parts_[b];
  return part.bank.total_money() + part.bank.outstanding_coin_value() == part.initial_total;
}

Amount ShardedSettlementPlane::merged_balance(AccountId account) const {
  Amount merged = initial_balance_;
  for (const auto& part : parts_) merged += part->bank.balance(account) - initial_balance_;
  return merged;
}

Amount ShardedSettlementPlane::total_money() const {
  Amount total = 0;
  for (const auto& part : parts_) {
    total += part->bank.total_money() + part->bank.outstanding_coin_value();
  }
  return total;
}

PlaneReconciliation ShardedSettlementPlane::reconcile() const {
  PlaneReconciliation rec;
  rec.partitions.reserve(parts_.size());

  Amount initial_sum = 0;
  std::vector<crypto::u64> all_macs;

  for (const auto& part_ptr : parts_) {
    const BankPartition& part = *part_ptr;
    PartitionAudit audit;

    // Journal replay must land on the bank's exact balances.
    ReplayState replayed;
    audit.replay_ok = part.audit.replay(replayed);
    if (audit.replay_ok) {
      if (replayed.accounts.size() != part.bank.account_count() ||
          replayed.outstanding != part.bank.outstanding_coin_value()) {
        audit.replay_ok = false;
      }
      for (AccountId a = 0; audit.replay_ok && a < replayed.accounts.size(); ++a) {
        if (replayed.accounts[a] != part.bank.balance(a)) audit.replay_ok = false;
      }
      for (EscrowId e = 0; audit.replay_ok && e < replayed.escrows.size(); ++e) {
        if (replayed.escrows[e] != part.bank.escrow_balance(e)) audit.replay_ok = false;
      }
    }

    audit.conserved =
        part.bank.total_money() + part.bank.outstanding_coin_value() == part.initial_total;

    // Per-account escrow payouts in the journal vs what the reports claim
    // was paid (the journal is the ground truth the reports must match).
    std::map<AccountId, Amount> journal_payouts;
    for (const Transaction& tx : part.audit.transactions()) {
      if (tx.kind == TxKind::kEscrowPay) journal_payouts[tx.account] += tx.amount;
    }
    std::map<AccountId, Amount> report_payouts;

    audit.all_terminal = true;
    audit.escrows_drained = true;
    audit.expired_refunded = true;
    for (SettlementId id = 0; id < part.engine.settlement_count(); ++id) {
      const SettlementReport* report = part.engine.report(id);
      if (report == nullptr) {
        audit.all_terminal = false;
        continue;
      }
      if (report->escrow_in != report->paid_out + report->refunded) audit.escrows_drained = false;
      switch (report->outcome) {
        case SettlementState::kClosed:
          ++audit.closed;
          break;
        case SettlementState::kAbandoned:
          ++audit.abandoned;
          break;
        case SettlementState::kExpired:
          ++audit.expired;
          if (report->paid_out != 0 || report->refunded != report->escrow_in) {
            audit.expired_refunded = false;
          }
          break;
        default:
          audit.all_terminal = false;
          break;
      }
      if (report->pro_rata) ++audit.prorata;
      audit.escrow_milli += report->escrow_in;
      audit.paid_milli += report->paid_out;
      audit.refunded_milli += report->refunded;
      for (const auto& [acct, paid] : report->payouts) report_payouts[acct] += paid;
    }
    // Every escrow drained on the bank side too (terminal settlements leave
    // nothing behind; the check is vacuous while settlements remain open).
    if (audit.all_terminal) {
      for (EscrowId e = 0; e < part.bank.escrow_count(); ++e) {
        if (part.bank.escrow_balance(e) != 0) audit.escrows_drained = false;
      }
    }
    audit.payouts_match = journal_payouts == report_payouts;

    rec.escrow_milli += audit.escrow_milli;
    rec.paid_milli += audit.paid_milli;
    rec.refunded_milli += audit.refunded_milli;
    rec.closed += audit.closed;
    rec.abandoned += audit.abandoned;
    rec.expired += audit.expired;
    rec.prorata += audit.prorata;
    rec.claims_accepted += part.engine.claims_accepted();
    rec.claims_rejected += part.engine.claims_rejected();
    rec.claims_after_terminal += part.engine.claims_after_terminal();
    initial_sum += part.initial_total;

    // Each engine's redeemed set is internally unique (map keys); collect
    // the sorted per-partition sets for the global uniqueness merge.
    std::vector<crypto::u64> macs = part.engine.redeemed_macs();
    all_macs.insert(all_macs.end(), macs.begin(), macs.end());

    rec.partitions.push_back(audit);
  }

  rec.global_conserved = total_money() == initial_sum;

  // Deterministic merge: any digest redeemed by two partitions shows up as
  // an adjacent duplicate in the sorted union.
  std::sort(all_macs.begin(), all_macs.end());
  for (std::size_t i = 1; i < all_macs.size(); ++i) {
    if (all_macs[i] == all_macs[i - 1]) ++rec.cross_partition_replays;
  }
  return rec;
}

}  // namespace p2panon::payment
