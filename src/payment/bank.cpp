#include "payment/bank.hpp"

#include <cassert>

namespace p2panon::payment {

Bank::Bank(sim::rng::Stream stream) : stream_(stream) {}

AccountId Bank::open_account(net::NodeId owner, Amount initial_balance, crypto::u64 mac_key) {
  assert(initial_balance >= 0);
  assert(by_owner_.find(owner) == by_owner_.end() && "account already open for node");
  const auto id = static_cast<AccountId>(accounts_.size());
  accounts_.emplace_back(owner, initial_balance, mac_key);
  by_owner_.emplace(owner, id);
  journal(TxKind::kOpenAccount, id, 0, initial_balance);
  return id;
}

AccountId Bank::open_pseudonymous_account(Amount initial_balance) {
  assert(initial_balance >= 0);
  const auto id = static_cast<AccountId>(accounts_.size());
  accounts_.emplace_back(net::kInvalidNode, initial_balance, 0);
  journal(TxKind::kOpenAccount, id, 0, initial_balance);
  return id;
}

Amount Bank::balance(AccountId id) const { return accounts_.at(id).balance; }

AccountId Bank::account_of(net::NodeId owner) const {
  auto it = by_owner_.find(owner);
  return it == by_owner_.end() ? kInvalidAccount : it->second;
}

const crypto::RsaPublicKey& Bank::denomination_key(Amount denom) {
  assert(denom > 0);
  auto it = denom_keys_.find(denom);
  if (it == denom_keys_.end()) {
    auto key_stream = stream_.child("denom-key", static_cast<crypto::u64>(denom));
    it = denom_keys_.emplace(denom, crypto::generate_keypair(key_stream)).first;
  }
  return it->second.pub;
}

std::optional<crypto::u64> Bank::withdraw_blind(AccountId id, Amount denom,
                                                crypto::u64 blinded_message) {
  Account& acct = accounts_.at(id);
  if (denom <= 0 || acct.balance < denom) return std::nullopt;
  // Ensure the denomination key exists (also validates denom).
  [[maybe_unused]] const auto& key = denomination_key(denom);
  const crypto::RsaKeyPair& kp = denom_keys_.at(denom);
  if (blinded_message >= kp.pub.n) return std::nullopt;
  acct.balance -= denom;
  outstanding_ += denom;
  journal(TxKind::kWithdraw, id, 0, denom);
  return crypto::rsa_sign(kp, blinded_message);
}

bool Bank::is_spent(const Coin& c) const {
  return spent_.count(crypto::digest({c.serial, static_cast<crypto::u64>(c.denomination)})) != 0;
}

void Bank::mark_spent(const Coin& c) {
  spent_.insert(crypto::digest({c.serial, static_cast<crypto::u64>(c.denomination)}));
}

DepositResult Bank::deposit_coin(AccountId id, const Coin& coin) {
  auto it = denom_keys_.find(coin.denomination);
  if (it == denom_keys_.end()) return DepositResult::kUnknownDenomination;
  if (!coin.verify(it->second.pub)) return DepositResult::kBadSignature;
  if (is_spent(coin)) return DepositResult::kDoubleSpend;
  mark_spent(coin);
  accounts_.at(id).balance += coin.denomination;
  outstanding_ -= coin.denomination;
  journal(TxKind::kDeposit, id, 0, coin.denomination);
  return DepositResult::kOk;
}

std::optional<EscrowId> Bank::open_escrow(const std::vector<Coin>& funding) {
  // Validate the whole batch before marking anything spent, so a rejected
  // funding attempt leaves every coin still spendable.
  Amount total = 0;
  for (const Coin& c : funding) {
    auto it = denom_keys_.find(c.denomination);
    if (it == denom_keys_.end()) return std::nullopt;
    if (!c.verify(it->second.pub)) return std::nullopt;
    if (is_spent(c)) return std::nullopt;
    total += c.denomination;
  }
  // Reject duplicate coins within the batch itself.
  for (std::size_t i = 0; i < funding.size(); ++i) {
    for (std::size_t j = i + 1; j < funding.size(); ++j) {
      if (funding[i].serial == funding[j].serial &&
          funding[i].denomination == funding[j].denomination) {
        return std::nullopt;
      }
    }
  }
  for (const Coin& c : funding) mark_spent(c);
  outstanding_ -= total;
  const auto id = static_cast<EscrowId>(escrows_.size());
  escrows_.push_back(total);
  journal(TxKind::kEscrowFund, 0, id, total);
  return id;
}

Amount Bank::escrow_balance(EscrowId id) const { return escrows_.at(id); }

bool Bank::escrow_pay(EscrowId id, AccountId to, Amount amount) {
  assert(amount >= 0);
  Amount& bal = escrows_.at(id);
  if (bal < amount) return false;
  bal -= amount;
  accounts_.at(to).balance += amount;
  journal(TxKind::kEscrowPay, to, id, amount);
  return true;
}

bool Bank::escrow_refund(EscrowId id, AccountId to, Amount amount) {
  assert(amount >= 0);
  Amount& bal = escrows_.at(id);
  if (bal < amount) return false;
  bal -= amount;
  accounts_.at(to).balance += amount;
  journal(TxKind::kEscrowRefund, to, id, amount);
  return true;
}

crypto::u64 Bank::account_mac_key(AccountId id) const { return accounts_.at(id).mac_key; }

net::NodeId Bank::account_owner(AccountId id) const { return accounts_.at(id).owner; }

Amount Bank::total_money() const {
  Amount total = 0;
  for (const Account& a : accounts_) total += a.balance;
  for (Amount e : escrows_) total += e;
  return total;
}

std::optional<std::vector<Coin>> Wallet::withdraw(Amount total) {
  assert(total >= 0);
  std::vector<Coin> coins;
  for (Amount denom : decompose_amount(total)) {
    const crypto::RsaPublicKey& key = bank_.denomination_key(denom);
    Coin c;
    c.denomination = denom;
    c.serial = stream_.next_u64();
    const crypto::u64 msg = c.message(key);
    const crypto::Blinding blinding = crypto::blind(key, msg, stream_);
    auto blind_sig = bank_.withdraw_blind(account_, denom, blinding.blinded_message);
    if (!blind_sig) {
      // Insufficient funds mid-withdrawal: redeposit what we already have so
      // the caller sees an atomic failure.
      for (const Coin& done : coins) {
        [[maybe_unused]] auto r = bank_.deposit_coin(account_, done);
        assert(r == DepositResult::kOk);
      }
      return std::nullopt;
    }
    c.signature = crypto::unblind(key, *blind_sig, blinding);
    assert(c.verify(key));
    coins.push_back(c);
  }
  return coins;
}

}  // namespace p2panon::payment
