// Append-only audit journal for the bank.
//
// Every balance-moving operation is journaled; replaying the journal from
// zero must reconstruct the bank's exact account/escrow balances and the
// outstanding coin value. The invariant checker is used by tests and by the
// payment_walkthrough example, and models the auditability a real payment
// processor for an anonymity network would need: the journal contains
// amounts and account ids but no coin serials for withdrawals (the bank
// never sees them — unlinkability is preserved even against its own log).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "payment/money.hpp"

namespace p2panon::payment {

using AccountId = std::uint32_t;  // forward-compatible with bank.hpp
using EscrowId = std::uint32_t;

enum class TxKind : std::uint8_t {
  kOpenAccount,   ///< account created with an initial balance
  kWithdraw,      ///< blind withdrawal: account -> outstanding coins
  kDeposit,       ///< coin deposit: outstanding coins -> account
  kEscrowFund,    ///< coins -> escrow
  kEscrowPay,     ///< escrow -> account (verified settlement claim)
  kEscrowRefund,  ///< escrow -> account (unclaimed remainder / expiry refund)
};

struct Transaction {
  std::uint64_t seq = 0;
  TxKind kind = TxKind::kOpenAccount;
  AccountId account = 0;  ///< destination/source account (kind-dependent)
  EscrowId escrow = 0;    ///< escrow involved (escrow kinds only)
  Amount amount = 0;
};

/// Balances reconstructed by replaying a journal.
struct ReplayState {
  std::vector<Amount> accounts;
  std::vector<Amount> escrows;
  Amount outstanding = 0;

  [[nodiscard]] Amount total() const noexcept;
};

class AuditLog {
 public:
  void record(TxKind kind, AccountId account, EscrowId escrow, Amount amount);

  [[nodiscard]] std::size_t size() const noexcept { return log_.size(); }
  [[nodiscard]] const std::vector<Transaction>& transactions() const noexcept { return log_; }

  /// Replay the journal from an empty bank. Fails (returns false) on any
  /// structurally impossible entry: negative amounts, overdrafts, payments
  /// from unfunded escrows, deposits exceeding outstanding coin value.
  [[nodiscard]] bool replay(ReplayState& out) const;

  /// Render a human-readable statement.
  void print(std::ostream& os) const;

 private:
  std::vector<Transaction> log_;
};

}  // namespace p2panon::payment
