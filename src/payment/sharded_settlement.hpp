// Sharded settlement plane: the bank partitioned for throughput.
//
// At millions of users one SettlementEngine serialises everything behind a
// single redeemed-MAC map and one audit journal. This plane shards the
// payment substrate by *settlement*: every logical settlement carries a
// 64-bit SettlementKey, and mix(key) % B routes it to one of B independent
// bank partitions. Each partition is a full vertical slice — its own Bank,
// its own SettlementEngine (the PR 5 escrow lifecycle state machine,
// unchanged), its own redeemed-MAC map, its own append-only audit journal —
// so partitions never share mutable state and the barrier-batch hook can
// drain per-shard op buffers against them without locks.
//
// Money model: every partition opens the *same* account universe (node i is
// account i in every partition, same MAC key) with the full initial
// balance, so escrow funding, payouts and refunds of a settlement stay
// entirely inside its own partition — there is no cross-partition transfer
// to order or lock. Each partition is an independent money universe with
// its own exact conservation invariant
//
//     total_money() + outstanding_coin_value() == initial_total
//
// and the merged global view folds per-partition deltas:
//
//     merged_balance(a) = initial + sum_b (balance_b(a) - initial).
//
// Global conservation is then the sum of the per-partition invariants, and
// both are asserted (per bank shard AND globally) by examples/
// chaos_settlement and the reconciliation pass below.
//
// Claims arrive as forwarder-epoch *aggregates* (Ersoy et al.'s
// transaction-batching idea): all receipts one forwarder accrued for one
// settlement during one view-refresh epoch travel as a single
// AggregatedClaim under one aggregate MAC. The partition engine verifies
// the batch MACs in one streaming pass (SettlementEngine::submit_claim_batch)
// instead of interleaving a key fetch + MAC + ledger walk per claim.
//
// Replay safety across partitions: routing by settlement key means sibling
// settlements of one logical set always land on the same partition, where
// the engine's redeemed-MAC map rejects cross-settlement replays exactly as
// at B = 1. A receipt smuggled to a *different* partition (bypassing the
// routed entry points — see lint rule R8) is outside any single engine's
// view; the deterministic merge reconciliation catches it by asserting
// global uniqueness over the union of all partitions' sorted redeemed-MAC
// sets (tests/payment/test_sharded_settlement.cpp pins the negative path).
//
// Mutation discipline (lint rule R8, tools/lint/check_invariants.py):
// model/bench code must mutate partitions only through the plane's routed
// entry points (open_settlement / submit_aggregated_claim /
// close_settlement / expire_due), which the harness drives from the
// serial window-barrier hook. Direct partition(b).engine/bank mutation
// bypasses the routing + the batched verification and needs an explicit
// // lint-exempt(bank-partition): waiver.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "payment/settlement.hpp"
#include "sim/rng.hpp"

namespace p2panon::payment {

/// Identifies one logical settlement across the plane; mix(key) % B picks
/// the owning bank partition. Callers derive it from stable model identity
/// (e.g. the pair id), never from arrival order.
using SettlementKey = std::uint64_t;

/// One bank partition: a complete, independent payment universe.
struct BankPartition {
  Bank bank;
  AuditLog audit;
  SettlementEngine engine;
  /// Money in this universe right after account creation — the base of the
  /// per-partition conservation invariant.
  Amount initial_total = 0;

  explicit BankPartition(sim::rng::Stream stream) : bank(std::move(stream)), engine(bank) {
    bank.attach_audit(&audit);
  }
};

/// Where a routed settlement lives.
struct SettlementHandle {
  std::uint32_t partition = 0;
  SettlementId id = 0;
  EscrowId escrow = 0;
};

/// All receipts one forwarder accrued for one settlement during one epoch,
/// authenticated as a unit: the aggregate MAC covers the settlement key,
/// the claimant, the epoch, and every receipt field including the
/// per-receipt MACs, so the whole batch is accepted or audited as one.
struct AggregatedClaim {
  AccountId claimant = kInvalidAccount;
  std::uint32_t epoch = 0;
  std::vector<ForwardReceipt> receipts;
  crypto::u64 aggregate_mac = 0;
};

/// Aggregate MAC over the batch under the forwarder's registered key.
[[nodiscard]] crypto::u64 aggregated_claim_mac(crypto::u64 key, SettlementKey settlement,
                                               const AggregatedClaim& claim) noexcept;

/// Seal `claim` (computes and stores its aggregate MAC).
void seal_aggregated_claim(crypto::u64 key, SettlementKey settlement, AggregatedClaim& claim);

struct ClaimBatchOutcome {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  /// False when the aggregate MAC failed — the whole batch was refused
  /// before any receipt touched the engine.
  bool aggregate_mac_ok = true;
};

/// Per-partition slice of the reconciliation pass.
struct PartitionAudit {
  bool replay_ok = false;        ///< audit journal replays to the bank's exact state
  bool conserved = false;        ///< money + outstanding coins == initial_total
  bool escrows_drained = false;  ///< every terminal report: escrow_in == paid + refunded
  bool all_terminal = false;     ///< no settlement left open
  bool expired_refunded = false; ///< every Expired report refunded its full escrow
  bool payouts_match = false;    ///< journal per-account payouts == report payouts
  Amount escrow_milli = 0;
  Amount paid_milli = 0;
  Amount refunded_milli = 0;
  std::uint64_t closed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t expired = 0;
  std::uint64_t prorata = 0;

  [[nodiscard]] bool ok() const noexcept {
    return replay_ok && conserved && escrows_drained && all_terminal && expired_refunded &&
           payouts_match;
  }
};

/// Outcome of the deterministic merge pass after the final barrier.
struct PlaneReconciliation {
  std::vector<PartitionAudit> partitions;  ///< ascending partition order
  bool global_conserved = false;  ///< sum of merged balances + escrows + coins unchanged
  /// Receipt digests redeemed by more than one partition — a cross-partition
  /// replay that slipped past the per-engine maps. Zero on any honest run.
  std::uint64_t cross_partition_replays = 0;
  Amount escrow_milli = 0;
  Amount paid_milli = 0;
  Amount refunded_milli = 0;
  std::uint64_t closed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t expired = 0;
  std::uint64_t prorata = 0;
  std::uint64_t claims_accepted = 0;
  std::uint64_t claims_rejected = 0;
  std::uint64_t claims_after_terminal = 0;

  [[nodiscard]] bool ok() const noexcept {
    if (!global_conserved || cross_partition_replays != 0) return false;
    for (const PartitionAudit& p : partitions) {
      if (!p.ok()) return false;
    }
    return true;
  }
};

class ShardedSettlementPlane {
 public:
  /// B partitions, each opening the full `node_count` account universe with
  /// `initial_balance` per account. Node i's MAC key is a keyed child draw
  /// (identical in every partition); partition b's bank draws from its own
  /// child stream.
  ShardedSettlementPlane(std::uint32_t partition_count, std::size_t node_count,
                         Amount initial_balance, sim::rng::Stream stream);

  ShardedSettlementPlane(const ShardedSettlementPlane&) = delete;
  ShardedSettlementPlane& operator=(const ShardedSettlementPlane&) = delete;

  [[nodiscard]] std::uint32_t partition_count() const noexcept {
    return static_cast<std::uint32_t>(parts_.size());
  }
  [[nodiscard]] std::uint32_t partition_of(SettlementKey key) const noexcept;

  /// Node i is account i in every partition.
  [[nodiscard]] AccountId account_of(net::NodeId node) const noexcept {
    return static_cast<AccountId>(node);
  }
  [[nodiscard]] crypto::u64 mac_key_of(net::NodeId node) const { return mac_keys_[node]; }

  // --- Routed entry points (the only legal mutation path from model code;
  // --- the harness drives them from the serial window-barrier hook).

  /// Fund an escrow of `escrow_amount` from the initiator's account in the
  /// owning partition (blind withdrawal keyed by the settlement key, so coin
  /// blinding is independent of arrival order) and open the settlement
  /// against it. Returns nullopt on insufficient funds.
  std::optional<SettlementHandle> open_settlement(SettlementKey key, net::PairId pair,
                                                  net::NodeId initiator, Amount escrow_amount,
                                                  SettlementTerms terms,
                                                  const std::vector<PathRecord>& records,
                                                  sim::Time deadline = kNoSettlementDeadline);

  /// Verify the aggregate MAC under the claimant's registered key; on
  /// success feed the receipts through the engine's batched claim path. A
  /// failed aggregate MAC refuses the whole batch without touching the
  /// engine.
  ClaimBatchOutcome submit_aggregated_claim(SettlementKey key, const SettlementHandle& handle,
                                            const AggregatedClaim& claim);

  /// First-wins close via the owning partition's engine.
  const SettlementReport& close_settlement(const SettlementHandle& handle);

  /// Deadline sweep over every partition, ascending. Returns settlements
  /// terminalised.
  std::size_t expire_due(sim::Time now);

  // --- Read-only views (safe anywhere; no R8 waiver needed).

  [[nodiscard]] const BankPartition& partition_view(std::uint32_t b) const { return *parts_[b]; }
  /// Mutable partition access — the R8 escape hatch for tests and the
  /// reconciliation tooling; model/bench code must not mutate through it.
  [[nodiscard]] BankPartition& partition(std::uint32_t b) { return *parts_[b]; }

  /// Per-partition conservation: money + outstanding coins vs initial.
  [[nodiscard]] bool partition_conserved(std::uint32_t b) const;
  [[nodiscard]] Amount partition_initial(std::uint32_t b) const { return parts_[b]->initial_total; }

  /// initial + sum over partitions of (balance_b - initial).
  [[nodiscard]] Amount merged_balance(AccountId account) const;

  /// Money across all partitions (accounts + escrows + outstanding coins);
  /// conservation compares it against partition_count * per-universe initial.
  [[nodiscard]] Amount total_money() const;

  // Plane-level counters (aggregate claim traffic).
  [[nodiscard]] std::uint64_t aggregates_submitted() const noexcept { return aggregates_; }
  [[nodiscard]] std::uint64_t aggregates_refused() const noexcept { return aggregates_refused_; }
  [[nodiscard]] std::uint64_t receipts_batched() const noexcept { return receipts_batched_; }

  /// The deterministic merge pass: audit-replay + conservation + lifecycle
  /// checks per partition in ascending order, then the global fold (merged
  /// conservation, cross-partition redeemed-MAC uniqueness). Pure read-only.
  [[nodiscard]] PlaneReconciliation reconcile() const;

 private:
  std::vector<std::unique_ptr<BankPartition>> parts_;
  std::vector<crypto::u64> mac_keys_;  ///< per node, shared by all partitions
  sim::rng::Stream stream_;            ///< wallet draws via const child() only
  std::size_t node_count_ = 0;
  Amount initial_balance_ = 0;
  std::uint64_t aggregates_ = 0;
  std::uint64_t aggregates_refused_ = 0;
  std::uint64_t receipts_batched_ = 0;
};

}  // namespace p2panon::payment
