#include "core/data_phase.hpp"

#include <cassert>
#include <utility>

#include "fault/fault.hpp"
#include "transport/sim_transport.hpp"

namespace p2panon::core {

namespace wire = transport::wire;

struct DataPhaseRunner::Pending {
  net::PairId pair;
  std::uint32_t conn_index;
  BuiltPath path;  ///< current path; replaced by each re-formation
  Contract contract;
  const StrategyAssignment* strategies = nullptr;
  sim::rng::Stream stream{0};
  Callback on_done;

  bool finished = false;
  /// Path generation: bumped when a re-formation starts, so keepalive hops
  /// and timers belonging to the abandoned path become stale no-ops.
  std::uint32_t gen = 0;
  std::uint64_t seq = 0;  ///< keepalive sequence (one outstanding at a time)
  bool awaiting_echo = false;
  sim::EventId timeout_event = sim::kInvalidEventId;
  sim::Time path_formed_at = 0.0;
  sim::Time end_time = 0.0;

  DataPhaseResult result;
};

void DataPhaseRunner::run(net::PairId pair, std::uint32_t conn_index, const BuiltPath& path,
                          const Contract& contract, const StrategyAssignment& strategies,
                          const sim::rng::Stream& stream, Callback on_done) {
  assert(path.nodes.size() >= 2);
  assert(on_done);
  auto p = std::make_shared<Pending>();
  p->pair = pair;
  p->conn_index = conn_index;
  p->path = path;
  p->contract = contract;
  p->strategies = &strategies;
  p->stream = stream;
  p->on_done = std::move(on_done);
  p->path_formed_at = sim_.now();
  p->end_time = sim_.now() + cfg_.duration;
  const std::uint32_t gen = p->gen;
  sim_.schedule_in(cfg_.keepalive_interval, [this, p = std::move(p), gen] {
    if (p->finished || gen != p->gen) return;
    send_keepalive(p);
  });
}

void DataPhaseRunner::send_keepalive(std::shared_ptr<Pending> p) {
  if (p->finished) return;
  if (sim_.now() >= p->end_time) {
    finish(std::move(p), /*completed=*/true);
    return;
  }
  ++p->seq;
  ++p->result.keepalives_sent;
  p->awaiting_echo = true;
  const sim::Time one_way = overlay_.links().path_latency(p->path.nodes);
  const sim::Time patience = cfg_.ack_timeout_factor * 2.0 * one_way + cfg_.ack_timeout_slack;
  const std::uint32_t gen = p->gen;
  const std::uint64_t seq = p->seq;
  p->timeout_event = sim_.schedule_in(patience, [this, p, gen, seq] {
    if (p->finished || gen != p->gen || seq != p->seq || !p->awaiting_echo) return;
    on_timeout(p, gen, seq);
  });
  relay(std::move(p), gen, seq, /*index=*/0, /*echo=*/false);
}

void DataPhaseRunner::relay(std::shared_ptr<Pending> p, std::uint32_t gen, std::uint64_t seq,
                            std::size_t index, bool echo) {
  if (p->finished || gen != p->gen || seq != p->seq) return;
  const auto& nodes = p->path.nodes;
  const std::size_t to_index = echo ? index - 1 : index + 1;
  const net::NodeId from = nodes[index];
  const net::NodeId to = nodes[to_index];
  auto deliver = [this, p, gen, seq, to_index, echo] {
    if (p->finished || gen != p->gen || seq != p->seq) return;
    if (to_index == 0) {
      // Echo made it back to the initiator: the path is alive.
      ++p->result.keepalives_delivered;
      p->awaiting_echo = false;
      sim_.cancel(p->timeout_event);
      p->timeout_event = sim::kInvalidEventId;
      sim_.schedule_in(cfg_.keepalive_interval, [this, p, gen] {
        if (p->finished || gen != p->gen) return;
        send_keepalive(p);
      });
      return;
    }
    // A dead forwarder (crashed or departed) silently swallows the probe;
    // the initiator learns only from its timer.
    if (!overlay_.is_online(p->path.nodes[to_index])) return;
    const bool at_responder = !echo && to_index == p->path.nodes.size() - 1;
    relay(p, gen, seq, to_index, at_responder ? true : echo);
  };
  if (transport_ != nullptr) {
    // Same draws, same schedule, same capture as the branch below; the hop
    // additionally round-trips through the wire codec.
    const wire::DataMsg msg{p->pair,
                            p->conn_index,
                            gen,
                            seq,
                            static_cast<std::uint32_t>(to_index),
                            static_cast<std::uint8_t>(echo)};
    (void)transport_->send(from, to, msg, std::move(deliver));  // false: timer covers it
    return;
  }
  if (faults_ != nullptr && faults_->drop_message(from, to)) return;  // timer covers it
  sim::Time flight = overlay_.links().transfer_time(from, to);
  if (faults_ != nullptr) flight += faults_->extra_delay(from, to);
  sim_.schedule_in(flight, std::move(deliver));
}

void DataPhaseRunner::on_timeout(std::shared_ptr<Pending> p, std::uint32_t /*gen*/,
                                 std::uint64_t /*seq*/) {
  ++p->result.failures_detected;
  p->awaiting_echo = false;
  p->timeout_event = sim::kInvalidEventId;
  // Ground-truth detection lag: the earliest downtime start (from the
  // omniscient availability tracker) among path members that are dead right
  // now and went down after this path was adopted. Losses alone (no dead
  // member) yield a detection with no delay sample.
  sim::Time failed_at = -1.0;
  for (std::size_t i = 1; i < p->path.nodes.size(); ++i) {
    const net::NodeId v = p->path.nodes[i];
    if (overlay_.is_online(v)) continue;
    const sim::Time left = overlay_.node(v).tracker.last_leave();
    if (left < p->path_formed_at) continue;
    if (failed_at < 0.0 || left < failed_at) failed_at = left;
  }
  if (failed_at >= 0.0) p->result.detection_delays.push_back(sim_.now() - failed_at);
  reform(std::move(p));
}

void DataPhaseRunner::reform(std::shared_ptr<Pending> p) {
  if (p->result.reformations >= cfg_.max_reformations) {
    finish(std::move(p), /*completed=*/false);
    return;
  }
  ++p->gen;
  const std::uint32_t gen = p->gen;
  const std::uint32_t nth = p->result.reformations + 1;
  const net::NodeId initiator = p->path.nodes.front();
  const net::NodeId responder = p->path.nodes.back();
  runner_.establish(
      p->pair, p->conn_index, initiator, responder, p->contract, *p->strategies,
      p->stream.child("reform", nth), [this, p, gen](const AsyncResult& r) {
        if (p->finished || gen != p->gen) return;
        p->result.reform_setup_attempts += r.attempts;
        if (!r.established) {
          finish(p, /*completed=*/false);
          return;
        }
        ++p->result.reformations;
        p->path = r.path;
        p->path_formed_at = sim_.now();
        p->result.reformed_paths.push_back(r.path);
        if (sim_.now() >= p->end_time) {
          finish(p, /*completed=*/true);
          return;
        }
        sim_.schedule_in(cfg_.keepalive_interval, [this, p, gen] {
          if (p->finished || gen != p->gen) return;
          send_keepalive(p);
        });
      });
}

void DataPhaseRunner::finish(std::shared_ptr<Pending> p, bool completed) {
  if (p->finished) return;
  p->finished = true;
  if (p->timeout_event != sim::kInvalidEventId) {
    sim_.cancel(p->timeout_event);
    p->timeout_event = sim::kInvalidEventId;
  }
  p->result.completed = completed;
  p->on_done(p->result);
}

}  // namespace p2panon::core
