#include "core/reputation.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::core {

ReputationSystem::ReputationSystem(std::size_t node_count, const ReputationConfig& cfg)
    : cfg_(cfg), node_count_(node_count) {
  assert(node_count > 0);
  assert(cfg.initial >= 0.0 && cfg.initial <= 1.0);
  const std::size_t rows = cfg.global_scope ? 1 : node_count;
  scores_.assign(rows * node_count, cfg.initial);
}

double& ReputationSystem::cell(net::NodeId observer, net::NodeId subject) {
  const std::size_t row = cfg_.global_scope ? 0 : observer;
  return scores_.at(row * node_count_ + subject);
}

const double& ReputationSystem::cell(net::NodeId observer, net::NodeId subject) const {
  const std::size_t row = cfg_.global_scope ? 0 : observer;
  return scores_.at(row * node_count_ + subject);
}

double ReputationSystem::score(net::NodeId observer, net::NodeId subject) const {
  return cell(observer, subject);
}

void ReputationSystem::report_success(net::NodeId observer, net::NodeId subject) {
  double& s = cell(observer, subject);
  s = std::min(1.0, s + cfg_.gain);
}

void ReputationSystem::report_failure(net::NodeId observer, net::NodeId subject) {
  double& s = cell(observer, subject);
  s = std::max(0.0, s - cfg_.loss);
}

void ReputationSystem::apply_collusion(std::span<const net::NodeId> coalition,
                                       std::size_t reports) {
  for (net::NodeId a : coalition) {
    for (net::NodeId b : coalition) {
      if (a == b) continue;
      for (std::size_t r = 0; r < reports; ++r) report_success(a, b);
    }
  }
}

void ReputationSystem::observe_path(std::span<const net::NodeId> path,
                                    std::ptrdiff_t dropped_at) {
  // Forwarders are positions 1..n-2; position i's behaviour is observed by
  // its predecessor at i-1.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (dropped_at >= 0 && static_cast<std::size_t>(dropped_at) == i) {
      report_failure(path[i - 1], path[i]);
      return;  // nothing downstream of the drop was observed
    }
    report_success(path[i - 1], path[i]);
  }
}

HopChoice ReputationRouting::choose(const RoutingContext& ctx, net::NodeId self,
                                    net::NodeId pred, std::span<const net::NodeId> candidates,
                                    sim::rng::Stream& /*stream*/) const {
  assert(!candidates.empty());
  HopChoice best;
  bool have = false;
  for (net::NodeId j : candidates) {
    const double s = reputation_.score(self, j);
    if (!have || s > best.utility || (s == best.utility && j < best.next)) {
      best.next = j;
      best.utility = s;  // reputation score stands in for utility here
      have = true;
    }
  }
  best.edge_quality = ctx.edge_q(self, best.next, pred);
  return best;
}

}  // namespace p2panon::core
