#include "core/game.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace p2panon::core::game {

double prop2_participation_threshold(double c_p, double c_t, std::size_t n,
                                     double avg_path_length, std::size_t connections) noexcept {
  assert(avg_path_length > 0.0 && connections > 0);
  return c_p * static_cast<double>(n) /
             (avg_path_length * static_cast<double>(connections)) +
         c_t;
}

bool prop2_induces_participation(double p_f, double c_p, double c_t, std::size_t n,
                                 double avg_path_length, std::size_t connections) noexcept {
  return p_f > prop2_participation_threshold(c_p, c_t, n, avg_path_length, connections);
}

bool prop3_forwarding_dominant(double p_f, double c_p, double c_t) noexcept {
  return p_f > c_p + c_t;
}

// ---------------------------------------------------------------------------
// Backward induction.
// ---------------------------------------------------------------------------

BackwardInductionSolver::BackwardInductionSolver(const PathGameSpec& spec, std::uint32_t stages)
    : spec_(spec), stages_(stages) {
  assert(spec.node_count > 0 && spec.responder < spec.node_count);
  assert(spec.candidates && spec.edge_quality && spec.cost);
  table_.resize(stages_ + 1);
  for (std::uint32_t s = 0; s <= stages_; ++s) {
    table_[s].resize(spec_.node_count);
    for (net::NodeId v = 0; v < spec_.node_count; ++v) {
      table_[s][v] = compute_decision(v, s);
    }
  }
}

StageDecision BackwardInductionSolver::compute_decision(net::NodeId holder,
                                                        std::uint32_t stages_left) const {
  StageDecision best;
  if (holder == spec_.responder) {
    // The game is over; nothing onward.
    best.next = spec_.responder;
    return best;
  }

  auto utility_of = [&](double onward_q, net::NodeId succ) {
    return spec_.forwarding_benefit + onward_q * spec_.routing_benefit -
           spec_.cost(holder, succ);
  };

  // Delivering to the responder is always available: edge quality 1.
  best.next = spec_.responder;
  best.onward_quality = 1.0;
  best.utility = utility_of(1.0, spec_.responder);

  if (stages_left == 0) return best;  // forced delivery

  for (net::NodeId j : spec_.candidates(holder)) {
    assert(j < spec_.node_count);
    if (j == holder || j == spec_.responder) continue;
    const double q_ij = spec_.edge_quality(holder, j);
    // Equilibrium continuation: j plays its own subgame decision with one
    // fewer stage.
    const double onward = q_ij + table_[stages_left - 1][j].onward_quality;
    const double u = utility_of(onward, j);
    // Strictly-better-wins: exact utility ties resolve to the earlier
    // option (delivery first, then candidate order), which keeps paths
    // short — consistent with the system objective of minimising ||pi||.
    if (u > best.utility) {
      best = StageDecision{j, onward, u};
    }
  }
  return best;
}

const StageDecision& BackwardInductionSolver::decision(net::NodeId holder,
                                                       std::uint32_t stages_left) const {
  assert(stages_left <= stages_);
  return table_.at(stages_left).at(holder);
}

bool BackwardInductionSolver::verify_subgame_perfection() const {
  for (std::uint32_t s = 0; s <= stages_; ++s) {
    for (net::NodeId v = 0; v < spec_.node_count; ++v) {
      if (v == spec_.responder) continue;
      const StageDecision& prescribed = table_[s][v];
      // Re-derive the best utility over every available action using the
      // prescribed continuation values; prescribed.utility must match it.
      double best_u = spec_.forwarding_benefit + 1.0 * spec_.routing_benefit -
                      spec_.cost(v, spec_.responder);
      if (s > 0) {
        for (net::NodeId j : spec_.candidates(v)) {
          if (j == v || j == spec_.responder) continue;
          const double onward = spec_.edge_quality(v, j) + table_[s - 1][j].onward_quality;
          best_u = std::max(best_u, spec_.forwarding_benefit + onward * spec_.routing_benefit -
                                        spec_.cost(v, j));
        }
      }
      if (prescribed.utility + 1e-12 < best_u) return false;
    }
  }
  return true;
}

std::vector<net::NodeId> BackwardInductionSolver::equilibrium_path(net::NodeId start) const {
  std::vector<net::NodeId> path{start};
  net::NodeId holder = start;
  std::uint32_t s = stages_;
  while (holder != spec_.responder) {
    const StageDecision& d = decision(holder, s);
    path.push_back(d.next);
    holder = d.next;
    if (s > 0) --s;
  }
  return path;
}

// ---------------------------------------------------------------------------
// Normal-form game.
// ---------------------------------------------------------------------------

NormalFormGame::NormalFormGame(std::vector<std::size_t> action_counts, PayoffFn payoff)
    : action_counts_(std::move(action_counts)), payoff_(std::move(payoff)) {
  assert(!action_counts_.empty());
  for (std::size_t c : action_counts_) {
    assert(c >= 1);
    (void)c;
  }
  assert(payoff_);
}

double NormalFormGame::payoff(std::size_t player, const Profile& profile) const {
  assert(player < player_count() && profile.size() == player_count());
  return payoff_(player, profile);
}

bool NormalFormGame::is_best_response(std::size_t player, const Profile& profile) const {
  const double current = payoff(player, profile);
  Profile alt = profile;
  for (std::size_t a = 0; a < action_counts_[player]; ++a) {
    if (a == profile[player]) continue;
    alt[player] = a;
    if (payoff(player, alt) > current + 1e-12) return false;
  }
  return true;
}

bool NormalFormGame::is_nash(const Profile& profile) const {
  for (std::size_t p = 0; p < player_count(); ++p) {
    if (!is_best_response(p, profile)) return false;
  }
  return true;
}

namespace {

/// Advance a mixed-radix counter; returns false on wraparound.
bool next_profile(NormalFormGame::Profile& profile, const std::vector<std::size_t>& radices) {
  for (std::size_t i = 0; i < profile.size(); ++i) {
    if (++profile[i] < radices[i]) return true;
    profile[i] = 0;
  }
  return false;
}

}  // namespace

std::vector<NormalFormGame::Profile> NormalFormGame::pure_nash_equilibria(
    std::size_t max_profiles) const {
  std::size_t space = 1;
  for (std::size_t c : action_counts_) {
    if (space > max_profiles / c) {
      throw std::length_error("NormalFormGame: profile space too large to enumerate");
    }
    space *= c;
  }
  std::vector<Profile> equilibria;
  Profile profile(player_count(), 0);
  do {
    if (is_nash(profile)) equilibria.push_back(profile);
  } while (next_profile(profile, action_counts_));
  return equilibria;
}

std::optional<NormalFormGame::Profile> NormalFormGame::best_response_dynamics(
    Profile start, std::size_t max_rounds) const {
  assert(start.size() == player_count());
  Profile profile = std::move(start);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    bool changed = false;
    for (std::size_t p = 0; p < player_count(); ++p) {
      double best = payoff(p, profile);
      std::size_t best_a = profile[p];
      Profile alt = profile;
      for (std::size_t a = 0; a < action_counts_[p]; ++a) {
        alt[p] = a;
        const double u = payoff(p, alt);
        if (u > best + 1e-12) {
          best = u;
          best_a = a;
        }
      }
      if (best_a != profile[p]) {
        profile[p] = best_a;
        changed = true;
      }
    }
    if (!changed) return profile;
  }
  return std::nullopt;
}

bool NormalFormGame::is_dominant_action(std::size_t player, std::size_t action,
                                        std::size_t max_profiles) const {
  std::size_t space = 1;
  for (std::size_t p = 0; p < player_count(); ++p) {
    if (p == player) continue;
    if (space > max_profiles / action_counts_[p]) {
      throw std::length_error("NormalFormGame: profile space too large to enumerate");
    }
    space *= action_counts_[p];
  }

  Profile profile(player_count(), 0);
  // Enumerate the other players' actions with a mixed-radix counter that
  // skips `player` (whose entry is overwritten below anyway).
  std::vector<std::size_t> radices = action_counts_;
  radices[player] = 1;  // pin
  do {
    Profile candidate = profile;
    candidate[player] = action;
    if (!is_best_response(player, candidate)) return false;
  } while (next_profile(profile, radices));
  return true;
}

// ---------------------------------------------------------------------------
// Forwarding meta-game.
// ---------------------------------------------------------------------------

NormalFormGame make_forwarding_metagame(const MetaGameParams& params) {
  assert(params.players >= 2);
  auto payoff = [params](std::size_t player, const NormalFormGame::Profile& profile) -> double {
    const auto action = static_cast<MetaAction>(profile[player]);
    if (action == MetaAction::kAbstain) return 0.0;

    double participants = 0.0;
    double randoms = 0.0;
    for (std::size_t a : profile) {
      if (static_cast<MetaAction>(a) == MetaAction::kAbstain) continue;
      participants += 1.0;
      if (static_cast<MetaAction>(a) == MetaAction::kRandom) randoms += 1.0;
    }
    assert(participants >= 1.0);

    // Forwarding work L*k splits evenly over participants.
    const double m = params.avg_path_length * params.connections / participants;
    const double forwarding_net = m * (params.p_f - params.c_t) - params.c_p;

    // Forwarder-set inflation: all-non-random play keeps the set at the
    // minimal stable size L; every random router drags it toward the whole
    // participant pool.
    const double frac_random = randoms / participants;
    const double set_size =
        std::min(participants,
                 params.avg_path_length +
                     frac_random * (std::min(params.total_nodes, participants) -
                                    params.avg_path_length));

    // Membership in the paid set is proportional to a selection weight that
    // favours non-random routers (history selectivity keeps re-picking
    // them). Normalised so expected membership sums to set_size.
    const double own_weight =
        action == MetaAction::kNonRandom ? 1.0 + params.selectivity_bonus : 1.0;
    const double total_weight =
        participants + params.selectivity_bonus * (participants - randoms);
    const double membership = std::min(1.0, set_size * own_weight / total_weight);
    const double routing_share = membership * params.p_r / std::max(1.0, set_size);

    return forwarding_net + routing_share;
  };

  return NormalFormGame(std::vector<std::size_t>(params.players, 3), std::move(payoff));
}

}  // namespace p2panon::core::game
