// The incentive mechanism tying contracts, routing, history and payments
// together for one recurring connection set pi (paper §2.2).
//
// A ConnectionSetSession runs the k connections of one (I, R) pair, records
// history at forwarders, tracks the growing forwarder set Q = U_i F_i and
// per-edge reuse (the Prop. 1 statistic), and finally settles: the initiator
// funds an escrow with blind coins, opens a settlement with its validated
// path records, forwarders claim with their MAC'd receipts, and each
// forwarder is paid m * P_f + P_r / ||pi||.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/path.hpp"
#include "metrics/stats.hpp"
#include "payment/bank.hpp"
#include "payment/receipt.hpp"
#include "payment/settlement.hpp"

namespace p2panon::core {

/// Per-node running account of benefits and costs, in credit units (doubles;
/// the payment subsystem underneath accounts in exact milli-credits).
struct NodeLedger {
  double benefit = 0.0;
  double cost = 0.0;
  std::size_t forwarding_instances = 0;
  bool participated = false;

  [[nodiscard]] double payoff() const noexcept { return benefit - cost; }
};

class PayoffLedger {
 public:
  explicit PayoffLedger(std::size_t node_count) : ledgers_(node_count) {}

  [[nodiscard]] const NodeLedger& at(net::NodeId id) const { return ledgers_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept { return ledgers_.size(); }

  /// Charge the one-time participation cost C_p if not yet charged.
  void charge_participation(const net::Overlay& overlay, net::NodeId id);

  /// Charge the transmission cost C_t(from, to) for one forwarding instance.
  void charge_transmission(const net::Overlay& overlay, net::NodeId from, net::NodeId to);

  void credit(net::NodeId id, double amount) { ledgers_.at(id).benefit += amount; }

  /// Payoff statistics over the good (non-malicious) nodes.
  [[nodiscard]] metrics::Accumulator good_node_payoffs(const net::Overlay& overlay) const;

  /// Raw payoffs of all good nodes (for CDF figures).
  [[nodiscard]] std::vector<double> good_node_payoff_samples(const net::Overlay& overlay) const;

 private:
  std::vector<NodeLedger> ledgers_;
};

/// Active-adversary behaviour during a connection (paper §5 attack (2)
/// family): a malicious forwarder may drop the payload, forcing a path
/// reformation — exactly the event that helps intersection attacks.
struct AdversaryModel {
  double drop_probability = 0.0;  ///< per-connection drop chance at a malicious hop
  std::uint32_t max_retries = 8;  ///< reformation attempts before giving up
};

struct SettleOutcome {
  payment::SettlementReport report;
  std::size_t forwarder_set_size = 0;  ///< ||pi||
  double initiator_spend = 0.0;        ///< credits actually paid out of pocket
};

/// One forwarder's pending claim against an open settlement: the account
/// that will redeem it plus the MAC'd receipt it holds. The harness turns
/// these into (possibly lost / delayed / never-sent) bank messages.
struct ClaimSubmission {
  payment::AccountId claimant = payment::kInvalidAccount;
  payment::ForwardReceipt receipt;
};

/// An opened-but-not-terminal settlement: the escrow is funded, the
/// initiator's completed-connection records are on file at the bank, and
/// the forwarders' receipts are ready to claim.
struct PreparedSettlement {
  payment::SettlementId sid = 0;
  payment::Amount escrow_in = 0;  ///< full committed funding (all paths)
  std::vector<ClaimSubmission> claims;
};

class ConnectionSetSession {
 public:
  ConnectionSetSession(net::PairId pair, net::NodeId initiator, net::NodeId responder,
                       Contract contract) noexcept
      : pair_(pair), initiator_(initiator), responder_(responder), contract_(contract) {}

  [[nodiscard]] net::PairId pair() const noexcept { return pair_; }
  [[nodiscard]] net::NodeId initiator() const noexcept { return initiator_; }
  [[nodiscard]] net::NodeId responder() const noexcept { return responder_; }
  [[nodiscard]] const Contract& contract() const noexcept { return contract_; }

  /// Run the next connection of the set: build the path, record history at
  /// every forwarder, charge transmission/participation costs, and update
  /// the forwarder-set and edge-reuse statistics. Returns the built path.
  const BuiltPath& run_connection(const PathBuilder& builder, HistoryStore& history,
                                  const StrategyAssignment& strategies, PayoffLedger& ledger,
                                  const net::Overlay& overlay, sim::rng::Stream& stream,
                                  const AdversaryModel& adversary = {});

  /// Adopt an externally-formed path (e.g. from AsyncConnectionRunner or a
  /// data-phase re-formation) as the set's next connection: records history
  /// at every forwarder under the wire-visible cid, charges costs, and
  /// updates the forwarder-set / edge-reuse statistics — exactly the
  /// bookkeeping tail of run_connection, without building the path.
  const BuiltPath& adopt_connection(BuiltPath path, HistoryStore& history,
                                    PayoffLedger& ledger, const net::Overlay& overlay);

  /// Settle all completed connections through the payment system and credit
  /// forwarder ledgers. Call once, after the last run_connection. The
  /// synchronous composition of open_settlement + every claim + close +
  /// finalize_settlement, with identical bank traffic and stream draws.
  SettleOutcome settle(payment::Bank& bank, payment::SettlementEngine& engine,
                       PayoffLedger& ledger, const net::Overlay& overlay,
                       sim::rng::Stream& stream);

  // --- Crash-tolerant settlement lifecycle (fault-mode wiring). ---

  /// Record per-connection completion from data-phase receipts. Off by
  /// default: settle treats every adopted connection as completed (the
  /// pre-lifecycle behaviour, bit for bit). Once enabled, only connections
  /// explicitly marked completed contribute PathRecords at settlement —
  /// records for dead connections are excluded rather than over-claimed.
  void enable_completion_tracking() { track_completion_ = true; }
  [[nodiscard]] bool completion_tracking() const noexcept { return track_completion_; }
  /// Mark connection `conn_index` (1-based, session adoption order) as
  /// completed (its data phase ran to the end of the phase window).
  void mark_completed(std::uint32_t conn_index);
  [[nodiscard]] std::size_t completed_connections() const noexcept;

  /// Initiator side of settlement, stopping short of close(): fund the
  /// escrow with blind coins over the full committed amount (all adopted
  /// paths — the escrow was committed before outcomes were known), open the
  /// settlement with the *completed* records and `deadline`, and assemble
  /// the receipts every forwarder holds (completed or not; the bank's
  /// records decide what verifies). Marks the session settled.
  PreparedSettlement open_settlement(payment::Bank& bank, payment::SettlementEngine& engine,
                                     sim::rng::Stream& stream, sim::Time deadline);

  /// Credit forwarder ledgers from the terminal report of `sid` and build
  /// the SettleOutcome. Call exactly once, after the settlement reached a
  /// terminal state (close / abandon / deadline expiry).
  SettleOutcome finalize_settlement(const payment::Bank& bank,
                                    const payment::SettlementEngine& engine,
                                    PayoffLedger& ledger, payment::SettlementId sid) const;

  [[nodiscard]] std::uint32_t connections_run() const noexcept {
    return static_cast<std::uint32_t>(paths_.size());
  }
  /// True once open_settlement/settle ran; no further connection may join
  /// the set (late async completions must be dropped by the caller).
  [[nodiscard]] bool settled() const noexcept { return settled_; }
  [[nodiscard]] const std::vector<BuiltPath>& paths() const noexcept { return paths_; }

  /// Distinct forwarders across all connections so far: Q = U_i F_i.
  [[nodiscard]] const std::unordered_set<net::NodeId>& forwarder_set() const noexcept {
    return forwarder_set_;
  }

  /// Average forwarding-path length L across connections so far.
  [[nodiscard]] double average_path_length() const noexcept;

  /// Path quality Q(pi) = L / ||pi|| (paper §2.1). 0 before any connection.
  [[nodiscard]] double path_quality() const noexcept;

  /// Fraction of edges of connection k that were new (not on pi^1..pi^{k-1});
  /// index 0 is connection 1 (always all-new). The Prop. 1 statistic E[X].
  [[nodiscard]] const std::vector<double>& new_edge_fractions() const noexcept {
    return new_edge_fraction_;
  }

  /// Path reformations forced by payload drops (adversary model).
  [[nodiscard]] std::uint64_t reformations() const noexcept { return reformations_; }

  /// The pseudonymous connection-set id forwarders see for connection
  /// `conn_index` (1-based) under the contract's cid-rotation policy; the
  /// real pair id when rotation is off.
  [[nodiscard]] net::PairId effective_pair(std::uint32_t conn_index) const noexcept;

  /// Connection index *within the current cid epoch* (what selectivity's
  /// k-1 denominator sees).
  [[nodiscard]] std::uint32_t effective_conn_index(std::uint32_t conn_index) const noexcept;

 private:
  net::PairId pair_;
  net::NodeId initiator_;
  net::NodeId responder_;
  Contract contract_;

  std::vector<BuiltPath> paths_;
  std::unordered_set<net::NodeId> forwarder_set_;
  /// Directed edges seen on any completed path of this set.
  std::set<std::pair<net::NodeId, net::NodeId>> seen_edges_;
  std::vector<double> new_edge_fraction_;
  std::uint64_t reformations_ = 0;
  bool settled_ = false;
  bool track_completion_ = false;
  /// completed_[j] == connection j+1 confirmed complete (tracking mode).
  std::vector<bool> completed_;
};

}  // namespace p2panon::core
