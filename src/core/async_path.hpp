// Event-driven (asynchronous) connection establishment.
//
// PathBuilder::build forms a path instantaneously — adequate for the
// paper's aggregate metrics, but it cannot capture the *mechanism* of
// churn-induced reformations: in a real deployment the contract propagates
// hop by hop over links with latency, and a forwarder that goes offline
// while the setup (or the reverse-path confirmation) is in flight kills the
// attempt, forcing the initiator to re-form the path.
//
// AsyncConnectionRunner simulates exactly that: every hop decision and
// every confirmation step is a scheduled event at link-transfer-time
// granularity; offline holders abort the attempt; the initiator retries
// after a backoff. The completion callback receives the final path plus
// the attempt count and total setup time — the churn-reformation statistics
// the paper's §2.1 argues about.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/path.hpp"
#include "sim/simulator.hpp"

namespace p2panon::core {

struct AsyncConfig {
  /// Delay before retrying a failed formation attempt.
  sim::Time retry_backoff = 2.0;
  /// Give up after this many attempts (the callback then reports failure).
  std::uint32_t max_attempts = 16;
};

struct AsyncResult {
  bool established = false;
  BuiltPath path;                ///< valid when established
  std::uint32_t attempts = 0;    ///< formation attempts (1 = no reformation)
  sim::Time setup_time = 0.0;    ///< from establish() to confirmation arrival
};

class AsyncConnectionRunner {
 public:
  using Callback = std::function<void(const AsyncResult&)>;

  AsyncConnectionRunner(sim::Simulator& simulator, const net::Overlay& overlay,
                        const PathBuilder& builder, AsyncConfig cfg = {}) noexcept
      : sim_(simulator), overlay_(overlay), builder_(builder), cfg_(cfg) {}

  /// Begin establishing connection `conn_index` of `pair` from `initiator`
  /// to `responder`. The callback fires (once) when the reverse-path
  /// confirmation reaches the initiator, or when attempts are exhausted.
  /// `stream` must outlive the establishment (the runner keeps a copy).
  void establish(net::PairId pair, std::uint32_t conn_index, net::NodeId initiator,
                 net::NodeId responder, const Contract& contract,
                 const StrategyAssignment& strategies, const sim::rng::Stream& stream,
                 Callback on_done);

 private:
  /// Per-establishment state, kept alive by the scheduled closures.
  struct Pending;

  void start_attempt(std::shared_ptr<Pending> p);
  void hop_arrived(std::shared_ptr<Pending> p, net::NodeId holder, net::NodeId pred,
                   std::uint32_t forwarders);
  void confirm_step(std::shared_ptr<Pending> p, std::size_t reverse_index);
  void fail_attempt(std::shared_ptr<Pending> p);

  sim::Simulator& sim_;
  const net::Overlay& overlay_;
  const PathBuilder& builder_;
  AsyncConfig cfg_;
};

}  // namespace p2panon::core
