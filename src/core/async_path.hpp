// Event-driven (asynchronous) connection establishment.
//
// PathBuilder::build forms a path instantaneously — adequate for the
// paper's aggregate metrics, but it cannot capture the *mechanism* of
// churn-induced reformations: in a real deployment the contract propagates
// hop by hop over links with latency, and a forwarder that goes offline
// while the setup (or the reverse-path confirmation) is in flight kills the
// attempt, forcing the initiator to re-form the path.
//
// AsyncConnectionRunner simulates exactly that, and — unlike the original
// omniscient version — detects failures the way a deployment would:
//
//  * every hop (setup payload forward, confirmation backward) is a "leg"
//    with an ack expected from its receiver; the sender arms an ack timer
//    sized from the link's own transfer time, so slow links get patient
//    timers and fast links fail fast;
//  * a receiver that left *gracefully* answers with a NACK (the TCP-RST
//    analog: its former host refuses the connection), failing the attempt
//    after one return flight instead of a full timeout;
//  * a receiver that crashed *silently* answers nothing — the attempt dies
//    only when the ack timer fires, and the timed-out hop's receiver is
//    reported to the optional SuspicionTracker;
//  * the optional fault::FaultInjector can drop or delay any leg or ack,
//    so lossy links produce spurious timeouts exactly like dead nodes do;
//  * retries use capped exponential backoff with multiplicative jitter
//    drawn from a dedicated child stream, and an optional per-attempt
//    deadline bounds how long one attempt may dangle.
//
// With no injector, no tracker, and no failures, the timing is unchanged
// from the omniscient version: setup completes after exactly one forward
// plus one reverse traversal (acks ride in parallel and gate nothing).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/path.hpp"
#include "sim/simulator.hpp"

namespace p2panon::fault {
class FaultInjector;
}

namespace p2panon::transport {
class SimTransport;
}

namespace p2panon::core {

class SuspicionTracker;

struct AsyncConfig {
  /// Backoff before retry n (1-based) is
  /// min(backoff_base * 2^(n-1), backoff_cap) * U[1-j, 1+j].
  sim::Time backoff_base = 2.0;
  sim::Time backoff_cap = 60.0;
  double backoff_jitter = 0.5;  ///< j above, in [0, 1)
  /// Give up after this many attempts (the callback then reports failure).
  std::uint32_t max_attempts = 16;
  /// Ack timer for a leg over link (a, b):
  /// ack_timeout_factor * 2 * transfer_time(a, b) + ack_timeout_slack.
  double ack_timeout_factor = 4.0;
  sim::Time ack_timeout_slack = 1.0;
  /// Hard ceiling on one attempt's duration; 0 disables. A safety net for
  /// pathological delay jitter — ack timers catch ordinary failures first.
  sim::Time attempt_deadline = 0.0;
};

struct AsyncResult {
  bool established = false;
  BuiltPath path;                ///< valid when established
  std::uint32_t attempts = 0;    ///< formation attempts (1 = no reformation)
  sim::Time setup_time = 0.0;    ///< from establish() to confirmation arrival
  std::uint32_t ack_timeouts = 0;  ///< legs whose ack timer fired, all attempts
  /// When established: forward-pass arrival time of the setup payload at
  /// path.nodes[i] (index 0 = final attempt's start). Lets callers audit
  /// that no leg was accepted by a node that was dead at handling time.
  std::vector<sim::Time> relay_times;
};

class AsyncConnectionRunner {
 public:
  using Callback = std::function<void(const AsyncResult&)>;

  /// `faults` (optional) injects loss/delay on every leg and ack;
  /// `suspicion` (optional) learns from ack timeouts and confirmed paths;
  /// `transport` (optional) carries legs/acks/nacks as codec-verified wire
  /// frames through the SimTransport backend (bitwise-identical delivery —
  /// same draws, same schedule — plus frame accounting). All must outlive
  /// the runner.
  AsyncConnectionRunner(sim::Simulator& simulator, const net::Overlay& overlay,
                        const PathBuilder& builder, AsyncConfig cfg = {},
                        fault::FaultInjector* faults = nullptr,
                        SuspicionTracker* suspicion = nullptr,
                        transport::SimTransport* transport = nullptr) noexcept
      : sim_(simulator),
        overlay_(overlay),
        builder_(builder),
        cfg_(cfg),
        faults_(faults),
        suspicion_(suspicion),
        transport_(transport) {}

  /// Begin establishing connection `conn_index` of `pair` from `initiator`
  /// to `responder`. The callback fires (once) when the reverse-path
  /// confirmation reaches the initiator, or when attempts are exhausted.
  void establish(net::PairId pair, std::uint32_t conn_index, net::NodeId initiator,
                 net::NodeId responder, const Contract& contract,
                 const StrategyAssignment& strategies, const sim::rng::Stream& stream,
                 Callback on_done);

 private:
  /// Per-establishment state, kept alive by the scheduled closures.
  struct Pending;
  /// What to do when a leg's payload arrives — a small POD instead of a
  /// continuation closure, so the scheduled delivery lambda fits
  /// EventCallback's inline buffer (a nested std::function would both
  /// heap-allocate its own capture and blow the budget).
  struct LegDelivery;

  void start_attempt(std::shared_ptr<Pending> p);
  void arrive_setup(std::shared_ptr<Pending> p, net::NodeId holder, net::NodeId pred,
                    std::uint32_t forwarders);
  void arrive_confirm(std::shared_ptr<Pending> p, std::size_t reverse_index);
  /// Send one leg from `from` to `to`: arms the ack timer, routes the
  /// payload through the fault injector, and classifies the receiver at
  /// arrival (alive → ack + deliver_leg(); crashed → silence; gracefully
  /// offline → NACK).
  void send_leg(std::shared_ptr<Pending> p, net::NodeId from, net::NodeId to, LegDelivery leg);
  void deliver_leg(const std::shared_ptr<Pending>& p, const LegDelivery& leg);
  void send_ack(std::shared_ptr<Pending> p, net::NodeId from, net::NodeId to,
                std::uint64_t tid);
  void send_nack(std::shared_ptr<Pending> p, net::NodeId from, net::NodeId to);
  void fail_attempt(std::shared_ptr<Pending> p);
  void cancel_timers(Pending& p);

  sim::Simulator& sim_;
  const net::Overlay& overlay_;
  const PathBuilder& builder_;
  AsyncConfig cfg_;
  fault::FaultInjector* faults_;
  SuspicionTracker* suspicion_;
  transport::SimTransport* transport_;
};

}  // namespace p2panon::core
