#include "core/routing.hpp"
#include "core/spne_routing.hpp"

#include <cassert>

namespace p2panon::core {

HopChoice RandomRouting::choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                std::span<const net::NodeId> candidates,
                                sim::rng::Stream& stream) const {
  assert(!candidates.empty());
  const net::NodeId pick = candidates[stream.below(candidates.size())];
  HopChoice c;
  c.next = pick;
  c.edge_quality = ctx.edge_q(self, pick, pred);
  c.utility = model1_utility_with_q(ctx, self, pick, c.edge_quality);
  return c;
}

namespace {

/// Shared argmax loop: pick the candidate with the highest utility, breaking
/// utility ties toward the higher-quality edge (paper §2.2), then toward the
/// lower node id for determinism. The edge quality is resolved once per
/// candidate and handed to the utility callback, which needs the same value.
template <typename UtilityFn>
HopChoice argmax_choice(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                        std::span<const net::NodeId> candidates, UtilityFn&& utility_of) {
  assert(!candidates.empty());
  HopChoice best;
  bool have = false;
  for (net::NodeId j : candidates) {
    const double q = ctx.edge_q(self, j, pred);
    const double u = utility_of(j, q);
    const bool better =
        !have || u > best.utility ||
        (u == best.utility && (q > best.edge_quality ||
                               (q == best.edge_quality && j < best.next)));
    if (better) {
      best = HopChoice{j, u, q};
      have = true;
    }
  }
  return best;
}

}  // namespace

HopChoice UtilityModelIRouting::choose(const RoutingContext& ctx, net::NodeId self,
                                       net::NodeId pred,
                                       std::span<const net::NodeId> candidates,
                                       sim::rng::Stream& /*stream*/) const {
  return argmax_choice(ctx, self, pred, candidates, [&](net::NodeId j, double q) {
    return model1_utility_with_q(ctx, self, j, q);
  });
}

HopChoice UtilityModelIIRouting::choose(const RoutingContext& ctx, net::NodeId self,
                                        net::NodeId pred,
                                        std::span<const net::NodeId> candidates,
                                        sim::rng::Stream& /*stream*/) const {
  // One memo generation for the whole decision: candidate lookahead trees
  // overlap heavily and share their subproblem values.
  DecisionScope scope(ctx.resources);
  return argmax_choice(ctx, self, pred, candidates, [&](net::NodeId j, double q) {
    return model2_utility_with_q(ctx, self, j, depth_, q);
  });
}

std::unique_ptr<RoutingStrategy> make_strategy(StrategyKind kind, std::uint32_t lookahead_depth) {
  switch (kind) {
    case StrategyKind::kRandom:
      return std::make_unique<RandomRouting>();
    case StrategyKind::kUtilityModelI:
      return std::make_unique<UtilityModelIRouting>();
    case StrategyKind::kUtilityModelII:
      return std::make_unique<UtilityModelIIRouting>(lookahead_depth);
    case StrategyKind::kSpne:
      return std::make_unique<SpneRouting>(lookahead_depth);
  }
  return nullptr;  // unreachable
}

std::string_view strategy_name(StrategyKind kind) noexcept {
  switch (kind) {
    case StrategyKind::kRandom:
      return "random";
    case StrategyKind::kUtilityModelI:
      return "utility-model-1";
    case StrategyKind::kUtilityModelII:
      return "utility-model-2";
    case StrategyKind::kSpne:
      return "spne";
  }
  return "?";
}

}  // namespace p2panon::core
