// Path formation (paper §2.2).
//
// A path for connection k of a pair grows hop by hop: the contract
// propagates, the current holder decides (per the termination policy)
// whether to deliver directly to the responder or forward, candidate next
// hops are the holder's online neighbours (plus the responder when
// adjacent), each candidate may decline participation (utility test of
// Prop. 3), and the holder's routing strategy picks among the willing ones.
// When the responder receives the payload, the confirmation travels the
// reverse path and the initiator recreates and validates the path; here that
// validation is realised by HistoryStore::record_path plus the receipt chain
// assembled in core/incentive.
#pragma once

#include <cstdint>
#include <vector>

#include "core/routing.hpp"

namespace p2panon::core {

struct BuiltPath {
  /// Full node sequence: initiator, forwarders..., responder.
  std::vector<net::NodeId> nodes;
  /// Per-hop edge qualities as evaluated by the deciding node, aligned with
  /// edges nodes[i] -> nodes[i+1].
  std::vector<double> edge_qualities;
  /// Candidates that declined participation during formation.
  std::uint32_t declined = 0;

  [[nodiscard]] std::size_t forwarder_count() const noexcept {
    return nodes.size() >= 2 ? nodes.size() - 2 : 0;
  }
  [[nodiscard]] net::NodeId initiator() const { return nodes.front(); }
  [[nodiscard]] net::NodeId responder() const { return nodes.back(); }
};

struct PathBuilderConfig {
  /// Hard cap on forwarder count (safety guard against pathological loops).
  std::uint32_t max_forwarders = 64;
  /// Honour participation declines (Prop. 3 utility test at each candidate).
  bool allow_declines = true;
};

class PathBuilder {
 public:
  /// `resources`, when given, is the per-replicate edge-quality cache and
  /// decision memo arena threaded into every RoutingContext this builder
  /// creates. Null disables caching; results are bitwise identical.
  PathBuilder(const net::Overlay& overlay, const EdgeQualityEvaluator& quality,
              PathBuilderConfig cfg = {}, DecisionResources* resources = nullptr) noexcept
      : overlay_(overlay), quality_(quality), cfg_(cfg), resources_(resources) {}

  [[nodiscard]] const EdgeQualityEvaluator& quality_evaluator() const noexcept {
    return quality_;
  }

  [[nodiscard]] DecisionResources* resources() const noexcept { return resources_; }

  /// Form the path for connection `conn_index` (1-based) of `pair` from
  /// `initiator` to `responder` under `contract`, with per-node strategies
  /// from `strategies`. Randomness (termination coins, adversary picks)
  /// comes from `stream`.
  [[nodiscard]] BuiltPath build(net::PairId pair, std::uint32_t conn_index,
                                net::NodeId initiator, net::NodeId responder,
                                const Contract& contract, const StrategyAssignment& strategies,
                                sim::rng::Stream& stream) const;

  /// One hop decision, exposed for event-driven (asynchronous) formation:
  /// given the holder's situation, either deliver to the responder
  /// (delivered = true) or forward to `next`. `forwarders_so_far` feeds the
  /// hop-count termination policy and the loop guard.
  struct HopOutcome {
    net::NodeId next = net::kInvalidNode;
    double edge_quality = 0.0;
    bool delivered = false;
    std::uint32_t declined = 0;
  };
  [[nodiscard]] HopOutcome next_hop(const RoutingContext& ctx, net::NodeId holder,
                                    net::NodeId pred, bool first_hop,
                                    std::uint32_t forwarders_so_far,
                                    const StrategyAssignment& strategies,
                                    sim::rng::Stream& coin_stream,
                                    sim::rng::Stream& pick_stream) const;

 private:
  /// Willing, online candidates for `holder`; includes the responder when
  /// adjacent and online — except on the first hop, where the initiator
  /// must route via a forwarder to preserve its own anonymity. The immediate
  /// predecessor is excluded (a forwarder never bounces the payload straight
  /// back) unless it is the only live option; longer revisit cycles remain
  /// possible, which is why history entries are keyed by predecessor.
  [[nodiscard]] std::vector<net::NodeId> candidates_for(const RoutingContext& ctx,
                                                        net::NodeId holder, net::NodeId pred,
                                                        bool first_hop,
                                                        std::uint32_t* declined) const;

  const net::Overlay& overlay_;
  const EdgeQualityEvaluator& quality_;
  PathBuilderConfig cfg_;
  DecisionResources* resources_;
};

}  // namespace p2panon::core
