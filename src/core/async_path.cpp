#include "core/async_path.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "core/suspicion.hpp"
#include "fault/fault.hpp"
#include "transport/sim_transport.hpp"

namespace p2panon::core {

namespace wire = transport::wire;

struct AsyncConnectionRunner::Pending {
  net::PairId pair;
  std::uint32_t conn_index;
  net::NodeId initiator;
  net::NodeId responder;
  Contract contract;
  const StrategyAssignment* strategies = nullptr;
  sim::rng::Stream stream{0};
  Callback on_done;

  sim::Time started = 0.0;
  std::uint32_t attempts = 0;
  std::uint32_t ack_timeouts = 0;
  bool finished = false;
  /// True while an attempt is in flight; cleared by the *first* failure
  /// signal (NACK, ack timeout, deadline), making them race-free: whichever
  /// fires first schedules the retry, the rest become stale no-ops.
  bool attempt_active = false;

  // Per-attempt state.
  BuiltPath partial;
  std::vector<sim::Time> relay_times;
  sim::rng::Stream coin_stream{0};
  sim::rng::Stream pick_stream{0};
  sim::rng::Stream backoff_stream{0};
  /// Identity of the newest leg; stale acks/timeouts compare against it.
  std::uint64_t current_tid = 0;
  sim::EventId ack_timeout_event = sim::kInvalidEventId;
  sim::EventId deadline_event = sim::kInvalidEventId;
};

struct AsyncConnectionRunner::LegDelivery {
  enum class Kind : std::uint8_t {
    kSetup,      ///< setup payload hops forward: arrive_setup(next, holder, forwarders)
    kResponder,  ///< setup payload reaches the responder: confirmation turns around
    kConfirm,    ///< confirmation retraces one hop: arrive_confirm(index - 1)
  };
  Kind kind;
  net::NodeId holder = net::kInvalidNode;  ///< kSetup: the hop's sender (next's predecessor)
  net::NodeId next = net::kInvalidNode;    ///< kSetup: the receiving forwarder
  std::uint32_t forwarders = 0;            ///< kSetup: forwarder count including `next`
  std::uint32_t index = 0;                 ///< kResponder/kConfirm: position in partial.nodes
};

void AsyncConnectionRunner::establish(net::PairId pair, std::uint32_t conn_index,
                                      net::NodeId initiator, net::NodeId responder,
                                      const Contract& contract,
                                      const StrategyAssignment& strategies,
                                      const sim::rng::Stream& stream, Callback on_done) {
  assert(initiator != responder);
  assert(on_done);
  auto p = std::make_shared<Pending>();
  p->pair = pair;
  p->conn_index = conn_index;
  p->initiator = initiator;
  p->responder = responder;
  p->contract = contract;
  p->strategies = &strategies;
  p->stream = stream;
  p->backoff_stream =
      stream.child("backoff", (static_cast<std::uint64_t>(pair) << 20) | conn_index);
  p->on_done = std::move(on_done);
  p->started = sim_.now();
  start_attempt(std::move(p));
}

void AsyncConnectionRunner::start_attempt(std::shared_ptr<Pending> p) {
  if (p->finished) return;
  if (p->attempts >= cfg_.max_attempts) {
    p->finished = true;
    AsyncResult result;
    result.established = false;
    result.attempts = p->attempts;
    result.setup_time = sim_.now() - p->started;
    result.ack_timeouts = p->ack_timeouts;
    p->on_done(result);
    return;
  }
  ++p->attempts;
  p->attempt_active = true;
  p->partial = BuiltPath{};
  p->partial.nodes.push_back(p->initiator);
  p->relay_times.clear();
  p->relay_times.push_back(sim_.now());
  p->coin_stream = p->stream.child("termination", (static_cast<std::uint64_t>(p->conn_index)
                                                   << 16) |
                                                      p->attempts);
  p->pick_stream = p->stream.child("picks", (static_cast<std::uint64_t>(p->conn_index) << 16) |
                                                p->attempts);
  if (cfg_.attempt_deadline > 0.0) {
    const std::uint32_t attempt = p->attempts;
    p->deadline_event = sim_.schedule_in(cfg_.attempt_deadline, [this, p, attempt] {
      if (p->finished || !p->attempt_active || attempt != p->attempts) return;
      fail_attempt(p);
    });
  }
  arrive_setup(std::move(p), net::kInvalidNode, net::kInvalidNode, 0);
}

void AsyncConnectionRunner::arrive_setup(std::shared_ptr<Pending> p, net::NodeId holder,
                                         net::NodeId pred, std::uint32_t forwarders) {
  if (p->finished || !p->attempt_active) return;
  const bool first_hop = holder == net::kInvalidNode;
  if (first_hop) holder = p->initiator;

  RoutingContext ctx{overlay_, builder_.quality_evaluator(), p->contract, p->pair,
                     p->conn_index, p->responder, builder_.resources()};
  const PathBuilder::HopOutcome hop = builder_.next_hop(
      ctx, holder, pred, first_hop, forwarders, *p->strategies, p->coin_stream,
      p->pick_stream);
  p->partial.declined += hop.declined;
  p->partial.edge_qualities.push_back(hop.edge_quality);
  p->partial.nodes.push_back(hop.next);

  if (hop.delivered) {
    // Payload reaches the responder; the confirmation then retraces the
    // path in reverse.
    LegDelivery leg{LegDelivery::Kind::kResponder};
    leg.index = static_cast<std::uint32_t>(p->partial.nodes.size() - 1);
    send_leg(p, holder, hop.next, leg);
    return;
  }
  LegDelivery leg{LegDelivery::Kind::kSetup};
  leg.holder = holder;
  leg.next = hop.next;
  leg.forwarders = forwarders + 1;
  send_leg(p, holder, hop.next, leg);
}

void AsyncConnectionRunner::arrive_confirm(std::shared_ptr<Pending> p,
                                           std::size_t reverse_index) {
  if (p->finished || !p->attempt_active) return;
  // The confirmation currently sits at nodes[reverse_index]; index 0 is the
  // initiator — arrival there completes the connection.
  if (reverse_index == 0) {
    p->finished = true;
    p->attempt_active = false;
    cancel_timers(*p);
    if (suspicion_ != nullptr) {
      // A confirmed end-to-end path vouches for every intermediate hop.
      for (std::size_t i = 1; i + 1 < p->partial.nodes.size(); ++i) {
        suspicion_->record_success(p->partial.nodes[i]);
      }
    }
    AsyncResult result;
    result.established = true;
    result.path = p->partial;
    result.attempts = p->attempts;
    result.setup_time = sim_.now() - p->started;
    result.ack_timeouts = p->ack_timeouts;
    result.relay_times = p->relay_times;
    p->on_done(result);
    return;
  }
  const net::NodeId at = p->partial.nodes[reverse_index];
  const net::NodeId towards = p->partial.nodes[reverse_index - 1];
  LegDelivery leg{LegDelivery::Kind::kConfirm};
  leg.index = static_cast<std::uint32_t>(reverse_index);
  send_leg(p, at, towards, leg);
}

void AsyncConnectionRunner::deliver_leg(const std::shared_ptr<Pending>& p,
                                        const LegDelivery& leg) {
  switch (leg.kind) {
    case LegDelivery::Kind::kSetup:
      p->relay_times.push_back(sim_.now());
      arrive_setup(p, leg.next, leg.holder, leg.forwarders);
      break;
    case LegDelivery::Kind::kResponder:
      p->relay_times.push_back(sim_.now());
      arrive_confirm(p, leg.index);
      break;
    case LegDelivery::Kind::kConfirm:
      arrive_confirm(p, leg.index - 1);
      break;
  }
}

void AsyncConnectionRunner::send_leg(std::shared_ptr<Pending> p, net::NodeId from,
                                     net::NodeId to, LegDelivery leg) {
  const std::uint32_t attempt = p->attempts;
  const std::uint64_t tid = ++p->current_tid;
  const sim::Time base = overlay_.links().transfer_time(from, to);

  // The sender's patience scales with its own link: a leg's ack needs one
  // round trip, so the timer covers factor round trips plus fixed slack.
  const sim::Time patience = cfg_.ack_timeout_factor * 2.0 * base + cfg_.ack_timeout_slack;
  p->ack_timeout_event = sim_.schedule_in(patience, [this, p, attempt, tid, to] {
    if (p->finished || !p->attempt_active || attempt != p->attempts) return;
    if (tid != p->current_tid) return;  // a newer leg superseded this timer
    ++p->ack_timeouts;
    if (suspicion_ != nullptr) suspicion_->record_timeout(to);
    fail_attempt(p);
  });

  auto deliver = [this, p, attempt, tid, from, to, leg] {
    if (p->finished || !p->attempt_active || attempt != p->attempts) return;
    if (overlay_.is_online(to)) {
      send_ack(p, to, from, tid);
      deliver_leg(p, leg);
      return;
    }
    // Crashed hosts are silent (the sender's timer must expire); gracefully
    // departed ones refuse — their host answers with the RST analog.
    if (!overlay_.appears_online(to)) send_nack(p, to, from);
  };
  if (transport_ != nullptr) {
    // Same drop/delay draws, same schedule call, same (unwrapped) capture —
    // bitwise-identical to the branch below — plus codec verification and
    // frame accounting. A false return means the injector ate the frame;
    // the ack timer armed above covers it either way.
    const wire::LegMsg msg{p->pair,    p->conn_index,  attempt,  tid,
                           static_cast<std::uint8_t>(leg.kind), leg.holder,
                           leg.next,   leg.forwarders, leg.index};
    (void)transport_->send(from, to, msg, std::move(deliver));
    return;
  }
  if (faults_ != nullptr && faults_->drop_message(from, to)) return;  // timer will fire
  sim::Time flight = base;
  if (faults_ != nullptr) flight += faults_->extra_delay(from, to);
  sim_.schedule_in(flight, std::move(deliver));
}

void AsyncConnectionRunner::send_ack(std::shared_ptr<Pending> p, net::NodeId from,
                                     net::NodeId to, std::uint64_t tid) {
  auto deliver = [this, p, tid] {
    if (p->finished || tid != p->current_tid) return;  // stale ack
    sim_.cancel(p->ack_timeout_event);
  };
  if (transport_ != nullptr) {
    (void)transport_->send(from, to, wire::AckMsg{p->pair, p->conn_index, tid},
                           std::move(deliver));
    return;
  }
  if (faults_ != nullptr && faults_->drop_message(from, to)) return;
  sim::Time flight = overlay_.links().transfer_time(from, to);
  if (faults_ != nullptr) flight += faults_->extra_delay(from, to);
  sim_.schedule_in(flight, std::move(deliver));
}

void AsyncConnectionRunner::send_nack(std::shared_ptr<Pending> p, net::NodeId from,
                                      net::NodeId to) {
  const std::uint32_t attempt = p->attempts;
  auto deliver = [this, p, attempt] {
    if (p->finished || !p->attempt_active || attempt != p->attempts) return;
    fail_attempt(p);
  };
  if (transport_ != nullptr) {
    (void)transport_->send(from, to, wire::NackMsg{p->pair, p->conn_index, attempt},
                           std::move(deliver));  // false: timer covers it
    return;
  }
  if (faults_ != nullptr && faults_->drop_message(from, to)) return;  // timer covers it
  sim::Time flight = overlay_.links().transfer_time(from, to);
  if (faults_ != nullptr) flight += faults_->extra_delay(from, to);
  sim_.schedule_in(flight, std::move(deliver));
}

void AsyncConnectionRunner::fail_attempt(std::shared_ptr<Pending> p) {
  if (p->finished || !p->attempt_active) return;
  p->attempt_active = false;
  cancel_timers(*p);
  // Capped exponential backoff: base * 2^(n-1) is exact in binary floating
  // point (ldexp), so the schedule is bitwise reproducible.
  const int exponent = static_cast<int>(std::min<std::uint32_t>(p->attempts, 62u)) - 1;
  const sim::Time capped = std::min(std::ldexp(cfg_.backoff_base, exponent), cfg_.backoff_cap);
  const double jitter =
      cfg_.backoff_jitter > 0.0
          ? p->backoff_stream.uniform(1.0 - cfg_.backoff_jitter, 1.0 + cfg_.backoff_jitter)
          : 1.0;
  sim_.schedule_in(capped * jitter,
                   [this, p = std::move(p)]() mutable { start_attempt(std::move(p)); });
}

void AsyncConnectionRunner::cancel_timers(Pending& p) {
  if (p.ack_timeout_event != sim::kInvalidEventId) {
    sim_.cancel(p.ack_timeout_event);
    p.ack_timeout_event = sim::kInvalidEventId;
  }
  if (p.deadline_event != sim::kInvalidEventId) {
    sim_.cancel(p.deadline_event);
    p.deadline_event = sim::kInvalidEventId;
  }
}

}  // namespace p2panon::core
