#include "core/async_path.hpp"

#include <cassert>
#include <utility>

namespace p2panon::core {

struct AsyncConnectionRunner::Pending {
  net::PairId pair;
  std::uint32_t conn_index;
  net::NodeId initiator;
  net::NodeId responder;
  Contract contract;
  const StrategyAssignment* strategies = nullptr;
  sim::rng::Stream stream{0};
  Callback on_done;

  sim::Time started = 0.0;
  std::uint32_t attempts = 0;
  bool finished = false;

  // Per-attempt state.
  BuiltPath partial;
  sim::rng::Stream coin_stream{0};
  sim::rng::Stream pick_stream{0};
};

void AsyncConnectionRunner::establish(net::PairId pair, std::uint32_t conn_index,
                                      net::NodeId initiator, net::NodeId responder,
                                      const Contract& contract,
                                      const StrategyAssignment& strategies,
                                      const sim::rng::Stream& stream, Callback on_done) {
  assert(initiator != responder);
  assert(on_done);
  auto p = std::make_shared<Pending>();
  p->pair = pair;
  p->conn_index = conn_index;
  p->initiator = initiator;
  p->responder = responder;
  p->contract = contract;
  p->strategies = &strategies;
  p->stream = stream;
  p->on_done = std::move(on_done);
  p->started = sim_.now();
  start_attempt(std::move(p));
}

void AsyncConnectionRunner::start_attempt(std::shared_ptr<Pending> p) {
  if (p->finished) return;
  if (p->attempts >= cfg_.max_attempts) {
    p->finished = true;
    AsyncResult result;
    result.established = false;
    result.attempts = p->attempts;
    result.setup_time = sim_.now() - p->started;
    p->on_done(result);
    return;
  }
  ++p->attempts;
  p->partial = BuiltPath{};
  p->partial.nodes.push_back(p->initiator);
  p->coin_stream = p->stream.child("termination", (static_cast<std::uint64_t>(p->conn_index)
                                                   << 16) |
                                                      p->attempts);
  p->pick_stream = p->stream.child("picks", (static_cast<std::uint64_t>(p->conn_index) << 16) |
                                                p->attempts);
  hop_arrived(std::move(p), /*holder=*/net::kInvalidNode, net::kInvalidNode, 0);
}

void AsyncConnectionRunner::hop_arrived(std::shared_ptr<Pending> p, net::NodeId holder,
                                        net::NodeId pred, std::uint32_t forwarders) {
  if (p->finished) return;
  const bool first_hop = holder == net::kInvalidNode;
  if (first_hop) {
    holder = p->initiator;
  } else {
    // The payload just reached `holder`; if it left while the message was in
    // flight, the attempt is dead.
    if (!overlay_.is_online(holder)) {
      fail_attempt(std::move(p));
      return;
    }
  }

  RoutingContext ctx{overlay_, builder_.quality_evaluator(), p->contract, p->pair,
                     p->conn_index, p->responder, builder_.resources()};
  const PathBuilder::HopOutcome hop = builder_.next_hop(
      ctx, holder, pred, first_hop, forwarders, *p->strategies, p->coin_stream,
      p->pick_stream);
  p->partial.declined += hop.declined;
  p->partial.edge_qualities.push_back(hop.edge_quality);
  p->partial.nodes.push_back(hop.next);

  const sim::Time flight = overlay_.links().transfer_time(holder, hop.next);
  if (hop.delivered) {
    // Payload reaches the responder after `flight`; the confirmation then
    // retraces the path in reverse.
    const std::size_t responder_index = p->partial.nodes.size() - 1;
    sim_.schedule_in(flight, [this, p = std::move(p), responder_index]() mutable {
      confirm_step(std::move(p), responder_index);
    });
    return;
  }
  const auto next_forwarders = forwarders + 1;
  sim_.schedule_in(flight, [this, p = std::move(p), holder, next = hop.next,
                            next_forwarders]() mutable {
    hop_arrived(std::move(p), next, holder, next_forwarders);
  });
}

void AsyncConnectionRunner::confirm_step(std::shared_ptr<Pending> p,
                                         std::size_t reverse_index) {
  if (!p || p->finished) return;
  // The confirmation currently sits at nodes[reverse_index]; index 0 is the
  // initiator — arrival there completes the connection.
  if (reverse_index == 0) {
    p->finished = true;
    AsyncResult result;
    result.established = true;
    result.path = p->partial;
    result.attempts = p->attempts;
    result.setup_time = sim_.now() - p->started;
    p->on_done(result);
    return;
  }
  const net::NodeId at = p->partial.nodes[reverse_index];
  // Endpoints are active by assumption; intermediate forwarders must still
  // be online to relay the confirmation.
  const bool intermediate = reverse_index + 1 < p->partial.nodes.size();
  if (intermediate && !overlay_.is_online(at)) {
    fail_attempt(std::move(p));
    return;
  }
  const net::NodeId towards = p->partial.nodes[reverse_index - 1];
  const sim::Time flight = overlay_.links().transfer_time(at, towards);
  sim_.schedule_in(flight, [this, p = std::move(p), reverse_index]() mutable {
    confirm_step(std::move(p), reverse_index - 1);
  });
}

void AsyncConnectionRunner::fail_attempt(std::shared_ptr<Pending> p) {
  if (p->finished) return;
  sim_.schedule_in(cfg_.retry_backoff,
                   [this, p = std::move(p)]() mutable { start_attempt(std::move(p)); });
}

}  // namespace p2panon::core
