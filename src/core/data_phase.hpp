// Data-phase keepalives and timeout-driven path repair.
//
// Establishing a path is only half the robustness story: the paper's
// availability argument (§2.1) is about paths *staying up* while data
// flows. This layer models the data phase of an established connection as
// a periodic keepalive: the initiator sends a probe down the path, the
// responder echoes it back, and the initiator arms a round-trip timer per
// keepalive. A forwarder that crashed silently is *detected* — the echo
// stops coming and the timer fires — rather than known instantly, which is
// what makes time-to-detect a measurable quantity:
//
//   time_to_detect = detection time - ground-truth failure time
//
// where the ground-truth failure time comes from the overlay's per-node
// AvailabilityTracker (which records even silent crashes). On detection
// the initiator re-forms the path through the AsyncConnectionRunner (a
// reformation in the paper's sense) and resumes keepalives on the new
// path; delivery ratio = echoed keepalives / sent keepalives over the
// phase summarises how much of the data phase the connection was usable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/async_path.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace p2panon::core {

struct DataPhaseConfig {
  sim::Time duration = sim::minutes(2.0);  ///< length of the data phase
  sim::Time keepalive_interval = 15.0;     ///< gap between keepalive sends
  /// Round-trip timer for one keepalive over path P:
  /// ack_timeout_factor * 2 * path_latency(P) + ack_timeout_slack.
  double ack_timeout_factor = 4.0;
  sim::Time ack_timeout_slack = 1.0;
  /// Give up on the connection after this many successful re-formations.
  std::uint32_t max_reformations = 8;
};

struct DataPhaseResult {
  bool completed = false;  ///< survived to the end of the phase
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_delivered = 0;  ///< echo made it back
  std::uint32_t failures_detected = 0;     ///< keepalive timers that fired
  std::uint32_t reformations = 0;          ///< successful path re-forms
  std::uint32_t reform_setup_attempts = 0;  ///< attempts across all re-forms
  /// One sample per detected failure whose ground-truth cause (an offline
  /// path member) could be identified: detection lag in seconds.
  std::vector<sim::Time> detection_delays;
  /// Paths adopted by re-formation, in order — the caller (harness) feeds
  /// them back into the incentive bookkeeping like any formed path.
  std::vector<BuiltPath> reformed_paths;
};

class DataPhaseRunner {
 public:
  using Callback = std::function<void(const DataPhaseResult&)>;

  /// `faults` (optional) applies loss/delay to keepalive hops just like the
  /// setup legs. Re-formation goes through `runner`, so it inherits that
  /// runner's fault injector and suspicion tracker. `transport` (optional)
  /// carries keepalive hops as codec-verified wire frames (SimTransport,
  /// bitwise-identical delivery).
  DataPhaseRunner(sim::Simulator& simulator, const net::Overlay& overlay,
                  AsyncConnectionRunner& runner, DataPhaseConfig cfg = {},
                  fault::FaultInjector* faults = nullptr,
                  transport::SimTransport* transport = nullptr) noexcept
      : sim_(simulator),
        overlay_(overlay),
        runner_(runner),
        cfg_(cfg),
        faults_(faults),
        transport_(transport) {}

  /// Run the data phase of connection `conn_index` of `pair` over the
  /// just-established `path`. The callback fires once, when the phase ends
  /// (completed) or the connection is abandoned (reform failure / budget).
  void run(net::PairId pair, std::uint32_t conn_index, const BuiltPath& path,
           const Contract& contract, const StrategyAssignment& strategies,
           const sim::rng::Stream& stream, Callback on_done);

 private:
  struct Pending;

  void send_keepalive(std::shared_ptr<Pending> p);
  /// One keepalive hop: the probe sits at path.nodes[index] and moves
  /// forward (echo=false) or back toward the initiator (echo=true).
  void relay(std::shared_ptr<Pending> p, std::uint32_t gen, std::uint64_t seq,
             std::size_t index, bool echo);
  void on_timeout(std::shared_ptr<Pending> p, std::uint32_t gen, std::uint64_t seq);
  void reform(std::shared_ptr<Pending> p);
  void finish(std::shared_ptr<Pending> p, bool completed);

  sim::Simulator& sim_;
  const net::Overlay& overlay_;
  AsyncConnectionRunner& runner_;
  DataPhaseConfig cfg_;
  fault::FaultInjector* faults_;
  transport::SimTransport* transport_;
};

}  // namespace p2panon::core
