// Static-path Crowds sessions — the classic baseline system.
//
// In Crowds (Reiter & Rubin), the initiator forms ONE path per session and
// reuses it for every subsequent request to the responder; the path only
// re-forms when a member leaves ("reformation"). This is the system class
// the paper's §1-2 is about: under churn, reformations are frequent, and
// each reformation both enlarges the forwarder set Q and hands passive
// attackers a fresh observation.
//
// This module implements that baseline faithfully so the incentive
// mechanism can be compared against the *system* it improves, not just
// against per-connection random routing:
//
//  * CrowdsSession holds the current static path for one (I, R) pair;
//  * each connection reuses the path if every member is still online,
//    otherwise the path re-forms from scratch (counted as a reformation);
//  * path formation itself uses any RoutingStrategy (uniform-random for
//    classic Crowds; a utility model to study "incentive + static paths").
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/incentive.hpp"
#include "core/path.hpp"

namespace p2panon::core {

class CrowdsSession {
 public:
  CrowdsSession(net::PairId pair, net::NodeId initiator, net::NodeId responder,
                Contract contract) noexcept
      : pair_(pair), initiator_(initiator), responder_(responder), contract_(contract) {}

  [[nodiscard]] net::PairId pair() const noexcept { return pair_; }
  [[nodiscard]] net::NodeId initiator() const noexcept { return initiator_; }
  [[nodiscard]] net::NodeId responder() const noexcept { return responder_; }

  /// Run the next connection: reuse the current static path when all of its
  /// forwarders are online, otherwise re-form it (a reformation). Records
  /// history, charges costs, and updates the forwarder set exactly like
  /// ConnectionSetSession does for per-connection routing. Re-formation
  /// routes through `builder`, so it shares the builder's per-replicate
  /// DecisionResources (edge-quality cache + memo arena) when attached.
  const BuiltPath& run_connection(const PathBuilder& builder, HistoryStore& history,
                                  const StrategyAssignment& strategies, PayoffLedger& ledger,
                                  const net::Overlay& overlay, sim::rng::Stream& stream);

  [[nodiscard]] std::uint32_t connections_run() const noexcept { return connections_; }
  /// Reformations = path (re)formations beyond the first.
  [[nodiscard]] std::uint32_t reformations() const noexcept {
    return formations_ > 0 ? formations_ - 1 : 0;
  }
  [[nodiscard]] const std::unordered_set<net::NodeId>& forwarder_set() const noexcept {
    return forwarder_set_;
  }
  [[nodiscard]] double average_path_length() const noexcept;
  /// Q(pi) = L / ||pi||.
  [[nodiscard]] double path_quality() const noexcept;
  [[nodiscard]] const BuiltPath& current_path() const noexcept { return current_; }

 private:
  [[nodiscard]] bool path_alive(const net::Overlay& overlay) const;

  net::PairId pair_;
  net::NodeId initiator_;
  net::NodeId responder_;
  Contract contract_;

  BuiltPath current_;
  bool have_path_ = false;
  std::uint32_t connections_ = 0;
  std::uint32_t formations_ = 0;
  std::size_t total_path_length_ = 0;
  std::unordered_set<net::NodeId> forwarder_set_;
};

}  // namespace p2panon::core
