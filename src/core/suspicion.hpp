// Timeout-driven suspicion of silently-failing forwarders.
//
// The fault model removes omniscience: a silently-crashed node still
// *appears* online, so the only evidence against it is behavioural — its
// hops time out. SuspicionTracker turns those timeouts into a per-node
// multiplicative penalty on the probed availability estimate used by edge
// quality: each unresolved timeout halves trust (factor = penalty^count),
// each successfully-confirmed path restores half of it. The tracker
// publishes a monotone epoch with the same contract as HistoryProfile /
// ProbingEstimator, so the edge-quality cache can fold suspicion into its
// freshness check; without a tracker the epoch is constant 0 and cached
// behaviour is bitwise identical to the pre-fault baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"

namespace p2panon::core {

class SuspicionTracker {
 public:
  explicit SuspicionTracker(std::size_t node_count, double penalty = 0.5);

  /// An ack timeout implicates `suspect` (the hop's receiver).
  void record_timeout(net::NodeId suspect);

  /// A completed end-to-end confirmation vouches for `node`; halves its
  /// timeout count (timeouts can be the link's fault, not the node's).
  void record_success(net::NodeId node);

  /// Multiplier in (0, 1] applied to alpha_s(v): penalty^timeout_count.
  [[nodiscard]] double availability_factor(net::NodeId v) const;

  [[nodiscard]] std::uint32_t count(net::NodeId v) const { return counts_.at(v); }

  /// Monotone epoch over all suspicion state; bumped by every mutation that
  /// can change an availability_factor answer (cache-invalidation signal,
  /// same contract as HistoryProfile::epoch()).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  /// Counts saturate here; the factor floor penalty^16 is already ~1e-5.
  static constexpr std::uint32_t kMaxCount = 16;

  std::vector<std::uint32_t> counts_;
  double penalty_;
  std::uint64_t epoch_ = 0;
};

}  // namespace p2panon::core
