// Shard-scoped edge quality and per-shard decision scratch.
//
// The serial decision stack scores an edge as
//   q(s, v) = w_s * sigma(s, v) + w_a * alpha_s(v)            (paper §2.3)
// with sigma the history selectivity. At scale the sharded workload keeps
// the same two-term shape but substitutes the history term with the edge's
// observed forwarding success ratio — the quantity the per-connection
// history aggregates toward, maintainable as two flat counters per CSR slot
// with no per-pair state. The availability term is the shard-scoped
// estimator's alpha unchanged.
//
// Ownership/threading contract: all mutable state for node s (its d counter
// slots) is written only by s's owning shard; scoring reads the probing
// columns of s (same shard) and the published liveness snapshot for
// cross-shard neighbours. Nothing here allocates after construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/contract.hpp"
#include "net/ids.hpp"
#include "net/sharded_probing.hpp"
#include "net/soa.hpp"

namespace p2panon::core {

class ShardedEdgeQuality {
 public:
  /// All referents must outlive the instance.
  ShardedEdgeQuality(const net::NodeStateSoA& state, const net::ShardPartition& partition,
                     const net::ShardedProbing& probing, QualityWeights weights);

  ShardedEdgeQuality(const ShardedEdgeQuality&) = delete;
  ShardedEdgeQuality& operator=(const ShardedEdgeQuality&) = delete;

  /// s attempted to forward over neighbour slot `slot` of D(s).
  void record_attempt(net::NodeId s, std::size_t slot) { ++attempts_[index(s, slot)]; }
  /// The forward over slot `slot` was acknowledged.
  void record_success(net::NodeId s, std::size_t slot) { ++successes_[index(s, slot)]; }

  /// q(s, slot) = w_s * success_ratio + w_a * alpha_s(slot). The success
  /// ratio before any attempt is the neutral 1/2 (no evidence either way),
  /// mirroring the uniform prior the availability term starts from.
  [[nodiscard]] double score(net::NodeId s, std::size_t slot) const {
    const std::size_t i = index(s, slot);
    const double ratio = attempts_[i] == 0
                             ? 0.5
                             : static_cast<double>(successes_[i]) /
                                   static_cast<double>(attempts_[i]);
    return weights_.w_selectivity * ratio + weights_.w_availability * probing_.availability(s, slot);
  }

  /// Best-scoring neighbour slot of s among those believed alive (live for
  /// same-shard neighbours, published snapshot for cross-shard ones).
  /// Deterministic tie-break: lowest slot wins. Returns degree() when no
  /// neighbour is believed alive.
  [[nodiscard]] std::size_t pick_best(net::NodeId s,
                                      std::span<const std::uint8_t> published_online) const;

  /// Slot `slot` of D(s) was replaced: its evidence belongs to the departed
  /// occupant, so both counters restart.
  void on_neighbor_replaced(net::NodeId s, std::size_t slot) {
    const std::size_t i = index(s, slot);
    attempts_[i] = 0;
    successes_[i] = 0;
  }

  [[nodiscard]] std::uint64_t attempts(net::NodeId s, std::size_t slot) const {
    return attempts_[index(s, slot)];
  }
  [[nodiscard]] std::uint64_t successes(net::NodeId s, std::size_t slot) const {
    return successes_[index(s, slot)];
  }
  [[nodiscard]] const QualityWeights& weights() const noexcept { return weights_; }

 private:
  [[nodiscard]] std::size_t index(net::NodeId s, std::size_t slot) const noexcept {
    return static_cast<std::size_t>(s) * state_.degree + slot;
  }

  const net::NodeStateSoA& state_;
  const net::ShardPartition& partition_;
  const net::ShardedProbing& probing_;
  QualityWeights weights_;
  /// CSR-aligned per-edge evidence, size N * d each.
  std::vector<std::uint32_t> attempts_;
  std::vector<std::uint32_t> successes_;
};

/// Per-shard reusable decision scratch: candidate buffers sized once to the
/// degree so hop decisions allocate nothing in steady state. One instance
/// per shard — never shared across shards.
struct ShardDecisionScratch {
  std::vector<std::size_t> candidate_slots;
  std::vector<double> candidate_scores;

  void reserve(std::size_t degree) {
    candidate_slots.reserve(degree);
    candidate_scores.reserve(degree);
  }
  void clear() noexcept {
    candidate_slots.clear();
    candidate_scores.clear();
  }
};

}  // namespace p2panon::core
