// Packed-key open-addressing hash table for the per-hop decision stack.
//
// The routing hot path indexes small fixed-width composite keys —
// (pair, predecessor, successor) history counts, (s, v, pair, pred) edge
// qualities, (from, pred, depth) lookahead states. A node-based
// std::map/unordered_map pays an allocation plus pointer chases per probe;
// this table packs each composite key into 128 bits and resolves lookups
// with linear probing over one contiguous slot array, so the steady-state
// cost of a hit is a single cache line. Erase uses backward-shift deletion
// (no tombstones), keeping probe sequences short under the record/evict
// churn of bounded history profiles.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace p2panon::core {

/// A 128-bit composite key assembled from up to four 32-bit ids.
struct PackedKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  [[nodiscard]] friend bool operator==(const PackedKey&, const PackedKey&) = default;

  [[nodiscard]] static constexpr PackedKey of(std::uint32_t a, std::uint32_t b,
                                              std::uint32_t c = 0, std::uint32_t d = 0) noexcept {
    return PackedKey{(static_cast<std::uint64_t>(a) << 32) | b,
                     (static_cast<std::uint64_t>(c) << 32) | d};
  }
};

/// SplitMix64-style avalanche over both key words. Cheap and well mixed for
/// power-of-two table sizes.
[[nodiscard]] constexpr std::uint64_t hash_packed_key(PackedKey k) noexcept {
  std::uint64_t z = k.lo ^ (k.hi * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Two-multiply mixing for the *lossy* lookup structures (edge-quality
/// cache, decision scratch), whose slot index comes from the HIGH bits
/// (multiplicative hashing concentrates entropy there — callers shift, not
/// mask). A collision in those structures costs a recomputation, never a
/// wrong answer, so the shorter dependency chain wins on the hot path. The
/// exact PackedFlatMap keeps the avalanche hash above.
[[nodiscard]] constexpr std::uint64_t hash_packed_key_fast(PackedKey k) noexcept {
  return (k.lo ^ (k.hi * 0xD1B54A32D192ED03ULL)) * 0x9E3779B97F4A7C15ULL;
}

/// Exact map from PackedKey to Value (linear probing, max load 0.75,
/// power-of-two capacity, backward-shift erase). Values must be cheap to
/// move; Value{} is reserved for vacated slots only and carries no meaning.
template <typename Value>
class PackedFlatMap {
 public:
  PackedFlatMap() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  [[nodiscard]] const Value* find(PackedKey key) const noexcept {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash_packed_key(key) & mask;; i = (i + 1) & mask) {
      const Slot& s = slots_[i];
      if (!s.used) return nullptr;
      if (s.key == key) return &s.value;
    }
  }

  [[nodiscard]] Value* find(PackedKey key) noexcept {
    return const_cast<Value*>(static_cast<const PackedFlatMap*>(this)->find(key));
  }

  /// Value slot for `key`, inserting a default-constructed one when absent.
  [[nodiscard]] Value& get_or_insert(PackedKey key) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash_packed_key(key) & mask;; i = (i + 1) & mask) {
      Slot& s = slots_[i];
      if (!s.used) {
        s.used = true;
        s.key = key;
        s.value = Value{};
        ++size_;
        return s.value;
      }
      if (s.key == key) return s.value;
    }
  }

  /// Remove `key` if present; true when an entry was erased.
  bool erase(PackedKey key) noexcept {
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_packed_key(key) & mask;
    for (;; i = (i + 1) & mask) {
      if (!slots_[i].used) return false;
      if (slots_[i].key == key) break;
    }
    // Backward-shift: pull later probe-chain members into the hole so no
    // tombstone is needed.
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!slots_[j].used) break;
      const std::size_t ideal = hash_packed_key(slots_[j].key) & mask;
      if (((j - ideal) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i].used = false;
    slots_[i].value = Value{};
    --size_;
    return true;
  }

  /// Visit every (key, value) pair; order is unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    PackedKey key;
    Value value{};
    bool used = false;
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    const std::size_t mask = slots_.size() - 1;
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t i = hash_packed_key(s.key) & mask;
      while (slots_[i].used) i = (i + 1) & mask;
      slots_[i] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace p2panon::core
