#include "core/suspicion.hpp"

#include <cassert>

namespace p2panon::core {

SuspicionTracker::SuspicionTracker(std::size_t node_count, double penalty)
    : counts_(node_count, 0), penalty_(penalty) {
  assert(penalty > 0.0 && penalty <= 1.0);
}

void SuspicionTracker::record_timeout(net::NodeId suspect) {
  auto& c = counts_.at(suspect);
  if (c < kMaxCount) ++c;
  ++epoch_;
}

void SuspicionTracker::record_success(net::NodeId node) {
  auto& c = counts_.at(node);
  if (c == 0) return;
  c >>= 1;
  ++epoch_;
}

double SuspicionTracker::availability_factor(net::NodeId v) const {
  double factor = 1.0;
  // Iterative multiply (counts are <= kMaxCount): bitwise reproducible
  // without depending on the libm pow implementation.
  for (std::uint32_t i = 0; i < counts_.at(v); ++i) factor *= penalty_;
  return factor;
}

}  // namespace p2panon::core
