// SPNE routing: the exact game-theoretic form of Utility Model II.
//
// UtilityModelIIRouting approximates the L-stage game with per-decision
// exhaustive lookahead. This strategy instead *solves* the stage game over
// the live overlay by backward induction (core/game.hpp) and plays the
// prescribed equilibrium action — every peer's onward behaviour is the
// equilibrium continuation, and subgame perfection is machine-checkable.
//
// Semantics note: the stage-game abstraction evaluates q(i, j) without the
// mover's path predecessor (selectivity conditions on kInvalidNode), since
// the game tree does not thread per-path predecessors through subgames; the
// bounded-lookahead model threads them exactly. The two agree whenever
// selectivity is predecessor-insensitive; tests cover both the agreement
// and the equilibrium property.
//
// Performance note: when the RoutingContext carries DecisionResources, the
// eager full-overlay backward-induction table is replaced by a lazy,
// memoised DFS over (holder, stages-left) that solves only the subgames
// reachable from the decision point — bitwise identical to the table (same
// candidate order, same expression order, same strictly-better-wins rule;
// see test_decision_cache).
#pragma once

#include <cstdint>

#include "core/game.hpp"
#include "core/routing.hpp"

namespace p2panon::core {

class SpneRouting final : public RoutingStrategy {
 public:
  explicit SpneRouting(std::uint32_t stages = 3) noexcept : stages_(stages) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "spne"; }
  [[nodiscard]] std::uint32_t stages() const noexcept { return stages_; }

  [[nodiscard]] HopChoice choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                 std::span<const net::NodeId> candidates,
                                 sim::rng::Stream& stream) const override;

  /// Build the stage-game spec this strategy solves for the given context.
  /// Exposed so callers (tests, examples) can verify subgame perfection on
  /// exactly the game being played.
  [[nodiscard]] static game::PathGameSpec make_spec(const RoutingContext& ctx);

 private:
  std::uint32_t stages_;
};

}  // namespace p2panon::core
