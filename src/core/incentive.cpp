#include "core/incentive.hpp"

#include <cassert>

#include "sim/rng.hpp"

namespace p2panon::core {

void PayoffLedger::charge_participation(const net::Overlay& overlay, net::NodeId id) {
  NodeLedger& l = ledgers_.at(id);
  if (!l.participated) {
    l.participated = true;
    l.cost += overlay.node(id).participation_cost;
  }
}

void PayoffLedger::charge_transmission(const net::Overlay& overlay, net::NodeId from,
                                       net::NodeId to) {
  NodeLedger& l = ledgers_.at(from);
  l.cost += overlay.links().transmission_cost(from, to);
  ++l.forwarding_instances;
}

metrics::Accumulator PayoffLedger::good_node_payoffs(const net::Overlay& overlay) const {
  metrics::Accumulator acc;
  for (net::NodeId id = 0; id < ledgers_.size(); ++id) {
    if (overlay.node(id).is_good()) acc.add(ledgers_[id].payoff());
  }
  return acc;
}

std::vector<double> PayoffLedger::good_node_payoff_samples(const net::Overlay& overlay) const {
  std::vector<double> out;
  out.reserve(ledgers_.size());
  for (net::NodeId id = 0; id < ledgers_.size(); ++id) {
    if (overlay.node(id).is_good()) out.push_back(ledgers_[id].payoff());
  }
  return out;
}

net::PairId ConnectionSetSession::effective_pair(std::uint32_t conn_index) const noexcept {
  assert(conn_index >= 1);
  if (contract_.cid_rotation == 0) return pair_;
  const std::uint32_t epoch = (conn_index - 1) / contract_.cid_rotation;
  if (epoch == 0) return pair_;  // first epoch keeps the real id
  // Pseudonymous epoch cid: avalanche-mix (pair, epoch); collisions with
  // other pairs' ids are astronomically unlikely at simulation scales and
  // harmless (they would only blend history, never payments).
  const std::uint64_t mixed =
      sim::rng::mix64((static_cast<std::uint64_t>(pair_) << 32) | epoch);
  return static_cast<net::PairId>(mixed >> 16);
}

std::uint32_t ConnectionSetSession::effective_conn_index(
    std::uint32_t conn_index) const noexcept {
  assert(conn_index >= 1);
  if (contract_.cid_rotation == 0) return conn_index;
  return (conn_index - 1) % contract_.cid_rotation + 1;
}

const BuiltPath& ConnectionSetSession::run_connection(const PathBuilder& builder,
                                                      HistoryStore& history,
                                                      const StrategyAssignment& strategies,
                                                      PayoffLedger& ledger,
                                                      const net::Overlay& overlay,
                                                      sim::rng::Stream& stream,
                                                      const AdversaryModel& adversary) {
  assert(!settled_ && "connection after settlement");
  const auto conn_index = static_cast<std::uint32_t>(paths_.size() + 1);
  auto conn_stream = stream.child("conn", conn_index);

  // Forwarders see the epoch's pseudonymous cid and epoch-local index (the
  // real (pair, index) is only known to the initiator and the bank).
  const net::PairId wire_pair = effective_pair(conn_index);
  const std::uint32_t wire_index = effective_conn_index(conn_index);

  BuiltPath path;
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto attempt_stream = conn_stream.child("attempt", attempt);
    path = builder.build(wire_pair, wire_index, initiator_, responder_, contract_, strategies,
                         attempt_stream);
    if (adversary.drop_probability <= 0.0 || attempt >= adversary.max_retries) break;

    // A malicious forwarder may drop the payload; forwarders upstream of the
    // dropper already spent transmission effort, and the path must reform.
    auto drop_stream = attempt_stream.child("drop");
    bool dropped = false;
    for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
      const net::NodeId fwd = path.nodes[i];
      if (!overlay.node(fwd).is_malicious()) continue;
      if (!drop_stream.bernoulli(adversary.drop_probability)) continue;
      for (std::size_t u = 1; u < i; ++u) {  // upstream forwarders paid the cost
        ledger.charge_participation(overlay, path.nodes[u]);
        ledger.charge_transmission(overlay, path.nodes[u], path.nodes[u + 1]);
      }
      ++reformations_;
      dropped = true;
      break;
    }
    if (!dropped) break;
  }

  return adopt_connection(std::move(path), history, ledger, overlay);
}

const BuiltPath& ConnectionSetSession::adopt_connection(BuiltPath path, HistoryStore& history,
                                                        PayoffLedger& ledger,
                                                        const net::Overlay& overlay) {
  assert(!settled_ && "connection after settlement");
  const auto conn_index = static_cast<std::uint32_t>(paths_.size() + 1);
  const net::PairId wire_pair = effective_pair(conn_index);
  const std::uint32_t wire_index = effective_conn_index(conn_index);

  // Reverse-path confirmation: the initiator recreates the path and every
  // forwarder records its history entry under the wire-visible cid.
  history.record_path(wire_pair, wire_index, path.nodes);

  // Costs: every forwarder pays C_p once and C_t per instance; the
  // initiator's transmission of the first hop is part of its own spend, not
  // a forwarder cost.
  std::size_t new_edges = 0;
  std::size_t edges = 0;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const net::NodeId from = path.nodes[i];
    const net::NodeId to = path.nodes[i + 1];
    if (i > 0) {  // `from` is a forwarder
      ledger.charge_participation(overlay, from);
      ledger.charge_transmission(overlay, from, to);
      forwarder_set_.insert(from);
    }
    ++edges;
    if (seen_edges_.insert({from, to}).second) ++new_edges;
  }
  new_edge_fraction_.push_back(edges > 0 ? static_cast<double>(new_edges) /
                                               static_cast<double>(edges)
                                         : 0.0);

  paths_.push_back(std::move(path));
  return paths_.back();
}

double ConnectionSetSession::average_path_length() const noexcept {
  if (paths_.empty()) return 0.0;
  std::size_t total = 0;
  for (const BuiltPath& p : paths_) total += p.forwarder_count();
  return static_cast<double>(total) / static_cast<double>(paths_.size());
}

double ConnectionSetSession::path_quality() const noexcept {
  if (forwarder_set_.empty()) return 0.0;
  return average_path_length() / static_cast<double>(forwarder_set_.size());
}

void ConnectionSetSession::mark_completed(std::uint32_t conn_index) {
  assert(track_completion_ && "completion marks require tracking mode");
  assert(conn_index >= 1 && conn_index <= paths_.size());
  if (completed_.size() < paths_.size()) completed_.resize(paths_.size(), false);
  completed_[conn_index - 1] = true;
}

std::size_t ConnectionSetSession::completed_connections() const noexcept {
  if (!track_completion_) return paths_.size();
  std::size_t n = 0;
  for (std::size_t j = 0; j < completed_.size(); ++j) {
    if (completed_[j]) ++n;
  }
  return n;
}

PreparedSettlement ConnectionSetSession::open_settlement(payment::Bank& bank,
                                                         payment::SettlementEngine& engine,
                                                         sim::rng::Stream& stream,
                                                         sim::Time deadline) {
  assert(!settled_ && "double settle");
  settled_ = true;

  // --- Initiator side: the committed total covers every adopted path — the
  // escrow was committed before any outcome was known — while the records
  // submitted to the bank cover only the connections whose completion the
  // reverse-path receipts confirmed. A dead connection is thereby *excluded*
  // from the claimable set instead of over-claimed against.
  std::size_t total_instances = 0;
  std::vector<payment::PathRecord> records;
  records.reserve(paths_.size());
  for (std::uint32_t j = 0; j < paths_.size(); ++j) {
    const BuiltPath& p = paths_[j];
    total_instances += p.forwarder_count();
    if (track_completion_ && (j >= completed_.size() || !completed_[j])) continue;
    payment::PathRecord rec;
    rec.conn_index = j + 1;
    rec.entry = p.initiator();
    rec.exit = p.responder();
    rec.forwarders.assign(p.nodes.begin() + 1, p.nodes.end() - 1);
    records.push_back(std::move(rec));
  }

  const payment::Amount p_f = payment::from_credits(contract_.forwarding_benefit);
  const payment::Amount p_r = payment::from_credits(contract_.routing_benefit());
  const payment::Amount committed =
      static_cast<payment::Amount>(total_instances) * p_f + p_r;

  const payment::AccountId init_acct = bank.account_of(initiator_);
  assert(init_acct != payment::kInvalidAccount && "initiator has no bank account");
  auto wallet_stream = stream.child("wallet", pair_);
  payment::Wallet wallet(bank, init_acct, wallet_stream);
  auto coins = wallet.withdraw(committed);
  assert(coins.has_value() && "initiator cannot fund its commitment");

  auto escrow = bank.open_escrow(*coins);
  assert(escrow.has_value());

  const payment::AccountId refund_acct = bank.open_pseudonymous_account();
  payment::SettlementTerms terms{p_f, p_r};

  PreparedSettlement prep;
  prep.sid = engine.open(pair_, *escrow, terms, records, refund_acct, deadline);
  prep.escrow_in = committed;

  // --- Forwarder side: every forwarder holds one MAC'd receipt per
  // forwarding instance (assembled from the reverse-path confirmation) —
  // including instances on connections that later died; the bank's records
  // are what decides whether such a claim verifies.
  for (std::uint32_t j = 0; j < paths_.size(); ++j) {
    const BuiltPath& p = paths_[j];
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      const net::NodeId fwd = p.nodes[i];
      const payment::AccountId acct = bank.account_of(fwd);
      assert(acct != payment::kInvalidAccount);
      prep.claims.push_back(ClaimSubmission{
          acct, payment::make_receipt(bank.account_mac_key(acct), pair_, j + 1, fwd,
                                      p.nodes[i - 1], p.nodes[i + 1])});
    }
  }
  return prep;
}

SettleOutcome ConnectionSetSession::finalize_settlement(const payment::Bank& bank,
                                                        const payment::SettlementEngine& engine,
                                                        PayoffLedger& ledger,
                                                        payment::SettlementId sid) const {
  const payment::SettlementReport* report = engine.report(sid);
  assert(report != nullptr && "finalize before the settlement terminalised");

  // --- Credit ledgers from the authoritative bank payouts.
  for (const auto& [acct, amount] : report->payouts) {
    const net::NodeId owner = bank.account_owner(acct);
    if (owner != net::kInvalidNode) ledger.credit(owner, payment::to_credits(amount));
  }

  SettleOutcome out;
  out.report = *report;
  out.forwarder_set_size = forwarder_set_.size();
  out.initiator_spend = payment::to_credits(report->escrow_in - report->refunded);
  return out;
}

SettleOutcome ConnectionSetSession::settle(payment::Bank& bank,
                                           payment::SettlementEngine& engine,
                                           PayoffLedger& ledger, const net::Overlay& overlay,
                                           sim::rng::Stream& stream) {
  const PreparedSettlement prep =
      open_settlement(bank, engine, stream, payment::kNoSettlementDeadline);

  for (const ClaimSubmission& claim : prep.claims) {
    [[maybe_unused]] const auto res = engine.submit_claim(prep.sid, claim.claimant, claim.receipt);
    // With completion tracking off every record is on file, so every honest
    // claim must verify; with tracking on, claims for dead connections are
    // expected to bounce off the records (kNotOnPath).
    assert(track_completion_ || res == payment::ClaimResult::kAccepted);
  }

  engine.close(prep.sid);
  (void)overlay;
  return finalize_settlement(bank, engine, ledger, prep.sid);
}

}  // namespace p2panon::core
