#include "core/edge_quality.hpp"

#include <cassert>

namespace p2panon::core {

double EdgeQualityEvaluator::path_quality(std::span<const net::NodeId> path, net::PairId pair,
                                          std::uint32_t k) const {
  assert(path.size() >= 2);
  const net::NodeId responder = path.back();
  double total = 0.0;
  // Edges (path[i] -> path[i+1]) for i = 1..n-2 are forwarder decisions; the
  // initiator's own first hop (i = 0) is included too — it is an edge of the
  // path, with "no predecessor" encoded as kInvalidNode.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const net::NodeId pred = i == 0 ? net::kInvalidNode : path[i - 1];
    total += edge_quality(path[i], path[i + 1], responder, pair, pred, k);
  }
  return total;
}

}  // namespace p2panon::core
