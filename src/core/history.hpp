// Connection-history profiles (paper §2.3, Table 1).
//
// Every node s stores, per connection that passed through it, the tuple
// (cid, predecessor, successor). The history for the k-th connection of a
// set, H^{k-1}(s), comprises the outgoing edges of s on pi^1..pi^{k-1}.
// Because entries are keyed by predecessor too, a node distinguishes its
// outgoing edges for different positions it occupied on the same path.
//
// Selectivity of edge (s, v) at connection k (conditioned on the current
// predecessor) is
//   sigma(s, v) = #entries{(s -> v) | same pair, same predecessor} / (k - 1).
//
// Index structure (the decision-stack hot path): counts are kept in a
// packed-key flat hash map keyed by (pair, predecessor, successor), with a
// second O(1)-maintained map of per-(pair, predecessor) denominators — the
// total number of stored entries for that pair/position. A zero denominator
// proves sigma(s, v) == 0 for *every* successor v, which lets the
// edge-quality cache and the memoised lookahead collapse predecessor-
// distinct states that are numerically identical (see core/edge_quality and
// core/decision_scratch).
//
// Every mutation (record, FIFO eviction, clear) bumps a monotonically
// increasing epoch; caches that snapshot derived quantities compare epochs
// to self-invalidate instead of subscribing to callbacks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/flat_hash.hpp"
#include "net/ids.hpp"

namespace p2panon::core {

struct HistoryEntry {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  net::NodeId predecessor = net::kInvalidNode;
  net::NodeId successor = net::kInvalidNode;
};

/// History profile for one node. Storage is bounded by `capacity` entries
/// (0 = unbounded); eviction is FIFO — the oldest stored entry leaves first,
/// modelling a node that only keeps recent history (an ablation knob — the
/// paper notes the amount of stored history influences edge quality).
/// Bounded mode stores entries in a ring buffer, so a record that evicts is
/// O(1) (the old erase-from-front shifted the whole window per record).
class HistoryProfile {
 public:
  explicit HistoryProfile(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(const HistoryEntry& entry);

  /// Number of stored entries matching (pair, predecessor, successor).
  [[nodiscard]] std::size_t count(net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const;

  /// Number of stored entries matching (pair, predecessor) across all
  /// successors — the O(1) denominator of history-conditioned statistics.
  /// Zero means selectivity is 0 for every successor at this position.
  [[nodiscard]] std::size_t position_count(net::PairId pair, net::NodeId predecessor) const;

  /// sigma(s, v) for the k-th connection (k is 1-based; k == 1 has no
  /// history and yields 0).
  [[nodiscard]] double selectivity(net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

  /// Monotonically increasing mutation counter: bumped by every record
  /// (including its FIFO eviction, if any) and by clear(). Equal epochs
  /// guarantee identical selectivity answers.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Stored entries in FIFO order (oldest first). Returns a snapshot by
  /// value: the backing store is a ring buffer, so entries are not
  /// contiguous in eviction order once the window wraps. Cold path (tests,
  /// diagnostics); queries go through the count indices.
  [[nodiscard]] std::vector<HistoryEntry> entries() const;

 private:
  [[nodiscard]] static PackedKey edge_key(net::PairId pair, net::NodeId predecessor,
                                          net::NodeId successor) noexcept {
    return PackedKey::of(pair, predecessor, successor);
  }
  [[nodiscard]] static PackedKey position_key(net::PairId pair,
                                              net::NodeId predecessor) noexcept {
    // Disambiguated from edge keys by the successor slot no real edge uses:
    // kInvalidNode never appears as a stored successor.
    return PackedKey::of(pair, predecessor, net::kInvalidNode, 1);
  }

  void remove_from_index(const HistoryEntry& entry);

  std::size_t capacity_;
  std::uint64_t epoch_ = 0;
  /// Ring buffer: grows like a plain vector until `capacity_` entries are
  /// stored (head_ == 0, FIFO order is index order); once full, ring_[head_]
  /// is the oldest entry and each record overwrites it in place.
  std::vector<HistoryEntry> ring_;
  std::size_t head_ = 0;
  /// Edge-key -> multiplicity, position-key -> denominator; one table keeps
  /// both so a record touches a single allocation-free index.
  PackedFlatMap<std::uint32_t> counts_;
};

/// History profiles for all nodes of an overlay, indexed by node id.
class HistoryStore {
 public:
  explicit HistoryStore(std::size_t node_count, std::size_t per_node_capacity = 0);

  [[nodiscard]] HistoryProfile& at(net::NodeId id) { return profiles_.at(id); }
  [[nodiscard]] const HistoryProfile& at(net::NodeId id) const { return profiles_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept { return profiles_.size(); }

  /// Record the completed path pi^k of `pair`: for every forwarder position,
  /// store (pair, k, predecessor, successor) at that forwarder.
  /// `path` is the full node sequence initiator..responder.
  void record_path(net::PairId pair, std::uint32_t conn_index,
                   const std::vector<net::NodeId>& path);

  [[nodiscard]] std::size_t total_entries() const;

 private:
  std::vector<HistoryProfile> profiles_;
};

}  // namespace p2panon::core
