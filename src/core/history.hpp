// Connection-history profiles (paper §2.3, Table 1).
//
// Every node s stores, per connection that passed through it, the tuple
// (cid, predecessor, successor). The history for the k-th connection of a
// set, H^{k-1}(s), comprises the outgoing edges of s on pi^1..pi^{k-1}.
// Because entries are keyed by predecessor too, a node distinguishes its
// outgoing edges for different positions it occupied on the same path.
//
// Selectivity of edge (s, v) at connection k (conditioned on the current
// predecessor) is
//   sigma(s, v) = #entries{(s -> v) | same pair, same predecessor} / (k - 1).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/ids.hpp"

namespace p2panon::core {

struct HistoryEntry {
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 0;
  net::NodeId predecessor = net::kInvalidNode;
  net::NodeId successor = net::kInvalidNode;
};

/// History profile for one node. Storage is bounded by `capacity` entries
/// (0 = unbounded); eviction is FIFO, which models a node that only keeps
/// recent history (an ablation knob — the paper notes the amount of stored
/// history influences edge quality).
class HistoryProfile {
 public:
  explicit HistoryProfile(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(const HistoryEntry& entry);

  /// Number of stored entries matching (pair, predecessor, successor).
  [[nodiscard]] std::size_t count(net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const;

  /// sigma(s, v) for the k-th connection (k is 1-based; k == 1 has no
  /// history and yields 0).
  [[nodiscard]] double selectivity(net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();

  [[nodiscard]] const std::vector<HistoryEntry>& entries() const noexcept { return entries_; }

 private:
  using Key = std::tuple<net::PairId, net::NodeId, net::NodeId>;

  std::size_t capacity_;
  std::vector<HistoryEntry> entries_;  // FIFO order
  std::map<Key, std::size_t> counts_;
};

/// History profiles for all nodes of an overlay, indexed by node id.
class HistoryStore {
 public:
  explicit HistoryStore(std::size_t node_count, std::size_t per_node_capacity = 0);

  [[nodiscard]] HistoryProfile& at(net::NodeId id) { return profiles_.at(id); }
  [[nodiscard]] const HistoryProfile& at(net::NodeId id) const { return profiles_.at(id); }
  [[nodiscard]] std::size_t node_count() const noexcept { return profiles_.size(); }

  /// Record the completed path pi^k of `pair`: for every forwarder position,
  /// store (pair, k, predecessor, successor) at that forwarder.
  /// `path` is the full node sequence initiator..responder.
  void record_path(net::PairId pair, std::uint32_t conn_index,
                   const std::vector<net::NodeId>& path);

  [[nodiscard]] std::size_t total_entries() const;

 private:
  std::vector<HistoryProfile> profiles_;
};

}  // namespace p2panon::core
