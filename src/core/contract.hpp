// Forwarding contracts (paper §2.2).
//
// When an initiator opens a recurring connection set pi to a responder it
// commits to pay every forwarder P_f per forwarding instance (the
// *forwarding benefit*, inducing availability) plus a total P_r shared by
// the forwarder set (the *routing benefit*, inducing routing decisions that
// minimise ||pi||). The contract — just (P_f, P_r) — propagates hop by hop,
// so forwarders can evaluate their utility without learning the initiator.
#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace p2panon::core {

/// How a path decides to stop growing and deliver to the responder. The
/// paper notes both Crowds-like probabilistic forwarding and hop-distance
/// based forwarding apply to the model (§2.2).
enum class TerminationPolicy {
  kCrowds,    ///< at each hop, forward with probability p_forward else deliver
  kHopCount,  ///< forward until ttl_hops forwarders are on the path
};

struct Contract {
  double forwarding_benefit = 75.0;  ///< P_f, paper: U[50, 100]
  double tau = 2.0;                  ///< P_r = tau * P_f, paper: {0.5, 1, 2, 4}

  TerminationPolicy termination = TerminationPolicy::kCrowds;
  double p_forward = 0.75;  ///< Crowds forwarding probability
  std::uint32_t ttl_hops = 4;  ///< hop-distance bound when kHopCount

  /// Connection-id rotation (defense against the paper's §5 attack (3):
  /// a malicious forwarder linking a set's connections via the cid in its
  /// history). Every `cid_rotation` connections the initiator switches to a
  /// fresh pseudonymous cid: forwarders — and attackers — can only link
  /// connections within one epoch, but history selectivity resets with the
  /// cid, trading forwarder-set stability for linkage privacy
  /// (bench/abl_cid_rotation quantifies the trade-off). 0 = never rotate.
  std::uint32_t cid_rotation = 0;

  [[nodiscard]] double routing_benefit() const noexcept { return tau * forwarding_benefit; }

  /// Expected number of forwarders on one path. Crowds: the first hop is
  /// unconditional and each subsequent forward happens with p_forward, so
  /// the forwarder count is geometric with mean 1/(1-p).
  [[nodiscard]] double expected_path_length() const noexcept {
    return termination == TerminationPolicy::kCrowds ? 1.0 / (1.0 - p_forward)
                                                     : static_cast<double>(ttl_hops);
  }
};

/// Edge-quality weights (paper §2.3): q(s,v) = w_s * sigma(s,v) + w_a *
/// alpha_s(v), with w_s + w_a = 1. Higher w_a favours stable (available)
/// forwarders for future connections; higher w_s favours past history.
struct QualityWeights {
  double w_selectivity = 0.5;  ///< w_s (paper default 0.5)
  double w_availability = 0.5; ///< w_a (paper default 0.5)

  [[nodiscard]] bool valid() const noexcept {
    return w_selectivity >= 0.0 && w_availability >= 0.0 &&
           w_selectivity + w_availability > 0.999 && w_selectivity + w_availability < 1.001;
  }
};

}  // namespace p2panon::core
