// Reputation-based routing — the related-work baseline (paper §4).
//
// Prior work addressed forwarding compliance with reputation systems
// (Dingledine et al. for MIX cascades and remailers). The paper argues such
// schemes fit anonymity systems poorly because (a) they need system-wide
// monitoring and (b) nodes can collude to inflate each other's scores and
// attract forwarding paths. This module implements a representative
// reputation scheme so that claim can be *measured* against the incentive
// mechanism (bench/abl_reputation_vs_incentive):
//
//  * scores live in [0, 1], start at `initial`;
//  * observed forwarding successes/failures move the subject's score by
//    `gain`/`loss` (multiplicative-free additive update, clamped);
//  * scope is either global (one shared score table — the system-wide
//    monitoring variant) or local (each observer keeps its own scores);
//  * collusion: a coalition files fake success reports about each other,
//    which only helps in the global-scope variant — exactly the weakness
//    the paper points out.
//
// ReputationRouting picks the highest-scoring candidate (ties toward lower
// id), ignoring edge quality and contracts entirely.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/routing.hpp"

namespace p2panon::core {

struct ReputationConfig {
  double initial = 0.5;
  double gain = 0.02;   ///< score increase per observed success
  double loss = 0.10;   ///< score decrease per observed failure
  bool global_scope = true;  ///< one shared table vs per-observer tables
};

class ReputationSystem {
 public:
  ReputationSystem(std::size_t node_count, const ReputationConfig& cfg);

  [[nodiscard]] const ReputationConfig& config() const noexcept { return cfg_; }

  /// Score of `subject` as seen by `observer` (observer ignored in global
  /// scope).
  [[nodiscard]] double score(net::NodeId observer, net::NodeId subject) const;

  void report_success(net::NodeId observer, net::NodeId subject);
  void report_failure(net::NodeId observer, net::NodeId subject);

  /// Collusion round: every coalition member files `reports` fake success
  /// reports about every other member. In local scope this only pollutes
  /// the colluders' own tables (harmless); in global scope it inflates the
  /// shared scores — the attack the paper warns about.
  void apply_collusion(std::span<const net::NodeId> coalition, std::size_t reports = 1);

  /// Observe a completed path: every adjacent (observer, subject) forwarder
  /// pair files a success; `dropped_at` (position index into `path`, or -1)
  /// marks a forwarder whose predecessor files a failure instead.
  void observe_path(std::span<const net::NodeId> path, std::ptrdiff_t dropped_at = -1);

 private:
  [[nodiscard]] double& cell(net::NodeId observer, net::NodeId subject);
  [[nodiscard]] const double& cell(net::NodeId observer, net::NodeId subject) const;

  ReputationConfig cfg_;
  std::size_t node_count_;
  /// Global scope: one row. Local scope: node_count rows.
  std::vector<double> scores_;
};

/// Routing by reputation: argmax score among candidates.
class ReputationRouting final : public RoutingStrategy {
 public:
  explicit ReputationRouting(const ReputationSystem& reputation) noexcept
      : reputation_(reputation) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "reputation"; }
  [[nodiscard]] HopChoice choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                 std::span<const net::NodeId> candidates,
                                 sim::rng::Stream& stream) const override;

 private:
  const ReputationSystem& reputation_;
};

}  // namespace p2panon::core
