#include "core/utility.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::core {

double model1_utility_with_q(const RoutingContext& ctx, net::NodeId i, net::NodeId j,
                             double q_ij) {
  return ctx.contract.forwarding_benefit + q_ij * ctx.contract.routing_benefit() -
         (participation_cost(ctx, i) + transmission_cost(ctx, i, j));
}

double model1_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred, net::NodeId j) {
  return model1_utility_with_q(ctx, i, j, ctx.edge_q(i, j, pred));
}

double best_onward_quality(const RoutingContext& ctx, net::NodeId from, net::NodeId pred,
                           std::uint32_t depth) {
  if (depth == 0 || from == ctx.responder) return 0.0;

  // Memoise per (from, canonical pred, depth) within the current decision.
  // A predecessor with no stored history at `from` yields sigma == +0.0
  // toward every successor, so all such predecessors share one subtree
  // value bitwise (position_count is the O(1) witness). The canonical
  // predecessor is resolved once per tree level and handed to the per-edge
  // lookups below, which then skip their own canonicalisation probe.
  EdgeQualityCache* cache = ctx.resources != nullptr ? &ctx.resources->edge_cache : nullptr;
  DecisionScratch* scratch = ctx.resources != nullptr && ctx.resources->scratch.armed()
                                 ? &ctx.resources->scratch
                                 : nullptr;
  EdgeQualityCache::NodeFacts facts;
  if (cache != nullptr) {
    facts = cache->node_facts(ctx.quality, from, ctx.pair, pred);
  }
  PackedKey key;
  if (scratch != nullptr) {
    key = PackedKey::of(from, facts.canonical, depth, kScratchLookahead);
    double cached = 0.0;
    if (scratch->lookup(key, &cached)) return cached;
  }

  double best = 0.0;
  bool any = false;
  for (net::NodeId c : ctx.overlay.neighbors(from)) {
    if (!ctx.overlay.appears_online(c) || c == from) continue;
    const double q =
        cache != nullptr
            ? cache->get_or_compute_at(ctx.quality, facts, c, ctx.responder, ctx.conn_index)
            : ctx.quality.edge_quality(from, c, ctx.responder, ctx.pair, pred, ctx.conn_index);
    const double total =
        c == ctx.responder ? q : q + best_onward_quality(ctx, c, from, depth - 1);
    if (!any || total > best) {
      best = total;
      any = true;
    }
  }
  // Direct delivery to the responder is always available (quality-1 edge).
  const double direct = 1.0;
  if (!any || direct > best) best = direct;

  if (scratch != nullptr) scratch->store(key, best);
  return best;
}

double model2_utility_with_q(const RoutingContext& ctx, net::NodeId i, net::NodeId j,
                             std::uint32_t lookahead_depth, double q_ij) {
  assert(lookahead_depth >= 1);
  const double onward =
      j == ctx.responder ? 0.0 : best_onward_quality(ctx, j, i, lookahead_depth - 1);
  const double path_q = q_ij + onward;
  return ctx.contract.forwarding_benefit + path_q * ctx.contract.routing_benefit() -
         (participation_cost(ctx, i) + transmission_cost(ctx, i, j));
}

double model2_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred, net::NodeId j,
                      std::uint32_t lookahead_depth) {
  return model2_utility_with_q(ctx, i, j, lookahead_depth, ctx.edge_q(i, j, pred));
}

bool would_participate(const RoutingContext& ctx, net::NodeId j) {
  // Cheapest usable outgoing link: any online neighbour or direct delivery.
  double min_ct = transmission_cost(ctx, j, ctx.responder);
  for (net::NodeId c : ctx.overlay.neighbors(j)) {
    if (!ctx.overlay.appears_online(c) || c == j) continue;
    min_ct = std::min(min_ct, transmission_cost(ctx, j, c));
  }
  return ctx.contract.forwarding_benefit > participation_cost(ctx, j) + min_ct;
}

}  // namespace p2panon::core
