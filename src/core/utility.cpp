#include "core/utility.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::core {

double model1_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred, net::NodeId j) {
  const double q = ctx.quality.edge_quality(i, j, ctx.responder, ctx.pair, pred, ctx.conn_index);
  return ctx.contract.forwarding_benefit + q * ctx.contract.routing_benefit() -
         (participation_cost(ctx, i) + transmission_cost(ctx, i, j));
}

double best_onward_quality(const RoutingContext& ctx, net::NodeId from, net::NodeId pred,
                           std::uint32_t depth) {
  if (depth == 0 || from == ctx.responder) return 0.0;
  double best = 0.0;
  bool any = false;
  for (net::NodeId c : ctx.overlay.neighbors(from)) {
    if (!ctx.overlay.is_online(c) || c == from) continue;
    const double q =
        ctx.quality.edge_quality(from, c, ctx.responder, ctx.pair, pred, ctx.conn_index);
    const double total =
        c == ctx.responder ? q : q + best_onward_quality(ctx, c, from, depth - 1);
    if (!any || total > best) {
      best = total;
      any = true;
    }
  }
  // Direct delivery to the responder is always available (quality-1 edge).
  const double direct = 1.0;
  if (!any || direct > best) best = direct;
  return best;
}

double model2_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred, net::NodeId j,
                      std::uint32_t lookahead_depth) {
  assert(lookahead_depth >= 1);
  const double q_ij =
      ctx.quality.edge_quality(i, j, ctx.responder, ctx.pair, pred, ctx.conn_index);
  const double onward =
      j == ctx.responder ? 0.0 : best_onward_quality(ctx, j, i, lookahead_depth - 1);
  const double path_q = q_ij + onward;
  return ctx.contract.forwarding_benefit + path_q * ctx.contract.routing_benefit() -
         (participation_cost(ctx, i) + transmission_cost(ctx, i, j));
}

bool would_participate(const RoutingContext& ctx, net::NodeId j) {
  // Cheapest usable outgoing link: any online neighbour or direct delivery.
  double min_ct = transmission_cost(ctx, j, ctx.responder);
  for (net::NodeId c : ctx.overlay.neighbors(j)) {
    if (!ctx.overlay.is_online(c) || c == j) continue;
    min_ct = std::min(min_ct, transmission_cost(ctx, j, c));
  }
  return ctx.contract.forwarding_benefit > participation_cost(ctx, j) + min_ct;
}

}  // namespace p2panon::core
