#include "core/path.hpp"

#include <cassert>

namespace p2panon::core {

std::vector<net::NodeId> PathBuilder::candidates_for(const RoutingContext& ctx,
                                                     net::NodeId holder, net::NodeId pred,
                                                     bool first_hop,
                                                     std::uint32_t* declined) const {
  std::vector<net::NodeId> out;
  out.reserve(overlay_.neighbors(holder).size() + 1);
  for (net::NodeId c : overlay_.neighbors(holder)) {
    if (c == holder || c == pred || !overlay_.appears_online(c)) continue;
    if (c == ctx.responder) {
      // The initiator never hands the payload straight to the responder —
      // that forfeits its anonymity (in Crowds the first hop is always a
      // jondo). Forwarders may: the responder never "declines" its traffic.
      if (!first_hop) out.push_back(c);
      continue;
    }
    if (cfg_.allow_declines && overlay_.node(c).is_good() && !would_participate(ctx, c)) {
      ++*declined;
      continue;
    }
    out.push_back(c);
  }
  return out;
}

PathBuilder::HopOutcome PathBuilder::next_hop(const RoutingContext& ctx, net::NodeId holder,
                                              net::NodeId pred, bool first_hop,
                                              std::uint32_t forwarders_so_far,
                                              const StrategyAssignment& strategies,
                                              sim::rng::Stream& coin_stream,
                                              sim::rng::Stream& pick_stream) const {
  HopOutcome out;
  // Termination decision at every hop after the initiator's unconditional
  // first hop (in Crowds the initiator always forwards to a jondo). Note
  // "first hop" means the first decision of the connection — the walk may
  // *revisit* the initiator node later as an ordinary forwarder, where the
  // termination policy applies as usual.
  bool deliver = false;
  if (!first_hop) {
    switch (ctx.contract.termination) {
      case TerminationPolicy::kCrowds:
        deliver = !coin_stream.bernoulli(ctx.contract.p_forward);
        break;
      case TerminationPolicy::kHopCount:
        deliver = forwarders_so_far >= ctx.contract.ttl_hops;
        break;
    }
  }
  if (forwarders_so_far >= cfg_.max_forwarders) deliver = true;

  if (!deliver) {
    auto candidates = candidates_for(ctx, holder, pred, first_hop, &out.declined);
    if (candidates.empty() && pred != net::kInvalidNode && overlay_.appears_online(pred)) {
      // Only the sender itself is available: bouncing back beats failing.
      candidates.push_back(pred);
    }
    if (candidates.empty()) {
      deliver = true;  // nobody willing: deliver directly
    } else {
      const HopChoice choice =
          strategies.of(holder).choose(ctx, holder, pred, candidates, pick_stream);
      out.next = choice.next;
      out.edge_quality = choice.edge_quality;
      out.delivered = out.next == ctx.responder;
      if (out.delivered) out.edge_quality = 1.0;
      return out;
    }
  }
  out.next = ctx.responder;
  out.edge_quality = 1.0;  // last edge always quality 1
  out.delivered = true;
  return out;
}

BuiltPath PathBuilder::build(net::PairId pair, std::uint32_t conn_index, net::NodeId initiator,
                             net::NodeId responder, const Contract& contract,
                             const StrategyAssignment& strategies,
                             sim::rng::Stream& stream) const {
  assert(initiator != responder);
  RoutingContext ctx{overlay_, quality_, contract, pair, conn_index, responder, resources_};

  BuiltPath path;
  path.nodes.push_back(initiator);

  net::NodeId holder = initiator;
  net::NodeId pred = net::kInvalidNode;
  std::uint32_t forwarders = 0;
  auto coin_stream = stream.child("termination", conn_index);
  auto pick_stream = stream.child("picks", conn_index);

  while (holder != responder) {
    const bool first_hop = path.nodes.size() == 1;
    const HopOutcome hop = next_hop(ctx, holder, pred, first_hop, forwarders, strategies,
                                    coin_stream, pick_stream);
    path.declined += hop.declined;
    path.edge_qualities.push_back(hop.edge_quality);
    path.nodes.push_back(hop.next);
    if (hop.next != responder) ++forwarders;
    pred = holder;
    holder = hop.next;
  }
  assert(path.nodes.size() == path.edge_qualities.size() + 1);
  return path;
}

}  // namespace p2panon::core
