// Game-theoretic layer (paper §2.4).
//
// Three pieces:
//
//  1. Closed-form condition checkers for the paper's propositions:
//     Prop. 2 — P_f > C_p*N/(L*k) + C_t induces participation;
//     Prop. 3 — P_f > C_p + C_t makes forwarding a dominant strategy for
//     the forwarding stage.
//
//  2. The finite multi-stage *path-formation game* of Utility Model II:
//     path formation is an L-stage game in which the current holder picks a
//     successor; the subgame-perfect Nash equilibrium is computed by
//     backward induction over (node, stages-left) states, and subgame
//     perfection is verifiable state by state.
//
//  3. A generic normal-form game (small player/action counts) with pure-Nash
//     enumeration, best-response dynamics and dominant-strategy checks, plus
//     a constructor for the paper's forwarding *meta-game* in which every
//     peer picks {Abstain, ForwardRandom, ForwardNonRandom}.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/ids.hpp"

namespace p2panon::core::game {

// ---------------------------------------------------------------------------
// Propositions 2 and 3.
// ---------------------------------------------------------------------------

/// Prop. 2 threshold: with constant costs, P_f above this induces peers to
/// participate in forwarding. N = system size, L = average path length,
/// k = connections per set.
[[nodiscard]] double prop2_participation_threshold(double c_p, double c_t, std::size_t n,
                                                   double avg_path_length,
                                                   std::size_t connections) noexcept;

[[nodiscard]] bool prop2_induces_participation(double p_f, double c_p, double c_t, std::size_t n,
                                               double avg_path_length,
                                               std::size_t connections) noexcept;

/// Prop. 3: forwarding is a dominant strategy for the forwarding stage when
/// P_f > C_p + C_t.
[[nodiscard]] bool prop3_forwarding_dominant(double p_f, double c_p, double c_t) noexcept;

// ---------------------------------------------------------------------------
// L-stage path-formation game, solved by backward induction.
// ---------------------------------------------------------------------------

/// Abstract description of the stage game: successor candidates per node,
/// edge quality, the contract constants and per-edge cost. Kept independent
/// of the overlay types so equilibria can be studied on hand-built graphs.
struct PathGameSpec {
  std::size_t node_count = 0;
  net::NodeId responder = net::kInvalidNode;
  /// Successor candidates of a node (excluding the responder; delivering to
  /// the responder is always additionally available).
  std::function<std::vector<net::NodeId>(net::NodeId)> candidates;
  /// q(i, j) for a forwarding edge; the delivery edge (i -> responder) has
  /// quality 1 by definition.
  std::function<double(net::NodeId, net::NodeId)> edge_quality;
  double forwarding_benefit = 0.0;  ///< P_f
  double routing_benefit = 0.0;     ///< P_r
  /// Cost incurred by `i` when forwarding to `j` (C_p + C_t(i, j)).
  std::function<double(net::NodeId, net::NodeId)> cost;
};

/// The mover's prescribed action in a subgame and the value (onward path
/// quality from this state under equilibrium play).
struct StageDecision {
  net::NodeId next = net::kInvalidNode;  ///< responder means deliver
  double onward_quality = 0.0;           ///< q of the equilibrium onward path
  double utility = 0.0;                  ///< mover's Model-II utility of the action
};

class BackwardInductionSolver {
 public:
  /// Solve the game with at most `stages` forwarding moves; at stage 0 the
  /// holder must deliver to the responder.
  BackwardInductionSolver(const PathGameSpec& spec, std::uint32_t stages);

  /// Equilibrium decision for `holder` with `stages_left` moves remaining.
  [[nodiscard]] const StageDecision& decision(net::NodeId holder,
                                              std::uint32_t stages_left) const;

  /// Verify subgame perfection: in every (holder, stages-left) subgame, the
  /// prescribed action maximises the mover's Model-II utility given the
  /// equilibrium continuation. True by construction; the explicit check
  /// exists so tests (and sceptics) can re-derive it.
  [[nodiscard]] bool verify_subgame_perfection() const;

  /// Path induced by equilibrium play from `start` (start, ..., responder).
  [[nodiscard]] std::vector<net::NodeId> equilibrium_path(net::NodeId start) const;

  [[nodiscard]] std::uint32_t stages() const noexcept { return stages_; }

 private:
  [[nodiscard]] StageDecision compute_decision(net::NodeId holder,
                                               std::uint32_t stages_left) const;

  const PathGameSpec& spec_;
  std::uint32_t stages_;
  /// table_[stages_left][node]
  std::vector<std::vector<StageDecision>> table_;
};

// ---------------------------------------------------------------------------
// Generic normal-form game.
// ---------------------------------------------------------------------------

class NormalFormGame {
 public:
  /// A pure strategy profile: one action index per player.
  using Profile = std::vector<std::size_t>;
  using PayoffFn = std::function<double(std::size_t player, const Profile&)>;

  NormalFormGame(std::vector<std::size_t> action_counts, PayoffFn payoff);

  [[nodiscard]] std::size_t player_count() const noexcept { return action_counts_.size(); }
  [[nodiscard]] std::size_t action_count(std::size_t player) const {
    return action_counts_.at(player);
  }

  [[nodiscard]] double payoff(std::size_t player, const Profile& profile) const;

  /// Is `profile[player]` a best response to the others' actions?
  [[nodiscard]] bool is_best_response(std::size_t player, const Profile& profile) const;

  [[nodiscard]] bool is_nash(const Profile& profile) const;

  /// All pure Nash equilibria by exhaustive enumeration. The profile space
  /// must not exceed `max_profiles` (guards accidental blow-ups).
  [[nodiscard]] std::vector<Profile> pure_nash_equilibria(
      std::size_t max_profiles = 1u << 20) const;

  /// Iterated best-response dynamics from `start`; returns the fixed point
  /// (a Nash equilibrium) or nullopt if no convergence in `max_rounds`.
  [[nodiscard]] std::optional<Profile> best_response_dynamics(Profile start,
                                                              std::size_t max_rounds = 100) const;

  /// Is `action` (weakly) dominant for `player`: a best response against
  /// every combination of the other players' actions?
  [[nodiscard]] bool is_dominant_action(std::size_t player, std::size_t action,
                                        std::size_t max_profiles = 1u << 20) const;

 private:
  std::vector<std::size_t> action_counts_;
  PayoffFn payoff_;
};

// ---------------------------------------------------------------------------
// The forwarding meta-game.
// ---------------------------------------------------------------------------

/// Player actions in the meta-game (paper §2.4: at each stage a node may not
/// participate, forward-and-route randomly, or forward-and-route
/// non-randomly).
enum class MetaAction : std::size_t { kAbstain = 0, kRandom = 1, kNonRandom = 2 };

/// Analytic payoff model for the meta-game. Simplifications (documented in
/// DESIGN.md): total forwarding work L*k splits evenly over participants;
/// the forwarder set size grows linearly with the random-routing fraction
/// from L (all non-random) toward min(#participants, L + expansion);
/// membership in the paid forwarder set is proportional to a selection
/// weight that favours non-random routers (selectivity bonus), normalised so
/// expected membership totals ||pi||.
struct MetaGameParams {
  std::size_t players = 5;       ///< peers in the model
  double total_nodes = 40.0;     ///< N
  double avg_path_length = 4.0;  ///< L
  double connections = 20.0;     ///< k
  double p_f = 75.0;
  double p_r = 150.0;
  double c_p = 10.0;
  double c_t = 1.0;
  double selectivity_bonus = 1.0;  ///< extra selection weight for non-random
};

[[nodiscard]] NormalFormGame make_forwarding_metagame(const MetaGameParams& params);

}  // namespace p2panon::core::game
