// Routing strategies (paper §2.4).
//
// At each stage of path formation the current holder picks a next hop from
// its candidate set (its online neighbours, plus the responder if adjacent).
// Good nodes route *non-randomly*, maximising one of the two utility models;
// adversaries route randomly (their objective is breaking anonymity, not
// income). Ties among equal-utility candidates break toward the higher
// quality edge, per §2.2.
#pragma once

#include <memory>
#include <span>
#include <string_view>

#include "core/utility.hpp"
#include "sim/rng.hpp"

namespace p2panon::core {

/// The outcome of one hop decision.
struct HopChoice {
  net::NodeId next = net::kInvalidNode;
  double utility = 0.0;
  double edge_quality = 0.0;
};

class RoutingStrategy {
 public:
  virtual ~RoutingStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Choose a next hop among `candidates` (nonempty) for node `self`, whose
  /// predecessor on this path is `pred` (kInvalidNode at the initiator).
  [[nodiscard]] virtual HopChoice choose(const RoutingContext& ctx, net::NodeId self,
                                         net::NodeId pred,
                                         std::span<const net::NodeId> candidates,
                                         sim::rng::Stream& stream) const = 0;
};

/// Uniform-random next hop — the baseline routing strategy and the paper's
/// adversary model.
class RandomRouting final : public RoutingStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }
  [[nodiscard]] HopChoice choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                 std::span<const net::NodeId> candidates,
                                 sim::rng::Stream& stream) const override;
};

/// Utility Model I: greedy maximisation of U_i(j) = P_f + q(i,j)P_r - C.
class UtilityModelIRouting final : public RoutingStrategy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override { return "utility-model-1"; }
  [[nodiscard]] HopChoice choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                 std::span<const net::NodeId> candidates,
                                 sim::rng::Stream& stream) const override;
};

/// Utility Model II: maximisation of onward-path quality toward R with a
/// bounded lookahead horizon (the operational form of the backward-induction
/// SPNE strategy — see core/game.hpp for the exact solver).
class UtilityModelIIRouting final : public RoutingStrategy {
 public:
  explicit UtilityModelIIRouting(std::uint32_t lookahead_depth = 3) noexcept
      : depth_(lookahead_depth) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "utility-model-2"; }
  [[nodiscard]] std::uint32_t lookahead_depth() const noexcept { return depth_; }
  [[nodiscard]] HopChoice choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                                 std::span<const net::NodeId> candidates,
                                 sim::rng::Stream& stream) const override;

 private:
  std::uint32_t depth_;
};

/// Which strategy a given node plays. Good nodes share one strategy object;
/// malicious nodes play RandomRouting (paper adversary model).
class StrategyAssignment {
 public:
  StrategyAssignment(const net::Overlay& overlay, const RoutingStrategy& good_strategy) noexcept
      : overlay_(overlay), good_(good_strategy) {}

  [[nodiscard]] const RoutingStrategy& of(net::NodeId id) const noexcept {
    return overlay_.node(id).is_malicious() ? static_cast<const RoutingStrategy&>(adversary_)
                                            : good_;
  }

 private:
  const net::Overlay& overlay_;
  const RoutingStrategy& good_;
  RandomRouting adversary_;
};

/// Named strategy kinds used by the experiment harness and benches. kSpne
/// is the exact backward-induction form of Utility Model II (see
/// core/spne_routing.hpp).
enum class StrategyKind { kRandom, kUtilityModelI, kUtilityModelII, kSpne };

[[nodiscard]] std::unique_ptr<RoutingStrategy> make_strategy(StrategyKind kind,
                                                             std::uint32_t lookahead_depth = 3);

[[nodiscard]] std::string_view strategy_name(StrategyKind kind) noexcept;

}  // namespace p2panon::core
