// Per-replicate decision resources: the reusable memo arena behind the
// Utility-Model-II bounded lookahead and the SPNE backward induction, plus
// the epoch-invalidated edge-quality cache (core/edge_quality).
//
// One hop decision = one RoutingStrategy::choose call. The world (overlay
// liveness, history, probing estimates) is frozen for its duration — the
// simulator is single-threaded and no events run inside a decision — so
// subproblem values keyed by (node, predecessor, remaining depth) may be
// shared across the candidate subtrees of that one decision. DecisionScratch
// realises this as a generation-tagged, fixed-size, lossy memo table: a
// strategy arms it for the span of one choose() via DecisionScope (bumping
// the generation invalidates every earlier entry in O(1)), recursive
// evaluators consult it only while armed, and a missed or evicted entry is
// simply recomputed — eviction can never change a value, only its cost.
// Steady state performs no allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "core/edge_quality.hpp"
#include "core/flat_hash.hpp"

namespace p2panon::core {

/// Memo namespaces within one decision (the fourth PackedKey word).
enum ScratchMode : std::uint32_t {
  kScratchLookahead = 0,    ///< best_onward_quality over (from, pred, depth)
  kScratchEquilibrium = 1,  ///< SPNE onward value over (holder, stages_left)
};

class DecisionScratch {
 public:
  explicit DecisionScratch(std::size_t log2_slots = 12) : log2_slots_(log2_slots) {}

  /// Start a new hop decision: all entries of earlier decisions become
  /// stale at once. Use DecisionScope rather than calling this directly.
  void begin_decision() {
    if (slots_.empty()) slots_.assign(std::size_t{1} << log2_slots_, Slot{});
    ++generation_;
    armed_ = true;
  }
  void end_decision() noexcept { armed_ = false; }

  /// Memoisation is only sound while a decision is in progress (the world
  /// is frozen); recursive evaluators must check this before lookup/store.
  [[nodiscard]] bool armed() const noexcept { return armed_; }

  [[nodiscard]] bool lookup(PackedKey key, double* out) const noexcept {
    const std::size_t mask = slots_.size() - 1;
    const std::size_t home =
        static_cast<std::size_t>(hash_packed_key_fast(key) >> (64 - log2_slots_));
    for (std::size_t p = 0; p < kProbes; ++p) {
      const Slot& s = slots_[(home + p) & mask];
      if (s.generation == generation_ && s.key == key) {
        *out = s.value;
        return true;
      }
    }
    return false;
  }

  void store(PackedKey key, double value) noexcept {
    const std::size_t mask = slots_.size() - 1;
    const std::size_t home =
        static_cast<std::size_t>(hash_packed_key_fast(key) >> (64 - log2_slots_));
    std::size_t victim = home;
    for (std::size_t p = 0; p < kProbes; ++p) {
      const std::size_t i = (home + p) & mask;
      if (slots_[i].generation != generation_) {
        victim = i;  // stale slot: free real estate
        break;
      }
      if (slots_[i].key == key) {
        victim = i;
        break;
      }
    }
    slots_[victim] = Slot{key, generation_, value};
  }

 private:
  struct Slot {
    PackedKey key;
    std::uint64_t generation = 0;  // 0 never matches: generation_ starts at 1
    double value = 0.0;
  };

  static constexpr std::size_t kProbes = 8;

  std::size_t log2_slots_;
  std::vector<Slot> slots_;
  std::uint64_t generation_ = 0;
  bool armed_ = false;
};

/// Everything one replicate's decision stack shares across hop decisions.
/// Owned by the scenario runner (or a test/bench), handed to PathBuilder,
/// and threaded through RoutingContext; absent (nullptr) everywhere, the
/// stack computes from scratch with bitwise-identical results.
struct DecisionResources {
  EdgeQualityCache edge_cache;
  DecisionScratch scratch;
};

/// RAII armer: strategies open one scope per choose() call.
class DecisionScope {
 public:
  explicit DecisionScope(DecisionResources* resources) noexcept
      : scratch_(resources != nullptr ? &resources->scratch : nullptr) {
    if (scratch_ != nullptr) scratch_->begin_decision();
  }
  ~DecisionScope() {
    if (scratch_ != nullptr) scratch_->end_decision();
  }
  DecisionScope(const DecisionScope&) = delete;
  DecisionScope& operator=(const DecisionScope&) = delete;

 private:
  DecisionScratch* scratch_;
};

}  // namespace p2panon::core
