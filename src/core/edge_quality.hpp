// Edge-quality evaluation (paper §2.3).
//
//   q(s, v) = w_s * sigma(s, v) + w_a * alpha_s(v)
//
// where sigma is the history selectivity of the edge for the current
// connection set and predecessor position, and alpha_s(v) is s's locally
// probed availability estimate of v. The final edge into the responder
// always has quality 1. Path quality is the sum of its edge qualities.
//
// EdgeQualityCache memoises q per (s, v, pair, predecessor) and
// self-invalidates by comparing the history epoch of s's profile and the
// probing epoch of s against the values snapshotted at compute time — no
// callbacks, no subscription, and cached answers are bitwise identical to
// uncached ones because hits return the double the evaluator itself
// produced. Two structural facts sharpen the hit rate:
//
//  * when s's profile holds no entry for (pair, predecessor) — an O(1)
//    check via HistoryProfile::position_count — sigma is exactly 0 for
//    every successor, so the entry is keyed under a canonical
//    "history-free" predecessor and shared across all such predecessors;
//  * those history-free entries are also independent of the connection
//    index k (only sigma's denominator sees k), so they stay valid across
//    the connections of a set until an epoch moves.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/contract.hpp"
#include "core/flat_hash.hpp"
#include "core/history.hpp"
#include "core/suspicion.hpp"
#include "net/ids.hpp"
#include "net/probing.hpp"

namespace p2panon::core {

class EdgeQualityEvaluator {
 public:
  /// `suspicion` (optional) folds the timeout-driven suspect penalty into
  /// the availability term; nullptr reproduces the fault-free quality
  /// bitwise (the multiplier is then exactly 1 and never computed).
  EdgeQualityEvaluator(const net::ProbingEstimator& probing, const HistoryStore& history,
                       QualityWeights weights,
                       const SuspicionTracker* suspicion = nullptr) noexcept
      : probing_(probing), history_(history), weights_(weights), suspicion_(suspicion) {}

  [[nodiscard]] const QualityWeights& weights() const noexcept { return weights_; }
  [[nodiscard]] const net::ProbingEstimator& probing() const noexcept { return probing_; }
  [[nodiscard]] const HistoryStore& history() const noexcept { return history_; }

  /// Suspicion epoch for cache freshness: constant 0 without a tracker.
  [[nodiscard]] std::uint64_t suspicion_epoch() const noexcept {
    return suspicion_ != nullptr ? suspicion_->epoch() : 0;
  }

  /// q(s, v) when s (whose current predecessor on the path is `predecessor`)
  /// considers forwarding connection k of `pair` to v, with responder R.
  [[nodiscard]] double edge_quality(net::NodeId s, net::NodeId v, net::NodeId responder,
                                    net::PairId pair, net::NodeId predecessor,
                                    std::uint32_t k) const {
    if (v == responder) return 1.0;  // last edge always has quality 1
    const double sigma = history_.at(s).selectivity(pair, predecessor, v, k);
    double alpha = probing_.availability(s, v);
    if (suspicion_ != nullptr) alpha *= suspicion_->availability_factor(v);
    return weights_.w_selectivity * sigma + weights_.w_availability * alpha;
  }

  /// Quality of a full path (node sequence initiator..responder): the sum of
  /// the qualities of its edges, evaluated with each hop's actual
  /// predecessor.
  [[nodiscard]] double path_quality(std::span<const net::NodeId> path, net::PairId pair,
                                    std::uint32_t k) const;

 private:
  const net::ProbingEstimator& probing_;
  const HistoryStore& history_;
  QualityWeights weights_;
  const SuspicionTracker* suspicion_;
};

/// Lossy, fixed-size, epoch-invalidated memo of edge_quality answers. One
/// cache serves one evaluator (one replicate); misses recompute through the
/// evaluator, so eviction can never change a result — only its cost.
class EdgeQualityCache {
 public:
  /// `log2_slots` fixes the table size; the cache never reallocates after
  /// first use (steady state is allocation-free).
  explicit EdgeQualityCache(std::size_t log2_slots = 15) : log2_slots_(log2_slots) {}

  /// O(1) canonicalisation witness, answered through the memo shared with
  /// node_facts: true when s's profile holds no entry for
  /// (pair, predecessor), i.e. sigma == 0 toward every successor.
  [[nodiscard]] bool history_free(const EdgeQualityEvaluator& eval, net::NodeId s,
                                  net::PairId pair, net::NodeId predecessor) {
    return resolve_history_free(eval.history().at(s), s, pair, predecessor);
  }

  /// Everything about the forwarder side of an edge lookup that is shared by
  /// all candidate successors of one decision level: both epochs and the
  /// canonical predecessor (kInvalidNode when s is history-free for
  /// (pair, predecessor) — sigma is exactly 0 toward every successor, so all
  /// such predecessors share one entry; kInvalidNode itself always qualifies
  /// because no stored entry has an invalid predecessor). Resolving these
  /// once per level and handing them to get_or_compute_at keeps the epoch
  /// loads and the canonicalisation probe off the per-edge path. The facts
  /// stay valid as long as no mutation intervenes — trivially true inside
  /// one hop decision.
  struct NodeFacts {
    std::uint64_t h_epoch = 0;
    std::uint64_t p_epoch = 0;
    std::uint64_t s_epoch = 0;  ///< suspicion epoch (constant 0 untracked)
    net::NodeId s = net::kInvalidNode;
    net::PairId pair = net::kInvalidPair;
    net::NodeId predecessor = net::kInvalidNode;
    net::NodeId canonical = net::kInvalidNode;
  };

  [[nodiscard]] NodeFacts node_facts(const EdgeQualityEvaluator& eval, net::NodeId s,
                                     net::PairId pair, net::NodeId predecessor) {
    const HistoryProfile& profile = eval.history().at(s);
    NodeFacts f;
    f.h_epoch = profile.epoch();
    f.p_epoch = eval.probing().epoch(s);
    f.s_epoch = eval.suspicion_epoch();
    f.s = s;
    f.pair = pair;
    f.predecessor = predecessor;
    f.canonical = resolve_history_free(profile, s, pair, predecessor) ? net::kInvalidNode
                                                                      : predecessor;
    return f;
  }

  /// q(s, v, ...) — a validated hit, or the evaluator's answer (stored).
  [[nodiscard]] double get_or_compute(const EdgeQualityEvaluator& eval, net::NodeId s,
                                      net::NodeId v, net::NodeId responder, net::PairId pair,
                                      net::NodeId predecessor, std::uint32_t k) {
    if (v == responder) return 1.0;  // never cached; definitionally 1
    return get_or_compute_at(eval, node_facts(eval, s, pair, predecessor), v, responder, k);
  }

  /// As get_or_compute, with the forwarder-side facts already in hand.
  [[nodiscard]] double get_or_compute_at(const EdgeQualityEvaluator& eval, const NodeFacts& f,
                                         net::NodeId v, net::NodeId responder, std::uint32_t k) {
    if (v == responder) return 1.0;  // never cached; definitionally 1

    const std::uint64_t h_epoch = f.h_epoch;
    const std::uint64_t p_epoch = f.p_epoch;
    const std::uint64_t s_epoch = f.s_epoch;
    const bool free = f.canonical == net::kInvalidNode;
    const PackedKey key = PackedKey::of(f.s, v, f.pair, f.canonical);

    if (slots_.empty()) slots_.assign(std::size_t{1} << log2_slots_, Slot{});
    const std::size_t mask = slots_.size() - 1;
    const std::size_t home =
        static_cast<std::size_t>(hash_packed_key_fast(key) >> (64 - log2_slots_));

    std::size_t victim = home;
    bool victim_fixed = false;
    for (std::size_t p = 0; p < kProbes; ++p) {
      const std::size_t i = (home + p) & mask;
      Slot& slot = slots_[i];
      if (slot.used && slot.key == key) {
        const bool fresh = slot.history_epoch == h_epoch && slot.probing_epoch == p_epoch &&
                           slot.suspicion_epoch == s_epoch &&
                           (slot.history_free || slot.conn_index == k);
        if (fresh) {
          ++hits_;
          return slot.value;
        }
        victim = i;  // stale entry for this very key: refresh in place
        victim_fixed = true;
        break;
      }
      if (!slot.used && !victim_fixed) {
        victim = i;
        victim_fixed = true;
      }
    }

    ++misses_;
    const double value = eval.edge_quality(f.s, v, responder, f.pair, f.predecessor, k);
    Slot& slot = slots_[victim];
    slot.key = key;
    slot.history_epoch = h_epoch;
    slot.probing_epoch = p_epoch;
    slot.suspicion_epoch = s_epoch;
    slot.conn_index = k;
    slot.history_free = free;
    slot.used = true;
    slot.value = value;
    return value;
  }

  void clear() {
    slots_.clear();
    hits_ = 0;
    misses_ = 0;
    canon_.fill(CanonEntry{});
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Slot {
    PackedKey key;               // (s, v, pair, canonical predecessor)
    std::uint64_t history_epoch = 0;
    std::uint64_t probing_epoch = 0;
    std::uint64_t suspicion_epoch = 0;
    std::uint32_t conn_index = 0;
    bool history_free = false;   // sigma == 0 entry: valid for any k
    bool used = false;
    double value = 0.0;
  };

  static constexpr std::size_t kProbes = 4;

  /// Canonicalisation memo: a hop decision resolves the same
  /// (s, pair, predecessor) triple once per candidate successor and once
  /// more after every return from a recursive subtree, so a small
  /// direct-mapped, epoch-validated table (L1-resident; a colliding entry
  /// is simply recomputed) keeps position_count off the hit path. Epoch
  /// equality makes a hit correct at any time — inside or outside a
  /// decision.
  struct CanonEntry {
    PackedKey key;  // (s, pair, predecessor)
    std::uint64_t h_epoch = 0;
    bool free = false;
    bool used = false;
  };
  static constexpr std::size_t kCanonSlots = 64;

  bool resolve_history_free(const HistoryProfile& profile, net::NodeId s, net::PairId pair,
                            net::NodeId predecessor) {
    const std::uint64_t h_epoch = profile.epoch();
    const PackedKey ck = PackedKey::of(s, pair, predecessor);
    CanonEntry& e = canon_[static_cast<std::size_t>(hash_packed_key_fast(ck) >> 58)];
    if (e.used && e.key == ck && e.h_epoch == h_epoch) return e.free;
    const bool free = profile.position_count(pair, predecessor) == 0;
    e = CanonEntry{ck, h_epoch, free, true};
    return free;
  }

  std::size_t log2_slots_;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::array<CanonEntry, kCanonSlots> canon_{};
};

}  // namespace p2panon::core
