// Edge-quality evaluation (paper §2.3).
//
//   q(s, v) = w_s * sigma(s, v) + w_a * alpha_s(v)
//
// where sigma is the history selectivity of the edge for the current
// connection set and predecessor position, and alpha_s(v) is s's locally
// probed availability estimate of v. The final edge into the responder
// always has quality 1. Path quality is the sum of its edge qualities.
#pragma once

#include <span>

#include "core/contract.hpp"
#include "core/history.hpp"
#include "net/ids.hpp"
#include "net/probing.hpp"

namespace p2panon::core {

class EdgeQualityEvaluator {
 public:
  EdgeQualityEvaluator(const net::ProbingEstimator& probing, const HistoryStore& history,
                       QualityWeights weights) noexcept
      : probing_(probing), history_(history), weights_(weights) {}

  [[nodiscard]] const QualityWeights& weights() const noexcept { return weights_; }

  /// q(s, v) when s (whose current predecessor on the path is `predecessor`)
  /// considers forwarding connection k of `pair` to v, with responder R.
  [[nodiscard]] double edge_quality(net::NodeId s, net::NodeId v, net::NodeId responder,
                                    net::PairId pair, net::NodeId predecessor,
                                    std::uint32_t k) const {
    if (v == responder) return 1.0;  // last edge always has quality 1
    const double sigma = history_.at(s).selectivity(pair, predecessor, v, k);
    const double alpha = probing_.availability(s, v);
    return weights_.w_selectivity * sigma + weights_.w_availability * alpha;
  }

  /// Quality of a full path (node sequence initiator..responder): the sum of
  /// the qualities of its edges, evaluated with each hop's actual
  /// predecessor.
  [[nodiscard]] double path_quality(std::span<const net::NodeId> path, net::PairId pair,
                                    std::uint32_t k) const;

 private:
  const net::ProbingEstimator& probing_;
  const HistoryStore& history_;
  QualityWeights weights_;
};

}  // namespace p2panon::core
