// Forwarder utility models (paper §2.4.2, §2.4.3) and the initiator utility
// (Eq. 2).
//
// Utility Model I (greedy edge quality):
//   U_i(j) = P_f + q(i, j) * P_r - (C_p_i + C_t(i, j))
//
// Utility Model II (path quality toward R):
//   U_i(j) = P_f + q(pi(i, j, R)) * P_r - (C_p_i + C_t(i, j))
// where q(pi(i, j, R)) is the quality (sum of edge qualities) of the best
// onward path from i through j to R. The paper models this as an L-stage
// game solved by backward induction; operationally we realise the
// equilibrium strategy as a bounded-depth lookahead: every candidate j is
// scored over the same horizon of `lookahead_depth` further edges (paths
// reaching R stop early), so comparing quality sums is equivalent to
// comparing per-edge averages and the bounded horizon does not bias toward
// longer paths.
#pragma once

#include <cstdint>

#include "core/contract.hpp"
#include "core/decision_scratch.hpp"
#include "core/edge_quality.hpp"
#include "net/overlay.hpp"

namespace p2panon::core {

/// Everything a routing decision at one hop needs to see.
struct RoutingContext {
  const net::Overlay& overlay;
  const EdgeQualityEvaluator& quality;
  Contract contract;
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 1;  ///< k, 1-based
  net::NodeId responder = net::kInvalidNode;
  /// Optional per-replicate cache + memo arena. Null means "compute from
  /// scratch"; results are bitwise identical either way.
  DecisionResources* resources = nullptr;

  /// q(s, v) for this decision — through the edge-quality cache when
  /// resources are attached, straight through the evaluator otherwise.
  [[nodiscard]] double edge_q(net::NodeId s, net::NodeId v, net::NodeId pred) const {
    if (resources != nullptr) {
      return resources->edge_cache.get_or_compute(quality, s, v, responder, pair, pred,
                                                  conn_index);
    }
    return quality.edge_quality(s, v, responder, pair, pred, conn_index);
  }
};

/// Participation cost C_p of node i (paper §2.4.1).
[[nodiscard]] inline double participation_cost(const RoutingContext& ctx, net::NodeId i) {
  return ctx.overlay.node(i).participation_cost;
}

/// Transmission cost C_t(i, j) of one forwarding instance (paper §2.4.1).
[[nodiscard]] inline double transmission_cost(const RoutingContext& ctx, net::NodeId i,
                                              net::NodeId j) {
  return ctx.overlay.links().transmission_cost(i, j);
}

/// Utility Model I for node i (predecessor `pred`) forwarding to j.
[[nodiscard]] double model1_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred,
                                    net::NodeId j);

/// Model I with q(i, j) already in hand (callers that need the edge quality
/// anyway — e.g. for tie-breaking — avoid resolving it twice; the value is
/// identical to what model1_utility would recompute).
[[nodiscard]] double model1_utility_with_q(const RoutingContext& ctx, net::NodeId i,
                                           net::NodeId j, double q_ij);

/// Quality (sum of edge qualities) of the best onward path of at most
/// `depth` edges starting at node `from` (predecessor `pred`), stopping
/// early when the responder is reached. Exhaustive search over online
/// neighbours; cost O(d^depth), fine for d ~ 5 and depth <= 4. While a
/// DecisionScope is open on ctx.resources, subproblems are memoised per
/// (from, canonical predecessor, depth) — predecessors with no stored
/// history at `from` collapse to one canonical key because sigma is
/// exactly 0 toward every successor — turning the d^depth tree into at
/// most nodes x depth distinct evaluations per decision.
[[nodiscard]] double best_onward_quality(const RoutingContext& ctx, net::NodeId from,
                                         net::NodeId pred, std::uint32_t depth);

/// Utility Model II for node i (predecessor `pred`) forwarding to j, with
/// the given lookahead horizon (>= 1; 1 degenerates to Model I).
[[nodiscard]] double model2_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred,
                                    net::NodeId j, std::uint32_t lookahead_depth);

/// Model II with q(i, j) already in hand (see model1_utility_with_q; i's own
/// predecessor only ever entered Model II through q_ij, so it is not a
/// parameter here).
[[nodiscard]] double model2_utility_with_q(const RoutingContext& ctx, net::NodeId i,
                                           net::NodeId j, std::uint32_t lookahead_depth,
                                           double q_ij);

/// Whether node j would agree to participate as a forwarder under the
/// contract: the sufficient condition of Proposition 3, P_f > C_p + C_t,
/// evaluated against j's cheapest usable outgoing link (including direct
/// delivery to the responder).
[[nodiscard]] bool would_participate(const RoutingContext& ctx, net::NodeId j);

}  // namespace p2panon::core
