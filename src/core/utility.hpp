// Forwarder utility models (paper §2.4.2, §2.4.3) and the initiator utility
// (Eq. 2).
//
// Utility Model I (greedy edge quality):
//   U_i(j) = P_f + q(i, j) * P_r - (C_p_i + C_t(i, j))
//
// Utility Model II (path quality toward R):
//   U_i(j) = P_f + q(pi(i, j, R)) * P_r - (C_p_i + C_t(i, j))
// where q(pi(i, j, R)) is the quality (sum of edge qualities) of the best
// onward path from i through j to R. The paper models this as an L-stage
// game solved by backward induction; operationally we realise the
// equilibrium strategy as a bounded-depth lookahead: every candidate j is
// scored over the same horizon of `lookahead_depth` further edges (paths
// reaching R stop early), so comparing quality sums is equivalent to
// comparing per-edge averages and the bounded horizon does not bias toward
// longer paths.
#pragma once

#include <cstdint>

#include "core/contract.hpp"
#include "core/edge_quality.hpp"
#include "net/overlay.hpp"

namespace p2panon::core {

/// Everything a routing decision at one hop needs to see.
struct RoutingContext {
  const net::Overlay& overlay;
  const EdgeQualityEvaluator& quality;
  Contract contract;
  net::PairId pair = net::kInvalidPair;
  std::uint32_t conn_index = 1;  ///< k, 1-based
  net::NodeId responder = net::kInvalidNode;
};

/// Participation cost C_p of node i (paper §2.4.1).
[[nodiscard]] inline double participation_cost(const RoutingContext& ctx, net::NodeId i) {
  return ctx.overlay.node(i).participation_cost;
}

/// Transmission cost C_t(i, j) of one forwarding instance (paper §2.4.1).
[[nodiscard]] inline double transmission_cost(const RoutingContext& ctx, net::NodeId i,
                                              net::NodeId j) {
  return ctx.overlay.links().transmission_cost(i, j);
}

/// Utility Model I for node i (predecessor `pred`) forwarding to j.
[[nodiscard]] double model1_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred,
                                    net::NodeId j);

/// Quality (sum of edge qualities) of the best onward path of at most
/// `depth` edges starting at node `from` (predecessor `pred`), stopping
/// early when the responder is reached. Exhaustive search over online
/// neighbours; cost O(d^depth), fine for d ~ 5 and depth <= 4.
[[nodiscard]] double best_onward_quality(const RoutingContext& ctx, net::NodeId from,
                                         net::NodeId pred, std::uint32_t depth);

/// Utility Model II for node i (predecessor `pred`) forwarding to j, with
/// the given lookahead horizon (>= 1; 1 degenerates to Model I).
[[nodiscard]] double model2_utility(const RoutingContext& ctx, net::NodeId i, net::NodeId pred,
                                    net::NodeId j, std::uint32_t lookahead_depth);

/// Whether node j would agree to participate as a forwarder under the
/// contract: the sufficient condition of Proposition 3, P_f > C_p + C_t,
/// evaluated against j's cheapest usable outgoing link (including direct
/// delivery to the responder).
[[nodiscard]] bool would_participate(const RoutingContext& ctx, net::NodeId j);

}  // namespace p2panon::core
