#include "core/history.hpp"

#include <cassert>

namespace p2panon::core {

// lint-exempt(epoch): private helper reachable only from record(), which bumps
void HistoryProfile::remove_from_index(const HistoryEntry& entry) {
  std::uint32_t* c = counts_.find(edge_key(entry.pair, entry.predecessor, entry.successor));
  assert(c != nullptr && *c > 0);
  if (--*c == 0) counts_.erase(edge_key(entry.pair, entry.predecessor, entry.successor));
  std::uint32_t* d = counts_.find(position_key(entry.pair, entry.predecessor));
  assert(d != nullptr && *d > 0);
  if (--*d == 0) counts_.erase(position_key(entry.pair, entry.predecessor));
}

void HistoryProfile::record(const HistoryEntry& entry) {
  if (capacity_ != 0 && ring_.size() == capacity_) {
    // FIFO: the oldest entry leaves — overwrite it in place, O(1).
    remove_from_index(ring_[head_]);
    ring_[head_] = entry;
    head_ = (head_ + 1) % capacity_;
  } else {
    ring_.push_back(entry);
  }
  ++counts_.get_or_insert(edge_key(entry.pair, entry.predecessor, entry.successor));
  ++counts_.get_or_insert(position_key(entry.pair, entry.predecessor));
  ++epoch_;
}

std::vector<HistoryEntry> HistoryProfile::entries() const {
  std::vector<HistoryEntry> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t HistoryProfile::count(net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const {
  const std::uint32_t* c = counts_.find(edge_key(pair, predecessor, successor));
  return c == nullptr ? 0 : *c;
}

std::size_t HistoryProfile::position_count(net::PairId pair, net::NodeId predecessor) const {
  const std::uint32_t* d = counts_.find(position_key(pair, predecessor));
  return d == nullptr ? 0 : *d;
}

double HistoryProfile::selectivity(net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const {
  if (k <= 1) return 0.0;
  const auto c = count(pair, predecessor, successor);
  return static_cast<double>(c) / static_cast<double>(k - 1);
}

void HistoryProfile::clear() {
  ring_.clear();
  head_ = 0;
  counts_.clear();
  ++epoch_;
}

HistoryStore::HistoryStore(std::size_t node_count, std::size_t per_node_capacity) {
  profiles_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    profiles_.emplace_back(per_node_capacity);
  }
}

void HistoryStore::record_path(net::PairId pair, std::uint32_t conn_index,
                               const std::vector<net::NodeId>& path) {
  assert(path.size() >= 2 && "path must contain at least initiator and responder");
  // Positions 1..n-2 are forwarders; each stores its predecessor/successor.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    profiles_.at(path[i]).record(
        HistoryEntry{pair, conn_index, path[i - 1], path[i + 1]});
  }
}

std::size_t HistoryStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& p : profiles_) n += p.size();
  return n;
}

}  // namespace p2panon::core
