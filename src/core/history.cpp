#include "core/history.hpp"

#include <cassert>

namespace p2panon::core {

void HistoryProfile::record(const HistoryEntry& entry) {
  if (capacity_ != 0 && entries_.size() == capacity_) {
    const HistoryEntry& old = entries_.front();
    auto it = counts_.find({old.pair, old.predecessor, old.successor});
    assert(it != counts_.end() && it->second > 0);
    if (--it->second == 0) counts_.erase(it);
    entries_.erase(entries_.begin());
  }
  entries_.push_back(entry);
  ++counts_[{entry.pair, entry.predecessor, entry.successor}];
}

std::size_t HistoryProfile::count(net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const {
  auto it = counts_.find({pair, predecessor, successor});
  return it == counts_.end() ? 0 : it->second;
}

double HistoryProfile::selectivity(net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const {
  if (k <= 1) return 0.0;
  const auto c = count(pair, predecessor, successor);
  return static_cast<double>(c) / static_cast<double>(k - 1);
}

void HistoryProfile::clear() {
  entries_.clear();
  counts_.clear();
}

HistoryStore::HistoryStore(std::size_t node_count, std::size_t per_node_capacity) {
  profiles_.reserve(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    profiles_.emplace_back(per_node_capacity);
  }
}

void HistoryStore::record_path(net::PairId pair, std::uint32_t conn_index,
                               const std::vector<net::NodeId>& path) {
  assert(path.size() >= 2 && "path must contain at least initiator and responder");
  // Positions 1..n-2 are forwarders; each stores its predecessor/successor.
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    profiles_.at(path[i]).record(
        HistoryEntry{pair, conn_index, path[i - 1], path[i + 1]});
  }
}

std::size_t HistoryStore::total_entries() const {
  std::size_t n = 0;
  for (const auto& p : profiles_) n += p.size();
  return n;
}

}  // namespace p2panon::core
