#include "core/spne_routing.hpp"

#include <cassert>
#include <optional>

namespace p2panon::core {

game::PathGameSpec SpneRouting::make_spec(const RoutingContext& ctx) {
  game::PathGameSpec spec;
  spec.node_count = ctx.overlay.size();
  spec.responder = ctx.responder;
  spec.candidates = [&ctx](net::NodeId v) {
    std::vector<net::NodeId> out;
    for (net::NodeId c : ctx.overlay.neighbors(v)) {
      if (c != v && ctx.overlay.appears_online(c)) out.push_back(c);
    }
    return out;
  };
  spec.edge_quality = [&ctx](net::NodeId i, net::NodeId j) {
    return ctx.quality.edge_quality(i, j, ctx.responder, ctx.pair, net::kInvalidNode,
                                    ctx.conn_index);
  };
  spec.forwarding_benefit = ctx.contract.forwarding_benefit;
  spec.routing_benefit = ctx.contract.routing_benefit();
  spec.cost = [&ctx](net::NodeId i, net::NodeId j) {
    return participation_cost(ctx, i) + transmission_cost(ctx, i, j);
  };
  return spec;
}

namespace {

/// Equilibrium onward-path quality of `holder` with `stages_left` moves
/// remaining — the lazy, memoised twin of
/// BackwardInductionSolver::compute_decision. It visits candidates in the
/// same order (overlay neighbour order, skipping self/offline/responder),
/// evaluates the same expressions in the same order, and applies the same
/// strictly-better-wins rule, so its values are bitwise identical to the
/// eager table's onward_quality — but only subgames actually reachable from
/// the decision point are solved, each at most once per decision thanks to
/// the scratch memo. Predecessors never enter the stage game (selectivity
/// conditions on kInvalidNode), so (holder, stages_left) is the whole state.
double equilibrium_onward(const RoutingContext& ctx, net::NodeId holder,
                          std::uint32_t stages_left) {
  if (holder == ctx.responder) return 0.0;

  DecisionScratch& scratch = ctx.resources->scratch;
  const PackedKey key = PackedKey::of(holder, stages_left, 0, kScratchEquilibrium);
  double cached = 0.0;
  if (scratch.lookup(key, &cached)) return cached;

  // Delivering to the responder is always available: edge quality 1.
  double best_onward = 1.0;
  double best_utility = ctx.contract.forwarding_benefit + 1.0 * ctx.contract.routing_benefit() -
                        (participation_cost(ctx, holder) +
                         transmission_cost(ctx, holder, ctx.responder));

  if (stages_left > 0) {
    for (net::NodeId j : ctx.overlay.neighbors(holder)) {
      if (j == holder || !ctx.overlay.appears_online(j) || j == ctx.responder) continue;
      const double q_ij = ctx.edge_q(holder, j, net::kInvalidNode);
      const double onward = q_ij + equilibrium_onward(ctx, j, stages_left - 1);
      const double u = ctx.contract.forwarding_benefit + onward * ctx.contract.routing_benefit() -
                       (participation_cost(ctx, holder) + transmission_cost(ctx, holder, j));
      if (u > best_utility) {
        best_utility = u;
        best_onward = onward;
      }
    }
  }

  scratch.store(key, best_onward);
  return best_onward;
}

}  // namespace

HopChoice SpneRouting::choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                              std::span<const net::NodeId> candidates,
                              sim::rng::Stream& /*stream*/) const {
  assert(!candidates.empty());

  // The equilibrium prescription considers the full neighbour set; the
  // builder may offer a narrower candidate list (declines, no-backtrack),
  // so re-derive the best response restricted to `candidates`, using the
  // equilibrium continuation values.
  //
  // With decision resources attached, continuations come from the lazy
  // memoised DFS above; without them, from the legacy eager solver over the
  // whole overlay. Both produce bitwise-identical values.
  const game::PathGameSpec spec = make_spec(ctx);
  std::optional<game::BackwardInductionSolver> solver;
  if (ctx.resources == nullptr) solver.emplace(spec, stages_);
  DecisionScope scope(ctx.resources);

  HopChoice best;
  bool have = false;
  for (net::NodeId j : candidates) {
    double onward;
    if (j == ctx.responder) {
      onward = 1.0;
    } else if (stages_ == 0) {
      // At the forced-delivery stage a forwarding move earns no equilibrium
      // continuation: only the immediate edge counts, so the responder's
      // quality-1 edge dominates whenever it is available.
      onward = ctx.edge_q(self, j, net::kInvalidNode);
    } else {
      const double continuation = solver.has_value()
                                      ? solver->decision(j, stages_ - 1).onward_quality
                                      : equilibrium_onward(ctx, j, stages_ - 1);
      onward = ctx.edge_q(self, j, net::kInvalidNode) + continuation;
    }
    const double u = spec.forwarding_benefit + onward * spec.routing_benefit -
                     spec.cost(self, j);
    const double q = ctx.edge_q(self, j, pred);
    if (!have || u > best.utility ||
        (u == best.utility && (q > best.edge_quality ||
                               (q == best.edge_quality && j < best.next)))) {
      best = HopChoice{j, u, q};
      have = true;
    }
  }
  return best;
}

}  // namespace p2panon::core
