#include "core/spne_routing.hpp"

#include <cassert>

namespace p2panon::core {

game::PathGameSpec SpneRouting::make_spec(const RoutingContext& ctx) {
  game::PathGameSpec spec;
  spec.node_count = ctx.overlay.size();
  spec.responder = ctx.responder;
  spec.candidates = [&ctx](net::NodeId v) {
    std::vector<net::NodeId> out;
    for (net::NodeId c : ctx.overlay.neighbors(v)) {
      if (c != v && ctx.overlay.is_online(c)) out.push_back(c);
    }
    return out;
  };
  spec.edge_quality = [&ctx](net::NodeId i, net::NodeId j) {
    return ctx.quality.edge_quality(i, j, ctx.responder, ctx.pair, net::kInvalidNode,
                                    ctx.conn_index);
  };
  spec.forwarding_benefit = ctx.contract.forwarding_benefit;
  spec.routing_benefit = ctx.contract.routing_benefit();
  spec.cost = [&ctx](net::NodeId i, net::NodeId j) {
    return participation_cost(ctx, i) + transmission_cost(ctx, i, j);
  };
  return spec;
}

HopChoice SpneRouting::choose(const RoutingContext& ctx, net::NodeId self, net::NodeId pred,
                              std::span<const net::NodeId> candidates,
                              sim::rng::Stream& /*stream*/) const {
  assert(!candidates.empty());
  const game::PathGameSpec spec = make_spec(ctx);
  const game::BackwardInductionSolver solver(spec, stages_);

  // The solver's prescribed action considers the full neighbour set; the
  // builder may offer a narrower candidate list (declines, no-backtrack),
  // so re-derive the best response restricted to `candidates`, using the
  // solver's equilibrium continuation values.
  HopChoice best;
  bool have = false;
  for (net::NodeId j : candidates) {
    double onward;
    if (j == ctx.responder) {
      onward = 1.0;
    } else if (stages_ == 0) {
      // At the forced-delivery stage a forwarding move earns no equilibrium
      // continuation: only the immediate edge counts, so the responder's
      // quality-1 edge dominates whenever it is available.
      onward = spec.edge_quality(self, j);
    } else {
      onward = spec.edge_quality(self, j) + solver.decision(j, stages_ - 1).onward_quality;
    }
    const double u = spec.forwarding_benefit + onward * spec.routing_benefit -
                     spec.cost(self, j);
    const double q =
        ctx.quality.edge_quality(self, j, ctx.responder, ctx.pair, pred, ctx.conn_index);
    if (!have || u > best.utility ||
        (u == best.utility && (q > best.edge_quality ||
                               (q == best.edge_quality && j < best.next)))) {
      best = HopChoice{j, u, q};
      have = true;
    }
  }
  return best;
}

}  // namespace p2panon::core
