#include "core/crowds.hpp"

#include <cassert>

namespace p2panon::core {

bool CrowdsSession::path_alive(const net::Overlay& overlay) const {
  if (!have_path_) return false;
  for (std::size_t i = 1; i + 1 < current_.nodes.size(); ++i) {
    const net::NodeView n = overlay.node(current_.nodes[i]);
    if (!n.online || n.departed) return false;
  }
  return true;
}

const BuiltPath& CrowdsSession::run_connection(const PathBuilder& builder,
                                               HistoryStore& history,
                                               const StrategyAssignment& strategies,
                                               PayoffLedger& ledger,
                                               const net::Overlay& overlay,
                                               sim::rng::Stream& stream) {
  ++connections_;
  if (!path_alive(overlay)) {
    // (Re-)form the static path.
    auto form_stream = stream.child("form", formations_);
    current_ = builder.build(pair_, connections_, initiator_, responder_, contract_,
                             strategies, form_stream);
    have_path_ = true;
    ++formations_;
  }

  // Every connection over the (possibly reused) path costs each forwarder a
  // transmission and records history, exactly as in per-connection routing.
  history.record_path(pair_, connections_, current_.nodes);
  for (std::size_t i = 1; i + 1 < current_.nodes.size(); ++i) {
    ledger.charge_participation(overlay, current_.nodes[i]);
    ledger.charge_transmission(overlay, current_.nodes[i], current_.nodes[i + 1]);
    forwarder_set_.insert(current_.nodes[i]);
  }
  total_path_length_ += current_.forwarder_count();
  return current_;
}

double CrowdsSession::average_path_length() const noexcept {
  return connections_ > 0
             ? static_cast<double>(total_path_length_) / static_cast<double>(connections_)
             : 0.0;
}

double CrowdsSession::path_quality() const noexcept {
  return forwarder_set_.empty()
             ? 0.0
             : average_path_length() / static_cast<double>(forwarder_set_.size());
}

}  // namespace p2panon::core
