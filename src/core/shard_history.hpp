// Shard-partitioned connection history with barrier-merged read views.
//
// The serial scenario owns one HistoryStore and mutates it inline as paths
// complete. Under sim::ShardedSimulator that single store would be written
// concurrently from K shard threads, so the sharded full scenario splits it
// along the node partition: each shard owns the count indices of its own
// nodes' profiles, writes are *buffered* per source shard while a window
// runs, and the buffers are folded serially in the window-barrier hook at
// view-refresh epoch boundaries (src/harness/sharded_scenario.cpp). Between
// folds the store is immutable, which is exactly what makes it a safe
// read-only merged view: any shard may evaluate the selectivity of any
// node's edges during a window and sees the same epoch snapshot regardless
// of K, pool size, or window length.
//
// Query semantics mirror HistoryProfile (core/history.hpp): selectivity of
// edge (s, v) conditioned on the current predecessor is
//
//   sigma(s, v) = #entries{(s -> v) | same pair, same predecessor} / (k - 1)
//
// with the per-(pair, predecessor) denominator kept O(1) so callers can
// collapse positions with provably-zero selectivity. Entries are keyed by
// (node, pair, predecessor, successor) in one packed flat map per shard.
// The sharded store is unbounded (the serial HistoryProfile's FIFO capacity
// is an ablation knob of the serial path); fold order is deterministic —
// shard-ascending, FIFO within a shard's buffer — so the folded counts are
// identical for any K.
//
// Epoch contract (lint rule R2): every fold bumps the monotone epoch_, and
// reads between folds are answered from the same epoch. Consumers that
// cache derived quantities compare epochs to self-invalidate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/flat_hash.hpp"
#include "net/ids.hpp"
#include "net/soa.hpp"

namespace p2panon::core {

/// One buffered history write: node's profile gains an entry for `pair`
/// with the given adjacent hops. Buffered by the shard that completed the
/// connection; folded at the next epoch boundary.
struct HistoryDelta {
  net::NodeId node = net::kInvalidNode;
  net::PairId pair = net::kInvalidPair;
  net::NodeId predecessor = net::kInvalidNode;
  net::NodeId successor = net::kInvalidNode;
};

class ShardedHistory {
 public:
  explicit ShardedHistory(const net::ShardPartition& partition);

  // --- Read view (immutable between folds; callable from any shard).

  /// Stored entries matching (node, pair, predecessor, successor).
  [[nodiscard]] std::size_t count(net::NodeId node, net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const;

  /// Entries matching (node, pair, predecessor) across all successors — a
  /// zero denominator proves sigma == 0 for every successor at this
  /// position.
  [[nodiscard]] std::size_t position_count(net::NodeId node, net::PairId pair,
                                           net::NodeId predecessor) const;

  /// sigma(node, successor) for the k-th connection (1-based; k == 1 has no
  /// history and yields 0). Matches HistoryProfile::selectivity.
  [[nodiscard]] double selectivity(net::NodeId node, net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const;

  [[nodiscard]] std::size_t total_entries() const noexcept;
  [[nodiscard]] std::size_t entries_in_shard(std::uint32_t shard) const {
    return entries_[shard];
  }

  /// Monotone fold counter; equal epochs guarantee identical answers.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- Write side (serial barrier hook only).

  /// Fold one buffer of deltas into the owning shards' count indices. Must
  /// run from the serial window-barrier hook; callers drain their per-shard
  /// buffers shard-ascending so the folded state is K-invariant.
  void fold(std::span<const HistoryDelta> deltas);

 private:
  [[nodiscard]] static PackedKey edge_key(net::NodeId node, net::PairId pair,
                                          net::NodeId predecessor,
                                          net::NodeId successor) noexcept {
    return PackedKey::of(node, pair, predecessor, successor);
  }
  [[nodiscard]] static PackedKey position_key(net::NodeId node, net::PairId pair,
                                              net::NodeId predecessor) noexcept {
    // Disambiguated from edge keys by the successor slot no real edge uses.
    return PackedKey::of(node, pair, predecessor, net::kInvalidNode);
  }

  const net::ShardPartition* partition_;
  std::vector<PackedFlatMap<std::uint32_t>> counts_;  ///< one index per shard
  std::vector<std::size_t> entries_;                  ///< folded entries per shard
  std::uint64_t epoch_ = 0;
};

}  // namespace p2panon::core
