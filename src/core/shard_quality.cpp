#include "core/shard_quality.hpp"

#include <cassert>

namespace p2panon::core {

ShardedEdgeQuality::ShardedEdgeQuality(const net::NodeStateSoA& state,
                                       const net::ShardPartition& partition,
                                       const net::ShardedProbing& probing,
                                       QualityWeights weights)
    : state_(state),
      partition_(partition),
      probing_(probing),
      weights_(weights),
      attempts_(state.size() * state.degree, 0),
      successes_(state.size() * state.degree, 0) {
  assert(weights_.valid());
}

std::size_t ShardedEdgeQuality::pick_best(
    net::NodeId s, std::span<const std::uint8_t> published_online) const {
  const std::uint32_t home = partition_.shard_of(s);
  const auto row = state_.neighbors_of(s);
  std::size_t best = row.size();
  double best_score = -1.0;
  for (std::size_t slot = 0; slot < row.size(); ++slot) {
    const net::NodeId u = row[slot];
    const bool believed_alive = partition_.shard_of(u) == home
                                    ? state_.appears_online(u)
                                    : published_online[u] != 0;
    if (!believed_alive) continue;
    const double q = score(s, slot);
    if (q > best_score) {  // strict: equal scores keep the lowest slot
      best_score = q;
      best = slot;
    }
  }
  return best;
}

}  // namespace p2panon::core
