#include "core/shard_history.hpp"

#include <cassert>

namespace p2panon::core {

ShardedHistory::ShardedHistory(const net::ShardPartition& partition)
    : partition_(&partition),
      counts_(partition.shard_count()),
      entries_(partition.shard_count(), 0) {}

std::size_t ShardedHistory::count(net::NodeId node, net::PairId pair, net::NodeId predecessor,
                                  net::NodeId successor) const {
  const PackedFlatMap<std::uint32_t>& index = counts_[partition_->shard_of(node)];
  const std::uint32_t* c = index.find(edge_key(node, pair, predecessor, successor));
  return c == nullptr ? 0 : *c;
}

std::size_t ShardedHistory::position_count(net::NodeId node, net::PairId pair,
                                           net::NodeId predecessor) const {
  const PackedFlatMap<std::uint32_t>& index = counts_[partition_->shard_of(node)];
  const std::uint32_t* d = index.find(position_key(node, pair, predecessor));
  return d == nullptr ? 0 : *d;
}

double ShardedHistory::selectivity(net::NodeId node, net::PairId pair, net::NodeId predecessor,
                                   net::NodeId successor, std::uint32_t k) const {
  if (k <= 1) return 0.0;
  const std::size_t c = count(node, pair, predecessor, successor);
  return static_cast<double>(c) / static_cast<double>(k - 1);
}

std::size_t ShardedHistory::total_entries() const noexcept {
  std::size_t n = 0;
  for (const std::size_t e : entries_) n += e;
  return n;
}

void ShardedHistory::fold(std::span<const HistoryDelta> deltas) {
  for (const HistoryDelta& d : deltas) {
    assert(d.successor != net::kInvalidNode && "position-key sentinel used as successor");
    const std::uint32_t shard = partition_->shard_of(d.node);
    PackedFlatMap<std::uint32_t>& index = counts_[shard];
    ++index.get_or_insert(edge_key(d.node, d.pair, d.predecessor, d.successor));
    ++index.get_or_insert(position_key(d.node, d.pair, d.predecessor));
    ++entries_[shard];
  }
  ++epoch_;
}

}  // namespace p2panon::core
