// Anonymity quantification.
//
// The paper uses an abstract decreasing function A(||pi||) to value the
// anonymity an initiator obtains from a forwarder set of size ||pi|| (Eq. 2),
// citing the entropy-based literature [17] for quantification. We provide:
//   * entropy / normalised-entropy anonymity of an attacker's probability
//     assignment over candidate initiators (Serjantov-Danezis / Diaz et al.
//     style), used by the intersection-attack analyses, and
//   * a family of concrete A(.) functionals for the initiator utility, with
//     the shape exposed as a parameter so the ablation bench can verify the
//     paper's conclusions are insensitive to it.
#pragma once

#include <cstddef>
#include <span>

namespace p2panon::metrics {

/// Shannon entropy (bits) of a probability vector. Entries must be
/// non-negative; they are normalised internally, zero entries contribute 0.
[[nodiscard]] double shannon_entropy_bits(std::span<const double> probabilities) noexcept;

/// Degree of anonymity d = H(X) / log2(N) per Diaz et al.; 0 when N < 2.
[[nodiscard]] double degree_of_anonymity(std::span<const double> probabilities) noexcept;

/// Effective anonymity-set size 2^H — the number of equiprobable candidates
/// that would produce the observed entropy.
[[nodiscard]] double effective_set_size(std::span<const double> probabilities) noexcept;

/// Concrete functional forms for A(||pi||) in the initiator utility
/// U_I = A(||pi||) - ||pi||*P_f - P_r. All are positive and strictly
/// decreasing in the forwarder-set size, as the paper requires.
enum class AnonymityFunctional {
  kExponentialDecay,  // A(x) = scale * exp(-x / lambda)
  kInverse,           // A(x) = scale / (1 + x / lambda)
  kLinearClamped,     // A(x) = max(0, scale * (1 - x / lambda))
};

struct AnonymityValuation {
  AnonymityFunctional form = AnonymityFunctional::kExponentialDecay;
  double scale = 10000.0;  // value of perfect anonymity (forwarder set -> 0)
  double lambda = 20.0;    // decay scale in forwarder-set-size units

  /// Evaluate A(set_size).
  [[nodiscard]] double operator()(double set_size) const noexcept;
};

/// Initiator utility U_I = A(||pi||) - ||pi||*P_f - P_r (paper Eq. 2).
[[nodiscard]] double initiator_utility(const AnonymityValuation& a, double forwarder_set_size,
                                       double p_f, double p_r) noexcept;

}  // namespace p2panon::metrics
