// Time-stamped series collection for "X over simulated time" analyses
// (online-node counts, anonymity-set size, forwarder availability, ...).
#pragma once

#include <cstddef>
#include <vector>

namespace p2panon::metrics {

class TimeSeries {
 public:
  struct Point {
    double t = 0.0;
    double value = 0.0;
  };

  /// Record an observation. Timestamps must be non-decreasing.
  void record(double t, double value);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean_value() const;

  /// Value at time t: last observation at or before t (step function);
  /// the first observation's value before any data point.
  [[nodiscard]] double at(double t) const;

  /// Resample onto `count` evenly spaced instants across [t0, t1]
  /// (last-observation-carried-forward). count >= 2.
  [[nodiscard]] std::vector<Point> resample(double t0, double t1, std::size_t count) const;

  /// Time-weighted average over [t0, t1] of the step function.
  [[nodiscard]] double time_weighted_mean(double t0, double t1) const;

 private:
  std::vector<Point> points_;
};

}  // namespace p2panon::metrics
