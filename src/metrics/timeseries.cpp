#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cassert>

namespace p2panon::metrics {

void TimeSeries::record(double t, double value) {
  assert((points_.empty() || t >= points_.back().t) && "timestamps must be non-decreasing");
  points_.emplace_back(t, value);
}

double TimeSeries::min_value() const {
  assert(!points_.empty());
  double m = points_.front().value;
  for (const Point& p : points_) m = std::min(m, p.value);
  return m;
}

double TimeSeries::max_value() const {
  assert(!points_.empty());
  double m = points_.front().value;
  for (const Point& p : points_) m = std::max(m, p.value);
  return m;
}

double TimeSeries::mean_value() const {
  assert(!points_.empty());
  double s = 0.0;
  for (const Point& p : points_) s += p.value;
  return s / static_cast<double>(points_.size());
}

double TimeSeries::at(double t) const {
  assert(!points_.empty());
  // Last point with .t <= t; first value if t precedes all data.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  if (it == points_.begin()) return points_.front().value;
  return std::prev(it)->value;
}

std::vector<TimeSeries::Point> TimeSeries::resample(double t0, double t1,
                                                    std::size_t count) const {
  assert(count >= 2 && t1 > t0);
  std::vector<Point> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = t0 + (t1 - t0) * static_cast<double>(i) / static_cast<double>(count - 1);
    out.emplace_back(t, at(t));
  }
  return out;
}

double TimeSeries::time_weighted_mean(double t0, double t1) const {
  assert(t1 > t0 && !points_.empty());
  double area = 0.0;
  double prev_t = t0;
  double prev_v = at(t0);
  for (const Point& p : points_) {
    if (p.t <= t0) continue;
    if (p.t >= t1) break;
    area += (p.t - prev_t) * prev_v;
    prev_t = p.t;
    prev_v = p.value;
  }
  area += (t1 - prev_t) * prev_v;
  return area / (t1 - t0);
}

}  // namespace p2panon::metrics
