#include "metrics/anonymity.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace p2panon::metrics {

double shannon_entropy_bits(std::span<const double> probabilities) noexcept {
  double total = 0.0;
  for (double p : probabilities) {
    assert(p >= 0.0);
    total += p;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (double p : probabilities) {
    if (p <= 0.0) continue;
    const double q = p / total;
    h -= q * std::log2(q);
  }
  return h;
}

double degree_of_anonymity(std::span<const double> probabilities) noexcept {
  std::size_t support = 0;
  for (double p : probabilities) {
    if (p > 0.0) ++support;
  }
  if (probabilities.size() < 2) return 0.0;
  (void)support;
  const double h_max = std::log2(static_cast<double>(probabilities.size()));
  return h_max > 0.0 ? shannon_entropy_bits(probabilities) / h_max : 0.0;
}

double effective_set_size(std::span<const double> probabilities) noexcept {
  return std::exp2(shannon_entropy_bits(probabilities));
}

double AnonymityValuation::operator()(double set_size) const noexcept {
  assert(set_size >= 0.0 && lambda > 0.0 && scale > 0.0);
  switch (form) {
    case AnonymityFunctional::kExponentialDecay:
      return scale * std::exp(-set_size / lambda);
    case AnonymityFunctional::kInverse:
      return scale / (1.0 + set_size / lambda);
    case AnonymityFunctional::kLinearClamped:
      return std::max(0.0, scale * (1.0 - set_size / lambda));
  }
  return 0.0;  // unreachable
}

double initiator_utility(const AnonymityValuation& a, double forwarder_set_size, double p_f,
                         double p_r) noexcept {
  return a(forwarder_set_size) - forwarder_set_size * p_f - p_r;
}

}  // namespace p2panon::metrics
