// Streaming and batch statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace p2panon::metrics {

/// Welford streaming accumulator: numerically stable mean/variance.
class Accumulator {
 public:
  /// Bit-exact serialisable state: every double as its IEEE-754 bit
  /// pattern, so a checkpointed accumulator resumes bitwise-identically
  /// (the property the harness's kill-and-resume invariance rests on).
  struct Raw {
    std::uint64_t n = 0;
    std::uint64_t mean_bits = 0;
    std::uint64_t m2_bits = 0;
    std::uint64_t min_bits = 0;
    std::uint64_t max_bits = 0;
  };

  void add(double x) noexcept;

  /// Merge another accumulator (Chan et al. parallel combination).
  void merge(const Accumulator& other) noexcept;

  [[nodiscard]] Raw raw() const noexcept;
  [[nodiscard]] static Accumulator from_raw(const Raw& raw) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when n < 2.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value for the given confidence level
/// (e.g. 0.95) and degrees of freedom. Uses an accurate closed-form
/// approximation (Cornish-Fisher expansion of the normal quantile), exact in
/// the df -> infinity limit and within ~1e-3 of tables for df >= 2.
[[nodiscard]] double t_critical(double confidence, std::size_t df) noexcept;

/// Symmetric confidence-interval half width for a sample mean.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;  // mean +/- half_width
  [[nodiscard]] double lo() const noexcept { return mean - half_width; }
  [[nodiscard]] double hi() const noexcept { return mean + half_width; }
  [[nodiscard]] bool contains(double x) const noexcept { return lo() <= x && x <= hi(); }
};
[[nodiscard]] ConfidenceInterval confidence_interval(const Accumulator& acc,
                                                     double confidence = 0.95) noexcept;

// --- Sequential stopping (adaptive replication; see DESIGN.md §3.12) -------

/// Hoeffding run planning: the smallest n for which the mean of n i.i.d.
/// samples with range R is within ±eps of its expectation with probability
/// at least 1 - delta:  n = ceil(R² ln(2/delta) / (2 eps²)).
[[nodiscard]] std::size_t hoeffding_plan(double range, double eps, double delta) noexcept;

/// Alpha-spending schedule: the error budget spent at the k-th peek
/// (1-indexed) is alpha / (k (k+1)); the telescoping sum over every k is
/// exactly alpha, so a union bound across all peeks keeps the *anytime*
/// error level at alpha no matter how often the harness looks.
[[nodiscard]] double alpha_spend(double alpha, std::size_t peek) noexcept;

/// Anytime confidence interval at the k-th peek: the Student-t interval at
/// level alpha_spend(alpha, peek) / metrics — alpha split across peeks by
/// the spending schedule and across `metrics` simultaneous targets by a
/// union bound. Valid to act on after *every* batch.
[[nodiscard]] ConfidenceInterval anytime_interval(const Accumulator& acc, double alpha,
                                                  std::size_t peek,
                                                  std::size_t metrics = 1) noexcept;

/// One-sided Hoeffding lower confidence bound on a Bernoulli pass rate
/// after `trials` observations with `passes` successes:
/// p̂ - sqrt(ln(1/delta) / (2 trials)), clamped to [0, 1].
[[nodiscard]] double pass_rate_lower_bound(std::size_t passes, std::size_t trials,
                                           double delta) noexcept;

/// Empirical distribution over a batch of samples: CDF evaluation,
/// percentiles, and fixed-grid CDF series for figure reproduction.
class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double x);
  /// Sort pending samples; called lazily by const accessors.
  void finalize() const;

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// P(X <= x), 0 on empty.
  [[nodiscard]] double cdf(double x) const;

  /// p-quantile with linear interpolation, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  /// Evaluate the CDF at `points` evenly spaced values across
  /// [min, max] — the series plotted in the paper's Figures 6-7.
  struct CdfPoint {
    double x;
    double p;
  };
  [[nodiscard]] std::vector<CdfPoint> cdf_series(std::size_t points) const;

  [[nodiscard]] std::span<const double> sorted_samples() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Welch's unequal-variance t-test for the difference of two sample means.
struct WelchResult {
  double t = 0.0;              ///< t statistic (a.mean - b.mean direction)
  double df = 0.0;             ///< Welch-Satterthwaite degrees of freedom
  double critical_95 = 0.0;    ///< two-sided 5% critical value at df
  bool significant_95 = false; ///< |t| > critical_95
};
[[nodiscard]] WelchResult welch_t_test(const Accumulator& a, const Accumulator& b) noexcept;

/// Gini coefficient of a non-negative sample set: 0 = perfectly equal,
/// -> 1 = maximally concentrated. Used for the payoff-skew analyses
/// (the paper's Figs. 6-7 discuss exactly this concentration effect).
/// Samples with negative values are shifted so the minimum is zero.
[[nodiscard]] double gini(std::span<const double> samples);

/// Fixed-bin histogram on [lo, hi); out-of-range samples clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
  /// Fraction of samples in the bin.
  [[nodiscard]] double density(std::size_t bin) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace p2panon::metrics
