#include "metrics/stats.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>

namespace p2panon::metrics {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

Accumulator::Raw Accumulator::raw() const noexcept {
  Raw r;
  r.n = n_;
  r.mean_bits = std::bit_cast<std::uint64_t>(mean_);
  r.m2_bits = std::bit_cast<std::uint64_t>(m2_);
  r.min_bits = std::bit_cast<std::uint64_t>(min_);
  r.max_bits = std::bit_cast<std::uint64_t>(max_);
  return r;
}

Accumulator Accumulator::from_raw(const Raw& raw) noexcept {
  Accumulator a;
  a.n_ = static_cast<std::size_t>(raw.n);
  a.mean_ = std::bit_cast<double>(raw.mean_bits);
  a.m2_ = std::bit_cast<double>(raw.m2_bits);
  a.min_ = std::bit_cast<double>(raw.min_bits);
  a.max_ = std::bit_cast<double>(raw.max_bits);
  return a;
}

double Accumulator::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  return n_ >= 2 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

namespace {

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9 on (0,1)).
double normal_quantile(double p) noexcept {
  assert(p > 0.0 && p < 1.0);
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - plow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace

double t_critical(double confidence, std::size_t df) noexcept {
  assert(confidence > 0.0 && confidence < 1.0);
  if (df == 0) return 0.0;
  const double p = 0.5 + confidence / 2.0;  // two-sided
  const double z = normal_quantile(p);
  // Cornish-Fisher / Peiser expansion of the t quantile around the normal.
  const double n = static_cast<double>(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
  return t;
}

ConfidenceInterval confidence_interval(const Accumulator& acc, double confidence) noexcept {
  ConfidenceInterval ci;
  ci.mean = acc.mean();
  if (acc.count() >= 2) {
    ci.half_width = t_critical(confidence, acc.count() - 1) * acc.stderr_mean();
  }
  return ci;
}

std::size_t hoeffding_plan(double range, double eps, double delta) noexcept {
  if (eps <= 0.0) return std::numeric_limits<std::size_t>::max();
  if (range <= 0.0) return 1;  // degenerate support: one sample pins the mean
  delta = std::clamp(delta, 1.0e-12, 0.5);
  const double n = range * range * std::log(2.0 / delta) / (2.0 * eps * eps);
  return static_cast<std::size_t>(std::ceil(std::max(1.0, n)));
}

double alpha_spend(double alpha, std::size_t peek) noexcept {
  if (peek == 0) peek = 1;
  const double k = static_cast<double>(peek);
  return alpha / (k * (k + 1.0));
}

ConfidenceInterval anytime_interval(const Accumulator& acc, double alpha, std::size_t peek,
                                    std::size_t metrics) noexcept {
  const double delta =
      std::clamp(alpha_spend(alpha, peek) / static_cast<double>(std::max<std::size_t>(metrics, 1)),
                 1.0e-12, 0.5);
  return confidence_interval(acc, 1.0 - delta);
}

double pass_rate_lower_bound(std::size_t passes, std::size_t trials, double delta) noexcept {
  if (trials == 0) return 0.0;
  delta = std::clamp(delta, 1.0e-12, 0.5);
  const double n = static_cast<double>(trials);
  const double hat = static_cast<double>(passes) / n;
  return std::clamp(hat - std::sqrt(std::log(1.0 / delta) / (2.0 * n)), 0.0, 1.0);
}

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void EmpiricalDistribution::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalDistribution::finalize() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalDistribution::cdf(double x) const {
  if (samples_.empty()) return 0.0;
  finalize();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::quantile(double p) const {
  assert(p >= 0.0 && p <= 1.0);
  assert(!samples_.empty());
  finalize();
  if (samples_.size() == 1) return samples_.front();
  const double pos = p * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double EmpiricalDistribution::min() const {
  assert(!samples_.empty());
  finalize();
  return samples_.front();
}

double EmpiricalDistribution::max() const {
  assert(!samples_.empty());
  finalize();
  return samples_.back();
}

double EmpiricalDistribution::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double EmpiricalDistribution::variance() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return s / static_cast<double>(samples_.size() - 1);
}

std::vector<EmpiricalDistribution::CdfPoint> EmpiricalDistribution::cdf_series(
    std::size_t points) const {
  assert(points >= 2);
  std::vector<CdfPoint> out;
  if (samples_.empty()) return out;
  finalize();
  const double lo = samples_.front();
  const double hi = samples_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.push_back({x, cdf(x)});
  }
  return out;
}

std::span<const double> EmpiricalDistribution::sorted_samples() const {
  finalize();
  return samples_;
}

WelchResult welch_t_test(const Accumulator& a, const Accumulator& b) noexcept {
  WelchResult r;
  if (a.count() < 2 || b.count() < 2) return r;
  const double va = a.variance() / static_cast<double>(a.count());
  const double vb = b.variance() / static_cast<double>(b.count());
  const double denom = va + vb;
  if (denom <= 0.0) {
    // Zero variance in both samples: any mean difference is "infinitely"
    // significant; equal means are not.
    r.significant_95 = a.mean() != b.mean();
    r.t = r.significant_95 ? std::numeric_limits<double>::infinity() : 0.0;
    return r;
  }
  r.t = (a.mean() - b.mean()) / std::sqrt(denom);
  const double na = static_cast<double>(a.count()), nb = static_cast<double>(b.count());
  r.df = denom * denom / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  r.critical_95 = t_critical(0.95, static_cast<std::size_t>(std::max(1.0, r.df)));
  r.significant_95 = std::abs(r.t) > r.critical_95;
  return r;
}

double gini(std::span<const double> samples) {
  const std::size_t n = samples.size();
  if (n < 2) return 0.0;
  std::vector<double> xs(samples.begin(), samples.end());
  std::sort(xs.begin(), xs.end());
  if (xs.front() < 0.0) {
    const double shift = -xs.front();
    for (double& x : xs) x += shift;
  }
  double cum_weighted = 0.0, total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cum_weighted += static_cast<double>(i + 1) * xs[i];
    total += xs[i];
  }
  if (total <= 0.0) return 0.0;
  const double nn = static_cast<double>(n);
  return (2.0 * cum_weighted) / (nn * total) - (nn + 1.0) / nn;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::density(std::size_t bin) const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

}  // namespace p2panon::metrics
