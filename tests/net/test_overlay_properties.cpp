// Seed-parameterised overlay invariants: properties that must survive any
// churn realisation.
#include <gtest/gtest.h>

#include <set>

#include "net/overlay.hpp"
#include "sim/simulator.hpp"

using namespace p2panon::net;
namespace sim = p2panon::sim;

namespace {

class OverlayProperties : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  OverlayProperties() : overlay_(config(), simulator_, sim::rng::Stream(GetParam())) {}

  static OverlayConfig config() {
    OverlayConfig cfg;
    cfg.node_count = 30;
    cfg.degree = 5;
    cfg.malicious_fraction = 0.2;
    cfg.churn.session_median = sim::minutes(30.0);
    cfg.churn.session_min = sim::minutes(5.0);
    cfg.churn.departure_probability = 0.2;
    return cfg;
  }

  void run(sim::Time horizon = sim::hours(12.0)) {
    overlay_.start();
    simulator_.run_until(horizon);
  }

  sim::Simulator simulator_;
  Overlay overlay_;
};

}  // namespace

TEST_P(OverlayProperties, DegreeInvariantUnderChurn) {
  run();
  for (NodeId id = 0; id < overlay_.size(); ++id) {
    EXPECT_EQ(overlay_.neighbors(id).size(), 5u) << "node " << id;
  }
}

TEST_P(OverlayProperties, NeighborsAlwaysDistinctAndNotSelf) {
  run();
  for (NodeId id = 0; id < overlay_.size(); ++id) {
    std::set<NodeId> uniq;
    for (NodeId nb : overlay_.neighbors(id)) {
      EXPECT_NE(nb, id);
      uniq.insert(nb);
    }
    EXPECT_EQ(uniq.size(), overlay_.neighbors(id).size()) << "duplicate neighbour at " << id;
  }
}

TEST_P(OverlayProperties, AvailabilityAlwaysInUnitInterval) {
  run();
  for (NodeId id = 0; id < overlay_.size(); ++id) {
    const double a = overlay_.true_availability(id);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST_P(OverlayProperties, DepartedNodesStayGone) {
  run();
  const auto departed_then = [&] {
    std::set<NodeId> out;
    for (NodeId id = 0; id < overlay_.size(); ++id) {
      if (overlay_.node(id).departed) out.insert(id);
    }
    return out;
  }();
  simulator_.run_until(simulator_.now() + sim::hours(12.0));
  for (NodeId id : departed_then) {
    EXPECT_TRUE(overlay_.node(id).departed);
    EXPECT_FALSE(overlay_.is_online(id));
  }
}

TEST_P(OverlayProperties, OnlineNodesAreNotDeparted) {
  run();
  for (NodeId id : overlay_.online_nodes()) {
    EXPECT_FALSE(overlay_.node(id).departed);
  }
}

TEST_P(OverlayProperties, MaliciousAssignmentIsStable) {
  const auto before = overlay_.malicious_nodes();
  run();
  EXPECT_EQ(overlay_.malicious_nodes(), before);
  EXPECT_EQ(before.size(), 6u);  // 0.2 * 30
}

TEST_P(OverlayProperties, ForceOnlineIdempotentAndEffective) {
  run(sim::hours(2.0));
  for (NodeId id = 0; id < 5; ++id) {
    overlay_.force_online(id);
    overlay_.force_online(id);
    EXPECT_TRUE(overlay_.is_online(id));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlayProperties, ::testing::Values(1, 2, 3, 5, 8, 13, 21));
