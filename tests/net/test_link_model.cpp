#include "net/link_model.hpp"

#include <gtest/gtest.h>

using namespace p2panon::net;

TEST(LinkModel, BandwidthWithinConfiguredRange) {
  LinkModel links(LinkModelConfig{}, 42);
  for (NodeId a = 0; a < 30; ++a) {
    for (NodeId b = 0; b < 30; ++b) {
      const double bw = links.bandwidth(a, b);
      EXPECT_GE(bw, 1.0);
      EXPECT_LE(bw, 10.0);
    }
  }
}

TEST(LinkModel, Symmetric) {
  LinkModel links(LinkModelConfig{}, 7);
  for (NodeId a = 0; a < 20; ++a) {
    for (NodeId b = 0; b < 20; ++b) {
      EXPECT_DOUBLE_EQ(links.bandwidth(a, b), links.bandwidth(b, a));
    }
  }
}

TEST(LinkModel, DeterministicInSeed) {
  LinkModel l1(LinkModelConfig{}, 11), l2(LinkModelConfig{}, 11);
  EXPECT_DOUBLE_EQ(l1.bandwidth(3, 9), l2.bandwidth(3, 9));
}

TEST(LinkModel, DifferentSeedsDiffer) {
  LinkModel l1(LinkModelConfig{}, 11), l2(LinkModelConfig{}, 12);
  int same = 0;
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = a + 1; b < 10; ++b) {
      if (l1.bandwidth(a, b) == l2.bandwidth(a, b)) ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(LinkModel, TransmissionCostInverseInBandwidth) {
  LinkModelConfig cfg;
  cfg.payload_size = 2.0;
  cfg.cost_scale = 3.0;
  LinkModel links(cfg, 5);
  const double bw = links.bandwidth(1, 2);
  EXPECT_NEAR(links.unit_cost(1, 2), 3.0 / bw, 1e-12);
  EXPECT_NEAR(links.transmission_cost(1, 2), 2.0 * 3.0 / bw, 1e-12);
}

TEST(LinkModel, SelfLinkMaximalBandwidth) {
  LinkModel links(LinkModelConfig{}, 5);
  EXPECT_DOUBLE_EQ(links.bandwidth(4, 4), 10.0);
}

TEST(LinkModel, PairsDecorrelated) {
  // Adjacent pairs must not share bandwidth (hash, not pattern).
  LinkModel links(LinkModelConfig{}, 13);
  EXPECT_NE(links.bandwidth(0, 1), links.bandwidth(0, 2));
  EXPECT_NE(links.bandwidth(0, 1), links.bandwidth(1, 2));
}
